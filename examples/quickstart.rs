//! Quickstart: find the most frequent items in a stream in one pass.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use frequent_items::prelude::*;

fn main() {
    // Build a synthetic "word stream": a few heavy hitters in a sea of
    // one-off noise words.
    let mut words: Vec<String> = Vec::new();
    for (word, count) in [
        ("the", 900),
        ("sketch", 400),
        ("stream", 250),
        ("count", 150),
    ] {
        words.extend(std::iter::repeat_n(word.to_string(), count));
    }
    words.extend((0..2_000).map(|i| format!("noise-{i}")));
    // Deterministic interleave so heavy words are spread through the
    // stream rather than batched.
    words.sort_by_key(|w| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(w, &mut h);
        std::hash::Hasher::finish(&h)
    });

    let stream = Stream::from_items(words.iter().map(String::as_str));

    // A Count-Sketch with t = 5 rows and b = 512 buckets, plus a 4-slot
    // heap: O(t·b + k) memory regardless of how many distinct words the
    // stream contains.
    let k = 4;
    let result = approx_top(&stream, k, SketchParams::new(5, 512), 42);

    println!(
        "top-{k} by estimated count (stream of {} occurrences):",
        stream.len()
    );
    for (key, est) in &result.items {
        // Map keys back to words for display (the sketch itself never
        // stores the words — only the k heap entries would, in a real
        // deployment).
        let word = ["the", "sketch", "stream", "count"]
            .iter()
            .find(|w| ItemKey::of(**w) == *key)
            .copied()
            .unwrap_or("<unexpected>");
        println!("  {word:>8}  ~{est}");
    }
    println!("sketch + heap memory: {} bytes", result.space_bytes);

    // Verify against the exact oracle.
    let exact = ExactCounter::from_stream(&stream);
    assert_eq!(result.items[0].0, ItemKey::of("the"));
    println!(
        "exact count of 'the': {} (estimate {})",
        exact.count(ItemKey::of("the")),
        result.items[0].1
    );
}
