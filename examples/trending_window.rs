//! Sliding-window trending topics: the paper's "most frequent queries in
//! some period of time" (§1), served live from epoch sketches combined
//! via additivity (extension module `cs_core::window`), plus an iceberg
//! query (§2's problem shape) over the same stream.
//!
//! ```sh
//! cargo run --release --example trending_window
//! ```

use frequent_items::prelude::*;
use frequent_items::sketch::iceberg::iceberg;
use frequent_items::sketch::window::SlidingSketch;

fn main() {
    // A day of traffic in 6 "hours" (epochs). Topics rise and fall:
    // item 1 is the morning story, item 2 peaks mid-day, item 3 owns the
    // evening; a Zipfian tail of 20k background queries runs throughout.
    let epoch_len = 50_000;
    let hours = 6;
    let zipf = Zipf::new(20_000, 1.0);
    let mut day = Vec::new();
    for hour in 0..hours {
        let hot_boost = |peak: usize, width: usize| -> usize {
            let dist = (hour as i64 - peak as i64).unsigned_abs() as usize;
            if dist > width {
                0
            } else {
                // Peak well above the Zipf background's top item
                // (~5k/epoch at z=1, n=50k).
                24_000 / (1 + 3 * dist)
            }
        };
        let mut hour_items: Vec<ItemKey> = zipf
            .stream(epoch_len, 0xDA7 ^ hour as u64, ZipfStreamKind::Sampled)
            .iter()
            // Shift background ids to leave room for the planted topics.
            .map(|k| ItemKey(k.raw() + 10))
            .collect();
        for (item, peak) in [(1u64, 0usize), (2, 2), (3, 5)] {
            hour_items.extend(std::iter::repeat_n(ItemKey(item), hot_boost(peak, 1)));
        }
        day.push(Stream::from_keys(hour_items));
    }

    // Window: the last 2 hours, tracked with a 5-slot heap.
    let mut window = SlidingSketch::new(SketchParams::new(7, 4096), 99, epoch_len, 3, 5);
    let labels = |id: u64| match id {
        1 => "morning-story",
        2 => "midday-story",
        3 => "evening-story",
        _ => "(background)",
    };
    for (hour, stream) in day.iter().enumerate() {
        for key in stream.iter() {
            window.observe(key);
        }
        let top = window.top_k();
        let leader = top.first().map(|&(k, _)| labels(k.raw())).unwrap_or("-");
        println!(
            "after hour {hour}: window covers {:>6} queries, trending: {leader:<14} top3 = {:?}",
            window.window_occurrences(),
            top.iter()
                .take(3)
                .map(|&(k, est)| format!("{}:{est}", labels(k.raw())))
                .collect::<Vec<_>>()
        );
    }

    // The evening story must lead at the end; the morning story must
    // have expired out of the window.
    let final_top = window.top_k();
    assert_eq!(final_top[0].0, ItemKey(3), "evening story should lead");
    assert!(
        final_top.iter().all(|&(k, _)| k != ItemKey(1)),
        "morning story must have expired from the window"
    );
    println!("\nwindow expiry works: morning story gone, evening story leads ✓");

    // Iceberg query over the whole day (all epochs concatenated): which
    // queries exceeded 1% of total traffic?
    let mut whole_day = Stream::new();
    for s in &day {
        whole_day.extend_from(s);
    }
    let result = iceberg(&whole_day, 0.01, 0.002, SketchParams::new(7, 4096), 5);
    println!(
        "\niceberg(φ=1%) over the whole day (n = {}): {} items above {}",
        result.n,
        result.items.len(),
        result.threshold
    );
    for &(key, est) in result.items.iter().take(6) {
        println!("  {:<15} ~{est}", labels(key.raw()));
    }
}
