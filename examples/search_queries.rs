//! The paper's "zeitgeist" motivation (§1, §4.2): given the query streams
//! of two consecutive days, find the queries whose frequency changed the
//! most — rising and falling topics — using the 2-pass max-change
//! algorithm on the *difference* of two Count-Sketches.
//!
//! ```sh
//! cargo run --release --example search_queries
//! ```

use frequent_items::prelude::*;
use frequent_items::stream::{ChangeSpec, StreamPair};

fn main() {
    // Day 1 and day 2 share a Zipfian background of evergreen queries
    // (ids 0..m). On day 2, some news events spike and yesterday's event
    // fades. Planted items use ids >= m so we can label them.
    let m = 20_000;
    let n = 300_000;
    let trending: &[(&str, u64, u64, u64)] = &[
        // (label, id, day1 count, day2 count)
        ("solar eclipse", 100_000, 50, 9_000),
        ("election results", 100_001, 200, 6_500),
        ("new phone launch", 100_002, 30, 4_000),
        ("yesterday's match", 100_003, 8_000, 400),
        ("old meme", 100_004, 3_000, 100),
    ];
    let specs: Vec<ChangeSpec> = trending
        .iter()
        .map(|&(_, id, d1, d2)| ChangeSpec {
            item: id,
            count_s1: d1,
            count_s2: d2,
        })
        .collect();
    let pair = StreamPair::zipf_background(m, 1.0, n, specs, 20_260_704);
    println!(
        "day 1: {} queries, day 2: {} queries",
        pair.s1.len(),
        pair.s2.len()
    );

    // The 2-pass algorithm of §4.2: pass 1 subtracts day 1 and adds
    // day 2 into one sketch; pass 2 keeps the l candidates with the
    // largest |estimated change| along with exact re-counts.
    let k = 5;
    let l = 4 * k;
    let result = max_change(&pair.s1, &pair.s2, k, l, SketchParams::new(7, 4096), 7);

    println!("\nbiggest movers (k = {k}, candidates l = {l}):");
    println!("{:<20} {:>10} {:>12}", "query", "Δ exact", "Δ estimated");
    for item in &result.items {
        let label = trending
            .iter()
            .find(|&&(_, id, _, _)| item.key.raw() == id)
            .map(|&(label, ..)| label)
            .unwrap_or("(background)");
        println!(
            "{:<20} {:>10} {:>12}",
            label, item.exact_change, item.estimated_change
        );
    }

    // Sanity: the top-k movers must be exactly the planted items with
    // the largest |Δ|.
    let want: Vec<u64> = {
        let mut t: Vec<_> = trending.to_vec();
        t.sort_by_key(|&(_, _, d1, d2)| std::cmp::Reverse(d1.abs_diff(d2)));
        t.iter().take(k).map(|&(_, id, _, _)| id).collect()
    };
    let got: Vec<u64> = result.items.iter().map(|c| c.key.raw()).collect();
    assert_eq!(got, want, "max-change must rank the planted events");
    println!("\nall {k} planted events recovered in the right order ✓");

    // Bonus: the same result from two *independently stored* sketches
    // (e.g. sketched on different machines on different days), using
    // additivity.
    let params = SketchParams::new(7, 4096);
    let mut day1 = CountSketch::new(params, 7);
    day1.absorb(&pair.s1, 1);
    let mut day2 = CountSketch::new(params, 7);
    day2.absorb(&pair.s2, 1);
    let diff = DiffSketch::from_sketches(&day1, &day2).expect("same params & seed");
    let again = diff.top_changes(&pair.s1, &pair.s2, k, l);
    assert_eq!(again.items, result.items);
    println!("identical answer from subtracting two stored sketches ✓");
}
