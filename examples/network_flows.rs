//! The paper's networking motivation (§1): identify large packet flows
//! ("elephants") in a router's packet stream, with the sketch sized by
//! Lemma 5 so the APPROXTOP guarantee holds, and sharded across worker
//! threads using sketch additivity.
//!
//! ```sh
//! cargo run --release --example network_flows
//! ```

use frequent_items::prelude::*;
use frequent_items::sketch::concurrent::sketch_stream_parallel;
use frequent_items::stream::moments;

/// A 5-tuple flow id. Hashing it yields the sketch key.
#[derive(Hash, Clone, Copy)]
struct Flow {
    src: u32,
    dst: u32,
    src_port: u16,
    dst_port: u16,
    proto: u8,
}

fn flow(i: u64) -> Flow {
    // Deterministic synthetic flow table: flow i.
    Flow {
        src: (0x0A00_0000u32).wrapping_add((i as u32).wrapping_mul(2654435761)),
        dst: (0xC0A8_0000u32).wrapping_add((i as u32).wrapping_mul(40503)),
        src_port: (1024 + (i % 60000)) as u16,
        dst_port: if i.is_multiple_of(3) { 443 } else { 80 },
        proto: 6,
    }
}

fn main() {
    // Packet trace: flow sizes follow Zipf(1.1) (heavy-tailed, per the
    // paper's citation [3] of Crovella et al.).
    let m = 50_000; // distinct flows
    let n = 500_000; // packets
    let zipf = Zipf::new(m, 1.1);
    let ranks = zipf.stream(n, 0xF10, ZipfStreamKind::DeterministicRounded);
    // Re-key ranks through the Flow struct (as a router would hash the
    // 5-tuple).
    let packets: Stream = ranks
        .iter()
        .map(|rank| ItemKey::of(&flow(rank.raw())))
        .collect();
    let exact = ExactCounter::from_stream(&packets);

    // Size the sketch by Lemma 5 for APPROXTOP(S, k, eps).
    let (k, eps, delta) = (10usize, 0.25f64, 0.05f64);
    let nk = exact.nk(k);
    let res_f2 = moments::residual_f2(&exact, k) as f64;
    let params = SketchParams::for_approx_top(k, res_f2, nk, eps, n as u64, delta);
    println!(
        "Lemma 5 dimensioning: t = {}, b = {} ({} counters, {} KiB)",
        params.rows,
        params.buckets,
        params.total_counters(),
        params.total_counters() * 8 / 1024
    );

    // Find elephant flows in one pass.
    let mut proc = ApproxTopProcessor::new(params, k, 0xE1E);
    proc.observe_stream(&packets);
    let result = proc.result();

    println!("\ntop-{k} flows (dst-port 443/80 elephants):");
    for (i, &(key, est)) in result.items.iter().enumerate() {
        println!(
            "  #{:<2} flow {:016x}  est {:>7}  exact {:>7}",
            i + 1,
            key.raw(),
            est,
            exact.count(key)
        );
    }

    // Check the APPROXTOP guarantee: every reported flow carries at
    // least (1-eps) * n_k packets.
    let floor = ((1.0 - eps) * nk as f64) as u64;
    for &(key, _) in &result.items {
        assert!(exact.count(key) >= floor, "guarantee violated for {key:?}");
    }
    println!("\nAPPROXTOP guarantee holds: all reported flows ≥ (1-ε)·n_k = {floor} packets ✓");

    // Line-rate trick: shard packets across 4 "RX queues", sketch each
    // independently with the same seed, merge — bit-identical to the
    // sequential sketch (additivity, §3.2).
    let merged = sketch_stream_parallel(&packets, params, 0xE1E, 4);
    let mut sequential = CountSketch::new(params, 0xE1E);
    sequential.absorb(&packets, 1);
    assert_eq!(merged.counters(), sequential.counters());
    println!("4-way sharded sketch == sequential sketch (additivity) ✓");
}
