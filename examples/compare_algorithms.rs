//! Run the whole comparison suite — the Count-Sketch and every baseline —
//! on one Zipfian stream at comparable memory budgets, and print
//! recall/precision/error per algorithm (a miniature of the same-titled
//! VLDB 2008 survey's experiment).
//!
//! ```sh
//! cargo run --release --example compare_algorithms [z]
//! ```

use frequent_items::baselines::*;
use frequent_items::metrics::table::fmt_num;
use frequent_items::metrics::{precision_at_k, recall_at_k, ErrorReport, Table};
use frequent_items::prelude::*;

fn main() {
    let z: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let (m, n, k) = (50_000usize, 500_000usize, 20usize);
    let zipf = Zipf::new(m, z);
    let stream = zipf.stream(n, 0xC0FFEE, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    println!("workload: Zipf(z={z}), n={n}, m={m}, k={k}\n");

    let budget_entries = 1000; // ~comparable budgets for counter algorithms

    // Each algorithm reports (name, top-k keys, (key, est) pairs, bytes).
    type Row = (String, Vec<ItemKey>, Vec<(ItemKey, i64)>, usize);
    let mut rows: Vec<Row> = Vec::new();

    // Count-Sketch (t x b chosen so t*b*8 bytes ~ budget_entries * 16).
    {
        let params = SketchParams::new(5, 512);
        let mut p = ApproxTopProcessor::new(params, k, 1);
        p.observe_stream(&stream);
        let r = p.result();
        rows.push((
            "count-sketch".into(),
            r.keys(),
            r.items.clone(),
            r.space_bytes,
        ));
    }

    // Count-Sketch, 2-pass (§4.1): track l = 2k candidates, then recount
    // them exactly in a second pass — the paper's CANDIDATETOP recipe.
    {
        let params = SketchParams::new(5, 512);
        let r = candidate_top_two_pass(&stream, k, 2 * k, params, 1);
        let keys: Vec<ItemKey> = r.top_k.iter().map(|&(key, _)| key).collect();
        let ests: Vec<(ItemKey, i64)> = r.top_k.iter().map(|&(key, c)| (key, c as i64)).collect();
        let bytes = params.total_counters() * 8 + 2 * k * 24;
        rows.push(("count-sketch 2-pass".into(), keys, ests, bytes));
    }

    // The baselines, via the common StreamSummary trait.
    let mut summaries: Vec<Box<dyn StreamSummary>> = vec![
        Box::new(SamplingAlgorithm::new(0.005, 2)),
        Box::new(ConciseSamples::new(budget_entries, 0.9, 3)),
        Box::new(CountingSamples::new(budget_entries, 0.9, 4)),
        Box::new(KpsFrequent::with_capacity(budget_entries)),
        Box::new(LossyCounting::new(1.0 / budget_entries as f64)),
        Box::new(StickySampling::new(0.01, 0.001, 0.1, 5)),
        Box::new(CountMinSketch::new(5, 512, k, 6)),
        Box::new(SpaceSaving::new(budget_entries)),
        Box::new(MultiHashIceberg::new(
            5,
            512,
            (n / 500) as u64,
            budget_entries,
            7,
        )),
    ];
    for s in &mut summaries {
        s.process_stream(&stream);
        let cands = s.candidates();
        let keys: Vec<ItemKey> = cands.iter().take(k).map(|&(key, _)| key).collect();
        let ests: Vec<(ItemKey, i64)> = cands
            .iter()
            .take(k)
            .map(|&(key, est)| (key, est as i64))
            .collect();
        rows.push((s.name().into(), keys, ests, s.space_bytes()));
    }

    let mut table = Table::new(
        format!("algorithm comparison @ top-{k}"),
        &["algorithm", "recall@k", "prec@k", "mean rel err", "bytes"],
    );
    for (name, keys, ests, bytes) in &rows {
        let recall = recall_at_k(keys, &exact, k);
        let precision = precision_at_k(keys, &exact, k);
        let err = ErrorReport::measure(ests, &exact);
        table.row(&[
            name.clone(),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
            format!("{:.4}", err.mean_rel),
            fmt_num(*bytes as f64),
        ]);
    }
    println!("{}", table.render());

    println!("notes:");
    println!("- kps/lossy/sticky undercount by design; space-saving/count-min overcount");
    println!("- count-sketch is the only unbiased estimator in the table");
    println!("- try `cargo run --release --example compare_algorithms 0.6` for the low-skew regime the paper targets");
}
