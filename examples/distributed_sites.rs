//! The paper's third §1 motivation: "load balancing in a distributed
//! database". Key accesses arrive at 8 shards; each shard sketches its
//! local stream and ships `O(t·b)` bytes — independent of its traffic —
//! to a coordinator, which merges the sketches (§3.2 additivity) and
//! identifies the globally hottest keys.
//!
//! ```sh
//! cargo run --release --example distributed_sites
//! ```

use frequent_items::prelude::*;
use frequent_items::sketch::distributed::{site_report, DistributedSketch};
use frequent_items::stream::workloads::balanced_shards;

fn main() {
    // 200k key accesses over 50k keys, Zipf(1.05), routed to 8 shards by
    // key hash.
    let (global, shards) = balanced_shards(50_000, 200_000, 1.05, 8, 2026);
    let exact = ExactCounter::from_stream(&global);
    println!("{} accesses across {} shards:", global.len(), shards.len());
    for (i, s) in shards.iter().enumerate() {
        println!("  shard {i}: {:>6} accesses", s.len());
    }

    // Each shard sketches locally with the shared (params, seed) and
    // nominates its local top-20.
    let params = SketchParams::new(7, 2048);
    let reports: Vec<_> = shards
        .iter()
        .map(|s| site_report(s, 20, params, 777))
        .collect();
    let wire: usize = reports.iter().map(DistributedSketch::per_site_bytes).sum();
    println!(
        "\neach site ships ~{} KiB (total {} KiB) — independent of its traffic",
        DistributedSketch::per_site_bytes(&reports[0]) / 1024,
        wire / 1024
    );

    // Coordinator: merge and answer the global top-10.
    let coordinator = DistributedSketch::coordinate(&reports).expect("same params/seed");
    let top = coordinator.top_k(10);
    println!("\nglobal top-10 (merged estimate vs exact):");
    let mut hits = 0;
    let truth: Vec<ItemKey> = exact.top_k(10).into_iter().map(|(k, _)| k).collect();
    for (key, est) in &top {
        let t = exact.count(*key);
        let mark = if truth.contains(key) {
            hits += 1;
            ' '
        } else {
            '?'
        };
        println!(
            "  key {:>6}  est {:>6}  exact {:>6} {mark}",
            key.raw(),
            est,
            t
        );
    }
    println!("\nrecall vs exact oracle: {hits}/10");
    assert!(hits >= 9, "distributed top-k must track the global truth");
}
