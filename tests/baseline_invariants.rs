//! Property-based invariants of every baseline algorithm on random
//! streams — the per-algorithm guarantees from the literature, checked
//! against the exact oracle for arbitrary inputs (not just Zipf).

use frequent_items::baselines::*;
use frequent_items::prelude::*;
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..64, 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// KPS: never overcounts; undercount bounded by n/(capacity+1); every
    /// item with count > n/(capacity+1) is retained (Misra–Gries bound).
    #[test]
    fn kps_bounds(ids in stream_strategy(), cap in 1usize..20) {
        let stream = Stream::from_ids(ids.iter().copied());
        let exact = ExactCounter::from_stream(&stream);
        let mut alg = KpsFrequent::with_capacity(cap);
        alg.process_stream(&stream);
        let n = stream.len() as u64;
        let bound = n / (cap as u64 + 1);
        for (key, est) in alg.candidates() {
            let truth = exact.count(key);
            prop_assert!(est <= truth);
            prop_assert!(truth - est <= bound, "undercount {} > {bound}", truth - est);
        }
        for (&key, &count) in exact.counts() {
            if count > bound {
                prop_assert!(alg.estimate(key).is_some(),
                    "item with count {count} > {bound} lost");
            }
        }
    }

    /// Space-Saving: count conservation, over-estimation only, and the
    /// guaranteed lower bound `count - error <= truth`.
    #[test]
    fn space_saving_bounds(ids in stream_strategy(), cap in 1usize..20) {
        let stream = Stream::from_ids(ids.iter().copied());
        let exact = ExactCounter::from_stream(&stream);
        let mut alg = SpaceSaving::new(cap);
        alg.process_stream(&stream);
        let total: u64 = alg.candidates().iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, stream.len() as u64, "count conservation");
        for (key, est) in alg.candidates() {
            let truth = exact.count(key);
            prop_assert!(est >= truth, "space-saving must overestimate");
            let c = alg.counter(key).unwrap();
            prop_assert!(c.count - c.error <= truth, "lower bound violated");
        }
    }

    /// Lossy Counting: undercount at most εn; heavy items retained.
    #[test]
    fn lossy_counting_bounds(ids in stream_strategy(), eps_mil in 5u32..200) {
        let eps = eps_mil as f64 / 1000.0;
        let stream = Stream::from_ids(ids.iter().copied());
        let exact = ExactCounter::from_stream(&stream);
        let mut alg = LossyCounting::new(eps);
        alg.process_stream(&stream);
        let bound = (eps * stream.len() as f64).ceil() as u64;
        for (key, est) in alg.candidates() {
            let truth = exact.count(key);
            prop_assert!(est <= truth);
            prop_assert!(truth - est <= bound);
        }
        for (&key, &count) in exact.counts() {
            if count > bound {
                prop_assert!(alg.estimate(key).is_some());
            }
        }
    }

    /// Count-Min: never undercounts, for every item in the universe.
    #[test]
    fn count_min_one_sided(ids in stream_strategy(), seed: u64) {
        let stream = Stream::from_ids(ids.iter().copied());
        let exact = ExactCounter::from_stream(&stream);
        let mut alg = CountMinSketch::new(3, 32, 5, seed);
        alg.process_stream(&stream);
        for id in 0..64u64 {
            prop_assert!(alg.point_query(ItemKey(id)) >= exact.count(ItemKey(id)));
        }
    }

    /// Sampling with p = 1 is exact counting.
    #[test]
    fn sampling_p_one_exact(ids in stream_strategy(), seed: u64) {
        let stream = Stream::from_ids(ids.iter().copied());
        let exact = ExactCounter::from_stream(&stream);
        let mut alg = SamplingAlgorithm::new(1.0, seed);
        alg.process_stream(&stream);
        for (&key, &count) in exact.counts() {
            prop_assert_eq!(alg.estimate(key), Some(count));
        }
    }

    /// Counting samples under capacity: τ stays 1 and counts are exact.
    #[test]
    fn counting_samples_under_capacity_exact(ids in prop::collection::vec(0u64..10, 0..200), seed: u64) {
        let stream = Stream::from_ids(ids.iter().copied());
        let exact = ExactCounter::from_stream(&stream);
        let mut alg = CountingSamples::new(10, 0.9, seed);
        alg.process_stream(&stream);
        for (&key, &count) in exact.counts() {
            prop_assert_eq!(alg.estimate(key), Some(count));
        }
    }

    /// Sticky sampling never overcounts.
    #[test]
    fn sticky_never_overcounts(ids in stream_strategy(), seed: u64) {
        let stream = Stream::from_ids(ids.iter().copied());
        let exact = ExactCounter::from_stream(&stream);
        let mut alg = StickySampling::new(0.1, 0.01, 0.1, seed);
        alg.process_stream(&stream);
        for (key, est) in alg.candidates() {
            prop_assert!(est <= exact.count(key));
        }
    }

    /// Every summary's candidate list is sorted non-increasing and its
    /// space report is consistent with its contents.
    #[test]
    fn candidates_sorted_for_all(ids in stream_strategy(), seed: u64) {
        let stream = Stream::from_ids(ids.iter().copied());
        let mut algs: Vec<Box<dyn StreamSummary>> = vec![
            Box::new(SamplingAlgorithm::new(0.5, seed)),
            Box::new(ConciseSamples::new(16, 0.9, seed)),
            Box::new(CountingSamples::new(16, 0.9, seed)),
            Box::new(KpsFrequent::with_capacity(16)),
            Box::new(LossyCounting::new(0.05)),
            Box::new(StickySampling::new(0.1, 0.01, 0.1, seed)),
            Box::new(CountMinSketch::new(3, 32, 8, seed)),
            Box::new(SpaceSaving::new(16)),
            Box::new(MultiHashIceberg::new(3, 32, 4, 16, seed)),
        ];
        for alg in &mut algs {
            alg.process_stream(&stream);
            let c = alg.candidates();
            prop_assert!(c.windows(2).all(|w| w[0].1 >= w[1].1),
                "{} candidates unsorted", alg.name());
        }
    }
}
