//! The paper's quantitative guarantees, checked end-to-end: Lemma 4's
//! `8γ` estimate bound and Theorem 1's space accounting.

use frequent_items::prelude::*;
use frequent_items::stream::moments;

#[test]
fn lemma4_error_bound_holds_across_z_and_b() {
    // For each (z, b): with t = 11 rows, the estimate error on every
    // top-k item must stay within 8γ (γ = sqrt(F2res(k)/b), eq. 5).
    let (m, n, k) = (3_000usize, 60_000usize, 10usize);
    for z in [0.75, 1.0, 1.25] {
        let zipf = Zipf::new(m, z);
        let stream = zipf.stream(n, 0x9A, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        for b in [256usize, 1024, 4096] {
            let gamma = moments::gamma(&exact, k, b);
            let mut sketch = CountSketch::new(SketchParams::new(11, b), 0xB0B);
            sketch.absorb(&stream, 1);
            for rank in 0..k as u64 {
                let truth = exact.count(ItemKey(rank)) as i64;
                let est = sketch.estimate(ItemKey(rank));
                assert!(
                    ((est - truth).abs() as f64) <= 8.0 * gamma,
                    "z={z} b={b} rank={rank}: |{est} - {truth}| > 8γ = {:.1}",
                    8.0 * gamma
                );
            }
        }
    }
}

#[test]
fn error_scales_as_inverse_sqrt_b() {
    // Quadrupling b should roughly halve the mean error (γ ∝ 1/√b).
    let zipf = Zipf::new(3_000, 1.0);
    let stream = zipf.stream(60_000, 3, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let mean_err = |b: usize| -> f64 {
        let mut total = 0.0;
        let trials = 10;
        for seed in 0..trials {
            let mut s = CountSketch::new(SketchParams::new(5, b), seed);
            s.absorb(&stream, 1);
            for rank in 0..10u64 {
                let truth = exact.count(ItemKey(rank)) as i64;
                total += (s.estimate(ItemKey(rank)) - truth).abs() as f64;
            }
        }
        total / (trials as f64 * 10.0)
    };
    let e256 = mean_err(256);
    let e4096 = mean_err(4096);
    // 16x buckets ⇒ ~4x smaller error; accept anything ≥ 2x.
    assert!(
        e4096 * 2.0 <= e256,
        "error didn't shrink with b: {e256} -> {e4096}"
    );
}

#[test]
fn theorem1_space_is_counters_plus_heap() {
    // O(tb + k): the reported space must match t·b counters (8 bytes
    // each) plus O(k) heap entries plus the O(t) hash descriptions.
    let (t, b, k) = (7usize, 1024usize, 50usize);
    let stream = Zipf::new(1_000, 1.0).stream(10_000, 1, ZipfStreamKind::Sampled);
    let result = approx_top(&stream, k, SketchParams::new(t, b), 2);
    let counters = t * b * 8;
    assert!(result.space_bytes >= counters);
    // Generous upper bound: counters + 1KiB/row of hash state + 200B/item.
    assert!(
        result.space_bytes <= counters + t * 1024 + k * 200,
        "space {} far above the O(tb + k) accounting",
        result.space_bytes
    );
}

#[test]
fn rows_practical_achieves_low_failure_rate() {
    // With t = rows_practical(n, δ), the fraction of per-item failures
    // (error > 8γ) measured across items and seeds should be ≪ δ-ish.
    let zipf = Zipf::new(2_000, 1.0);
    let stream = zipf.stream(40_000, 7, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let b = 1024;
    let k = 10;
    let gamma = moments::gamma(&exact, k, b);
    let t = SketchParams::rows_practical(stream.len() as u64, 0.05);
    let mut failures = 0usize;
    let mut probes = 0usize;
    for seed in 0..5u64 {
        let mut s = CountSketch::new(SketchParams::new(t, b), seed);
        s.absorb(&stream, 1);
        for rank in 0..200u64 {
            let truth = exact.count(ItemKey(rank)) as i64;
            if ((s.estimate(ItemKey(rank)) - truth).abs() as f64) > 8.0 * gamma {
                failures += 1;
            }
            probes += 1;
        }
    }
    let rate = failures as f64 / probes as f64;
    assert!(rate <= 0.01, "failure rate {rate} too high for t = {t}");
}

#[test]
fn buckets_formula_monotonicity() {
    // Lemma 5's b grows with the residual F2 and shrinks with ε and n_k.
    let b0 = SketchParams::buckets_for_approx_top(10, 1e6, 100, 0.25);
    assert!(SketchParams::buckets_for_approx_top(10, 2e6, 100, 0.25) >= b0);
    assert!(SketchParams::buckets_for_approx_top(10, 1e6, 200, 0.25) <= b0);
    assert!(SketchParams::buckets_for_approx_top(10, 1e6, 100, 0.5) <= b0);
}
