//! Crash-recovery and fault-injection matrix.
//!
//! The durability contract under test:
//!
//! 1. **Resume is bit-identical.** Snapshotting mid-stream and resuming
//!    from the snapshot produces exactly the bytes an uninterrupted run
//!    produces — counters, saturation flags, tracker state, everything.
//! 2. **Every injected fault is survivable.** Truncation, bit flips,
//!    duplication, reordering, stragglers and drops — each either leaves
//!    the payload intact (delivery faults) or yields a *typed* error.
//!    Nothing panics; nothing decodes into silently wrong state.
//! 3. **The quorum pipeline degrades gracefully.** Faulty sites are
//!    excluded with a reason and the merge report widens the error
//!    bound; only falling below quorum is a hard (typed) failure.

use frequent_items::prelude::*;
use proptest::prelude::*;

fn sketch_of(ids: &[u64], seed: u64) -> CountSketch {
    let mut s = CountSketch::new(SketchParams::new(4, 64), seed);
    s.absorb(&Stream::from_ids(ids.iter().copied()), 1);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash anywhere mid-stream: snapshot at the cut, "restart", replay
    /// the tail. The resumed sketch is byte-for-byte the uninterrupted
    /// one.
    #[test]
    fn resume_from_snapshot_is_bit_identical(
        seed: u64,
        ids in prop::collection::vec(0u64..500, 1..300),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((ids.len() as f64) * cut_frac) as usize;

        let mut uninterrupted = sketch_of(&ids, seed);

        let before_crash = sketch_of(&ids[..cut], seed);
        let snapshot = before_crash.to_snapshot_bytes();
        // -- crash; all in-memory state lost --
        let mut resumed = CountSketch::from_snapshot_bytes(&snapshot).unwrap();
        resumed.absorb(&Stream::from_ids(ids[cut..].iter().copied()), 1);

        prop_assert_eq!(
            resumed.to_snapshot_bytes(),
            uninterrupted.to_snapshot_bytes(),
            "resumed state diverges from uninterrupted run"
        );
        // And the observable behaviour matches too.
        for id in 0..20u64 {
            prop_assert_eq!(resumed.estimate(ItemKey(id)), uninterrupted.estimate(ItemKey(id)));
        }
        uninterrupted.add(ItemKey(7));
        resumed.add(ItemKey(7));
        prop_assert_eq!(resumed.counters(), uninterrupted.counters());
    }

    /// The same contract for the full APPROXTOP processor (sketch +
    /// top-k tracker + policy).
    #[test]
    fn processor_resume_is_bit_identical(
        seed: u64,
        ids in prop::collection::vec(0u64..100, 1..300),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((ids.len() as f64) * cut_frac) as usize;
        let params = SketchParams::new(3, 32);

        let mut uninterrupted = ApproxTopProcessor::new(params, 5, seed);
        uninterrupted.observe_stream(&Stream::from_ids(ids.iter().copied()));

        let mut first_half = ApproxTopProcessor::new(params, 5, seed);
        first_half.observe_stream(&Stream::from_ids(ids[..cut].iter().copied()));
        let snapshot = first_half.to_snapshot_bytes();
        // -- crash --
        let mut resumed = <ApproxTopProcessor>::from_snapshot_bytes(&snapshot).unwrap();
        resumed.observe_stream(&Stream::from_ids(ids[cut..].iter().copied()));

        prop_assert_eq!(
            resumed.to_snapshot_bytes(),
            uninterrupted.to_snapshot_bytes()
        );
        prop_assert_eq!(resumed.result().items, uninterrupted.result().items);
    }

    /// The whole fault matrix against sketch snapshots: each corrupted
    /// payload either restores the exact original (delivery faults keep
    /// bytes intact) or fails with a typed error. Zero panics.
    #[test]
    fn every_injected_fault_recovers_or_errors_typed(
        seed: u64,
        ids in prop::collection::vec(0u64..200, 0..100),
        rounds in 1usize..12,
    ) {
        let original = sketch_of(&ids, seed);
        let clean = original.to_snapshot_bytes();
        let mut inj = FaultInjector::new(seed ^ 0xF417);
        for _ in 0..rounds {
            let fault = inj.any_fault(5);
            let mut bytes = clean.clone();
            inj.corrupt(fault, &mut bytes);
            match CountSketch::from_snapshot_bytes(&bytes) {
                Ok(restored) => {
                    // Only an unmodified payload may restore.
                    prop_assert_eq!(&bytes, &clean, "fault {:?} restored from altered bytes", fault);
                    prop_assert_eq!(restored.counters(), original.counters());
                }
                Err(e) => {
                    // Typed, displayable, and only for actually-altered bytes.
                    prop_assert_ne!(&bytes, &clean, "clean snapshot rejected: {}", e);
                    prop_assert!(!e.to_string().is_empty());
                }
            }
        }
    }

    /// Quorum pipeline under a random fault per site: the coordinator
    /// never panics, excludes faulty sites with a reason, and either
    /// meets quorum (merged estimates equal the healthy subset's exact
    /// merge) or fails with `CoreError::QuorumNotMet`.
    #[test]
    fn quorum_pipeline_survives_fault_matrix(
        seed: u64,
        fault_seed: u64,
        num_sites in 2usize..6,
    ) {
        let params = SketchParams::new(3, 32);
        let quorum = 1 + num_sites / 2;
        let mut inj = FaultInjector::new(fault_seed);

        let site_streams: Vec<Stream> = (0..num_sites)
            .map(|s| Stream::from_ids((0..200u64).map(|i| (i * (s as u64 + 1)) % 50)))
            .collect();

        let mut coord = QuorumCoordinator::new(
            num_sites, quorum, params, seed, RetryPolicy::default(),
        ).unwrap();
        let mut healthy: Vec<usize> = Vec::new();
        for (site, stream) in site_streams.iter().enumerate() {
            let mut sk = CountSketch::new(params, seed);
            sk.absorb(stream, 1);
            let mut bytes = sk.to_snapshot_bytes();
            let fault = inj.any_fault(3);
            match fault {
                Fault::Drop => {
                    // Site never answers: exhaust the retry policy.
                    for _ in 0..RetryPolicy::default().max_attempts {
                        coord.deliver_failed(site).unwrap();
                        coord.advance_tick();
                    }
                }
                Fault::Straggle { ticks } => {
                    // Late but intact: fails a few times, then delivers.
                    coord.deliver_failed(site).unwrap();
                    for _ in 0..ticks {
                        coord.advance_tick();
                    }
                    coord.deliver_snapshot(site, &bytes, vec![], stream.len() as u64).unwrap();
                    healthy.push(site);
                }
                byte_fault => {
                    inj.corrupt(byte_fault, &mut bytes);
                    coord.deliver_snapshot(site, &bytes, vec![], stream.len() as u64).unwrap();
                    if bytes == sk.to_snapshot_bytes() {
                        healthy.push(site); // Duplicate/Reorder leave bytes intact.
                    }
                }
            }
        }

        match coord.finalize() {
            Ok(outcome) => {
                prop_assert!(outcome.report.included.len() >= quorum);
                prop_assert_eq!(
                    outcome.report.included.len() + outcome.report.excluded.len(),
                    num_sites
                );
                // Included ⊆ healthy, and estimates match an exact merge
                // of exactly the included sites.
                for site in &outcome.report.included {
                    prop_assert!(healthy.contains(site), "corrupt site {} merged", site);
                }
                let mut expected = CountSketch::new(params, seed);
                for &site in &outcome.report.included {
                    expected.absorb(&site_streams[site], 1);
                }
                for id in 0..50u64 {
                    prop_assert_eq!(
                        outcome.sketch.estimate(ItemKey(id)),
                        expected.estimate(ItemKey(id))
                    );
                }
                if outcome.report.is_complete() {
                    prop_assert_eq!(outcome.report.error_bound_widening(), 1.0);
                } else {
                    prop_assert!(outcome.report.error_bound_widening() > 1.0);
                }
            }
            Err(CoreError::QuorumNotMet { validated, required }) => {
                prop_assert!(validated < required);
                prop_assert_eq!(required, quorum);
                prop_assert!(healthy.len() < quorum, "quorum refused despite {} healthy sites", healthy.len());
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
        }
    }
}

/// Torn write on disk: the previous good snapshot plus a truncated new
/// one. Recovery reads the good file after the new one fails — the
/// last-good-snapshot pattern every crash-safe store uses.
#[test]
fn torn_file_falls_back_to_last_good_snapshot() {
    let dir = std::env::temp_dir().join(format!("fi-fault-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good_path = dir.join("epoch-1.csnp");
    let torn_path = dir.join("epoch-2.csnp");

    let mut epoch1 = CountSketch::new(SketchParams::new(3, 16), 9);
    epoch1.add(ItemKey(1));
    write_snapshot_file(&good_path, &epoch1.to_snapshot_bytes()).unwrap();

    let mut epoch2 = epoch1.clone();
    epoch2.add(ItemKey(2));
    let full = epoch2.to_snapshot_bytes();
    // Crash mid-write: only half the bytes hit the disk.
    std::fs::write(&torn_path, &full[..full.len() / 2]).unwrap();

    let torn_bytes = read_snapshot_file(&torn_path).unwrap();
    let err = CountSketch::from_snapshot_bytes(&torn_bytes).unwrap_err();
    assert!(!err.to_string().is_empty(), "typed error expected");

    let recovered =
        CountSketch::from_snapshot_bytes(&read_snapshot_file(&good_path).unwrap()).unwrap();
    assert_eq!(recovered.counters(), epoch1.counters());

    std::fs::remove_dir_all(&dir).ok();
}

/// `write_snapshot_file` is atomic (tmp + rename): after it returns, the
/// file always decodes, and a concurrent reader never sees a partial
/// file at the final path.
#[test]
fn snapshot_file_write_is_atomic_and_rereadable() {
    let dir = std::env::temp_dir().join(format!("fi-atomic-write-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.csnp");

    let mut s = CountSketch::new(SketchParams::new(3, 16), 4);
    for round in 0..10u64 {
        s.add(ItemKey(round % 3));
        write_snapshot_file(&path, &s.to_snapshot_bytes()).unwrap();
        let back = CountSketch::from_snapshot_bytes(&read_snapshot_file(&path).unwrap()).unwrap();
        assert_eq!(back.counters(), s.counters(), "round {round}");
        // No stray tmp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp file leaked");
    }

    std::fs::remove_dir_all(&dir).ok();
}
