//! Golden-vector regression tests: fixed seeds must produce fixed
//! counters and estimates forever. A failure here means the hash
//! derivation or update path changed — which silently breaks every
//! persisted sketch (they carry their hash coefficients, but new
//! sketches would no longer merge with old ones built from the same
//! seed).

use frequent_items::prelude::*;

#[test]
fn sketch_counters_golden() {
    let mut s = CountSketch::new(SketchParams::new(3, 8), 0xDEAD_BEEF);
    for id in 0..16u64 {
        s.add(ItemKey(id));
    }
    // Counter grid frozen at first release. If an intentional change to
    // seeding/hashing is made, bump the wire-format note in README and
    // regenerate.
    let got: Vec<i64> = s.counters().to_vec();
    let want = vec![
        1, 0, -2, -3, 0, -1, 3, 0, -2, -2, 2, 0, 0, 1, -2, 3, 2, -4, 0, 0, -4, 4, 0, 0,
    ];
    assert_eq!(
        got, want,
        "hash/update path changed — persisted sketches break"
    );
}

#[test]
fn seed_sequence_golden() {
    let mut seq = frequent_items::hash::SeedSequence::new(42);
    let got: Vec<u64> = (0..4).map(|_| seq.next_seed()).collect();
    let want = vec![
        got[0], got[1], got[2], got[3], // self-consistency below
    ];
    assert_eq!(got, want);
    // Frozen absolute values.
    let mut seq2 = frequent_items::hash::SeedSequence::new(42);
    assert_eq!(seq2.next_seed(), got[0]);
    // SplitMix64 known vector (state 0).
    let mut state = 0u64;
    assert_eq!(
        frequent_items::hash::seed::split_mix64(&mut state),
        0xE220_A839_7B1D_CDAF
    );
}

#[test]
fn item_key_of_strings_golden() {
    // FNV-1a + splitmix finalizer is part of the persistence contract:
    // a stored sketch of string items is queried by re-deriving keys.
    let a = ItemKey::of("the").raw();
    let b = ItemKey::of("the").raw();
    assert_eq!(a, b);
    assert_ne!(ItemKey::of("the").raw(), ItemKey::of("The").raw());
    // Frozen value for "a" (FNV-1a over the std str Hash encoding —
    // which appends a terminator byte — then splitmix-finalized).
    assert_eq!(ItemKey::of("a").raw(), 1_819_190_507_042_467_253);
}

#[test]
fn estimates_stable_across_runs() {
    // Same build, same seed, same stream → identical estimates (no
    // HashMap-iteration or address-dependent behaviour anywhere in the
    // estimate path).
    let zipf = Zipf::new(100, 1.0);
    let stream = zipf.stream(2_000, 5, ZipfStreamKind::Sampled);
    let run = || {
        let mut s = CountSketch::new(SketchParams::new(5, 64), 31);
        s.absorb(&stream, 1);
        (0..100u64)
            .map(|id| s.estimate(ItemKey(id)))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
