//! Property tests of the parallel ingestion pipeline: pool, atomic and
//! sequential ingestion must agree on counters, saturation flags and
//! top-k output — including under adversarial weights at the `i64`
//! limits and across mid-stream snapshot/restore.
//!
//! The determinism contract under saturation is layered (see
//! `cs_core::parallel`): bounded-mass streams are fully bit-identical at
//! every worker count; for adversarial streams every *unflagged* cell
//! must hold the exact signed sum (checked against an `i128` oracle).

use frequent_items::prelude::*;
use frequent_items::sketch::parallel::{parallel_approx_top, sketch_stream_pooled};
use proptest::prelude::*;

/// Counters and saturation flags both agree.
fn assert_identical(a: &CountSketch, b: &CountSketch, ctx: &str) {
    assert_eq!(a.counters(), b.counters(), "{ctx}: counters diverge");
    for row in 0..a.rows() {
        for bucket in 0..a.buckets() {
            assert_eq!(
                a.is_cell_saturated(row, bucket),
                b.is_cell_saturated(row, bucket),
                "{ctx}: flag diverges at ({row}, {bucket})"
            );
        }
    }
}

/// Exact `i128` per-cell sums for a list of signed updates, laid out
/// like the sketch's row-major counters.
fn i128_oracle(template: &CountSketch, updates: &[(ItemKey, i64)]) -> Vec<i128> {
    let mut cells = vec![0i128; template.rows() * template.buckets()];
    for &(key, w) in updates {
        for (row, (bucket, sign)) in template.row_cells(key).enumerate() {
            cells[row * template.buckets() + bucket] += i128::from(sign) * i128::from(w);
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Healthy regime: pool ingestion is bit-identical to sequential —
    /// counters AND flags — at every worker count, for weighted streams.
    #[test]
    fn prop_pool_matches_sequential_weighted(
        seed: u64,
        weight in -1000i64..1000,
        ids in prop::collection::vec(0u64..200, 0..600),
    ) {
        let params = SketchParams::new(3, 64);
        let stream = Stream::from_ids(ids.iter().copied());
        let mut sequential = CountSketch::new(params, seed);
        sequential.absorb(&stream, weight);
        for workers in [1usize, 2, 4, 8] {
            let mut pool = SketchPool::new(params, seed, workers);
            pool.ingest_weighted(stream.as_slice(), weight);
            assert_identical(&pool.finish(), &sequential, &format!("workers = {workers}"));
        }
    }

    /// Healthy regime, turnstile: signed per-item deltas agree too.
    #[test]
    fn prop_pool_matches_sequential_turnstile(
        seed: u64,
        events in prop::collection::vec((0u64..100, -500i64..500), 0..400),
    ) {
        use frequent_items::stream::turnstile::{TurnstileStream, Update};
        let updates: Vec<Update> = events
            .iter()
            .map(|&(id, delta)| Update { key: ItemKey(id), delta })
            .collect();
        let turnstile = TurnstileStream::from_updates(updates.clone());
        let params = SketchParams::new(3, 32);
        let mut sequential = CountSketch::new(params, seed);
        sequential.absorb_turnstile(&turnstile);
        for workers in [1usize, 2, 4, 8] {
            let mut pool = SketchPool::new(params, seed, workers);
            pool.ingest_updates(&updates);
            assert_identical(&pool.finish(), &sequential, &format!("workers = {workers}"));
        }
    }

    /// Adversarial weights (up to ±i64::MAX): every path — pool at
    /// several worker counts, the atomic shared handle, and sequential —
    /// must keep all unflagged cells exactly equal to the i128 oracle
    /// (no silent wraparound, ever), and each path must be reproducible.
    #[test]
    fn prop_unflagged_cells_are_exact_under_adversarial_weights(
        seed: u64,
        events in prop::collection::vec((0u64..8, 0u8..5, any::<i64>()), 0..40),
    ) {
        let params = SketchParams::new(3, 16);
        // Selector-driven weights: the extreme points of the i64 range
        // mixed with arbitrary and small weights.
        let updates: Vec<(ItemKey, i64)> = events
            .iter()
            .map(|&(id, sel, raw)| {
                let w = match sel {
                    0 => i64::MAX,
                    1 => i64::MIN + 1,
                    2 => -i64::MAX,
                    3 => raw,
                    _ => raw % 1000,
                };
                (ItemKey(id), w)
            })
            .collect();
        let template = CountSketch::new(params, seed);
        let oracle = i128_oracle(&template, &updates);

        let check = |sketch: &CountSketch, ctx: &str| {
            for row in 0..sketch.rows() {
                for bucket in 0..sketch.buckets() {
                    if !sketch.is_cell_saturated(row, bucket) {
                        let idx = row * sketch.buckets() + bucket;
                        assert_eq!(
                            i128::from(sketch.counters()[idx]),
                            oracle[idx],
                            "{ctx}: unflagged cell ({row}, {bucket}) is not the exact sum"
                        );
                    }
                }
            }
        };

        let mut sequential = CountSketch::new(params, seed);
        for &(key, w) in &updates {
            sequential.update(key, w);
        }
        check(&sequential, "sequential");

        for workers in [2usize, 4] {
            let mut pool = SketchPool::new(params, seed, workers);
            for &(key, w) in &updates {
                pool.ingest_weighted(&[key], w);
            }
            let merged = pool.finish();
            check(&merged, &format!("pool workers = {workers}"));
            // Reproducible: same inputs, same worker count, same bits.
            let mut again = SketchPool::new(params, seed, workers);
            for &(key, w) in &updates {
                again.ingest_weighted(&[key], w);
            }
            assert_identical(&again.finish(), &merged, "pool rerun");
        }

        let atomic = AtomicCountSketch::new(params, seed);
        for &(key, w) in &updates {
            atomic.update(key, w);
        }
        check(&atomic.snapshot(), "atomic");
    }

    /// Mid-stream snapshot/restore commutes with pooled ingestion: pool
    /// the prefix, snapshot-roundtrip the merged sketch, pool the suffix
    /// into a fresh pool and merge — bit-identical to pooling the whole
    /// stream, at any worker count and any cut point.
    #[test]
    fn prop_pool_snapshot_restore_midstream(
        seed: u64,
        workers in 1usize..5,
        cut_frac in 0.0f64..1.0,
        ids in prop::collection::vec(0u64..100, 0..500),
    ) {
        let params = SketchParams::new(3, 32);
        let stream = Stream::from_ids(ids.iter().copied());
        let cut = (stream.len() as f64 * cut_frac) as usize;

        let mut first = SketchPool::new(params, seed, workers);
        first.ingest(&stream.as_slice()[..cut]);
        let bytes = first.finish().to_snapshot_bytes();
        let mut restored = CountSketch::from_snapshot_bytes(&bytes).unwrap();

        let mut second = SketchPool::new(params, seed, workers);
        second.ingest(&stream.as_slice()[cut..]);
        restored.merge(&second.finish()).unwrap();

        let whole = sketch_stream_pooled(&stream, params, seed, workers);
        assert_identical(&restored, &whole, "snapshot/restore mid-stream");
    }

    /// The parallel ApproxTop is a pure function of the worker count —
    /// and on streams with a clear frequency separation, identical
    /// across worker counts (candidate unions all contain the heavies).
    #[test]
    fn prop_parallel_approx_top_reproducible(
        seed: u64,
        workers in 1usize..5,
        ids in prop::collection::vec(0u64..50, 1..400),
    ) {
        let params = SketchParams::new(5, 128);
        let stream = Stream::from_ids(ids.iter().copied());
        let a = parallel_approx_top(&stream, 5, params, seed, workers);
        let b = parallel_approx_top(&stream, 5, params, seed, workers);
        prop_assert_eq!(a.items, b.items);
    }
}

#[test]
fn parallel_approx_top_agrees_across_workers_on_separated_stream() {
    // Planted geometric frequencies: every shard tracks its heavies, so
    // the re-estimated top-k is identical at every worker count and the
    // 1-worker run is the sequential reference.
    let mut ids = Vec::new();
    for item in 0u64..40 {
        let count = 2000usize >> (item / 4).min(8);
        ids.extend(std::iter::repeat_n(item, count.max(3)));
    }
    let stream = Stream::from_ids(ids);
    let params = SketchParams::new(7, 512);
    let reference = parallel_approx_top(&stream, 8, params, 42, 1);
    assert_eq!(reference.items.len(), 8);
    for workers in [2usize, 3, 4, 8] {
        let got = parallel_approx_top(&stream, 8, params, 42, workers);
        assert_eq!(got.items, reference.items, "workers = {workers}");
    }
}

#[test]
fn pool_single_key_saturation_matches_sequential_at_any_worker_count() {
    // Key-hash sharding keeps all of a key's mass on one worker, so even
    // a saturating key reproduces sequential clamp-and-flag states.
    let params = SketchParams::new(3, 32);
    let key = ItemKey(123);
    let mut sequential = CountSketch::new(params, 7);
    for _ in 0..4 {
        sequential.update(key, i64::MAX);
    }
    assert!(sequential.health().saturated_cells > 0);
    for workers in [1usize, 2, 4, 8] {
        let mut pool = SketchPool::new(params, 7, workers);
        for _ in 0..4 {
            pool.ingest_weighted(&[key], i64::MAX);
        }
        assert_identical(
            &pool.finish(),
            &sequential,
            &format!("saturating key, workers = {workers}"),
        );
    }
}

#[test]
fn atomic_concurrent_ingestion_matches_sequential() {
    let params = SketchParams::new(5, 128);
    let zipf = Zipf::new(200, 1.1);
    let stream = zipf.stream(30_000, 3, ZipfStreamKind::Sampled);
    let atomic = AtomicCountSketch::new(params, 17);
    let chunks = stream.chunks(4);
    std::thread::scope(|scope| {
        for chunk in &chunks {
            let handle = atomic.clone();
            scope.spawn(move || {
                for key in chunk.iter() {
                    handle.add(key);
                }
            });
        }
    });
    let mut sequential = CountSketch::new(params, 17);
    sequential.absorb(&stream, 1);
    assert_identical(&atomic.snapshot(), &sequential, "atomic 4-thread ingest");
}
