//! Turnstile-model integration: the linear sketch under insert/delete
//! workloads, and §4.2 expressed as a single turnstile stream.

use frequent_items::prelude::*;
use frequent_items::sketch::hierarchical::HierarchicalCountSketch;
use frequent_items::stream::turnstile::{strict_turnstile_from, TurnstileStream};

#[test]
fn sketch_tracks_exact_signed_counts_on_strict_workload() {
    let zipf = Zipf::new(500, 1.0);
    let base = zipf.stream(30_000, 3, ZipfStreamKind::DeterministicRounded);
    let t = strict_turnstile_from(&base, 0.6, 7);
    let mut sketch = CountSketch::new(SketchParams::new(7, 2048), 5);
    sketch.absorb_turnstile(&t);
    let exact = t.exact_counts();
    // Top items' final counts (after deletions) must be estimated well.
    for rank in 0..10u64 {
        let truth = exact.get(&ItemKey(rank)).copied().unwrap_or(0);
        let est = sketch.estimate(ItemKey(rank));
        assert!(
            (est - truth).abs() <= truth / 5 + 30,
            "rank {rank}: est {est} vs truth {truth}"
        );
    }
}

#[test]
fn difference_stream_equals_two_phase_absorption() {
    let zipf = Zipf::new(200, 1.0);
    let s1 = zipf.stream(5_000, 1, ZipfStreamKind::Sampled);
    let s2 = zipf.stream(5_000, 2, ZipfStreamKind::Sampled);
    let params = SketchParams::new(5, 256);

    let mut via_turnstile = CountSketch::new(params, 9);
    via_turnstile.absorb_turnstile(&TurnstileStream::difference(&s1, &s2));

    let mut via_phases = CountSketch::new(params, 9);
    via_phases.absorb(&s1, -1);
    via_phases.absorb(&s2, 1);

    assert_eq!(via_turnstile.counters(), via_phases.counters());
}

#[test]
fn turnstile_top_k_recovered_by_hierarchy() {
    // Build a strict turnstile stream whose post-deletion heavy hitters
    // differ from the insert-time ones, and recover them from the
    // hierarchy alone.
    let mut t = TurnstileStream::new();
    // Item 1: inserted a lot, then mostly deleted.
    for _ in 0..5_000 {
        t.push(ItemKey(1), 1);
    }
    for _ in 0..4_900 {
        t.push(ItemKey(1), -1);
    }
    // Item 2: modest but undeleted.
    for _ in 0..2_000 {
        t.push(ItemKey(2), 1);
    }
    // Background.
    for i in 100..600u64 {
        t.push(ItemKey(i), 1);
    }
    assert!(t.is_strict());

    let mut h = HierarchicalCountSketch::new(12, SketchParams::new(7, 512), 3);
    for u in t.iter() {
        h.update(u.key, u.delta);
    }
    let heavy = h.heavy_items(1_000, 3);
    // By surviving mass, item 2 (2000) dominates item 1 (100).
    assert_eq!(heavy[0].key, ItemKey(2));
    assert!(
        heavy.iter().all(|x| x.key != ItemKey(1)),
        "mostly-deleted item must not appear by final count: {heavy:?}"
    );

    let oracle = t.top_k_by_magnitude(1);
    assert_eq!(oracle[0].0, ItemKey(2));
}

#[test]
fn weighted_updates_match_repeated_units() {
    let params = SketchParams::new(5, 128);
    let mut units = CountSketch::new(params, 4);
    let mut t_units = TurnstileStream::new();
    for _ in 0..37 {
        t_units.push(ItemKey(5), 1);
    }
    units.absorb_turnstile(&t_units);

    let mut weighted = CountSketch::new(params, 4);
    let mut t_weighted = TurnstileStream::new();
    t_weighted.push(ItemKey(5), 37);
    weighted.absorb_turnstile(&t_weighted);

    assert_eq!(units.counters(), weighted.counters());
}
