//! Cross-algorithm invariants: every algorithm in the suite run on the
//! same stream, each checked against its own guarantee, all against the
//! same exact oracle.

use frequent_items::baselines::*;
use frequent_items::prelude::*;

fn workload() -> (Stream, ExactCounter) {
    let zipf = Zipf::new(3_000, 1.0);
    let stream = zipf.stream(80_000, 123, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    (stream, exact)
}

#[test]
fn undercounting_algorithms_never_overcount() {
    let (stream, exact) = workload();
    let mut algs: Vec<Box<dyn StreamSummary>> = vec![
        Box::new(KpsFrequent::with_capacity(200)),
        Box::new(LossyCounting::new(0.002)),
        Box::new(StickySampling::new(0.02, 0.002, 0.1, 1)),
    ];
    for alg in &mut algs {
        alg.process_stream(&stream);
        for (key, est) in alg.candidates() {
            assert!(
                est <= exact.count(key),
                "{} overcounted {key:?}: {est} > {}",
                alg.name(),
                exact.count(key)
            );
        }
    }
}

#[test]
fn overcounting_algorithms_never_undercount() {
    let (stream, exact) = workload();
    let mut ss = SpaceSaving::new(200);
    ss.process_stream(&stream);
    for (key, est) in ss.candidates() {
        assert!(est >= exact.count(key), "space-saving undercounted");
    }
    let mut cm = CountMinSketch::new(5, 512, 20, 2);
    cm.process_stream(&stream);
    for id in 0..3_000u64 {
        assert!(
            cm.point_query(ItemKey(id)) >= exact.count(ItemKey(id)),
            "count-min undercounted item {id}"
        );
    }
}

#[test]
fn count_sketch_is_empirically_unbiased() {
    // Mean signed error across seeds on a mid-rank item ≈ 0, unlike
    // Count-Min whose error is strictly positive.
    let (stream, exact) = workload();
    let probe = ItemKey(50);
    let truth = exact.count(probe) as f64;
    let trials = 30;
    let mut cs_err_sum = 0.0;
    let mut cm_err_sum = 0.0;
    for seed in 0..trials {
        let mut cs = CountSketch::new(SketchParams::new(5, 256), seed);
        cs.absorb(&stream, 1);
        cs_err_sum += cs.estimate(probe) as f64 - truth;
        let mut cm = CountMinSketch::new(5, 256, 5, seed);
        cm.process_stream(&stream);
        cm_err_sum += cm.point_query(probe) as f64 - truth;
    }
    let cs_bias = cs_err_sum / trials as f64;
    let cm_bias = cm_err_sum / trials as f64;
    assert!(cm_bias > 0.0, "count-min must be positively biased");
    assert!(
        cs_bias.abs() < cm_bias,
        "count-sketch |bias| {cs_bias} should be below count-min bias {cm_bias}"
    );
}

#[test]
fn every_algorithm_finds_the_dominant_item() {
    let (stream, _) = workload();
    let top = ItemKey(0);
    let mut algs: Vec<Box<dyn StreamSummary>> = vec![
        Box::new(SamplingAlgorithm::new(0.01, 1)),
        Box::new(ConciseSamples::new(300, 0.9, 2)),
        Box::new(CountingSamples::new(300, 0.9, 3)),
        Box::new(KpsFrequent::with_capacity(300)),
        Box::new(LossyCounting::new(0.002)),
        Box::new(StickySampling::new(0.02, 0.002, 0.1, 4)),
        Box::new(CountMinSketch::new(5, 512, 10, 5)),
        Box::new(SpaceSaving::new(300)),
    ];
    for alg in &mut algs {
        alg.process_stream(&stream);
        assert!(
            alg.top_k_keys(5).contains(&top),
            "{} missed the dominant item",
            alg.name()
        );
    }
}

#[test]
fn space_bytes_reported_by_all() {
    let (stream, _) = workload();
    let mut algs: Vec<Box<dyn StreamSummary>> = vec![
        Box::new(SamplingAlgorithm::new(0.01, 1)),
        Box::new(KpsFrequent::with_capacity(100)),
        Box::new(LossyCounting::new(0.01)),
        Box::new(SpaceSaving::new(100)),
        Box::new(CountMinSketch::new(3, 128, 10, 0)),
    ];
    for alg in &mut algs {
        alg.process_stream(&stream);
        assert!(alg.space_bytes() > 0, "{} reports zero space", alg.name());
    }
}

#[test]
fn trait_objects_compose_with_metrics() {
    use frequent_items::metrics::recall_at_k;
    let (stream, exact) = workload();
    let mut alg: Box<dyn StreamSummary> = Box::new(SpaceSaving::new(400));
    alg.process_stream(&stream);
    let recall = recall_at_k(&alg.top_k_keys(10), &exact, 10);
    assert!(recall >= 0.9, "space-saving recall {recall}");
}
