//! End-to-end equivalence of the read-path query kernel with scalar
//! `estimate`, across the public API surface: the batched ESTIMATE
//! kernel for every combiner and depth (network and generic), extreme
//! weights up to `±i64::MAX` (saturated counters included), block
//! boundary lengths, and the `QueryEngine`'s hot-key cache — which must
//! be invisible in results and invalidated by every write.

use frequent_items::prelude::*;
use proptest::prelude::*;

/// Read-path block length mirrored from the kernel (`READ_BLOCK`); the
/// boundary cases below bracket it and the write path's 32-key block.
const BLOCK: usize = 64;

fn zipf_stream(n: usize, seed: u64) -> Stream {
    Zipf::new(500, 1.0).stream(n, seed, ZipfStreamKind::Sampled)
}

#[test]
fn batch_matches_scalar_for_all_combiners_and_depths() {
    let stream = zipf_stream(20_000, 11);
    // Depths cover every sorting network (3/5/7/9), a non-network odd
    // depth (11), even depths (4, 8), and the tall fallback (17).
    for rows in [3usize, 4, 5, 7, 8, 9, 11, 17] {
        for combiner in [Combiner::Median, Combiner::Mean, Combiner::TrimmedMean] {
            let mut s =
                CountSketch::new(SketchParams::new(rows, 128), 7).with_combiner(combiner);
            s.absorb(&stream, 1);
            let keys: Vec<ItemKey> = (0..700u64).map(ItemKey).collect();
            let batch = s.estimate_batch(&keys);
            for (j, &key) in keys.iter().enumerate() {
                assert_eq!(
                    batch[j],
                    s.estimate(key),
                    "rows {rows} {combiner:?} key {key:?}"
                );
            }
        }
    }
}

#[test]
fn batch_matches_scalar_on_saturated_counters() {
    // Drive every counter a hot key touches to the clamp rails from both
    // sides: estimates then involve `±1 · i64::MIN/MAX` row products,
    // where the kernel's mask arithmetic must saturate exactly like the
    // scalar path's `saturating_mul`.
    let mut s = CountSketch::new(SketchParams::new(5, 32), 3);
    for key in 0..16u64 {
        s.update(ItemKey(key), i64::MAX);
        s.update(ItemKey(key), i64::MAX);
        s.update(ItemKey(key + 16), i64::MIN);
        s.update(ItemKey(key + 16), i64::MIN);
    }
    let keys: Vec<ItemKey> = (0..64u64).map(ItemKey).collect();
    let batch = s.estimate_batch(&keys);
    for (j, &key) in keys.iter().enumerate() {
        assert_eq!(batch[j], s.estimate(key), "saturated key {key:?}");
    }
}

#[test]
fn query_engine_estimates_match_and_cache_is_invisible() {
    let stream = zipf_stream(30_000, 19);
    let mut sketch = CountSketch::new(SketchParams::new(5, 256), 23);
    sketch.absorb(&stream, 1);
    let mut engine = QueryEngine::new(sketch.clone()).with_hot_key_cache(64);
    // Repeat probes so the second round is served from the cache; both
    // rounds must equal the plain sketch estimate.
    for _ in 0..2 {
        for id in 0..500u64 {
            assert_eq!(engine.estimate(ItemKey(id)), sketch.estimate(ItemKey(id)));
        }
    }
    let (hits, _) = engine.cache_stats();
    assert!(hits > 0, "second probe round never hit the cache");
}

#[test]
fn query_engine_cache_invalidates_on_every_write() {
    let mut engine = QueryEngine::new(CountSketch::new(SketchParams::new(5, 128), 29))
        .with_hot_key_cache(32);
    let key = ItemKey(42);
    assert_eq!(engine.estimate(key), 0);
    // Each write bumps the epoch; a cached pre-write value must never be
    // served afterwards.
    engine.update(key, 100);
    assert_eq!(engine.estimate(key), engine.sketch().estimate(key));
    engine.add(key);
    assert_eq!(engine.estimate(key), engine.sketch().estimate(key));
    engine.update_batch_weighted(&[key, ItemKey(7)], -25);
    assert_eq!(engine.estimate(key), engine.sketch().estimate(key));
    engine.absorb(&zipf_stream(1_000, 31), 2);
    assert_eq!(engine.estimate(key), engine.sketch().estimate(key));
}

proptest! {
    /// The batch kernel is bit-identical to scalar `estimate` for every
    /// combiner under arbitrary signed weights — including the
    /// `±i64::MAX` extremes that saturate counters — at probe-set
    /// lengths bracketing the kernel's block boundaries.
    #[test]
    fn prop_batch_equals_scalar(
        seed: u64,
        widx in 0usize..7,
        raw in prop::collection::vec(0u64..64, 1..120),
        lidx in 0usize..7,
        cidx in 0usize..3,
    ) {
        let weight = [1i64, -1, 1000, -1000, i64::MAX, i64::MIN + 1, i64::MAX / 2][widx];
        let len = [0usize, 1, BLOCK / 2, BLOCK - 1, BLOCK, BLOCK + 1, 2 * BLOCK + 7][lidx];
        let combiner = [Combiner::Median, Combiner::Mean, Combiner::TrimmedMean][cidx];
        let mut s = CountSketch::new(SketchParams::new(5, 32), seed).with_combiner(combiner);
        for &k in &raw {
            s.update(ItemKey(k), weight);
        }
        let keys: Vec<ItemKey> = (0..len as u64).map(ItemKey).collect();
        let batch = s.estimate_batch(&keys);
        prop_assert_eq!(batch.len(), keys.len());
        for (j, &key) in keys.iter().enumerate() {
            prop_assert_eq!(batch[j], s.estimate(key), "{:?} len {} key {:?}", combiner, len, key);
        }
    }

    /// A `QueryEngine` with a hot-key cache agrees with the bare sketch
    /// under interleaved writes and repeated probes: stale cache entries
    /// must never leak through an epoch bump.
    #[test]
    fn prop_cached_engine_equals_sketch_under_writes(
        seed: u64,
        ops in prop::collection::vec((0u64..32, -50i64..50), 1..60),
    ) {
        let mut sketch = CountSketch::new(SketchParams::new(3, 32), seed);
        let mut engine = QueryEngine::new(sketch.clone()).with_hot_key_cache(8);
        for &(key, w) in &ops {
            if w == 0 {
                // Probe-only step: warms the cache.
                prop_assert_eq!(engine.estimate(ItemKey(key)), sketch.estimate(ItemKey(key)));
            } else {
                sketch.update(ItemKey(key), w);
                engine.update(ItemKey(key), w);
            }
            prop_assert_eq!(engine.estimate(ItemKey(key)), sketch.estimate(ItemKey(key)));
        }
    }
}
