//! Large-scale stress tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`). These exercise the same code
//! paths as the regular suite at the paper's experiment scale
//! (n = 10⁷), catching issues the small tests cannot: counter growth,
//! allocation behaviour, numeric headroom.

use frequent_items::metrics::recall_at_k;
use frequent_items::prelude::*;
use frequent_items::stream::moments;

#[test]
#[ignore = "large: ~10s in release"]
fn ten_million_occurrences_top_k() {
    let zipf = Zipf::new(1_000_000, 1.0);
    let stream = zipf.stream(10_000_000, 1, ZipfStreamKind::Sampled);
    let exact = ExactCounter::from_stream(&stream);
    let k = 50;
    let result = approx_top(&stream, k, SketchParams::new(7, 1 << 14), 2);
    let recall = recall_at_k(&result.keys(), &exact, k);
    assert!(recall >= 0.9, "recall at 10M scale: {recall}");
}

#[test]
#[ignore = "large: ~10s in release"]
fn lemma4_bound_at_scale() {
    let zipf = Zipf::new(500_000, 1.0);
    let stream = zipf.stream(10_000_000, 3, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let (k, b) = (50, 1 << 13);
    let gamma = moments::gamma(&exact, k, b);
    let mut sketch = CountSketch::new(SketchParams::new(11, b), 5);
    sketch.absorb(&stream, 1);
    for rank in 0..k as u64 {
        let truth = exact.count(ItemKey(rank)) as i64;
        let est = sketch.estimate(ItemKey(rank));
        assert!(
            ((est - truth).abs() as f64) <= 8.0 * gamma,
            "rank {rank}: |{est} - {truth}| > 8γ"
        );
    }
}

#[test]
#[ignore = "large: ~20s in release"]
fn max_change_at_scale() {
    use frequent_items::stream::{ChangeSpec, StreamPair};
    let pair = StreamPair::zipf_background(
        200_000,
        1.0,
        4_000_000,
        (0..20)
            .map(|i| ChangeSpec {
                item: 10_000_000 + i,
                count_s1: if i % 2 == 0 { 0 } else { 40_000 },
                count_s2: if i % 2 == 0 { 40_000 } else { 0 },
            })
            .collect(),
        9,
    );
    let result = max_change(&pair.s1, &pair.s2, 20, 80, SketchParams::new(7, 1 << 13), 4);
    let planted_found = result
        .items
        .iter()
        .filter(|c| c.key.raw() >= 10_000_000)
        .count();
    assert_eq!(planted_found, 20, "all planted changers recovered at scale");
}

#[test]
#[ignore = "large: counter headroom at extreme weights"]
fn counter_headroom_with_large_weights() {
    // 10^6 updates of weight 10^6: counters reach ±10^12, far inside
    // i64; estimates stay exact for a lone item.
    let mut s = CountSketch::new(SketchParams::new(5, 64), 1);
    for _ in 0..1_000_000 {
        s.update(ItemKey(1), 1_000_000);
    }
    assert_eq!(s.estimate(ItemKey(1)), 1_000_000_000_000);
}
