//! Robustness and failure-injection tests: malformed wire data, corrupted
//! serialized sketches, and mismatched merges must fail cleanly — never
//! panic, never silently corrupt.

use frequent_items::prelude::*;
use frequent_items::stream::io;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the stream decoder.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = io::decode(&bytes);
    }

    /// Truncating a valid encoding at any point yields an error (or, for
    /// cuts at the exact end, the full stream) — never garbage.
    #[test]
    fn decode_truncations_fail_cleanly(
        ids in prop::collection::vec(any::<u64>(), 0..50),
        cut in 0usize..500,
    ) {
        let stream = Stream::from_ids(ids.iter().copied());
        let bytes = io::encode(&stream);
        let cut = cut.min(bytes.len());
        if let Ok(decoded) = io::decode(&bytes[..cut]) { prop_assert_eq!(decoded, stream, "only a full read may succeed") }
    }

    /// Bit-flipping an encoded stream is *detected*: since the v2 wire
    /// format carries a trailing CRC-32, any single flipped bit must
    /// yield a typed error, never a silently different stream.
    #[test]
    fn decode_bitflips_are_detected(
        ids in prop::collection::vec(any::<u64>(), 1..50),
        byte_idx: usize,
        bit in 0u8..8,
    ) {
        let stream = Stream::from_ids(ids.iter().copied());
        let mut bytes = io::encode(&stream).to_vec();
        let i = byte_idx % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(io::decode(&bytes).is_err(), "flip at byte {i} bit {bit} went undetected");
    }

    /// Truncating a sketch snapshot at any point errors cleanly.
    #[test]
    fn sketch_snapshot_corruption_fails_cleanly(
        seed: u64,
        cut in 1usize..800,
    ) {
        let mut s = CountSketch::new(SketchParams::new(3, 16), seed);
        s.add(ItemKey(1));
        let bytes = s.to_snapshot_bytes();
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(CountSketch::from_snapshot_bytes(&bytes[..cut]).is_err());
    }

    /// The fault injector's whole byte-level matrix against the stream
    /// decoder: every corrupted payload either still decodes to the
    /// original (delivery faults leave bytes intact) or errors — never
    /// panics, never yields a different stream.
    #[test]
    fn injected_stream_faults_never_yield_wrong_data(
        ids in prop::collection::vec(any::<u64>(), 0..60),
        seed: u64,
    ) {
        let stream = Stream::from_ids(ids.iter().copied());
        let clean = io::encode(&stream);
        let mut inj = FaultInjector::new(seed);
        for _ in 0..8 {
            let fault = inj.any_fault(4);
            let mut bytes = clean.clone();
            inj.corrupt(fault, &mut bytes);
            // Typed decode failure is the expected outcome; a success
            // must be the unaltered original.
            if let Ok(decoded) = io::decode(&bytes) {
                prop_assert_eq!(&decoded, &stream, "fault {:?} altered data silently", fault);
            }
        }
    }
}

#[test]
fn merge_after_snapshot_restore_respects_compatibility() {
    // A sketch restored from a snapshot must still merge with a fresh
    // same-seed sketch, and refuse a different-seed one.
    let params = SketchParams::new(3, 32);
    let mut original = CountSketch::new(params, 5);
    original.add(ItemKey(9));
    let restored = CountSketch::from_snapshot_bytes(&original.to_snapshot_bytes()).unwrap();

    let mut same = CountSketch::new(params, 5);
    same.add(ItemKey(9));
    assert!(same.merge(&restored).is_ok());

    let mut different = CountSketch::new(params, 6);
    assert!(different.merge(&restored).is_err());
}

#[test]
fn decode_rejects_huge_length_header_without_allocating() {
    // A length field of u64::MAX must error, not attempt a 2^67-byte
    // allocation.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&0x4353_5452u32.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]);
    let start = std::time::Instant::now();
    assert!(io::decode(&bytes).is_err());
    assert!(start.elapsed().as_secs() < 1, "must fail fast");
}

#[test]
fn zero_weight_updates_are_noops() {
    let mut s = CountSketch::new(SketchParams::new(3, 16), 1);
    s.update(ItemKey(5), 0);
    assert!(s.counters().iter().all(|&c| c == 0));
}

#[test]
fn extreme_weights_do_not_overflow_quickly() {
    // Single large weights work; counters are i64 and a weight of
    // ±2^40 is representable without wrap.
    let mut s = CountSketch::new(SketchParams::new(3, 16), 2);
    let w = 1i64 << 40;
    s.update(ItemKey(7), w);
    assert_eq!(s.estimate(ItemKey(7)), w);
    s.update(ItemKey(7), -w);
    assert_eq!(s.estimate(ItemKey(7)), 0);
}
