//! End-to-end §4.2 max-change pipeline, including the sketch-storage
//! scenario (serialize day-1 sketch, deserialize next day, subtract).

use frequent_items::prelude::*;
use frequent_items::stream::{ChangeSpec, StreamPair};

fn pair() -> StreamPair {
    StreamPair::zipf_background(
        2_000,
        1.0,
        50_000,
        vec![
            ChangeSpec {
                item: 900_000,
                count_s1: 0,
                count_s2: 6_000,
            },
            ChangeSpec {
                item: 900_001,
                count_s1: 5_000,
                count_s2: 0,
            },
            ChangeSpec {
                item: 900_002,
                count_s1: 500,
                count_s2: 4_000,
            },
        ],
        77,
    )
}

#[test]
fn two_pass_finds_planted_changes_in_order() {
    let p = pair();
    let result = max_change(&p.s1, &p.s2, 3, 12, SketchParams::new(7, 2048), 5);
    let got: Vec<u64> = result.items.iter().map(|c| c.key.raw()).collect();
    assert_eq!(got, vec![900_000, 900_001, 900_002]);
    assert_eq!(result.items[0].exact_change, 6_000);
    assert_eq!(result.items[1].exact_change, -5_000);
    assert_eq!(result.items[2].exact_change, 3_500);
}

#[test]
fn matches_exact_diff_oracle() {
    let p = pair();
    let e1 = ExactCounter::from_stream(&p.s1);
    let e2 = ExactCounter::from_stream(&p.s2);
    let oracle: Vec<ItemKey> = ExactCounter::top_k_change(&e1, &e2, 3)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let result = max_change(&p.s1, &p.s2, 3, 12, SketchParams::new(7, 2048), 9);
    let got: Vec<ItemKey> = result.items.iter().map(|c| c.key).collect();
    assert_eq!(got, oracle);
}

#[test]
fn serialized_sketches_subtract_across_sessions() {
    // Day 1: sketch the stream and snapshot it (as a monitoring system
    // would persist it).
    let p = pair();
    let params = SketchParams::new(7, 1024);
    let mut day1 = CountSketch::new(params, 42);
    day1.absorb(&p.s1, 1);
    let stored = day1.to_snapshot_bytes();

    // Day 2 (fresh session): restore and subtract from today's sketch.
    // Works because the hash functions rebuild deterministically from
    // the (rows, buckets, seed) stored in the snapshot header.
    let day1_restored = CountSketch::from_snapshot_bytes(&stored).expect("restore");
    let mut day2 = CountSketch::new(params, 42);
    day2.absorb(&p.s2, 1);
    let diff = DiffSketch::from_sketches(&day1_restored, &day2).unwrap();

    let result = diff.top_changes(&p.s1, &p.s2, 3, 12);
    let got: Vec<u64> = result.items.iter().map(|c| c.key.raw()).collect();
    assert_eq!(got, vec![900_000, 900_001, 900_002]);
}

#[test]
fn estimated_changes_track_exact_changes() {
    let p = pair();
    let result = max_change(&p.s1, &p.s2, 3, 12, SketchParams::new(9, 4096), 31);
    for item in &result.items {
        let err = (item.estimated_change - item.exact_change).abs();
        assert!(
            err <= 600,
            "estimate {} vs exact {} for {:?}",
            item.estimated_change,
            item.exact_change,
            item.key
        );
    }
}

#[test]
fn background_only_pair_reports_small_changes() {
    // No planted items: every reported |change| is sampling noise, far
    // below what a planted trend would produce.
    let p = StreamPair::zipf_background(2_000, 1.0, 50_000, vec![], 3);
    let result = max_change(&p.s1, &p.s2, 5, 20, SketchParams::new(7, 2048), 2);
    for item in &result.items {
        assert!(
            item.exact_change.abs() < 2_000,
            "background change {} suspiciously large",
            item.exact_change
        );
    }
}
