//! Property-based integration tests of the core sketch invariants,
//! exercised through the public facade.

use frequent_items::prelude::*;
use frequent_items::sketch::concurrent::sketch_stream_parallel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Additivity (§3.2): sketch(S1 ++ S2) == sketch(S1) + sketch(S2).
    #[test]
    fn merge_equals_concatenation(
        seed: u64,
        ids1 in prop::collection::vec(0u64..100, 0..300),
        ids2 in prop::collection::vec(0u64..100, 0..300),
    ) {
        let params = SketchParams::new(3, 64);
        let s1 = Stream::from_ids(ids1.iter().copied());
        let s2 = Stream::from_ids(ids2.iter().copied());

        let mut merged = CountSketch::new(params, seed);
        merged.absorb(&s1, 1);
        let mut other = CountSketch::new(params, seed);
        other.absorb(&s2, 1);
        merged.merge(&other).unwrap();

        let mut whole = CountSketch::new(params, seed);
        whole.absorb(&s1, 1);
        whole.absorb(&s2, 1);
        prop_assert_eq!(merged.counters(), whole.counters());
    }

    /// Subtracting a stream's own sketch zeroes everything (turnstile).
    #[test]
    fn self_subtraction_is_zero(
        seed: u64,
        ids in prop::collection::vec(0u64..50, 0..200),
    ) {
        let params = SketchParams::new(3, 32);
        let stream = Stream::from_ids(ids.iter().copied());
        let mut a = CountSketch::new(params, seed);
        a.absorb(&stream, 1);
        let b = a.clone();
        a.subtract(&b).unwrap();
        prop_assert!(a.counters().iter().all(|&c| c == 0));
    }

    /// Weighted absorb(-1) inverts absorb(+1).
    #[test]
    fn negative_weight_inverts(
        seed: u64,
        ids in prop::collection::vec(0u64..50, 0..200),
    ) {
        let stream = Stream::from_ids(ids.iter().copied());
        let mut s = CountSketch::new(SketchParams::new(3, 32), seed);
        s.absorb(&stream, 1);
        s.absorb(&stream, -1);
        prop_assert!(s.counters().iter().all(|&c| c == 0));
    }

    /// Parallel sketching is bit-identical to sequential for any thread
    /// count.
    #[test]
    fn parallel_equals_sequential(
        seed: u64,
        threads in 1usize..6,
        ids in prop::collection::vec(0u64..200, 0..500),
    ) {
        let params = SketchParams::new(3, 64);
        let stream = Stream::from_ids(ids.iter().copied());
        let par = sketch_stream_parallel(&stream, params, seed, threads);
        let mut seq = CountSketch::new(params, seed);
        seq.absorb(&stream, 1);
        prop_assert_eq!(par.counters(), seq.counters());
    }

    /// Snapshot round-trips preserve every counter and every estimate.
    #[test]
    fn snapshot_preserves_sketch(
        seed: u64,
        ids in prop::collection::vec(0u64..50, 0..150),
    ) {
        let mut s = CountSketch::new(SketchParams::new(3, 32), seed);
        s.absorb(&Stream::from_ids(ids.iter().copied()), 1);
        let back = CountSketch::from_snapshot_bytes(&s.to_snapshot_bytes()).unwrap();
        prop_assert_eq!(s.counters(), back.counters());
        for id in 0..50u64 {
            prop_assert_eq!(s.estimate(ItemKey(id)), back.estimate(ItemKey(id)));
        }
    }

    /// A single heavy item with no competition is estimated exactly, for
    /// any dimensions.
    #[test]
    fn lone_item_estimated_exactly(
        seed: u64,
        t in 1usize..8,
        b in 1usize..64,
        count in 1i64..500,
    ) {
        let mut s = CountSketch::new(SketchParams::new(t, b), seed);
        s.update(ItemKey(7), count);
        prop_assert_eq!(s.estimate(ItemKey(7)), count);
    }

    /// The wire format round-trips any stream.
    #[test]
    fn stream_io_roundtrip(ids in prop::collection::vec(any::<u64>(), 0..300)) {
        use frequent_items::stream::io;
        let stream = Stream::from_ids(ids.iter().copied());
        let bytes = io::encode(&stream);
        prop_assert_eq!(io::decode(&bytes).unwrap(), stream);
    }

    /// Linearity ⇒ order invariance: any permutation of the stream
    /// produces bit-identical counters (the heap algorithm is order
    /// sensitive; the sketch itself must never be).
    #[test]
    fn prop_sketch_is_order_invariant(
        seed: u64,
        mut ids in prop::collection::vec(0u64..40, 0..200),
    ) {
        let params = SketchParams::new(3, 32);
        let mut forward = CountSketch::new(params, seed);
        forward.absorb(&Stream::from_ids(ids.iter().copied()), 1);
        ids.reverse();
        let mut backward = CountSketch::new(params, seed);
        backward.absorb(&Stream::from_ids(ids.iter().copied()), 1);
        prop_assert_eq!(forward.counters(), backward.counters());
    }
}

#[test]
fn estimate_error_bounded_by_stream_l1() {
    // Trivial sanity: |estimate| can never exceed the stream length.
    let zipf = Zipf::new(500, 1.0);
    let stream = zipf.stream(10_000, 5, ZipfStreamKind::Sampled);
    let mut s = CountSketch::new(SketchParams::new(5, 128), 3);
    s.absorb(&stream, 1);
    for id in 0..500u64 {
        assert!(s.estimate(ItemKey(id)).unsigned_abs() <= 10_000);
    }
}
