//! Multi-threaded loopback tests for the cs-net wire transport.
//!
//! The contract under test (ISSUE 5): a quorum collected over real TCP
//! sockets must be **byte-identical** to the in-process
//! [`DistributedSketch::coordinate`] merge over the same site reports —
//! including when one site dies mid-ship and another sits behind a
//! corrupting link, in which case the exclusions are *reported*, never
//! silently folded into wrong estimates.

use frequent_items::prelude::*;

const SEED: u64 = 77;

fn params() -> SketchParams {
    SketchParams::new(5, 256)
}

/// Per-site streams with overlapping heavy hitters.
fn site_streams(sites: usize) -> Vec<Stream> {
    (0..sites)
        .map(|i| {
            let mut ids = Vec::new();
            // A global star every site sees, site-local mid items, noise.
            ids.extend(std::iter::repeat_n(1u64, 300 + 10 * i));
            ids.extend(std::iter::repeat_n(100 + i as u64, 120));
            ids.extend((0..200u64).map(|j| 1000 + (j * (i as u64 + 3)) % 150));
            Stream::from_ids(ids)
        })
        .collect()
}

fn reports(streams: &[Stream], k: usize) -> Vec<SiteReport> {
    streams
        .iter()
        .map(|s| site_report(s, k, params(), SEED))
        .collect()
}

fn fast_config(sites: usize, quorum: usize) -> ServeConfig {
    let mut config = ServeConfig::new(sites, quorum, params(), SEED);
    config.tick_ms = 2;
    config.deadline_ticks = 2_000;
    config.timeout_ms = 400;
    config
}

fn fast_agent(site_id: usize, sites: usize) -> SiteAgent {
    let mut agent = SiteAgent::new(site_id, sites);
    agent.tick_ms = 1;
    agent.timeout_ms = 400;
    agent
}

/// Strips the `# excluded` comment lines a faulted serve run prepends.
fn without_exclusions(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.starts_with("# excluded"))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn clean_quorum_is_byte_identical_to_coordinate() {
    const K: usize = 10;
    let streams = site_streams(3);
    let site_reports = reports(&streams, K);

    let server = CoordinatorServer::bind("127.0.0.1:0", fast_config(3, 3)).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || server.run());
    let handles: Vec<_> = site_reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let addr = addr.clone();
            let r = r.clone();
            std::thread::spawn(move || fast_agent(i, 3).ship(&addr, &r))
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap().unwrap(), ShipOutcome::Accepted);
    }
    let outcome = serve.join().unwrap().unwrap();
    assert!(outcome.report.is_complete());
    assert_eq!(outcome.report.included, vec![0, 1, 2]);

    let direct = DistributedSketch::coordinate(&site_reports).unwrap();
    assert_eq!(outcome.sketch.total_n(), direct.total_n());
    // Every estimate agrees, not just the rendered top-k.
    for id in [1u64, 100, 101, 102, 1000, 1050] {
        assert_eq!(
            outcome.sketch.estimate(ItemKey(id)),
            direct.estimate(ItemKey(id)),
            "id {id}"
        );
    }
    assert_eq!(
        render_report(&outcome.sketch, K, &outcome.report.excluded),
        render_report(&direct, K, &[]),
    );
}

#[test]
fn failed_and_corrupted_sites_are_excluded_not_silent() {
    const K: usize = 8;
    let streams = site_streams(4);
    let site_reports = reports(&streams, K);

    let mut config = fast_config(4, 2);
    config.policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let server = CoordinatorServer::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || server.run());

    let mut handles = Vec::new();
    for (i, r) in site_reports.iter().enumerate() {
        let addr = addr.clone();
        let r = r.clone();
        let mut agent = fast_agent(i, 4);
        agent.policy.max_attempts = 2;
        match i {
            // Site 2: every byte after the clean 60-byte HELLO risks a
            // flip — the frame CRC catches it on the coordinator side.
            2 => agent.fault = Some(LinkFault::FlipBits { from_byte: 100 }),
            // Site 3: the link dies mid-SNAPSHOT, like a killed agent.
            3 => agent.fault = Some(LinkFault::CutAfter { bytes: 64 }),
            _ => {}
        }
        handles.push(std::thread::spawn(move || agent.ship(&addr, &r)));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results[0].as_ref().unwrap(), &ShipOutcome::Accepted);
    assert_eq!(results[1].as_ref().unwrap(), &ShipOutcome::Accepted);
    assert!(results[2].is_err(), "corrupting site must fail: {results:?}");
    assert!(results[3].is_err(), "cut site must fail: {results:?}");

    let outcome = serve.join().unwrap().unwrap();
    assert_eq!(outcome.report.included, vec![0, 1]);
    let excluded: Vec<usize> = outcome.report.excluded.iter().map(|&(s, _)| s).collect();
    assert_eq!(excluded, vec![2, 3]);
    assert!(!outcome.report.is_complete());
    assert!(outcome.report.error_bound_widening() > 1.0);

    // The merge equals coordinate over exactly the surviving reports,
    // byte-for-byte once the exclusion report lines are stripped.
    let survivors = DistributedSketch::coordinate(&site_reports[..2]).unwrap();
    assert_eq!(outcome.sketch.total_n(), survivors.total_n());
    let wire = render_report(&outcome.sketch, K, &outcome.report.excluded);
    assert!(wire.contains("# excluded site 2:"), "{wire}");
    assert!(wire.contains("# excluded site 3:"), "{wire}");
    assert_eq!(without_exclusions(&wire), render_report(&survivors, K, &[]));
}

#[test]
fn retry_backoff_spends_real_wall_clock() {
    // Nothing listening: connect fails fast, so elapsed time is the
    // backoff schedule itself (1 + 2 ticks at 20 ms/tick = 60 ms).
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let report = site_report(&Stream::from_ids([1, 1, 2]), 2, params(), SEED);
    let mut agent = fast_agent(0, 1);
    agent.tick_ms = 20;
    agent.timeout_ms = 100;
    let t0 = std::time::Instant::now();
    assert!(agent.ship(&format!("127.0.0.1:{port}"), &report).is_err());
    assert!(
        t0.elapsed() >= std::time::Duration::from_millis(60),
        "expected two backoff sleeps, got {:?}",
        t0.elapsed()
    );
}

#[test]
fn stalling_site_still_lands_within_its_timeout() {
    let streams = site_streams(2);
    let site_reports = reports(&streams, 5);
    let server = CoordinatorServer::bind("127.0.0.1:0", fast_config(2, 2)).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let serve = std::thread::spawn(move || server.run());
    let handles: Vec<_> = site_reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let addr = addr.clone();
            let r = r.clone();
            let mut agent = fast_agent(i, 2);
            if i == 1 {
                // Slow but correct: a stall delays, corrupts nothing.
                agent.fault = Some(LinkFault::StallMs { millis: 5 });
            }
            std::thread::spawn(move || agent.ship(&addr, &r))
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap().unwrap(), ShipOutcome::Accepted);
    }
    let outcome = serve.join().unwrap().unwrap();
    assert!(outcome.report.is_complete());
    let direct = DistributedSketch::coordinate(&site_reports).unwrap();
    assert_eq!(
        render_report(&outcome.sketch, 5, &outcome.report.excluded),
        render_report(&direct, 5, &[]),
    );
}
