//! End-to-end APPROXTOP pipeline: workload generation → Lemma 5
//! dimensioning → one-pass algorithm → validity metrics. Spans
//! cs-stream, cs-core and cs-metrics through the facade crate.

use frequent_items::metrics::recall::ApproxTopValidity;
use frequent_items::metrics::{precision_at_k, recall_at_k};
use frequent_items::prelude::*;
use frequent_items::stream::moments;

fn run_pipeline(z: f64, eps: f64, seed: u64) -> (ApproxTopValidity, f64) {
    let (m, n, k) = (5_000usize, 100_000usize, 10usize);
    let zipf = Zipf::new(m, z);
    let stream = zipf.stream(n, seed, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let nk = exact.nk(k);
    let res_f2 = moments::residual_f2(&exact, k) as f64;
    let params = SketchParams::for_approx_top(k, res_f2, nk, eps, n as u64, 0.02);
    let result = approx_top(&stream, k, params, seed ^ 0xFEED);
    let validity = ApproxTopValidity::check(&result.keys(), &exact, k, eps);
    let recall = recall_at_k(&result.keys(), &exact, k);
    (validity, recall)
}

#[test]
fn lemma5_validity_across_zipf_regimes() {
    for z in [0.75, 1.0, 1.25] {
        let (validity, _) = run_pipeline(z, 0.25, 11);
        assert!(
            validity.valid(),
            "z = {z}: light_reported={}, heavy_missing={}",
            validity.light_reported,
            validity.heavy_missing
        );
    }
}

#[test]
fn high_skew_gives_perfect_recall() {
    let (_, recall) = run_pipeline(1.5, 0.1, 3);
    assert_eq!(recall, 1.0);
}

#[test]
fn scrambled_ids_change_nothing() {
    // The sketch must not depend on item ids being small/dense: run the
    // same workload with ids mapped through a 64-bit bijection.
    let (m, n, k) = (2_000usize, 50_000usize, 8usize);
    let zipf = Zipf::new(m, 1.0);
    let stream = zipf.stream_scrambled(n, 9, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let result = approx_top(&stream, k, SketchParams::new(7, 1024), 21);
    let recall = recall_at_k(&result.keys(), &exact, k);
    assert!(recall >= 0.8, "recall with scrambled ids = {recall}");
}

#[test]
fn precision_matches_recall_when_list_sizes_equal() {
    // |reported| == |truth| == k ⇒ precision == recall.
    let (m, n, k) = (2_000usize, 50_000usize, 10usize);
    let zipf = Zipf::new(m, 1.0);
    let stream = zipf.stream(n, 5, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let result = approx_top(&stream, k, SketchParams::new(5, 512), 13);
    assert_eq!(result.items.len(), k);
    let r = recall_at_k(&result.keys(), &exact, k);
    let p = precision_at_k(&result.keys(), &exact, k);
    assert!((r - p).abs() < 1e-12);
}

#[test]
fn candidate_top_two_pass_beats_one_pass() {
    // The §4.1 two-pass refinement can only improve the top-k set.
    let (m, n, k) = (5_000usize, 100_000usize, 10usize);
    let zipf = Zipf::new(m, 0.8); // low skew: hard case
    let stream = zipf.stream(n, 17, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let params = SketchParams::new(7, 2048);

    let one_pass = approx_top(&stream, k, params, 29);
    let two_pass = candidate_top_two_pass(&stream, k, 4 * k, params, 29);
    let keys_two: Vec<ItemKey> = two_pass.top_k.iter().map(|&(key, _)| key).collect();

    let r1 = recall_at_k(&one_pass.keys(), &exact, k);
    let r2 = recall_at_k(&keys_two, &exact, k);
    assert!(
        r2 >= r1,
        "two-pass recall {r2} must be >= one-pass recall {r1}"
    );
    // And two-pass counts are exact.
    for &(key, count) in &two_pass.top_k {
        assert_eq!(count, exact.count(key));
    }
}

#[test]
fn builder_pipeline_works_through_facade() {
    let stream = Stream::from_items(["x", "x", "x", "y", "y", "z"]);
    let mut p = CountSketchBuilder::new()
        .dimensions(5, 64)
        .seed(4)
        .build_processor(2)
        .unwrap();
    p.observe_stream(&stream);
    let result = p.result();
    assert_eq!(result.items[0].0, ItemKey::of("x"));
    assert_eq!(result.items[1].0, ItemKey::of("y"));
}
