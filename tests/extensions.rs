//! Integration tests for the extension modules (window, iceberg,
//! hierarchical, relative change), exercised together through the
//! facade and against the exact oracle.

use frequent_items::prelude::*;
use frequent_items::sketch::hierarchical::HierarchicalCountSketch;
use frequent_items::sketch::iceberg::iceberg;
use frequent_items::sketch::relchange::{max_relative_change, ChangeObjective};
use frequent_items::sketch::window::SlidingSketch;
use frequent_items::stream::transforms;
use frequent_items::stream::{ChangeSpec, StreamPair};

#[test]
fn window_and_full_stream_agree_when_window_covers_everything() {
    // A window larger than the stream must behave like a plain sketch.
    let zipf = Zipf::new(500, 1.0);
    let stream = zipf.stream(20_000, 3, ZipfStreamKind::DeterministicRounded);
    let params = SketchParams::new(5, 512);
    let mut window = SlidingSketch::new(params, 9, 50_000, 4, 10);
    for key in stream.iter() {
        window.observe(key);
    }
    let mut plain = CountSketch::new(params, 9);
    plain.absorb(&stream, 1);
    for id in 0..500u64 {
        assert_eq!(window.estimate(ItemKey(id)), plain.estimate(ItemKey(id)));
    }
}

#[test]
fn iceberg_agrees_with_exact_oracle_on_zipf() {
    let zipf = Zipf::new(1_000, 1.2);
    let stream = zipf.stream(50_000, 7, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let phi = 0.03;
    let result = iceberg(&stream, phi, 0.005, SketchParams::new(7, 2048), 2);
    let reported: Vec<ItemKey> = result.items.iter().map(|&(k, _)| k).collect();
    for (&key, &count) in exact.counts() {
        if count as f64 >= phi * stream.len() as f64 {
            assert!(reported.contains(&key), "iceberg missed {key:?} ({count})");
        }
    }
}

#[test]
fn hierarchical_recovers_diff_heavy_hitters_from_interleaved_pair() {
    // Build a pair, interleave each stream (order must not matter),
    // absorb into a hierarchy with signs, and recover the planted
    // changes from the sketch alone.
    let pair = StreamPair::zipf_background(
        1_000,
        1.0,
        30_000,
        vec![
            ChangeSpec {
                item: 50_000,
                count_s1: 0,
                count_s2: 9_000,
            },
            ChangeSpec {
                item: 50_001,
                count_s1: 8_000,
                count_s2: 0,
            },
        ],
        5,
    );
    let s1 = transforms::interleave(&pair.s1, &Stream::new(), 1);
    let s2 = transforms::interleave(&pair.s2, &Stream::new(), 2);
    let mut h = HierarchicalCountSketch::new(16, SketchParams::new(7, 1024), 3);
    h.absorb(&s1, -1);
    h.absorb(&s2, 1);
    let heavy = h.heavy_items(4_000, 4);
    let keys: Vec<u64> = heavy.iter().map(|x| x.key.raw()).collect();
    assert!(keys.contains(&50_000), "trender missing: {keys:?}");
    assert!(keys.contains(&50_001), "vanisher missing: {keys:?}");
    // Signs must be correct.
    for item in &heavy {
        match item.key.raw() {
            50_000 => assert!(item.estimate > 0),
            50_001 => assert!(item.estimate < 0),
            _ => {}
        }
    }
}

#[test]
fn relchange_percent_objective_prefers_relative_movers() {
    let pair = StreamPair::zipf_background(
        300,
        1.0,
        20_000,
        vec![
            // 40% growth on a huge item.
            ChangeSpec {
                item: 70_000,
                count_s1: 5_000,
                count_s2: 7_000,
            },
            // 50x growth on a small item.
            ChangeSpec {
                item: 70_001,
                count_s1: 20,
                count_s2: 1_000,
            },
        ],
        11,
    );
    let params = SketchParams::new(7, 2048);
    let abs = max_relative_change(
        &pair.s1,
        &pair.s2,
        1,
        20,
        ChangeObjective::Absolute,
        params,
        3,
    );
    let pct = max_relative_change(
        &pair.s1,
        &pair.s2,
        1,
        20,
        ChangeObjective::Percent { smoothing: 100.0 },
        params,
        3,
    );
    assert_eq!(abs[0].key.raw(), 70_000);
    assert_eq!(pct[0].key.raw(), 70_001);
}

#[test]
fn transforms_compose_with_sketching() {
    // Sketching a subsampled stream scales estimates by ~p — the
    // SAMPLING baseline's premise, now through the sketch.
    let zipf = Zipf::new(200, 1.2);
    let stream = zipf.stream(40_000, 13, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let p = 0.25;
    let sub = transforms::subsample(&stream, p, 17);
    let mut sketch = CountSketch::new(SketchParams::new(7, 1024), 19);
    sketch.absorb(&sub, 1);
    let truth = exact.count(ItemKey(0)) as f64;
    let est = sketch.estimate(ItemKey(0)) as f64 / p;
    assert!(
        (est - truth).abs() < 0.2 * truth,
        "rescaled estimate {est} vs truth {truth}"
    );
}

#[test]
fn repeat_transform_scales_sketch_estimates_linearly() {
    let base = Stream::from_ids([1, 1, 1, 2]);
    let tripled = transforms::repeat(&base, 3);
    let params = SketchParams::new(5, 64);
    let mut a = CountSketch::new(params, 1);
    a.absorb(&base, 1);
    let mut b = CountSketch::new(params, 1);
    b.absorb(&tripled, 1);
    assert_eq!(b.estimate(ItemKey(1)), 3 * a.estimate(ItemKey(1)));
}

#[test]
fn window_survives_many_epochs_without_drift() {
    // Long-running window: after hundreds of epoch rolls, estimates for
    // the live window must still be exact for a lone heavy item
    // (subtract-on-expiry must not accumulate error).
    let params = SketchParams::new(5, 128);
    let mut w = SlidingSketch::new(params, 2, 100, 3, 4);
    for epoch in 0..300u64 {
        for i in 0..100u64 {
            // One fixed heavy item plus rotating noise.
            if i % 2 == 0 {
                w.observe(ItemKey(7));
            } else {
                w.observe(ItemKey(1_000 + (epoch * 50 + i)));
            }
        }
    }
    // Window = 2 complete epochs + 0 partial: item 7 has 50/epoch.
    assert_eq!(w.estimate(ItemKey(7)), 100);
}
