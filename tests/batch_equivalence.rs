//! End-to-end equivalence of the batched ingestion engine with scalar
//! updates, across the public API surface: plain sketches, parallel
//! sketching, the APPROXTOP processor, and mid-batch snapshots.

use frequent_items::prelude::*;
use frequent_items::sketch::concurrent::sketch_stream_parallel;
use proptest::prelude::*;

fn zipf_stream(n: usize, seed: u64) -> Stream {
    Zipf::new(500, 1.0).stream(n, seed, ZipfStreamKind::Sampled)
}

fn scalar_sketch(stream: &Stream, params: SketchParams, seed: u64) -> CountSketch {
    let mut s = CountSketch::new(params, seed);
    for key in stream.iter() {
        s.update(key, 1);
    }
    s
}

#[test]
fn absorb_is_bit_identical_to_scalar_updates() {
    let stream = zipf_stream(20_000, 3);
    let params = SketchParams::new(5, 256);
    let seq = scalar_sketch(&stream, params, 9);
    let mut bat = CountSketch::new(params, 9);
    bat.absorb(&stream, 1);
    assert_eq!(seq.counters(), bat.counters());
    for id in 0..500u64 {
        assert_eq!(seq.estimate(ItemKey(id)), bat.estimate(ItemKey(id)));
    }
}

#[test]
fn parallel_batched_workers_equal_sequential_scalar() {
    // sketch_stream_parallel's workers absorb through the block engine;
    // the merged result must still match a scalar one-thread pass.
    let stream = zipf_stream(30_000, 5);
    let params = SketchParams::new(5, 512);
    let want = scalar_sketch(&stream, params, 13);
    for threads in [1usize, 2, 4, 7] {
        let got = sketch_stream_parallel(&stream, params, 13, threads);
        assert_eq!(want.counters(), got.counters(), "threads = {threads}");
    }
}

#[test]
fn snapshot_mid_batch_resumes_identically() {
    // Absorb half the stream batched, snapshot, restore, and finish on
    // the restored sketch — counters must equal one uninterrupted run
    // (scalar AND batched, which are themselves identical).
    let stream = zipf_stream(10_000, 8);
    let keys = stream.as_slice();
    let params = SketchParams::new(5, 256);

    let mut first_half = CountSketch::new(params, 21);
    first_half.update_batch(&keys[..5_000]);
    let bytes = first_half.to_snapshot_bytes();
    let mut restored = CountSketch::from_snapshot_bytes(&bytes).expect("snapshot roundtrip");
    restored.update_batch(&keys[5_000..]);

    let uninterrupted = scalar_sketch(&stream, params, 21);
    assert_eq!(uninterrupted.counters(), restored.counters());
    for id in 0..500u64 {
        assert_eq!(
            uninterrupted.estimate(ItemKey(id)),
            restored.estimate(ItemKey(id))
        );
    }
}

#[test]
fn approx_top_batched_stream_finds_same_heavy_hitters() {
    let stream = zipf_stream(40_000, 2);
    let exact = ExactCounter::from_stream(&stream);
    let params = SketchParams::new(7, 1024);

    let mut per_item = ApproxTopProcessor::new(params, 10, 4);
    for key in stream.iter() {
        per_item.observe(key);
    }
    let mut batched = ApproxTopProcessor::new(params, 10, 4);
    batched.observe_stream(&stream);

    // The sketches must agree exactly; the reported sets must both cover
    // the unambiguous heavy hitters.
    assert_eq!(per_item.sketch().counters(), batched.sketch().counters());
    let truth: Vec<ItemKey> = exact.top_k(5).into_iter().map(|(k, _)| k).collect();
    for keys in [per_item.result().keys(), batched.result().keys()] {
        for t in &truth {
            assert!(keys.contains(t), "missing heavy hitter {t:?}");
        }
    }
}

proptest! {
    /// Batched ingestion with arbitrary slice boundaries equals scalar
    /// ingestion, including signed weights.
    #[test]
    fn prop_chunked_batches_equal_scalar(
        seed: u64,
        weight in -100i64..100,
        raw in prop::collection::vec(0u64..64, 1..300),
        cut in 0usize..300,
    ) {
        let keys: Vec<ItemKey> = raw.into_iter().map(ItemKey).collect();
        let cut = cut.min(keys.len());
        let params = SketchParams::new(3, 32);
        let mut seq = CountSketch::new(params, seed);
        for &k in &keys {
            seq.update(k, weight);
        }
        let mut bat = CountSketch::new(params, seed);
        bat.update_batch_weighted(&keys[..cut], weight);
        bat.update_batch_weighted(&keys[cut..], weight);
        prop_assert_eq!(seq.counters(), bat.counters());
    }
}
