//! Behaviour on the §1 adversarial boundary instance and other
//! degenerate inputs.

use frequent_items::metrics::recall_at_k;
use frequent_items::prelude::*;
use frequent_items::stream::{adversarial_boundary_stream, constant_stream, sequential_stream};

#[test]
fn boundary_instance_is_solved_by_two_pass_with_large_l() {
    // §1's hard case: n_k = n_{l+1} + 1. With l large enough to cover all
    // near-ties plus a second exact pass, the true top-k is recovered.
    let (k, l, base) = (5usize, 30usize, 200u64);
    let stream = adversarial_boundary_stream(k, l, base, 42);
    let exact = ExactCounter::from_stream(&stream);
    let result = candidate_top_two_pass(&stream, k, l + 5, SketchParams::new(9, 4096), 7);
    let keys: Vec<ItemKey> = result.top_k.iter().map(|&(key, _)| key).collect();
    let recall = recall_at_k(&keys, &exact, k);
    assert_eq!(
        recall, 1.0,
        "two-pass with l > #ties must solve the boundary case"
    );
}

#[test]
fn boundary_instance_counts_are_as_constructed() {
    let (k, l, base) = (3usize, 10usize, 50u64);
    let stream = adversarial_boundary_stream(k, l, base, 1);
    let exact = ExactCounter::from_stream(&stream);
    assert_eq!(exact.nk(k), base + 1);
    assert_eq!(exact.nk(k + 1), base);
}

#[test]
fn constant_stream_single_heavy_hitter() {
    let stream = constant_stream(5_000);
    let result = approx_top(&stream, 3, SketchParams::new(5, 64), 0);
    assert_eq!(result.items.len(), 1, "only one distinct item exists");
    assert_eq!(result.items[0].0, ItemKey(0));
    assert_eq!(result.items[0].1, 5_000, "single item is estimated exactly");
}

#[test]
fn all_distinct_stream_reports_k_items_each_count_one_ish() {
    let stream = sequential_stream(10_000);
    let exact = ExactCounter::from_stream(&stream);
    let result = approx_top(&stream, 5, SketchParams::new(5, 1024), 3);
    assert_eq!(result.items.len(), 5);
    // n_k = 1; the (1-ε) guarantee is vacuous, but no estimate should be
    // wildly above the 8γ scale: γ = sqrt(10^4/1024) ≈ 3.1.
    let gamma = frequent_items::stream::moments::gamma(&exact, 5, 1024);
    for &(_, est) in &result.items {
        assert!(
            (est as f64) <= 1.0 + 8.0 * gamma,
            "estimate {est} above 1 + 8γ = {}",
            1.0 + 8.0 * gamma
        );
    }
}

#[test]
fn empty_stream_everywhere() {
    let stream = Stream::new();
    let exact = ExactCounter::from_stream(&stream);
    assert_eq!(exact.total(), 0);
    let result = approx_top(&stream, 5, SketchParams::new(3, 16), 0);
    assert!(result.items.is_empty());
    let two = candidate_top_two_pass(&stream, 2, 4, SketchParams::new(3, 16), 0);
    assert!(two.top_k.is_empty());
    let mc = max_change(&stream, &stream, 2, 4, SketchParams::new(3, 16), 0);
    assert!(mc.items.is_empty());
}

#[test]
fn single_occurrence_stream() {
    let stream = Stream::from_ids([99]);
    let result = approx_top(&stream, 3, SketchParams::new(3, 16), 1);
    assert_eq!(result.items, vec![(ItemKey(99), 1)]);
}

#[test]
fn duplicate_heavy_ties_all_reported_by_candidates() {
    // Ten items tied at the top: a candidate list of 10 must hold items
    // whose counts all equal n_k.
    let mut ids = Vec::new();
    for item in 0..10u64 {
        ids.extend(std::iter::repeat_n(item, 100));
    }
    for item in 100..400u64 {
        ids.push(item);
    }
    let stream = Stream::from_ids(ids);
    let exact = ExactCounter::from_stream(&stream);
    let result = candidate_top_one_pass(&stream, 10, SketchParams::new(7, 1024), 5);
    let good = result
        .keys()
        .iter()
        .filter(|&&key| exact.count(key) == 100)
        .count();
    assert!(good >= 9, "only {good}/10 candidates are tied-top items");
}
