//! Hash-family throughput: the per-update cost driver of the sketch.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use cs_hash::{
    BucketHasher, MultiplyShift, PairwiseHash, PairwiseSign, SeedSequence, SignHasher,
    TabulationHash,
};

const KEYS: usize = 4096;

fn keys() -> Vec<u64> {
    let mut s = SeedSequence::new(42);
    (0..KEYS).map(|_| s.next_seed()).collect()
}

fn bench_bucket_hashers(c: &mut Criterion) {
    let keys = keys();
    let mut group = c.benchmark_group("bucket_hash");
    group.throughput(Throughput::Elements(KEYS as u64));

    let pairwise = PairwiseHash::draw(&mut SeedSequence::new(1), 1024);
    group.bench_function("pairwise_poly", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                acc ^= pairwise.bucket(black_box(k));
            }
            acc
        })
    });

    let ms = MultiplyShift::draw(&mut SeedSequence::new(2), 10);
    group.bench_function("multiply_shift", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                acc ^= ms.bucket(black_box(k));
            }
            acc
        })
    });

    let tab = TabulationHash::draw(&mut SeedSequence::new(3), 1024);
    group.bench_function("tabulation", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                acc ^= tab.bucket(black_box(k));
            }
            acc
        })
    });
    group.finish();
}

fn bench_sign_hashers(c: &mut Criterion) {
    let keys = keys();
    let mut group = c.benchmark_group("sign_hash");
    group.throughput(Throughput::Elements(KEYS as u64));

    let pairwise = PairwiseSign::draw(&mut SeedSequence::new(4));
    group.bench_function("pairwise_sign", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &k in &keys {
                acc += pairwise.sign(black_box(k));
            }
            acc
        })
    });

    let tab = TabulationHash::draw(&mut SeedSequence::new(5), 2);
    group.bench_function("tabulation_sign", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &k in &keys {
                acc += tab.sign(black_box(k));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bucket_hashers, bench_sign_hashers);
criterion_main!(benches);
