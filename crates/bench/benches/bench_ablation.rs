//! Timing side of the design ablations: row combiners and the two hash
//! constructions (accuracy side lives in `harness ablation`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::median::Combiner;
use cs_core::sketch::EstimateScratch;
use cs_core::{CountSketch, FastCountSketch, SketchParams};
use cs_hash::ItemKey;
use cs_stream::{Zipf, ZipfStreamKind};

fn bench_combiners(c: &mut Criterion) {
    let zipf = Zipf::new(10_000, 1.0);
    let stream = zipf.stream(100_000, 5, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("ablation_combiner_estimate");
    const PROBES: u64 = 1024;
    group.throughput(Throughput::Elements(PROBES));
    for (name, combiner) in [
        ("median", Combiner::Median),
        ("mean", Combiner::Mean),
        ("trimmed_mean", Combiner::TrimmedMean),
    ] {
        let mut s = CountSketch::new(SketchParams::new(15, 1024), 7).with_combiner(combiner);
        s.absorb(&stream, 1);
        let mut scratch = EstimateScratch::new();
        group.bench_function(BenchmarkId::new("combiner", name), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for id in 0..PROBES {
                    acc += s.estimate_with_scratch(black_box(ItemKey(id)), &mut scratch);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_hash_constructions(c: &mut Criterion) {
    let zipf = Zipf::new(10_000, 1.0);
    let stream = zipf.stream(50_000, 6, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("ablation_hash_add");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("pairwise_poly", |b| {
        b.iter(|| {
            let mut s = CountSketch::new(SketchParams::new(7, 1024), 1);
            s.absorb(black_box(&stream), 1);
            s
        })
    });
    group.bench_function("multiply_shift_tabulation", |b| {
        b.iter(|| {
            let mut s = FastCountSketch::new(SketchParams::new(7, 1024), 1);
            s.absorb(black_box(&stream), 1);
            s
        })
    });
    group.finish();
}

criterion_group!(benches, bench_combiners, bench_hash_constructions);
criterion_main!(benches);
