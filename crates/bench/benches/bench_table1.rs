//! Table 1 as a timing benchmark: each algorithm runs at the minimal
//! sizes the space experiment settles on for Zipf(1.0), so the timing
//! comparison is apples-to-apples with the space comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_baselines::{KpsFrequent, SamplingAlgorithm, SpaceSaving, StreamSummary};
use cs_core::candidate_top::candidate_top_one_pass;
use cs_core::SketchParams;
use cs_stream::{Stream, Zipf, ZipfStreamKind};

fn stream(z: f64) -> Stream {
    Zipf::new(20_000, z).stream(100_000, 11, ZipfStreamKind::DeterministicRounded)
}

fn bench_table1_runtime(c: &mut Criterion) {
    for z in [0.75f64, 1.0] {
        let stream = stream(z);
        let k = 20;
        let l = 4 * k;
        let mut group = c.benchmark_group(format!("table1_runtime_z{z}"));
        group.throughput(Throughput::Elements(stream.len() as u64));

        group.bench_function(BenchmarkId::new("alg", "count-sketch"), |b| {
            b.iter(|| {
                candidate_top_one_pass(black_box(&stream), l, SketchParams::new(7, 1024), 3)
                    .items
                    .len()
            })
        });
        group.bench_function(BenchmarkId::new("alg", "sampling"), |b| {
            b.iter(|| {
                let mut alg = SamplingAlgorithm::new(0.02, 3);
                alg.process_stream(black_box(&stream));
                alg.candidates().len()
            })
        });
        group.bench_function(BenchmarkId::new("alg", "kps"), |b| {
            b.iter(|| {
                let mut alg = KpsFrequent::with_capacity(1024);
                alg.process_stream(black_box(&stream));
                alg.candidates().len()
            })
        });
        group.bench_function(BenchmarkId::new("alg", "space-saving"), |b| {
            b.iter(|| {
                let mut alg = SpaceSaving::new(l);
                alg.process_stream(black_box(&stream));
                alg.candidates().len()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_table1_runtime);
criterion_main!(benches);
