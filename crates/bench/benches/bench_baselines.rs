//! Per-arrival processing throughput of every algorithm in the
//! comparison suite, on the same Zipf(1.0) stream.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_baselines::{
    ConciseSamples, CountMinSketch, CountingSamples, KpsFrequent, LossyCounting, SamplingAlgorithm,
    SpaceSaving, StickySampling, StreamSummary,
};
use cs_core::approx_top::ApproxTopProcessor;
use cs_core::SketchParams;
use cs_stream::{Stream, Zipf, ZipfStreamKind};

fn stream() -> Stream {
    Zipf::new(20_000, 1.0).stream(50_000, 7, ZipfStreamKind::Sampled)
}

fn run_summary<S: StreamSummary>(mut s: S, stream: &Stream) -> usize {
    s.process_stream(stream);
    s.candidates().len()
}

fn bench_baselines(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("baseline_process");
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function(BenchmarkId::new("alg", "count-sketch"), |b| {
        b.iter(|| {
            let mut p = ApproxTopProcessor::new(SketchParams::new(7, 1024), 100, 1);
            p.observe_stream(black_box(&stream));
            p.result().items.len()
        })
    });
    group.bench_function(BenchmarkId::new("alg", "sampling"), |b| {
        b.iter(|| run_summary(SamplingAlgorithm::new(0.01, 1), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("alg", "concise-samples"), |b| {
        b.iter(|| run_summary(ConciseSamples::new(500, 0.9, 1), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("alg", "counting-samples"), |b| {
        b.iter(|| run_summary(CountingSamples::new(500, 0.9, 1), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("alg", "kps"), |b| {
        b.iter(|| run_summary(KpsFrequent::with_capacity(500), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("alg", "lossy-counting"), |b| {
        b.iter(|| run_summary(LossyCounting::new(0.002), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("alg", "sticky-sampling"), |b| {
        b.iter(|| run_summary(StickySampling::new(0.01, 0.002, 0.1, 1), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("alg", "count-min"), |b| {
        b.iter(|| run_summary(CountMinSketch::new(7, 1024, 100, 1), black_box(&stream)))
    });
    group.bench_function(BenchmarkId::new("alg", "space-saving"), |b| {
        b.iter(|| run_summary(SpaceSaving::new(500), black_box(&stream)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
