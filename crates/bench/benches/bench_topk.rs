//! End-to-end APPROXTOP throughput (§3.2 algorithm: sketch + heap) and
//! heap-policy comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::approx_top::{ApproxTopProcessor, HeapPolicy};
use cs_core::SketchParams;
use cs_stream::{Zipf, ZipfStreamKind};

fn bench_observe(c: &mut Criterion) {
    let zipf = Zipf::new(50_000, 1.0);
    let stream = zipf.stream(50_000, 1, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("approx_top_observe");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (name, policy) in [
        ("increment_tracked", HeapPolicy::IncrementTracked),
        ("always_re_estimate", HeapPolicy::AlwaysReEstimate),
    ] {
        group.bench_function(BenchmarkId::new("policy", name), |bench| {
            bench.iter(|| {
                let mut p =
                    ApproxTopProcessor::new(SketchParams::new(7, 2048), 100, 3).with_policy(policy);
                p.observe_stream(black_box(&stream));
                p.result().items.len()
            })
        });
    }
    group.finish();
}

fn bench_k_scaling(c: &mut Criterion) {
    let zipf = Zipf::new(50_000, 1.0);
    let stream = zipf.stream(50_000, 2, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("approx_top_k_scaling");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for k in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |bench, &k| {
            bench.iter(|| {
                let mut p = ApproxTopProcessor::new(SketchParams::new(7, 2048), k, 3);
                p.observe_stream(black_box(&stream));
                p.result().items.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observe, bench_k_scaling);
criterion_main!(benches);
