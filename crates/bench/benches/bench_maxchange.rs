//! End-to-end §4.2 max-change timing: pass 1 (sketch the difference) and
//! pass 2 (candidate selection + exact counting), separately and together.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use cs_bench::experiments::maxchange::planted_pair;
use cs_bench::Scale;
use cs_core::maxchange::{max_change, DiffSketch};
use cs_core::SketchParams;

fn bench_maxchange(c: &mut Criterion) {
    let scale = Scale {
        n: 50_000,
        m: 10_000,
        trials: 1,
        k: 10,
    };
    let pair = planted_pair(&scale, 20, 1);
    let total = (pair.s1.len() + pair.s2.len()) as u64;
    let params = SketchParams::new(7, 2048);

    let mut group = c.benchmark_group("maxchange");
    group.throughput(Throughput::Elements(total));

    group.bench_function("pass1_sketch_diff", |b| {
        b.iter(|| {
            let mut diff = DiffSketch::new(params, 5);
            diff.absorb_first(black_box(&pair.s1));
            diff.absorb_second(black_box(&pair.s2));
            diff
        })
    });

    let mut diff = DiffSketch::new(params, 5);
    diff.absorb_first(&pair.s1);
    diff.absorb_second(&pair.s2);
    group.bench_function("pass2_select", |b| {
        b.iter(|| {
            diff.top_changes(black_box(&pair.s1), black_box(&pair.s2), 10, 40)
                .items
                .len()
        })
    });

    group.bench_function("end_to_end", |b| {
        b.iter(|| {
            max_change(black_box(&pair.s1), black_box(&pair.s2), 10, 40, params, 5)
                .items
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_maxchange);
criterion_main!(benches);
