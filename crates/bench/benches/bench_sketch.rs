//! Core sketch operations: ADD, ESTIMATE, merge — across `(t, b)`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::sketch::EstimateScratch;
use cs_core::{CountSketch, FastCountSketch, SketchParams};
use cs_hash::ItemKey;
use cs_stream::{Zipf, ZipfStreamKind};

fn bench_add(c: &mut Criterion) {
    let zipf = Zipf::new(10_000, 1.0);
    let stream = zipf.stream(10_000, 1, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("sketch_add");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for t in [3usize, 7, 15] {
        group.bench_with_input(BenchmarkId::new("pairwise_t", t), &t, |bench, &t| {
            bench.iter(|| {
                let mut s = CountSketch::new(SketchParams::new(t, 1024), 7);
                for key in stream.iter() {
                    s.add(black_box(key));
                }
                s
            })
        });
        group.bench_with_input(BenchmarkId::new("fast_t", t), &t, |bench, &t| {
            bench.iter(|| {
                let mut s = FastCountSketch::new(SketchParams::new(t, 1024), 7);
                for key in stream.iter() {
                    s.add(black_box(key));
                }
                s
            })
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let zipf = Zipf::new(10_000, 1.0);
    let stream = zipf.stream(100_000, 2, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("sketch_estimate");
    const PROBES: u64 = 1024;
    group.throughput(Throughput::Elements(PROBES));
    for t in [3usize, 7, 15] {
        let mut s = CountSketch::new(SketchParams::new(t, 1024), 7);
        s.absorb(&stream, 1);
        group.bench_with_input(BenchmarkId::new("alloc_t", t), &t, |bench, _| {
            bench.iter(|| {
                let mut acc = 0i64;
                for id in 0..PROBES {
                    acc += s.estimate(black_box(ItemKey(id)));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("scratch_t", t), &t, |bench, _| {
            let mut scratch = EstimateScratch::new();
            bench.iter(|| {
                let mut acc = 0i64;
                for id in 0..PROBES {
                    acc += s.estimate_with_scratch(black_box(ItemKey(id)), &mut scratch);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let zipf = Zipf::new(10_000, 1.0);
    let s1 = zipf.stream(50_000, 3, ZipfStreamKind::Sampled);
    let s2 = zipf.stream(50_000, 4, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("sketch_merge");
    for b in [256usize, 4096, 65_536] {
        let params = SketchParams::new(7, b);
        let mut a = CountSketch::new(params, 9);
        a.absorb(&s1, 1);
        let mut d = CountSketch::new(params, 9);
        d.absorb(&s2, 1);
        group.throughput(Throughput::Elements((7 * b) as u64));
        group.bench_with_input(BenchmarkId::new("b", b), &b, |bench, _| {
            bench.iter(|| {
                let mut m = a.clone();
                m.merge(black_box(&d)).unwrap();
                m
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_add, bench_estimate, bench_merge);
criterion_main!(benches);
