//! Timing of the extension modules: sliding window, iceberg queries,
//! hierarchical recovery, relative-change scoring.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::hierarchical::HierarchicalCountSketch;
use cs_core::iceberg::IcebergProcessor;
use cs_core::relchange::{ChangeObjective, RelChangeSketch};
use cs_core::window::SlidingSketch;
use cs_core::SketchParams;
use cs_stream::{Stream, Zipf, ZipfStreamKind};

fn stream() -> Stream {
    Zipf::new(20_000, 1.0).stream(50_000, 3, ZipfStreamKind::Sampled)
}

fn bench_window(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("ext_window_observe");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for epochs in [2usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("window_epochs", epochs),
            &epochs,
            |b, &epochs| {
                b.iter(|| {
                    let mut w =
                        SlidingSketch::new(SketchParams::new(5, 1024), 1, 5_000, epochs, 10);
                    for key in stream.iter() {
                        w.observe(black_box(key));
                    }
                    w.top_k().len()
                })
            },
        );
    }
    group.finish();
}

fn bench_iceberg(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("ext_iceberg");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("observe_and_query", |b| {
        b.iter(|| {
            let mut p = IcebergProcessor::new(SketchParams::new(5, 1024), 0.01, 0.002, 2, 1);
            p.observe_stream(black_box(&stream));
            p.result().items.len()
        })
    });
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("ext_hierarchical");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("absorb", |b| {
        b.iter(|| {
            let mut h = HierarchicalCountSketch::new(16, SketchParams::new(5, 512), 1);
            h.absorb(black_box(&stream), 1);
            h.total_weight()
        })
    });
    let mut h = HierarchicalCountSketch::new(16, SketchParams::new(5, 512), 1);
    h.absorb(&stream, 1);
    group.bench_function("heavy_items_query", |b| {
        b.iter(|| h.heavy_items(black_box(500), 20).len())
    });
    group.finish();
}

fn bench_relchange(c: &mut Criterion) {
    let s1 = Zipf::new(20_000, 1.0).stream(25_000, 4, ZipfStreamKind::Sampled);
    let s2 = Zipf::new(20_000, 1.0).stream(25_000, 5, ZipfStreamKind::Sampled);
    let mut group = c.benchmark_group("ext_relchange");
    group.throughput(Throughput::Elements((s1.len() + s2.len()) as u64));
    for (name, objective) in [
        ("absolute", ChangeObjective::Absolute),
        ("percent", ChangeObjective::Percent { smoothing: 100.0 }),
        ("balanced", ChangeObjective::Balanced { smoothing: 100.0 }),
    ] {
        group.bench_function(BenchmarkId::new("objective", name), |b| {
            b.iter(|| {
                let mut sk = RelChangeSketch::new(SketchParams::new(5, 1024), 2);
                sk.absorb_first(black_box(&s1));
                sk.absorb_second(black_box(&s2));
                sk.top_changes(&s1, &s2, 10, 40, objective).len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_window,
    bench_iceberg,
    bench_hierarchical,
    bench_relchange
);
criterion_main!(benches);
