//! Ingestion microbenchmark: scalar `update` vs the block engine vs the
//! exact clamp-and-flag tier.
//!
//! ```text
//! cargo run --release -p cs-bench --bin micro
//! ```
//!
//! Rows:
//!
//! * `scalar_update` — one [`CountSketch::update`] call per key (the
//!   pre-batching hot path, now itself on the two-tier scheme);
//! * `update_batch/{8,32,128}` — the block ingestion engine fed slices
//!   of the given length, so the cost of partial blocks (engine-internal
//!   blocks are 32 keys) is visible;
//! * `exact_tier_update` — [`CountSketch::update_exact`] per key: the
//!   always-clamping `i128` path every update used to take, kept as the
//!   overflow fallback. The gap to `scalar_update` is the price of the
//!   clamp + saturation bookkeeping that the headroom watermark removes;
//! * `striped_shared_add` / `atomic_shared_add` — the two shared-handle
//!   ingestion paths (mutex-per-row vs lock-free `fetch_add`), driven
//!   from one thread so the numbers isolate per-op synchronization
//!   overhead from contention. The gap between them is what the
//!   lock-free sketch buys before any parallelism enters the picture.
//!
//! Build with `--no-default-features` to also compile the saturation
//! bitset out of the exact tier (the `saturation-tracking` feature is
//! forwarded to `cs-core`) and compare against the default build; the
//! fast tier never touches the bitset either way.
//!
//! Timings come from the in-repo criterion shim: mean of
//! `CRITERION_SHIM_ITERS` (default 10) iterations, no outlier analysis —
//! on a noisy VM, prefer re-running and comparing medians.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::concurrent::SharedCountSketch;
use cs_core::parallel::AtomicCountSketch;
use cs_core::{CountSketch, SketchParams};
use cs_stream::{Zipf, ZipfStreamKind};

const N: usize = 100_000;

fn bench_ingest(c: &mut Criterion) {
    let zipf = Zipf::new(10_000, 1.0);
    let stream = zipf.stream(N, 1, ZipfStreamKind::Sampled);
    let keys = stream.as_slice();
    let params = SketchParams::new(5, 1024);

    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("scalar_update", |b| {
        b.iter(|| {
            let mut s = CountSketch::new(params, 7);
            for &k in keys {
                s.update(black_box(k), 1);
            }
            s
        })
    });

    for slice in [8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("update_batch", slice),
            &slice,
            |b, &slice| {
                b.iter(|| {
                    let mut s = CountSketch::new(params, 7);
                    for block in keys.chunks(slice) {
                        s.update_batch(black_box(block));
                    }
                    s
                })
            },
        );
    }

    group.bench_function("exact_tier_update", |b| {
        b.iter(|| {
            let mut s = CountSketch::new(params, 7);
            for &k in keys {
                s.update_exact(black_box(k), 1);
            }
            s
        })
    });

    group.bench_function("striped_shared_add", |b| {
        b.iter(|| {
            let s = SharedCountSketch::new(params, 7);
            for &k in keys {
                s.add(black_box(k));
            }
            s
        })
    });

    group.bench_function("atomic_shared_add", |b| {
        b.iter(|| {
            let s = AtomicCountSketch::new(params, 7);
            for &k in keys {
                s.add(black_box(k));
            }
            s
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
