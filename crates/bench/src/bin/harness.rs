//! The experiment harness: one subcommand per table/figure.
//!
//! ```text
//! harness <experiment> [--small] [--records <path>]
//!
//! experiments:
//!   table1            empirical Table 1 (SAMPLING / KPS / Count-Sketch / Space-Saving)
//!   table1-theory     the paper's analytic Table 1 on the same grid
//!   error-vs-b        Lemma 4: estimate error against the 8γ bound, sweeping b
//!   error-vs-t        Lemma 3: failure-rate decay, sweeping t
//!   approxtop         Lemma 5: APPROXTOP guarantee vs bucket provisioning
//!   maxchange         §4.2: two-pass max-change on planted query streams
//!   space-vs-payload  §5: total space including stored objects, sweeping Φ
//!   crossover         SAMPLING/Count-Sketch min-space ratio on a fine z grid
//!   ablation          combiner / sign-hash / heap-policy / hash-family ablations
//!   list-size         §4.1's candidate-list-size formula vs measured minimum
//!   hierarchical      1-pass hierarchical max-change vs the 2-pass §4.2 algorithm
//!   throughput        update/query throughput of every algorithm
//!   report            re-render stored --records JSONL as tables
//!   all               every experiment above
//! ```
//!
//! `--small` runs the reduced test-scale workload (seconds instead of
//! minutes). `--records <path>` appends JSON-line records for each data
//! point.

use cs_bench::experiments::{
    ablation, approxtop, crossover, error_curves, hierarchical, list_size, maxchange, payload,
    table1, throughput, ExperimentOutput,
};
use cs_bench::Scale;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: harness <table1|table1-theory|error-vs-b|error-vs-t|approxtop|maxchange|space-vs-payload|crossover|ablation|list-size|hierarchical|throughput|report|all> [--small] [--records <path>]"
    );
    std::process::exit(2);
}

fn run_experiment(name: &str, scale: &Scale) -> Option<ExperimentOutput> {
    match name {
        "table1" => Some(table1::run(scale, &table1::DEFAULT_ZS)),
        "table1-theory" => Some(table1::run_theory(scale, &table1::DEFAULT_ZS)),
        "error-vs-b" => Some(error_curves::run_error_vs_b(
            scale,
            7,
            &error_curves::DEFAULT_BS,
        )),
        "error-vs-t" => Some(error_curves::run_error_vs_t(
            scale,
            1024,
            &error_curves::DEFAULT_TS,
        )),
        "approxtop" => Some(approxtop::run(scale, &[0.75, 1.0, 1.25], &[0.1, 0.25, 0.5])),
        "maxchange" => Some(maxchange::run(scale, &[256, 1024, 4096], &[1, 2, 4])),
        "space-vs-payload" => Some(payload::run(scale, &payload::DEFAULT_PAYLOADS)),
        "crossover" => Some(crossover::run(scale, &crossover::DEFAULT_ZS)),
        "ablation" => Some(ablation::run(scale)),
        "list-size" => Some(list_size::run(scale, &[0.6, 0.8, 1.0, 1.25, 1.5], 0.5)),
        "hierarchical" => Some(hierarchical::run(scale, &[256, 1024, 4096])),
        "throughput" => Some(throughput::run(scale)),
        _ => None,
    }
}

const ALL: [&str; 12] = [
    "throughput",
    "hierarchical",
    "list-size",
    "table1",
    "table1-theory",
    "error-vs-b",
    "error-vs-t",
    "approxtop",
    "maxchange",
    "space-vs-payload",
    "crossover",
    "ablation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].as_str();
    // `harness report --records <path>` re-renders stored records
    // without running anything.
    if experiment == "report" {
        let path = args
            .iter()
            .position(|a| a == "--records")
            .and_then(|i| args.get(i + 1))
            .unwrap_or_else(|| {
                eprintln!("usage: harness report --records <path>");
                std::process::exit(2);
            });
        let jsonl = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        print!("{}", cs_metrics::report::render_report(&jsonl));
        return;
    }
    let small = args.iter().any(|a| a == "--small");
    let records_path = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if small { Scale::small() } else { Scale::full() };

    let names: Vec<&str> = if experiment == "all" {
        ALL.to_vec()
    } else {
        vec![experiment]
    };

    let mut records_file = records_path.map(|p| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&p)
            .unwrap_or_else(|e| panic!("cannot open {p}: {e}"))
    });

    for name in names {
        eprintln!(
            "[harness] running {name} (scale: {})",
            if small { "small" } else { "full" }
        );
        let start = std::time::Instant::now();
        let Some(out) = run_experiment(name, &scale) else {
            usage();
        };
        println!("{}", out.render());
        eprintln!("[harness] {name} finished in {:.1?}", start.elapsed());
        if let Some(f) = records_file.as_mut() {
            for r in &out.records {
                writeln!(f, "{}", r.to_json_line()).expect("write records");
            }
        }
    }
}
