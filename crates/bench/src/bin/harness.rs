//! The experiment harness: one subcommand per table/figure.
//!
//! ```text
//! harness <experiment> [--small] [--records <path>] [--bench-json <path>]
//!
//! experiments:
//!   table1            empirical Table 1 (SAMPLING / KPS / Count-Sketch / Space-Saving)
//!   table1-theory     the paper's analytic Table 1 on the same grid
//!   error-vs-b        Lemma 4: estimate error against the 8γ bound, sweeping b
//!   error-vs-t        Lemma 3: failure-rate decay, sweeping t
//!   approxtop         Lemma 5: APPROXTOP guarantee vs bucket provisioning
//!   maxchange         §4.2: two-pass max-change on planted query streams
//!   space-vs-payload  §5: total space including stored objects, sweeping Φ
//!   crossover         SAMPLING/Count-Sketch min-space ratio on a fine z grid
//!   ablation          combiner / sign-hash / heap-policy / hash-family ablations
//!   list-size         §4.1's candidate-list-size formula vs measured minimum
//!   hierarchical      1-pass hierarchical max-change vs the 2-pass §4.2 algorithm
//!   throughput        update/query throughput of every algorithm
//!   parallel          multi-core ingestion scaling sweep (pool/atomic/striped)
//!   query             read-path ESTIMATE throughput (scalar/batch/cached × depth)
//!   fault-matrix      recovery + merged accuracy vs failed sites over loopback TCP
//!   report            re-render stored --records JSONL as tables
//!   check-throughput  compare a BENCH_throughput.json against a baseline
//!   check-parallel    gate a BENCH_parallel.json: regression + 4-thread speedup
//!   check-query       gate a BENCH_query.json: regression + 2x batch kernel speedup
//!   all               every experiment above
//! ```
//!
//! `--small` runs the reduced test-scale workload (seconds instead of
//! minutes). `--records <path>` appends JSON-line records for each data
//! point. The throughput, parallel and query experiments additionally
//! write a machine-readable `BENCH_throughput.json` /
//! `BENCH_parallel.json` / `BENCH_query.json` (default: current
//! directory; override with `--bench-json <path>`). Under `--small` the
//! defaults become `BENCH_*.small.json`: the committed full-scale
//! artifacts are only ever written by a full-scale run, so a CI smoke
//! sweep (`harness all --small`) cannot clobber them.
//!
//! `check-throughput` is the CI regression gate:
//!
//! ```text
//! harness check-throughput [--baseline ci/throughput_baseline.json]
//!                          [--current BENCH_throughput.json]
//!                          [--algorithm count-sketch] [--tolerance 0.2]
//! ```
//!
//! exits non-zero if the algorithm's update throughput in `--current`
//! falls more than `tolerance` below the baseline, or if `--current` was
//! benchmarked at a different git revision than the checkout (stale
//! numbers must never pass a gate — regenerate them at HEAD).
//!
//! `check-parallel` gates the scaling sweep the same way:
//!
//! ```text
//! harness check-parallel [--baseline ci/parallel_baseline.json]
//!                        [--current BENCH_parallel.json]
//!                        [--tolerance 0.5] [--min-speedup 1.7]
//! ```
//!
//! fails on a stale git revision, on a 1-thread pool regression beyond
//! `--tolerance`, and — only when the benchmarked host had ≥ 4 cores —
//! on a pool 4-thread/1-thread speedup below `--min-speedup`. On smaller
//! hosts the speedup gate prints a loud warning instead of arming, since
//! parallel speedup on a 1-core box is noise.
//!
//! `check-query` gates the read path:
//!
//! ```text
//! harness check-query [--baseline ci/query_baseline.json]
//!                     [--current BENCH_query.json]
//!                     [--tolerance 0.5] [--min-ratio 2.0]
//! ```
//!
//! fails on a stale git revision, on a scalar `t = 5` Zipf-mix
//! regression beyond `--tolerance`, and on a batch/scalar kernel ratio
//! at `t = 5` below `--min-ratio`. The ratio gate is *always* armed: it
//! compares two single-threaded paths over the same probes in the same
//! process, so unlike parallel speedup it is meaningful on any host.

use cs_bench::experiments::{
    ablation, approxtop, crossover, error_curves, fault_matrix, hierarchical, list_size, maxchange,
    parallel, payload, query, table1, throughput, ExperimentOutput,
};
use cs_bench::{artifact_path, Scale};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: harness <table1|table1-theory|error-vs-b|error-vs-t|approxtop|maxchange|space-vs-payload|crossover|ablation|list-size|hierarchical|throughput|parallel|query|fault-matrix|report|check-throughput|check-parallel|check-query|all> [--small] [--records <path>] [--bench-json <path>]"
    );
    std::process::exit(2);
}

/// The current short git revision, or `"unknown"` outside a checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Reads a file or exits loudly.
fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

/// Fails loudly when `path`'s recorded `git_rev` differs from the
/// checkout's HEAD: a gate that passes on stale numbers is worse than no
/// gate, because it certifies a revision nobody benchmarked. Outside a
/// checkout (rev `unknown`) the check degrades to a warning.
fn assert_fresh_rev(path: &str, text: &str) {
    let head = git_rev();
    if head == "unknown" {
        eprintln!("warning: not in a git checkout; cannot verify {path} is fresh");
        return;
    }
    match throughput::parse_git_rev(text) {
        Some(rev) if rev == head => {}
        Some(rev) => {
            eprintln!(
                "FAIL: {path} was benchmarked at git rev {rev} but HEAD is {head}; \
                 stale numbers cannot pass a gate — regenerate the file at HEAD"
            );
            std::process::exit(1);
        }
        None => {
            eprintln!("FAIL: {path} has no git_rev header; regenerate it with the harness");
            std::process::exit(1);
        }
    }
}

/// `check-throughput`: compares the `count-sketch` (or `--algorithm`)
/// update rate in `--current` against `--baseline`, failing the process
/// if it regressed by more than `--tolerance` (fraction, default 0.2) or
/// if `--current` is stale with respect to HEAD.
fn check_throughput(args: &[String]) -> ! {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = get("--baseline").unwrap_or_else(|| "ci/throughput_baseline.json".into());
    let current_path = get("--current").unwrap_or_else(|| "BENCH_throughput.json".into());
    let algorithm = get("--algorithm").unwrap_or_else(|| "count-sketch".into());
    let tolerance: f64 = get("--tolerance")
        .map(|s| s.parse().expect("--tolerance must be a number"))
        .unwrap_or(0.2);
    let current_text = read_or_die(&current_path);
    assert_fresh_rev(&current_path, &current_text);
    let baseline = throughput::parse_bench_json(&read_or_die(&baseline_path));
    let current = throughput::parse_bench_json(&current_text);
    let pick = |map: &std::collections::BTreeMap<String, f64>, path: &str| {
        *map.get(&algorithm).unwrap_or_else(|| {
            eprintln!("no '{algorithm}' record in {path}");
            std::process::exit(1);
        })
    };
    let base = pick(&baseline, &baseline_path);
    let cur = pick(&current, &current_path);
    let floor = base * (1.0 - tolerance);
    if cur < floor {
        eprintln!(
            "FAIL: {algorithm} update throughput {cur:.1} Mops/s is below \
             {floor:.1} Mops/s ({:.0}% tolerance on baseline {base:.1})",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "ok: {algorithm} update throughput {cur:.1} Mops/s >= {floor:.1} Mops/s \
         ({:.0}% tolerance on baseline {base:.1})",
        tolerance * 100.0
    );
    std::process::exit(0);
}

/// `check-parallel`: the scaling-sweep gate. Three checks, in order:
/// `--current` must have been benchmarked at HEAD; the 1-thread pool
/// rate must be within `--tolerance` of the baseline (the pool's serial
/// overhead must not creep); and on hosts with ≥ 4 cores the pool's
/// 4-thread/1-thread speedup must reach `--min-speedup`. The speedup
/// gate deliberately compares the pool against *itself* at 1 thread —
/// comparing against plain sequential would conflate channel overhead
/// (gated separately via the baseline) with scaling.
fn check_parallel(args: &[String]) -> ! {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = get("--baseline").unwrap_or_else(|| "ci/parallel_baseline.json".into());
    let current_path = get("--current").unwrap_or_else(|| "BENCH_parallel.json".into());
    let tolerance: f64 = get("--tolerance")
        .map(|s| s.parse().expect("--tolerance must be a number"))
        .unwrap_or(0.5);
    let min_speedup: f64 = get("--min-speedup")
        .map(|s| s.parse().expect("--min-speedup must be a number"))
        .unwrap_or(1.7);
    let current_text = read_or_die(&current_path);
    assert_fresh_rev(&current_path, &current_text);
    let baseline = parallel::parse_bench_json(&read_or_die(&baseline_path));
    let current = parallel::parse_bench_json(&current_text);
    let pick = |map: &std::collections::BTreeMap<String, f64>, key: &str, path: &str| {
        *map.get(key).unwrap_or_else(|| {
            eprintln!("no '{key}' record in {path}");
            std::process::exit(1);
        })
    };
    let base1 = pick(&baseline, "pool@1", &baseline_path);
    let cur1 = pick(&current, "pool@1", &current_path);
    let floor = base1 * (1.0 - tolerance);
    if cur1 < floor {
        eprintln!(
            "FAIL: pool 1-thread ingest {cur1:.1} Mops/s is below {floor:.1} Mops/s \
             ({:.0}% tolerance on baseline {base1:.1})",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "ok: pool 1-thread ingest {cur1:.1} Mops/s >= {floor:.1} Mops/s \
         ({:.0}% tolerance on baseline {base1:.1})",
        tolerance * 100.0
    );
    let cores = parallel::parse_host_cores(&current_text).unwrap_or(1);
    if cores >= 4 {
        let cur4 = pick(&current, "pool@4", &current_path);
        let speedup = cur4 / cur1;
        if speedup < min_speedup {
            eprintln!(
                "FAIL: pool 4-thread speedup {speedup:.2}x ({cur4:.1} / {cur1:.1} Mops/s) \
                 is below the required {min_speedup:.2}x on a {cores}-core host"
            );
            std::process::exit(1);
        }
        println!(
            "ok: pool 4-thread speedup {speedup:.2}x ({cur4:.1} / {cur1:.1} Mops/s) \
             >= {min_speedup:.2}x on a {cores}-core host"
        );
    } else {
        eprintln!(
            "WARNING: {current_path} was benchmarked on a {cores}-core host; the \
             {min_speedup:.2}x 4-thread speedup gate is NOT armed (needs >= 4 cores) — \
             parallel speedup measured on an oversubscribed box is noise, not signal"
        );
    }
    std::process::exit(0);
}

/// `check-query`: the read-path gate. Three checks, in order:
/// `--current` must have been benchmarked at HEAD; the scalar `t = 5`
/// Zipf-mix rate must be within `--tolerance` of the baseline (the
/// baseline read path must not creep); and the batch/scalar ratio at
/// `t = 5` must reach `--min-ratio` (default 2.0) — the batched kernel's
/// reason to exist, measured within one process so it is armed on every
/// host.
fn check_query(args: &[String]) -> ! {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = get("--baseline").unwrap_or_else(|| "ci/query_baseline.json".into());
    let current_path = get("--current").unwrap_or_else(|| "BENCH_query.json".into());
    let tolerance: f64 = get("--tolerance")
        .map(|s| s.parse().expect("--tolerance must be a number"))
        .unwrap_or(0.5);
    let min_ratio: f64 = get("--min-ratio")
        .map(|s| s.parse().expect("--min-ratio must be a number"))
        .unwrap_or(2.0);
    let current_text = read_or_die(&current_path);
    assert_fresh_rev(&current_path, &current_text);
    let baseline = query::parse_bench_json(&read_or_die(&baseline_path));
    let current = query::parse_bench_json(&current_text);
    let pick = |map: &std::collections::BTreeMap<String, f64>, key: &str, path: &str| {
        *map.get(key).unwrap_or_else(|| {
            eprintln!("no '{key}' record in {path}");
            std::process::exit(1);
        })
    };
    let base_scalar = pick(&baseline, "scalar-zipf@5", &baseline_path);
    let cur_scalar = pick(&current, "scalar-zipf@5", &current_path);
    let floor = base_scalar * (1.0 - tolerance);
    if cur_scalar < floor {
        eprintln!(
            "FAIL: scalar t=5 query throughput {cur_scalar:.1} Mops/s is below \
             {floor:.1} Mops/s ({:.0}% tolerance on baseline {base_scalar:.1})",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "ok: scalar t=5 query throughput {cur_scalar:.1} Mops/s >= {floor:.1} Mops/s \
         ({:.0}% tolerance on baseline {base_scalar:.1})",
        tolerance * 100.0
    );
    let cur_batch = pick(&current, "batch-zipf@5", &current_path);
    let ratio = cur_batch / cur_scalar;
    if ratio < min_ratio {
        eprintln!(
            "FAIL: batch/scalar kernel ratio {ratio:.2}x ({cur_batch:.1} / {cur_scalar:.1} \
             Mops/s) at t=5 is below the required {min_ratio:.2}x"
        );
        std::process::exit(1);
    }
    println!(
        "ok: batch/scalar kernel ratio {ratio:.2}x ({cur_batch:.1} / {cur_scalar:.1} Mops/s) \
         at t=5 >= {min_ratio:.2}x"
    );
    std::process::exit(0);
}

fn run_experiment(name: &str, scale: &Scale) -> Option<ExperimentOutput> {
    match name {
        "table1" => Some(table1::run(scale, &table1::DEFAULT_ZS)),
        "table1-theory" => Some(table1::run_theory(scale, &table1::DEFAULT_ZS)),
        "error-vs-b" => Some(error_curves::run_error_vs_b(
            scale,
            7,
            &error_curves::DEFAULT_BS,
        )),
        "error-vs-t" => Some(error_curves::run_error_vs_t(
            scale,
            1024,
            &error_curves::DEFAULT_TS,
        )),
        "approxtop" => Some(approxtop::run(scale, &[0.75, 1.0, 1.25], &[0.1, 0.25, 0.5])),
        "maxchange" => Some(maxchange::run(scale, &[256, 1024, 4096], &[1, 2, 4])),
        "space-vs-payload" => Some(payload::run(scale, &payload::DEFAULT_PAYLOADS)),
        "crossover" => Some(crossover::run(scale, &crossover::DEFAULT_ZS)),
        "ablation" => Some(ablation::run(scale)),
        "list-size" => Some(list_size::run(scale, &[0.6, 0.8, 1.0, 1.25, 1.5], 0.5)),
        "hierarchical" => Some(hierarchical::run(scale, &[256, 1024, 4096])),
        "throughput" => Some(throughput::run(scale)),
        "parallel" => Some(parallel::run(scale)),
        "query" => Some(query::run(scale)),
        "fault-matrix" => Some(fault_matrix::run(scale)),
        _ => None,
    }
}

const ALL: [&str; 15] = [
    "throughput",
    "parallel",
    "query",
    "fault-matrix",
    "hierarchical",
    "list-size",
    "table1",
    "table1-theory",
    "error-vs-b",
    "error-vs-t",
    "approxtop",
    "maxchange",
    "space-vs-payload",
    "crossover",
    "ablation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].as_str();
    if experiment == "check-throughput" {
        check_throughput(&args[1..]);
    }
    if experiment == "check-parallel" {
        check_parallel(&args[1..]);
    }
    if experiment == "check-query" {
        check_query(&args[1..]);
    }
    // `harness report --records <path>` re-renders stored records
    // without running anything.
    if experiment == "report" {
        let path = args
            .iter()
            .position(|a| a == "--records")
            .and_then(|i| args.get(i + 1))
            .unwrap_or_else(|| {
                eprintln!("usage: harness report --records <path>");
                std::process::exit(2);
            });
        let jsonl = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        print!("{}", cs_metrics::report::render_report(&jsonl));
        return;
    }
    let small = args.iter().any(|a| a == "--small");
    let records_path = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if small { Scale::small() } else { Scale::full() };

    let names: Vec<&str> = if experiment == "all" {
        ALL.to_vec()
    } else {
        vec![experiment]
    };

    let mut records_file = records_path.map(|p| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&p)
            .unwrap_or_else(|e| panic!("cannot open {p}: {e}"))
    });

    for name in names {
        eprintln!(
            "[harness] running {name} (scale: {})",
            if small { "small" } else { "full" }
        );
        let start = std::time::Instant::now();
        let Some(out) = run_experiment(name, &scale) else {
            usage();
        };
        println!("{}", out.render());
        eprintln!("[harness] {name} finished in {:.1?}", start.elapsed());
        if let Some(f) = records_file.as_mut() {
            for r in &out.records {
                writeln!(f, "{}", r.to_json_line()).expect("write records");
            }
        }
        // Defaults go through `artifact_path` so `--small` runs write
        // `BENCH_*.small.json` and can never overwrite the committed
        // full-scale artifacts (the `harness all --small` clobber bug).
        let bench_json_payload = match name {
            "throughput" => Some((
                artifact_path("BENCH_throughput", "json", small),
                throughput::bench_json(&out, &scale, &git_rev()),
            )),
            "parallel" => Some((
                artifact_path("BENCH_parallel", "json", small),
                parallel::bench_json(&out, &scale, &git_rev(), parallel::host_cores()),
            )),
            "query" => Some((
                artifact_path("BENCH_query", "json", small),
                query::bench_json(&out, &scale, &git_rev()),
            )),
            _ => None,
        };
        if let Some((default_path, json)) = bench_json_payload {
            let path = args
                .iter()
                .position(|a| a == "--bench-json")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or(default_path);
            std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("[harness] wrote {path}");
        }
    }
}
