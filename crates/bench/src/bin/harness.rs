//! The experiment harness: one subcommand per table/figure.
//!
//! ```text
//! harness <experiment> [--small] [--records <path>] [--bench-json <path>]
//!
//! experiments:
//!   table1            empirical Table 1 (SAMPLING / KPS / Count-Sketch / Space-Saving)
//!   table1-theory     the paper's analytic Table 1 on the same grid
//!   error-vs-b        Lemma 4: estimate error against the 8γ bound, sweeping b
//!   error-vs-t        Lemma 3: failure-rate decay, sweeping t
//!   approxtop         Lemma 5: APPROXTOP guarantee vs bucket provisioning
//!   maxchange         §4.2: two-pass max-change on planted query streams
//!   space-vs-payload  §5: total space including stored objects, sweeping Φ
//!   crossover         SAMPLING/Count-Sketch min-space ratio on a fine z grid
//!   ablation          combiner / sign-hash / heap-policy / hash-family ablations
//!   list-size         §4.1's candidate-list-size formula vs measured minimum
//!   hierarchical      1-pass hierarchical max-change vs the 2-pass §4.2 algorithm
//!   throughput        update/query throughput of every algorithm
//!   report            re-render stored --records JSONL as tables
//!   check-throughput  compare a BENCH_throughput.json against a baseline
//!   all               every experiment above
//! ```
//!
//! `--small` runs the reduced test-scale workload (seconds instead of
//! minutes). `--records <path>` appends JSON-line records for each data
//! point. The throughput experiment additionally writes a
//! machine-readable `BENCH_throughput.json` (default: current directory;
//! override with `--bench-json <path>`).
//!
//! `check-throughput` is the CI regression gate:
//!
//! ```text
//! harness check-throughput [--baseline ci/throughput_baseline.json]
//!                          [--current BENCH_throughput.json]
//!                          [--algorithm count-sketch] [--tolerance 0.2]
//! ```
//!
//! exits non-zero if the algorithm's update throughput in `--current`
//! falls more than `tolerance` below the baseline.

use cs_bench::experiments::{
    ablation, approxtop, crossover, error_curves, hierarchical, list_size, maxchange, payload,
    table1, throughput, ExperimentOutput,
};
use cs_bench::Scale;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: harness <table1|table1-theory|error-vs-b|error-vs-t|approxtop|maxchange|space-vs-payload|crossover|ablation|list-size|hierarchical|throughput|report|check-throughput|all> [--small] [--records <path>] [--bench-json <path>]"
    );
    std::process::exit(2);
}

/// The current short git revision, or `"unknown"` outside a checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// `check-throughput`: compares the `count-sketch` (or `--algorithm`)
/// update rate in `--current` against `--baseline`, failing the process
/// if it regressed by more than `--tolerance` (fraction, default 0.2).
fn check_throughput(args: &[String]) -> ! {
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = get("--baseline").unwrap_or_else(|| "ci/throughput_baseline.json".into());
    let current_path = get("--current").unwrap_or_else(|| "BENCH_throughput.json".into());
    let algorithm = get("--algorithm").unwrap_or_else(|| "count-sketch".into());
    let tolerance: f64 = get("--tolerance")
        .map(|s| s.parse().expect("--tolerance must be a number"))
        .unwrap_or(0.2);
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let baseline = throughput::parse_bench_json(&read(&baseline_path));
    let current = throughput::parse_bench_json(&read(&current_path));
    let pick = |map: &std::collections::BTreeMap<String, f64>, path: &str| {
        *map.get(&algorithm).unwrap_or_else(|| {
            eprintln!("no '{algorithm}' record in {path}");
            std::process::exit(1);
        })
    };
    let base = pick(&baseline, &baseline_path);
    let cur = pick(&current, &current_path);
    let floor = base * (1.0 - tolerance);
    if cur < floor {
        eprintln!(
            "FAIL: {algorithm} update throughput {cur:.1} Mops/s is below \
             {floor:.1} Mops/s ({:.0}% tolerance on baseline {base:.1})",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "ok: {algorithm} update throughput {cur:.1} Mops/s >= {floor:.1} Mops/s \
         ({:.0}% tolerance on baseline {base:.1})",
        tolerance * 100.0
    );
    std::process::exit(0);
}

fn run_experiment(name: &str, scale: &Scale) -> Option<ExperimentOutput> {
    match name {
        "table1" => Some(table1::run(scale, &table1::DEFAULT_ZS)),
        "table1-theory" => Some(table1::run_theory(scale, &table1::DEFAULT_ZS)),
        "error-vs-b" => Some(error_curves::run_error_vs_b(
            scale,
            7,
            &error_curves::DEFAULT_BS,
        )),
        "error-vs-t" => Some(error_curves::run_error_vs_t(
            scale,
            1024,
            &error_curves::DEFAULT_TS,
        )),
        "approxtop" => Some(approxtop::run(scale, &[0.75, 1.0, 1.25], &[0.1, 0.25, 0.5])),
        "maxchange" => Some(maxchange::run(scale, &[256, 1024, 4096], &[1, 2, 4])),
        "space-vs-payload" => Some(payload::run(scale, &payload::DEFAULT_PAYLOADS)),
        "crossover" => Some(crossover::run(scale, &crossover::DEFAULT_ZS)),
        "ablation" => Some(ablation::run(scale)),
        "list-size" => Some(list_size::run(scale, &[0.6, 0.8, 1.0, 1.25, 1.5], 0.5)),
        "hierarchical" => Some(hierarchical::run(scale, &[256, 1024, 4096])),
        "throughput" => Some(throughput::run(scale)),
        _ => None,
    }
}

const ALL: [&str; 12] = [
    "throughput",
    "hierarchical",
    "list-size",
    "table1",
    "table1-theory",
    "error-vs-b",
    "error-vs-t",
    "approxtop",
    "maxchange",
    "space-vs-payload",
    "crossover",
    "ablation",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].as_str();
    if experiment == "check-throughput" {
        check_throughput(&args[1..]);
    }
    // `harness report --records <path>` re-renders stored records
    // without running anything.
    if experiment == "report" {
        let path = args
            .iter()
            .position(|a| a == "--records")
            .and_then(|i| args.get(i + 1))
            .unwrap_or_else(|| {
                eprintln!("usage: harness report --records <path>");
                std::process::exit(2);
            });
        let jsonl = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        print!("{}", cs_metrics::report::render_report(&jsonl));
        return;
    }
    let small = args.iter().any(|a| a == "--small");
    let records_path = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if small { Scale::small() } else { Scale::full() };

    let names: Vec<&str> = if experiment == "all" {
        ALL.to_vec()
    } else {
        vec![experiment]
    };

    let mut records_file = records_path.map(|p| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&p)
            .unwrap_or_else(|e| panic!("cannot open {p}: {e}"))
    });

    for name in names {
        eprintln!(
            "[harness] running {name} (scale: {})",
            if small { "small" } else { "full" }
        );
        let start = std::time::Instant::now();
        let Some(out) = run_experiment(name, &scale) else {
            usage();
        };
        println!("{}", out.render());
        eprintln!("[harness] {name} finished in {:.1?}", start.elapsed());
        if let Some(f) = records_file.as_mut() {
            for r in &out.records {
                writeln!(f, "{}", r.to_json_line()).expect("write records");
            }
        }
        if name == "throughput" {
            let path = args
                .iter()
                .position(|a| a == "--bench-json")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "BENCH_throughput.json".into());
            let json = throughput::bench_json(&out, &scale, &git_rev());
            std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("[harness] wrote {path}");
        }
    }
}
