//! Experiment scale presets.

/// Workload scale shared by all experiments.
///
/// `full()` is the scale EXPERIMENTS.md reports; `small()` keeps the same
/// code paths fast enough to run inside `cargo test`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Stream length `n`.
    pub n: usize,
    /// Universe size `m`.
    pub m: usize,
    /// Monte-Carlo trials per configuration.
    pub trials: u64,
    /// Top-k size for the headline experiments.
    pub k: usize,
}

impl Scale {
    /// Test scale: seconds, not minutes.
    pub fn small() -> Self {
        Self {
            n: 20_000,
            m: 2_000,
            trials: 3,
            k: 5,
        }
    }

    /// Report scale (used by the harness by default).
    pub fn full() -> Self {
        Self {
            n: 1_000_000,
            m: 100_000,
            trials: 5,
            k: 20,
        }
    }

    /// A scale with overridden stream length.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let s = Scale::small();
        let f = Scale::full();
        assert!(s.n < f.n);
        assert!(s.m < f.m);
        assert!(s.k >= 1 && f.k >= 1);
        assert!(s.trials >= 1);
    }

    #[test]
    fn with_n_overrides() {
        assert_eq!(Scale::small().with_n(42).n, 42);
    }
}
