//! Experiment scale presets.

/// Workload scale shared by all experiments.
///
/// `full()` is the scale EXPERIMENTS.md reports; `small()` keeps the same
/// code paths fast enough to run inside `cargo test`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Stream length `n`.
    pub n: usize,
    /// Universe size `m`.
    pub m: usize,
    /// Monte-Carlo trials per configuration.
    pub trials: u64,
    /// Top-k size for the headline experiments.
    pub k: usize,
}

impl Scale {
    /// Test scale: seconds, not minutes.
    pub fn small() -> Self {
        Self {
            n: 20_000,
            m: 2_000,
            trials: 3,
            k: 5,
        }
    }

    /// Report scale (used by the harness by default).
    pub fn full() -> Self {
        Self {
            n: 1_000_000,
            m: 100_000,
            trials: 5,
            k: 20,
        }
    }

    /// A scale with overridden stream length.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }
}

/// Default filename for a harness artifact at a given scale.
///
/// Full-scale runs own the committed `{stem}.{ext}` artifacts
/// (`BENCH_throughput.json`, `results/fault_matrix.txt`, …); `--small`
/// runs get `{stem}.small.{ext}` so a CI smoke sweep can never clobber
/// the committed full-scale numbers. `--bench-json` still overrides
/// either default explicitly.
pub fn artifact_path(stem: &str, ext: &str, small: bool) -> String {
    if small {
        format!("{stem}.small.{ext}")
    } else {
        format!("{stem}.{ext}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let s = Scale::small();
        let f = Scale::full();
        assert!(s.n < f.n);
        assert!(s.m < f.m);
        assert!(s.k >= 1 && f.k >= 1);
        assert!(s.trials >= 1);
    }

    #[test]
    fn with_n_overrides() {
        assert_eq!(Scale::small().with_n(42).n, 42);
    }

    /// Regression check for the `harness all --small` clobber bug: a
    /// small-scale run must never resolve to a committed full-scale
    /// artifact path.
    #[test]
    fn small_artifacts_never_collide_with_committed_ones() {
        for stem in ["BENCH_throughput", "BENCH_parallel", "BENCH_query"] {
            let full = artifact_path(stem, "json", false);
            let small = artifact_path(stem, "json", true);
            assert_eq!(full, format!("{stem}.json"));
            assert_eq!(small, format!("{stem}.small.json"));
            assert_ne!(full, small);
        }
        assert_eq!(
            artifact_path("results/fault_matrix", "txt", true),
            "results/fault_matrix.small.txt"
        );
    }
}
