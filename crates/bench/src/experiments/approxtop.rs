//! **Fig E2** — Lemma 5's APPROXTOP guarantee as a function of how much
//! of the prescribed bucket budget is provisioned.
//!
//! For each Zipf parameter and ε, compute the Lemma 5 bucket count
//! `b* = 8·max(k, 32·F₂^{res}/(ε·n_k)²)`, then run APPROXTOP with
//! `b = f·b*` for fractions `f ∈ {1/8, 1/4, 1/2, 1, 2}` and measure the
//! violation rates of both guarantees over trials. Expected shape: at
//! `f = 1` violations are (near) zero; they appear as `f` shrinks.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_core::approx_top::approx_top;
use cs_core::SketchParams;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::recall::ApproxTopValidity;
use cs_metrics::Table;
use cs_stream::{moments, ExactCounter, Zipf, ZipfStreamKind};

/// Default provisioning fractions of the Lemma 5 bucket count. The
/// constants in Lemma 5 are worst-case, so the failure knee sits well
/// below `b*` — the sweep reaches down to `b*/1000` to expose it.
pub const DEFAULT_FRACTIONS: [f64; 6] = [0.001, 0.004, 0.02, 0.1, 0.5, 1.0];

/// Runs the guarantee experiment for one `(z, eps)` pair.
pub fn run_one(scale: &Scale, z: f64, eps: f64, fractions: &[f64]) -> ExperimentOutput {
    let zipf = Zipf::new(scale.m, z);
    let stream = zipf.stream(scale.n, 0xA9, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let nk = exact.nk(scale.k);
    let res_f2 = moments::residual_f2(&exact, scale.k) as f64;
    let b_star = SketchParams::buckets_for_approx_top(scale.k, res_f2, nk, eps);
    let t = SketchParams::rows_practical(scale.n as u64, 0.05).min(15);

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "APPROXTOP guarantee vs bucket provisioning (z={z}, ε={eps}, k={}, b*={b_star}, t={t})",
            scale.k
        ),
        &[
            "b/b*",
            "b",
            "light-reported rate",
            "heavy-missing rate",
            "valid rate",
        ],
    );
    for &f in fractions {
        let b = ((b_star as f64 * f).round() as usize).max(1);
        let mut light = 0usize;
        let mut heavy = 0usize;
        let mut valid = 0usize;
        for trial in 0..scale.trials {
            let result = approx_top(&stream, scale.k, SketchParams::new(t, b), 0xA7 ^ trial);
            let v = ApproxTopValidity::check(&result.keys(), &exact, scale.k, eps);
            light += v.light_reported.min(1);
            heavy += v.heavy_missing.min(1);
            valid += usize::from(v.valid());
        }
        let trials = scale.trials as f64;
        table.row(&[
            format!("{f}"),
            format!("{b}"),
            format!("{:.2}", light as f64 / trials),
            format!("{:.2}", heavy as f64 / trials),
            format!("{:.2}", valid as f64 / trials),
        ]);
        out.records.push(
            ExperimentRecord::new("approxtop", "count-sketch")
                .param("z", z)
                .param("eps", eps)
                .param("fraction", f)
                .param("b", b as f64)
                .param("b_star", b_star as f64)
                .metric("light_rate", light as f64 / trials)
                .metric("heavy_rate", heavy as f64 / trials)
                .metric("valid_rate", valid as f64 / trials),
        );
    }
    out.tables.push(table);
    out
}

/// Runs the full grid.
pub fn run(scale: &Scale, zs: &[f64], epss: &[f64]) -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    for &z in zs {
        for &eps in epss {
            let one = run_one(scale, z, eps, &DEFAULT_FRACTIONS);
            out.tables.extend(one.tables);
            out.records.extend(one.records);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_provisioning_is_valid() {
        let scale = Scale::small();
        let out = run_one(&scale, 1.0, 0.25, &[1.0]);
        let valid = out.records[0].metrics["valid_rate"];
        assert!(
            valid >= 0.99,
            "Lemma 5 provisioning should give valid runs, got rate {valid}"
        );
    }

    #[test]
    fn validity_non_decreasing_in_budget() {
        let scale = Scale::small();
        let out = run_one(&scale, 0.75, 0.1, &[0.05, 1.0]);
        let tiny = out.records[0].metrics["valid_rate"];
        let full = out.records[1].metrics["valid_rate"];
        assert!(full >= tiny, "more buckets can't hurt: {tiny} -> {full}");
    }

    #[test]
    fn grid_produces_all_records() {
        let out = run(&Scale::small(), &[1.0], &[0.25, 0.5]);
        assert_eq!(out.records.len(), 2 * DEFAULT_FRACTIONS.len());
        assert_eq!(out.tables.len(), 2);
    }
}
