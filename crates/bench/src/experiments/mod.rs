//! One module per table/figure of the evaluation (see DESIGN.md's
//! per-experiment index).

pub mod ablation;
pub mod approxtop;
pub mod crossover;
pub mod error_curves;
pub mod fault_matrix;
pub mod hierarchical;
pub mod list_size;
pub mod maxchange;
pub mod parallel;
pub mod payload;
pub mod query;
pub mod table1;
pub mod throughput;

use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::Table;

/// What every experiment returns: human-readable tables plus raw records.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Rendered tables, printed by the harness.
    pub tables: Vec<Table>,
    /// Machine-readable data points (JSON lines).
    pub records: Vec<ExperimentRecord>,
}

impl ExperimentOutput {
    /// Renders all tables, separated by blank lines.
    pub fn render(&self) -> String {
        self.tables
            .iter()
            .map(Table::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Success criterion for CANDIDATETOP(S, k, l): the candidate list must
/// contain at least `k` items whose exact count is `>= n_k`. (Identity-
/// based recall would be unfair under count ties, which are common at
/// small Zipf parameters.)
pub fn candidate_top_success(
    candidates: &[cs_hash::ItemKey],
    exact: &cs_stream::ExactCounter,
    k: usize,
) -> bool {
    let nk = exact.nk(k);
    if nk == 0 {
        return true;
    }
    let hits = candidates
        .iter()
        .filter(|&&key| exact.count(key) >= nk)
        .count();
    hits >= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_hash::ItemKey;
    use cs_stream::{ExactCounter, Stream};

    #[test]
    fn success_criterion_counts_ties() {
        // counts: 1→3, 2→2, 3→2, 4→1; k=2 → n_k = 2.
        let exact = ExactCounter::from_stream(&Stream::from_ids([1, 1, 1, 2, 2, 3, 3, 4]));
        // Reporting items 1 and 3 succeeds even though "the" top-2 by
        // tie-break is {1, 2}: item 3 also has count >= n_k.
        assert!(candidate_top_success(&[ItemKey(1), ItemKey(3)], &exact, 2));
        assert!(!candidate_top_success(&[ItemKey(1), ItemKey(4)], &exact, 2));
        assert!(!candidate_top_success(&[ItemKey(1)], &exact, 2));
    }

    #[test]
    fn success_vacuous_for_empty_truth() {
        assert!(candidate_top_success(&[], &ExactCounter::new(), 3));
    }

    #[test]
    fn output_render_joins_tables() {
        let mut out = ExperimentOutput::default();
        out.tables.push(Table::new("one", &["a"]));
        out.tables.push(Table::new("two", &["b"]));
        let s = out.render();
        assert!(s.contains("## one") && s.contains("## two"));
    }
}
