//! **Fig E4** — the §5 object-storage argument.
//!
//! §5: the counters cost `O(log n)` bits for both algorithms, but the
//! Count-Sketch stores only `k` *objects* from the stream while SAMPLING
//! stores its whole distinct sample; with object payload `Φ ≫ log n`
//! (long query strings, URLs), the Count-Sketch's `O(k·log(n/δ) + k·Φ)`
//! beats SAMPLING's `O(k·log m·log(k/δ)·Φ)` at `z = 1`.
//!
//! Measured: total bytes (structure + payload·stored-objects) at the
//! minimum sizes found by the Table 1 doubling searches, swept over Φ.

use crate::config::Scale;
use crate::experiments::table1::{search_count_sketch, search_sampling};
use crate::experiments::ExperimentOutput;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::{ExactCounter, Zipf, ZipfStreamKind};

/// Default payload sweep in bytes.
pub const DEFAULT_PAYLOADS: [usize; 6] = [8, 32, 128, 512, 2048, 8192];

/// Runs the payload experiment at `z = 1.0`.
pub fn run(scale: &Scale, payloads: &[usize]) -> ExperimentOutput {
    let zipf = Zipf::new(scale.m, 1.0);
    let l = 4 * scale.k;
    let trials: Vec<_> = (0..scale.trials)
        .map(|t| {
            let stream = zipf.stream(scale.n, 0xFA ^ t, ZipfStreamKind::DeterministicRounded);
            let exact = ExactCounter::from_stream(&stream);
            (stream, exact)
        })
        .collect();

    // Find the minimal structures once; payload scales the object term.
    let cs = search_count_sketch(scale, &trials, l);
    let sampling = search_sampling(scale, &trials, l);

    // Objects stored: Count-Sketch keeps l heap entries; SAMPLING keeps
    // its distinct sample (knob is p; recompute the distinct count from
    // its measured space: 16 bytes per stored object).
    let cs_structure = cs.space_bytes.unwrap_or(usize::MAX);
    let sampling_structure = sampling.space_bytes.unwrap_or(usize::MAX);
    let cs_objects = l;
    let sampling_objects = sampling_structure / 16;

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Space vs object payload Φ (§5, z=1.0): CS stores {cs_objects} objects, SAMPLING stores {sampling_objects}"
        ),
        &["Φ (bytes)", "count-sketch total", "sampling total", "ratio"],
    );
    for &phi in payloads {
        let cs_total = cs_structure + cs_objects * phi;
        let sampling_total = sampling_structure + sampling_objects * phi;
        let ratio = sampling_total as f64 / cs_total as f64;
        table.row(&[
            fmt_num(phi as f64),
            fmt_num(cs_total as f64),
            fmt_num(sampling_total as f64),
            format!("{ratio:.2}"),
        ]);
        out.records.push(
            ExperimentRecord::new("space_vs_payload", "both")
                .param("phi", phi as f64)
                .metric("count_sketch_total", cs_total as f64)
                .metric("sampling_total", sampling_total as f64)
                .metric("ratio", ratio),
        );
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_grows_with_payload() {
        let out = run(&Scale::small(), &[8, 4096]);
        let small = out.records[0].metrics["ratio"];
        let large = out.records[1].metrics["ratio"];
        assert!(
            large >= small,
            "larger payloads must favour the Count-Sketch: {small} -> {large}"
        );
    }

    #[test]
    fn all_payloads_measured() {
        let out = run(&Scale::small(), &DEFAULT_PAYLOADS);
        assert_eq!(out.records.len(), DEFAULT_PAYLOADS.len());
    }
}
