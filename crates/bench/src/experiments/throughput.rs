//! **Runtime table** — wall-clock update and query throughput of every
//! algorithm on one Zipf(1.0) stream (criterion gives precise per-op
//! numbers; this gives EXPERIMENTS.md one comparable table without
//! parsing criterion output).

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_baselines::{
    ConciseSamples, CountMinSketch, CountingSamples, KpsFrequent, LossyCounting, MultiHashIceberg,
    SamplingAlgorithm, SpaceSaving, StickySampling, StreamSummary,
};
use cs_core::approx_top::ApproxTopProcessor;
use cs_core::{CountSketch, FastCountSketch, SketchParams};
use cs_hash::ItemKey;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::{Stream, Zipf, ZipfStreamKind};
use std::time::Instant;

fn mops(ops: usize, secs: f64) -> f64 {
    ops as f64 / secs / 1e6
}

/// Runs the throughput table.
pub fn run(scale: &Scale) -> ExperimentOutput {
    let zipf = Zipf::new(scale.m, 1.0);
    let stream = zipf.stream(scale.n, 0x77, ZipfStreamKind::Sampled);
    let probes: Vec<ItemKey> = (0..1000u64).map(ItemKey).collect();
    let params = SketchParams::new(5, 1024);

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Throughput on Zipf(1.0), n={}, m={} (Mops/s; query = 1000 point probes)",
            scale.n, scale.m
        ),
        &["algorithm", "update Mops/s", "query Mops/s"],
    );

    let mut push = |name: &str, update: f64, query: f64| {
        table.row(&[
            name.into(),
            fmt_num(update),
            if query.is_nan() {
                "—".into()
            } else {
                fmt_num(query)
            },
        ]);
        out.records.push(
            ExperimentRecord::new("throughput", name)
                .param("n", scale.n as f64)
                .metric("update_mops", update)
                .metric("query_mops", if query.is_nan() { -1.0 } else { query }),
        );
    };

    // Count-Sketch (bare) + fast variant.
    {
        let start = Instant::now();
        let mut s = CountSketch::new(params, 1);
        s.absorb(&stream, 1);
        let upd = mops(stream.len(), start.elapsed().as_secs_f64());
        let start = Instant::now();
        let mut acc = 0i64;
        for _ in 0..100 {
            for &p in &probes {
                acc = acc.wrapping_add(s.estimate(p));
            }
        }
        let q = mops(100 * probes.len(), start.elapsed().as_secs_f64());
        std::hint::black_box(acc);
        push("count-sketch", upd, q);
    }
    {
        let start = Instant::now();
        let mut s = FastCountSketch::new(params, 1);
        s.absorb(&stream, 1);
        let upd = mops(stream.len(), start.elapsed().as_secs_f64());
        let start = Instant::now();
        let mut acc = 0i64;
        for _ in 0..100 {
            for &p in &probes {
                acc = acc.wrapping_add(s.estimate(p));
            }
        }
        let q = mops(100 * probes.len(), start.elapsed().as_secs_f64());
        std::hint::black_box(acc);
        push("count-sketch (fast hashes)", upd, q);
    }
    // Full APPROXTOP loop.
    {
        let start = Instant::now();
        let mut p = ApproxTopProcessor::new(params, scale.k, 1);
        p.observe_stream(&stream);
        let upd = mops(stream.len(), start.elapsed().as_secs_f64());
        std::hint::black_box(p.result().items.len());
        push("count-sketch + heap", upd, f64::NAN);
    }

    // Baselines through the trait.
    let run_summary = |mut alg: Box<dyn StreamSummary>, stream: &Stream| -> (f64, f64) {
        let start = Instant::now();
        alg.process_stream(stream);
        let upd = mops(stream.len(), start.elapsed().as_secs_f64());
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..100 {
            for &p in &probes {
                acc = acc.wrapping_add(alg.estimate(p).unwrap_or(0));
            }
        }
        let q = mops(100 * probes.len(), start.elapsed().as_secs_f64());
        std::hint::black_box(acc);
        (upd, q)
    };
    let baselines: Vec<(&str, Box<dyn StreamSummary>)> = vec![
        ("sampling", Box::new(SamplingAlgorithm::new(0.01, 2))),
        (
            "concise-samples",
            Box::new(ConciseSamples::new(1000, 0.9, 3)),
        ),
        (
            "counting-samples",
            Box::new(CountingSamples::new(1000, 0.9, 4)),
        ),
        ("kps-frequent", Box::new(KpsFrequent::with_capacity(1000))),
        ("lossy-counting", Box::new(LossyCounting::new(0.001))),
        (
            "sticky-sampling",
            Box::new(StickySampling::new(0.01, 0.001, 0.1, 5)),
        ),
        (
            "count-min",
            Box::new(CountMinSketch::new(5, 1024, scale.k, 6)),
        ),
        ("space-saving", Box::new(SpaceSaving::new(1000))),
        (
            "multihash-iceberg",
            Box::new(MultiHashIceberg::new(
                5,
                1024,
                (scale.n / 200) as u64,
                1000,
                7,
            )),
        ),
    ];
    for (name, alg) in baselines {
        let (upd, q) = run_summary(alg, &stream);
        push(name, upd, q);
    }

    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_runs_and_reports_positive_rates() {
        let out = run(&Scale::small());
        assert_eq!(out.tables.len(), 1);
        assert!(out.records.len() >= 11);
        for r in &out.records {
            assert!(
                r.metrics["update_mops"] > 0.0,
                "{} reported non-positive throughput",
                r.algorithm
            );
        }
    }
}
