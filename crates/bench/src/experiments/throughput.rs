//! **Runtime table** — wall-clock update and query throughput of every
//! algorithm on one Zipf(1.0) stream (criterion gives precise per-op
//! numbers; this gives EXPERIMENTS.md one comparable table without
//! parsing criterion output).
//!
//! Every number is the **median of `scale.trials` independent timed
//! runs** (fresh algorithm instance per run): single-shot wall-clock
//! timings on shared/virtualized hardware swing by tens of percent, and
//! the median is the standard robust summary. The harness additionally
//! serializes the table as `BENCH_throughput.json` (see [`bench_json`])
//! so the perf trajectory is machine-checkable across revisions.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_baselines::{
    ConciseSamples, CountMinSketch, CountingSamples, KpsFrequent, LossyCounting, MultiHashIceberg,
    SamplingAlgorithm, SpaceSaving, StickySampling, StreamSummary,
};
use cs_core::approx_top::ApproxTopProcessor;
use cs_core::{CountSketch, FastCountSketch, SketchParams};
use cs_hash::ItemKey;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::stats::median;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::{Stream, Zipf, ZipfStreamKind};
use std::collections::BTreeMap;
use std::time::Instant;

/// Rows × buckets every sketch-shaped algorithm in the table uses.
const ROWS: usize = 5;
const BUCKETS: usize = 1024;
/// Each query trial runs this many passes over the 1000 probe keys.
const QUERY_ROUNDS: usize = 100;

fn mops(ops: usize, secs: f64) -> f64 {
    ops as f64 / secs / 1e6
}

/// Optional point-query closure handed to [`measure`].
type QueryFn<'a, A> = Option<&'a dyn Fn(&A, ItemKey) -> u64>;

/// Times `trials` fresh ingest runs and (optionally) query sweeps;
/// returns `(median update Mops/s, median query Mops/s)` with the query
/// half `NaN` when `query` is `None`.
fn measure<A>(
    trials: usize,
    stream: &Stream,
    probes: &[ItemKey],
    mut ingest: impl FnMut(&Stream) -> A,
    query: QueryFn<'_, A>,
) -> (f64, f64) {
    let mut upd = Vec::with_capacity(trials);
    let mut qry = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        let alg = ingest(stream);
        upd.push(mops(stream.len(), start.elapsed().as_secs_f64()));
        if let Some(q) = query {
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..QUERY_ROUNDS {
                for &p in probes {
                    acc = acc.wrapping_add(q(&alg, p));
                }
            }
            qry.push(mops(
                QUERY_ROUNDS * probes.len(),
                start.elapsed().as_secs_f64(),
            ));
            std::hint::black_box(acc);
        }
        std::hint::black_box(&alg);
    }
    let q = if qry.is_empty() {
        f64::NAN
    } else {
        median(&qry)
    };
    (median(&upd), q)
}

/// Runs the throughput table.
pub fn run(scale: &Scale) -> ExperimentOutput {
    let zipf = Zipf::new(scale.m, 1.0);
    let stream = zipf.stream(scale.n, 0x77, ZipfStreamKind::Sampled);
    let probes: Vec<ItemKey> = (0..1000u64).map(ItemKey).collect();
    let params = SketchParams::new(ROWS, BUCKETS);
    let trials = scale.trials.max(1) as usize;

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Throughput on Zipf(1.0), n={}, m={} (Mops/s, median of {} trials; query = 1000 point probes)",
            scale.n, scale.m, trials
        ),
        &["algorithm", "update Mops/s", "query Mops/s"],
    );

    let mut push = |name: &str, update: f64, query: f64| {
        table.row(&[
            name.into(),
            fmt_num(update),
            if query.is_nan() {
                "—".into()
            } else {
                fmt_num(query)
            },
        ]);
        out.records.push(
            ExperimentRecord::new("throughput", name)
                .param("n", scale.n as f64)
                .param("m", scale.m as f64)
                .param("z", 1.0)
                .param("trials", trials as f64)
                .param("rows", ROWS as f64)
                .param("buckets", BUCKETS as f64)
                .metric("update_mops", update)
                .metric("query_mops", if query.is_nan() { -1.0 } else { query }),
        );
    };

    // Count-Sketch: batched absorb (the default ingestion path), the
    // per-item scalar loop it replaced, and the fast-hash variant.
    let (upd, q) = measure(
        trials,
        &stream,
        &probes,
        |st| {
            let mut s = CountSketch::new(params, 1);
            s.absorb(st, 1);
            s
        },
        Some(&|s: &CountSketch, p| s.estimate(p) as u64),
    );
    push("count-sketch", upd, q);

    let (upd, q) = measure(
        trials,
        &stream,
        &probes,
        |st| {
            let mut s = CountSketch::new(params, 1);
            for key in st.iter() {
                s.update(key, 1);
            }
            s
        },
        Some(&|s: &CountSketch, p| s.estimate(p) as u64),
    );
    push("count-sketch (scalar update)", upd, q);

    let (upd, q) = measure(
        trials,
        &stream,
        &probes,
        |st| {
            let mut s = FastCountSketch::new(params, 1);
            s.absorb(st, 1);
            s
        },
        Some(&|s: &FastCountSketch, p| s.estimate(p) as u64),
    );
    push("count-sketch (fast hashes)", upd, q);

    // Full APPROXTOP loop (sketch + heap maintenance; no point queries):
    // the block-amortized path and the paper-verbatim per-item rule.
    let (upd, _) = measure(
        trials,
        &stream,
        &probes,
        |st| {
            let mut p = ApproxTopProcessor::new(params, scale.k, 1);
            p.observe_batch(st.as_slice());
            p
        },
        None::<&dyn Fn(&ApproxTopProcessor, ItemKey) -> u64>,
    );
    push("count-sketch + heap", upd, f64::NAN);

    let (upd, _) = measure(
        trials,
        &stream,
        &probes,
        |st| {
            let mut p = ApproxTopProcessor::new(params, scale.k, 1);
            p.observe_stream(st);
            p
        },
        None::<&dyn Fn(&ApproxTopProcessor, ItemKey) -> u64>,
    );
    push("count-sketch + heap (per-item)", upd, f64::NAN);

    // Baselines through the trait (process_stream now feeds the batch
    // path, which defaults to the per-item loop for all of these).
    type Factory = Box<dyn Fn() -> Box<dyn StreamSummary>>;
    let baselines: Vec<(&str, Factory)> = vec![
        (
            "sampling",
            Box::new(|| Box::new(SamplingAlgorithm::new(0.01, 2))),
        ),
        (
            "concise-samples",
            Box::new(|| Box::new(ConciseSamples::new(1000, 0.9, 3))),
        ),
        (
            "counting-samples",
            Box::new(|| Box::new(CountingSamples::new(1000, 0.9, 4))),
        ),
        (
            "kps-frequent",
            Box::new(|| Box::new(KpsFrequent::with_capacity(1000))),
        ),
        (
            "lossy-counting",
            Box::new(|| Box::new(LossyCounting::new(0.001))),
        ),
        (
            "sticky-sampling",
            Box::new(|| Box::new(StickySampling::new(0.01, 0.001, 0.1, 5))),
        ),
        ("count-min", {
            let k = scale.k;
            Box::new(move || Box::new(CountMinSketch::new(ROWS, BUCKETS, k, 6)))
        }),
        (
            "space-saving",
            Box::new(|| Box::new(SpaceSaving::new(1000))),
        ),
        ("multihash-iceberg", {
            let n = scale.n;
            Box::new(move || {
                Box::new(MultiHashIceberg::new(
                    ROWS,
                    BUCKETS,
                    (n / 200) as u64,
                    1000,
                    7,
                ))
            })
        }),
    ];
    // `measure`'s state type here is the boxed trait object itself, so
    // the query closure necessarily sees `&Box<dyn _>`.
    #[allow(clippy::borrowed_box)]
    fn query_boxed(alg: &Box<dyn StreamSummary>, p: ItemKey) -> u64 {
        alg.estimate(p).unwrap_or(0)
    }
    for (name, factory) in baselines {
        let (upd, q) = measure(
            trials,
            &stream,
            &probes,
            |st| {
                let mut alg = factory();
                alg.process_stream(st);
                alg
            },
            Some(&query_boxed),
        );
        push(name, upd, q);
    }

    out.tables.push(table);
    out
}

/// Renders the repo-root `BENCH_throughput.json` payload: schema header,
/// workload description, git revision, and one [`ExperimentRecord`] JSON
/// line per algorithm. Each record sits on its own line so
/// [`parse_bench_json`] (and the CI regression gate built on it) can
/// recover them without a full JSON parser.
pub fn bench_json(out: &ExperimentOutput, scale: &Scale, git_rev: &str) -> String {
    let rev: String = git_rev
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-')
        .collect();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench-throughput-v1\",\n");
    s.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    s.push_str(&format!(
        "  \"workload\": {{\"distribution\": \"zipf\", \"z\": 1.0, \"n\": {}, \"m\": {}, \"trials\": {}}},\n",
        scale.n,
        scale.m,
        scale.trials.max(1)
    ));
    s.push_str(&format!(
        "  \"sketch\": {{\"rows\": {ROWS}, \"buckets\": {BUCKETS}}},\n"
    ));
    s.push_str("  \"records\": [\n");
    let lines: Vec<String> = out
        .records
        .iter()
        .filter(|r| r.experiment == "throughput")
        .map(|r| format!("    {}", r.to_json_line()))
        .collect();
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Recovers `algorithm → update Mops/s` from a [`bench_json`] payload.
/// Lines that are not record objects are skipped, so the whole file can
/// be fed in as-is.
pub fn parse_bench_json(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"experiment\"") {
                return None;
            }
            ExperimentRecord::from_json_line(line).ok()
        })
        .filter_map(|r| {
            let mops = r.metrics.get("update_mops").copied()?;
            Some((r.algorithm, mops))
        })
        .collect()
}

/// Recovers the `git_rev` header field from a [`bench_json`]-shaped
/// payload (this experiment's and the parallel sweep's files share the
/// header layout). `None` when absent or empty.
pub fn parse_git_rev(text: &str) -> Option<String> {
    text.lines().find_map(|line| {
        let rest = line.trim().strip_prefix("\"git_rev\":")?;
        let rev = rest.trim().trim_end_matches(',').trim_matches('"').to_string();
        (!rev.is_empty()).then_some(rev)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_runs_and_reports_positive_rates() {
        let out = run(&Scale::small());
        assert_eq!(out.tables.len(), 1);
        assert!(out.records.len() >= 12);
        for r in &out.records {
            assert!(
                r.metrics["update_mops"] > 0.0,
                "{} reported non-positive throughput",
                r.algorithm
            );
        }
    }

    #[test]
    fn bench_json_roundtrips_through_parser() {
        let mut out = ExperimentOutput::default();
        for (name, mops) in [("count-sketch", 31.5), ("space-saving", 12.0)] {
            out.records.push(
                ExperimentRecord::new("throughput", name)
                    .param("n", 1000.0)
                    .metric("update_mops", mops)
                    .metric("query_mops", 2.0),
            );
        }
        // Records from other experiments must not leak in.
        out.records
            .push(ExperimentRecord::new("table1", "count-sketch").metric("update_mops", 999.0));
        let json = bench_json(&out, &Scale::small(), "abc123");
        assert!(json.contains("\"schema\": \"bench-throughput-v1\""));
        assert!(json.contains("\"git_rev\": \"abc123\""));
        let parsed = parse_bench_json(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["count-sketch"], 31.5);
        assert_eq!(parsed["space-saving"], 12.0);
    }

    #[test]
    fn bench_json_sanitizes_git_rev() {
        let out = ExperimentOutput::default();
        let json = bench_json(&out, &Scale::small(), "abc\"123\n$(rm)");
        assert!(json.contains("\"git_rev\": \"abc123rm\""));
    }

    #[test]
    fn git_rev_parses_from_header() {
        let out = ExperimentOutput::default();
        let json = bench_json(&out, &Scale::small(), "d06ae93");
        assert_eq!(parse_git_rev(&json).as_deref(), Some("d06ae93"));
        assert_eq!(parse_git_rev("{}"), None);
        assert_eq!(parse_git_rev("{\n  \"git_rev\": \"\",\n}"), None);
    }
}
