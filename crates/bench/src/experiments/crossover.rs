//! **Fig E5** — where the Count-Sketch beats SAMPLING.
//!
//! The discussion after Table 1: *"Our algorithm generally beats the
//! SAMPLING algorithm for Zipfian distributions with parameter less than
//! 1."* This experiment sweeps a fine Zipf grid and reports the measured
//! min-space ratio SAMPLING / Count-Sketch; values above 1 mean the
//! Count-Sketch wins. Expected shape: ratio well above 1 through the
//! moderate-skew regime, falling toward (or below) 1 as `z` grows past 1
//! and the problem becomes easy for sampling.

use crate::config::Scale;
use crate::experiments::table1::{search_count_sketch, search_sampling};
use crate::experiments::ExperimentOutput;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::{ExactCounter, Zipf, ZipfStreamKind};

/// Default fine grid.
pub const DEFAULT_ZS: [f64; 8] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6];

/// Runs the crossover sweep.
pub fn run(scale: &Scale, zs: &[f64]) -> ExperimentOutput {
    let l = 4 * scale.k;
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "SAMPLING / Count-Sketch measured min-space ratio (k={}, l={l}, n={}, m={})",
            scale.k, scale.n, scale.m
        ),
        &["z", "sampling bytes", "count-sketch bytes", "ratio"],
    );
    for &z in zs {
        let zipf = Zipf::new(scale.m, z);
        let trials: Vec<_> = (0..scale.trials)
            .map(|t| {
                let stream = zipf.stream(scale.n, 0xC0 ^ t, ZipfStreamKind::DeterministicRounded);
                let exact = ExactCounter::from_stream(&stream);
                (stream, exact)
            })
            .collect();
        let cs = search_count_sketch(scale, &trials, l);
        let sampling = search_sampling(scale, &trials, l);
        let (ratio, s_str, c_str) = match (sampling.space_bytes, cs.space_bytes) {
            (Some(s), Some(c)) => (s as f64 / c as f64, fmt_num(s as f64), fmt_num(c as f64)),
            (s, c) => (
                f64::NAN,
                s.map(|v| fmt_num(v as f64)).unwrap_or(">cap".into()),
                c.map(|v| fmt_num(v as f64)).unwrap_or(">cap".into()),
            ),
        };
        table.row(&[
            format!("{z:.2}"),
            s_str,
            c_str,
            if ratio.is_nan() {
                "—".into()
            } else {
                format!("{ratio:.2}")
            },
        ]);
        out.records.push(
            ExperimentRecord::new("crossover", "both")
                .param("z", z)
                .metric(
                    "sampling_bytes",
                    sampling
                        .space_bytes
                        .map(|v| v as f64)
                        .unwrap_or(f64::INFINITY),
                )
                .metric(
                    "count_sketch_bytes",
                    cs.space_bytes.map(|v| v as f64).unwrap_or(f64::INFINITY),
                )
                .metric("ratio", ratio),
        );
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_completes_with_finite_spaces() {
        let out = run(&Scale::small(), &[0.8, 1.2]);
        assert_eq!(out.records.len(), 2);
        for r in &out.records {
            assert!(r.metrics["sampling_bytes"].is_finite());
            assert!(r.metrics["count_sketch_bytes"].is_finite());
        }
    }

    #[test]
    fn table_has_one_row_per_z() {
        let out = run(&Scale::small(), &[1.0]);
        assert_eq!(out.tables[0].len(), 1);
    }
}
