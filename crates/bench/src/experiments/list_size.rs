//! **Fig E6** — §4.1's candidate-list size claim.
//!
//! The paper argues that for CANDIDATETOP on Zipf(z) it suffices to track
//! `l = k/(1-ε)^{1/z}` candidates — the smallest `l` with
//! `n_{l+1} < (1-ε)·n_k` — and that this is `O(k)`. This experiment
//! measures, by doubling search, the smallest `l` at which the two-pass
//! algorithm recovers the exact top-k in every trial, and prints it next
//! to the formula. Expected shape: measured `l` is a small multiple of
//! `k`, growing as `z` falls (flatter distributions need more slack),
//! tracking the formula's trend.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_core::candidate_top::{candidate_top_two_pass, zipf_candidate_list_size};
use cs_core::SketchParams;
use cs_hash::ItemKey;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::Table;
use cs_stream::{ExactCounter, Zipf, ZipfStreamKind};
use std::collections::HashSet;

/// Whether two-pass CANDIDATETOP with list size `l` recovers a true
/// top-k set (count-tie tolerant) in all trials.
fn succeeds(
    scale: &Scale,
    streams: &[(cs_stream::Stream, ExactCounter)],
    l: usize,
    b: usize,
) -> bool {
    for (t_idx, (stream, exact)) in streams.iter().enumerate() {
        let result = candidate_top_two_pass(
            stream,
            scale.k,
            l,
            SketchParams::new(7, b),
            0x15 ^ t_idx as u64,
        );
        let nk = exact.nk(scale.k);
        let got: HashSet<ItemKey> = result.top_k.iter().map(|&(key, _)| key).collect();
        let hits = got.iter().filter(|&&key| exact.count(key) >= nk).count();
        if hits < scale.k {
            return false;
        }
    }
    true
}

/// Runs the list-size experiment over a Zipf grid.
pub fn run(scale: &Scale, zs: &[f64], eps: f64) -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Candidate list size l for exact top-k via 2-pass (k={}, ε={eps}, n={}, m={})",
            scale.k, scale.n, scale.m
        ),
        &["z", "formula l", "measured min l", "ratio l/k"],
    );
    for &z in zs {
        let zipf = Zipf::new(scale.m, z);
        let streams: Vec<_> = (0..scale.trials)
            .map(|t| {
                let s = zipf.stream(scale.n, 0x1D ^ t, ZipfStreamKind::DeterministicRounded);
                let e = ExactCounter::from_stream(&s);
                (s, e)
            })
            .collect();
        // Size b by Lemma 5 at this ε — the regime the §4.1 l-formula is
        // stated for (estimation error up to ε·n_k). An oversized sketch
        // would drive the error to zero and make l = k trivially enough.
        let exact0 = &streams[0].1;
        let b = SketchParams::buckets_for_approx_top(
            scale.k,
            cs_stream::moments::residual_f2(exact0, scale.k) as f64,
            exact0.nk(scale.k).max(1),
            eps,
        )
        .min(1 << 21);
        let formula = zipf_candidate_list_size(scale.k, eps, z);
        let mut l = scale.k;
        let cap = 256 * scale.k;
        let measured = loop {
            if succeeds(scale, &streams, l, b) {
                break Some(l);
            }
            l *= 2;
            if l > cap {
                break None;
            }
        };
        let (m_str, ratio_str) = match measured {
            Some(l) => (l.to_string(), format!("{:.1}", l as f64 / scale.k as f64)),
            None => (">cap".into(), "—".into()),
        };
        table.row(&[format!("{z:.2}"), formula.to_string(), m_str, ratio_str]);
        out.records.push(
            ExperimentRecord::new("list_size", "count-sketch")
                .param("z", z)
                .param("eps", eps)
                .param("k", scale.k as f64)
                .metric("formula_l", formula as f64)
                .metric(
                    "measured_l",
                    measured.map(|l| l as f64).unwrap_or(f64::INFINITY),
                ),
        );
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_l_is_small_multiple_of_k_for_skewed_input() {
        let scale = Scale::small();
        let out = run(&scale, &[1.25], 0.5);
        let measured = out.records[0].metrics["measured_l"];
        assert!(measured.is_finite());
        assert!(
            measured <= 8.0 * scale.k as f64,
            "l = {measured} should be O(k) at z=1.25"
        );
    }

    #[test]
    fn low_skew_needs_no_smaller_l_than_high_skew() {
        let scale = Scale::small();
        let out = run(&scale, &[0.6, 1.5], 0.5);
        let low = out.records[0].metrics["measured_l"];
        let high = out.records[1].metrics["measured_l"];
        assert!(low >= high, "z=0.6 l={low} must be >= z=1.5 l={high}");
    }
}
