//! **Table 1** — empirical space comparison of SAMPLING, KPS and the
//! COUNT SKETCH for CANDIDATETOP(S, k, l) on Zipf(z) streams.
//!
//! The paper's Table 1 is analytic; this experiment measures the same
//! quantity empirically: for each algorithm, the minimum space (found by
//! doubling its size knob) at which it solves CANDIDATETOP in every
//! trial. The shape to reproduce: the Count-Sketch needs the least space
//! for `1/2 < z < 1` (its `b = O(k)` regime, where SAMPLING still pays a
//! `m^{1-z}k^z`-ish sample and KPS pays `n/n_k = H(z)·k^z`), while for
//! `z > 1` all algorithms are cheap and SAMPLING/KPS become competitive.
//!
//! Space-Saving is included as a fourth, post-paper column (DESIGN.md).

use crate::config::Scale;
use crate::experiments::{candidate_top_success, ExperimentOutput};
use cs_baselines::{KpsFrequent, SamplingAlgorithm, SpaceSaving, StreamSummary};
use cs_core::candidate_top::candidate_top_one_pass;
use cs_core::SketchParams;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::theory::{Table1Row, ZipfWorkload};
use cs_metrics::Table;
use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

/// The default Zipf grid: one value per regime of Table 1.
pub const DEFAULT_ZS: [f64; 5] = [0.25, 0.5, 0.75, 1.0, 1.5];

/// Sketch rows used by the empirical runs (fixed; Table 1's `log n`
/// factor is carried by the theory column — empirically a small constant
/// `t` already achieves the failure rates the trials can resolve).
pub const EMPIRICAL_ROWS: usize = 7;

/// Result of one doubling search.
#[derive(Debug, Clone, Copy)]
pub struct SearchResult {
    /// Minimal space in bytes at which all trials succeeded
    /// (`None` if the cap was hit without success).
    pub space_bytes: Option<usize>,
    /// The knob value (buckets / capacity / expected sample size).
    pub knob: f64,
}

fn streams_for(scale: &Scale, z: f64) -> Vec<(Stream, ExactCounter)> {
    let zipf = Zipf::new(scale.m, z);
    (0..scale.trials)
        .map(|trial| {
            let stream = zipf.stream(
                scale.n,
                0xBEEF ^ trial,
                ZipfStreamKind::DeterministicRounded,
            );
            let exact = ExactCounter::from_stream(&stream);
            (stream, exact)
        })
        .collect()
}

/// Doubling search for the Count-Sketch: knob = buckets `b`.
pub fn search_count_sketch(
    scale: &Scale,
    trials: &[(Stream, ExactCounter)],
    l: usize,
) -> SearchResult {
    let mut b = 8usize;
    let cap = 1usize << 22;
    while b <= cap {
        let mut all_ok = true;
        let mut space = 0usize;
        for (t_idx, (stream, exact)) in trials.iter().enumerate() {
            let result = candidate_top_one_pass(
                stream,
                l,
                SketchParams::new(EMPIRICAL_ROWS, b),
                0xC5 ^ t_idx as u64,
            );
            space = space.max(result.space_bytes);
            if !candidate_top_success(&result.keys(), exact, scale.k) {
                all_ok = false;
                break;
            }
        }
        if all_ok {
            return SearchResult {
                space_bytes: Some(space),
                knob: b as f64,
            };
        }
        b *= 2;
    }
    SearchResult {
        space_bytes: None,
        knob: cap as f64,
    }
}

/// Doubling search for SAMPLING: knob = inclusion probability `p`.
pub fn search_sampling(scale: &Scale, trials: &[(Stream, ExactCounter)], l: usize) -> SearchResult {
    // Start where the expected sample holds ~2l occurrences.
    let mut p = (2.0 * l as f64 / scale.n as f64).min(1.0);
    loop {
        let mut all_ok = true;
        let mut space = 0usize;
        for (t_idx, (stream, exact)) in trials.iter().enumerate() {
            let mut alg = SamplingAlgorithm::new(p, 0x5A ^ t_idx as u64);
            alg.process_stream(stream);
            space = space.max(alg.space_bytes());
            if !candidate_top_success(&alg.top_k_keys(l), exact, scale.k) {
                all_ok = false;
                break;
            }
        }
        if all_ok {
            return SearchResult {
                space_bytes: Some(space),
                knob: p,
            };
        }
        if p >= 1.0 {
            // Even p = 1 (exact counting) failed — only possible for
            // degenerate ties; report the exact-counting cost.
            return SearchResult {
                space_bytes: None,
                knob: 1.0,
            };
        }
        p = (p * 2.0).min(1.0);
    }
}

/// Doubling search for KPS: knob = counter capacity.
pub fn search_kps(scale: &Scale, trials: &[(Stream, ExactCounter)], l: usize) -> SearchResult {
    let mut capacity = scale.k.max(1);
    let cap = 1usize << 22;
    while capacity <= cap {
        let mut all_ok = true;
        for (stream, exact) in trials {
            let mut alg = KpsFrequent::with_capacity(capacity);
            alg.process_stream(stream);
            if !candidate_top_success(&alg.top_k_keys(l), exact, scale.k) {
                all_ok = false;
                break;
            }
        }
        if all_ok {
            return SearchResult {
                // KPS allocates its full counter budget.
                space_bytes: Some(capacity * 16),
                knob: capacity as f64,
            };
        }
        capacity *= 2;
    }
    SearchResult {
        space_bytes: None,
        knob: cap as f64,
    }
}

/// Doubling search for Space-Saving: knob = counter capacity.
pub fn search_space_saving(
    scale: &Scale,
    trials: &[(Stream, ExactCounter)],
    l: usize,
) -> SearchResult {
    let mut capacity = scale.k.max(1);
    let cap = 1usize << 22;
    while capacity <= cap {
        let mut all_ok = true;
        let mut space = 0usize;
        for (stream, exact) in trials {
            let mut alg = SpaceSaving::new(capacity);
            alg.process_stream(stream);
            space = space.max(alg.space_bytes());
            if !candidate_top_success(&alg.top_k_keys(l), exact, scale.k) {
                all_ok = false;
                break;
            }
        }
        if all_ok {
            return SearchResult {
                space_bytes: Some(space),
                knob: capacity as f64,
            };
        }
        capacity *= 2;
    }
    SearchResult {
        space_bytes: None,
        knob: cap as f64,
    }
}

fn fmt_space(r: &SearchResult) -> String {
    match r.space_bytes {
        Some(bytes) => fmt_num(bytes as f64),
        None => ">cap".to_string(),
    }
}

/// Runs the empirical Table 1.
pub fn run(scale: &Scale, zs: &[f64]) -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let l = 4 * scale.k;
    let mut table = Table::new(
        format!(
            "Table 1 (empirical): min space (bytes) for CANDIDATETOP(S, k={}, l={l}), n={}, m={}, {} trials",
            scale.k, scale.n, scale.m, scale.trials
        ),
        &["z", "sampling", "kps", "count-sketch", "space-saving"],
    );
    for &z in zs {
        let trials = streams_for(scale, z);
        let cs = search_count_sketch(scale, &trials, l);
        let sampling = search_sampling(scale, &trials, l);
        let kps = search_kps(scale, &trials, l);
        let ss = search_space_saving(scale, &trials, l);
        table.row(&[
            format!("{z:.2}"),
            fmt_space(&sampling),
            fmt_space(&kps),
            fmt_space(&cs),
            fmt_space(&ss),
        ]);
        for (name, r) in [
            ("sampling", &sampling),
            ("kps", &kps),
            ("count-sketch", &cs),
            ("space-saving", &ss),
        ] {
            out.records.push(
                ExperimentRecord::new("table1", name)
                    .param("z", z)
                    .param("n", scale.n as f64)
                    .param("m", scale.m as f64)
                    .param("k", scale.k as f64)
                    .param("l", l as f64)
                    .param("knob", r.knob)
                    .metric(
                        "space_bytes",
                        r.space_bytes.map(|b| b as f64).unwrap_or(f64::INFINITY),
                    ),
            );
        }
    }
    out.tables.push(table);
    out
}

/// Prints the paper's analytic Table 1 for the same grid.
pub fn run_theory(scale: &Scale, zs: &[f64]) -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Table 1 (theory, unit constants): m={}, n={}, k={}",
            scale.m, scale.n, scale.k
        ),
        &["z", "sampling", "kps", "count-sketch"],
    );
    for &z in zs {
        let row = Table1Row::evaluate(ZipfWorkload::new(scale.m, scale.n, scale.k, z));
        table.row(&[
            format!("{z:.2}"),
            fmt_num(row.sampling),
            fmt_num(row.kps),
            fmt_num(row.count_sketch),
        ]);
        out.records.push(
            ExperimentRecord::new("table1_theory", "all")
                .param("z", z)
                .metric("sampling", row.sampling)
                .metric("kps", row.kps)
                .metric("count_sketch", row.count_sketch),
        );
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_table1_completes_and_is_sane() {
        let scale = Scale::small();
        let out = run(&scale, &[0.75, 1.0]);
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.records.len(), 8);
        // Every algorithm found some finite space at these easy settings.
        for r in &out.records {
            assert!(
                r.metrics["space_bytes"].is_finite(),
                "{} failed at z={}",
                r.algorithm,
                r.params["z"]
            );
        }
    }

    #[test]
    fn count_sketch_space_shrinks_with_skew() {
        let scale = Scale::small();
        let easy = streams_for(&scale, 1.25);
        let hard = streams_for(&scale, 0.5);
        let l = 4 * scale.k;
        let b_easy = search_count_sketch(&scale, &easy, l);
        let b_hard = search_count_sketch(&scale, &hard, l);
        assert!(
            b_easy.knob <= b_hard.knob,
            "skewed streams must need no more buckets: {} vs {}",
            b_easy.knob,
            b_hard.knob
        );
    }

    #[test]
    fn theory_table_covers_grid() {
        let out = run_theory(&Scale::small(), &DEFAULT_ZS);
        assert_eq!(out.tables[0].len(), DEFAULT_ZS.len());
        assert_eq!(out.records.len(), DEFAULT_ZS.len());
    }

    #[test]
    fn render_produces_all_columns() {
        let out = run_theory(&Scale::small(), &[1.0]);
        let s = out.render();
        assert!(s.contains("sampling") && s.contains("count-sketch"));
    }
}
