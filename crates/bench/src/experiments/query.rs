//! **Read-path query throughput** — point-estimate rates of the three
//! ESTIMATE paths in `cs_core`, sweeping the sketch depth `t`:
//!
//! * `scalar` — `CountSketch::estimate` per probe, the pre-kernel read
//!   path (one hash-and-gather pass plus a combine per call, with
//!   per-call allocation);
//! * `batch` — `estimate_batch_with_scratch`: the block kernel that
//!   hashes a whole block of probes up front, gathers counters
//!   row-major, and combines per column out of a reusable scratch;
//! * `cached` — [`cs_core::query::QueryEngine`] with a bounded hot-key
//!   cache: repeat probes of a hot key are served from the cache and
//!   never touch the counter array.
//!
//! Each variant runs against two probe mixes over the same ingested
//! Zipf(1.0) sketch: `zipf` (probes drawn from the skewed distribution —
//! the repeat-heavy traffic a serving tier actually sees, where the
//! hot-key cache earns its keep) and `uniform` (probes spread evenly
//! over the universe — the cache-hostile worst case). Every number is
//! the **best of `scale.trials` timed rounds**, with the three variants
//! interleaved inside each round: the minimum elapsed time is the
//! closest observation of the code's actual cost on a shared host, and
//! interleaving means a scheduler or thermal stall lands on every
//! variant in the round, not just one. The cache deliberately persists
//! across a variant's rounds, as it would in a long-lived server. The
//! harness serializes the sweep as `BENCH_query.json` (see
//! [`bench_json`]); `harness check-query` gates CI on it, including the
//! ≥ 2× batch-over-scalar kernel guarantee at `t = 5`.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_core::query::QueryEngine;
use cs_core::sketch::EstimateBatchScratch;
use cs_core::{CountSketch, SketchParams};
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::{Zipf, ZipfStreamKind};
use std::collections::BTreeMap;
use std::time::Instant;

/// Buckets per row, shared by every depth (same as the throughput
/// table); the depth axis is what the sweep varies.
const BUCKETS: usize = 1024;
/// Sketch depths swept: the sorting-network sizes, which are also the
/// depths anyone actually deploys (Lemma 3 failure decay is exponential
/// in `t`).
pub const DEPTHS: [usize; 4] = [3, 5, 7, 9];
/// Hot-key cache capacity for the `cached` variant: large enough to
/// hold every head key of the Zipf mix, far smaller than the universe.
const CACHE_CAPACITY: usize = 4096;
/// Cap on the probe-set length: long enough that query wall time
/// dominates setup, short enough for the full-scale harness.
const MAX_PROBES: usize = 1_000_000;

/// Probe-set length for the sweep: 4× the scale's `n`, capped.
pub fn probe_len(scale: &Scale) -> usize {
    scale.n.saturating_mul(4).min(MAX_PROBES)
}

/// One timed run of `probe`, as a rate in Mops/s.
fn time_once(n: usize, probe: impl FnOnce()) -> f64 {
    let start = Instant::now();
    probe();
    n as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// Runs the query-throughput sweep.
pub fn run(scale: &Scale) -> ExperimentOutput {
    let probes = probe_len(scale);
    let zipf = Zipf::new(scale.m, 1.0);
    let ingest = zipf.stream(scale.n, 0x5eed, ZipfStreamKind::Sampled);
    let mixes = [
        ("zipf", zipf.stream(probes, 0xca11, ZipfStreamKind::Sampled)),
        (
            "uniform",
            Zipf::new(scale.m, 0.0).stream(probes, 0xca11, ZipfStreamKind::Sampled),
        ),
    ];
    let trials = scale.trials.max(1) as usize;

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Query throughput on a Zipf(1.0) sketch, n={}, m={}, {probes} probes \
             (Mops/s, best of {trials} interleaved rounds)",
            scale.n, scale.m
        ),
        &[
            "mix",
            "t",
            "scalar Mops/s",
            "batch Mops/s",
            "cached Mops/s",
            "batch/scalar",
            "cache hit rate",
        ],
    );

    for &rows in &DEPTHS {
        let mut sketch = CountSketch::new(SketchParams::new(rows, BUCKETS), 1);
        sketch.absorb(&ingest, 1);
        for (mix, probe_stream) in &mixes {
            let keys = probe_stream.as_slice();

            let mut scratch = EstimateBatchScratch::new();
            let mut ests = Vec::with_capacity(keys.len());
            let mut engine = QueryEngine::new(sketch.clone()).with_hot_key_cache(CACHE_CAPACITY);
            let (mut scalar, mut batch, mut cached) = (0.0f64, 0.0f64, 0.0f64);
            for _ in 0..trials {
                scalar = scalar.max(time_once(probes, || {
                    for &key in keys {
                        std::hint::black_box(sketch.estimate(key));
                    }
                }));
                batch = batch.max(time_once(probes, || {
                    sketch.estimate_batch_with_scratch(keys, &mut scratch, &mut ests);
                    std::hint::black_box(&ests);
                }));
                cached = cached.max(time_once(probes, || {
                    for &key in keys {
                        std::hint::black_box(engine.estimate(key));
                    }
                }));
            }
            let (hits, misses) = engine.cache_stats();
            let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);

            table.row(&[
                (*mix).into(),
                rows.to_string(),
                fmt_num(scalar),
                fmt_num(batch),
                fmt_num(cached),
                format!("{:.2}x", batch / scalar),
                format!("{:.0}%", hit_rate * 100.0),
            ]);
            for (variant, mops) in [("scalar", scalar), ("batch", batch), ("cached", cached)] {
                let mut record = ExperimentRecord::new("query", format!("{variant}-{mix}"))
                    .param("n", scale.n as f64)
                    .param("m", scale.m as f64)
                    .param("probes", probes as f64)
                    .param("trials", trials as f64)
                    .param("rows", rows as f64)
                    .param("buckets", BUCKETS as f64)
                    .metric("query_mops", mops)
                    .metric("speedup_vs_scalar", mops / scalar);
                if variant == "cached" {
                    record = record.metric("cache_hit_rate", hit_rate);
                }
                out.records.push(record);
            }
        }
    }

    out.tables.push(table);
    out
}

/// Renders the `BENCH_query.json` payload — the same shape as the other
/// bench files (schema header, git revision, workload, one record per
/// line) so [`parse_bench_json`] and `harness check-query` recover
/// everything without a full JSON parser.
pub fn bench_json(out: &ExperimentOutput, scale: &Scale, git_rev: &str) -> String {
    let rev: String = git_rev
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-')
        .collect();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench-query-v1\",\n");
    s.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    s.push_str(&format!(
        "  \"workload\": {{\"distribution\": \"zipf\", \"z\": 1.0, \"n\": {}, \"m\": {}, \"probes\": {}, \"trials\": {}}},\n",
        scale.n,
        scale.m,
        probe_len(scale),
        scale.trials.max(1)
    ));
    s.push_str(&format!(
        "  \"sketch\": {{\"buckets\": {BUCKETS}, \"depths\": [3, 5, 7, 9], \"cache_capacity\": {CACHE_CAPACITY}}},\n"
    ));
    s.push_str("  \"records\": [\n");
    let lines: Vec<String> = out
        .records
        .iter()
        .filter(|r| r.experiment == "query")
        .map(|r| format!("    {}", r.to_json_line()))
        .collect();
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Recovers `"variant-mix@rows" → query Mops/s` (e.g. `"batch-zipf@5"`)
/// from a [`bench_json`] payload. Non-record lines are skipped, so the
/// whole file can be fed in as-is.
pub fn parse_bench_json(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"experiment\"") {
                return None;
            }
            ExperimentRecord::from_json_line(line).ok()
        })
        .filter_map(|r| {
            let mops = r.metrics.get("query_mops").copied()?;
            let rows = r.params.get("rows").copied()? as u64;
            Some((format!("{}@{rows}", r.algorithm), mops))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_runs_and_reports_positive_rates() {
        let out = run(&Scale::small().with_n(2_000));
        assert_eq!(out.tables.len(), 1);
        // 3 variants × 2 mixes × 4 depths.
        assert_eq!(out.records.len(), 24);
        for r in &out.records {
            assert!(
                r.metrics["query_mops"] > 0.0,
                "{} reported non-positive throughput",
                r.algorithm
            );
            assert!(r.metrics["speedup_vs_scalar"] > 0.0);
        }
        let variants: std::collections::BTreeSet<&str> =
            out.records.iter().map(|r| r.algorithm.as_str()).collect();
        for v in [
            "scalar-zipf",
            "batch-zipf",
            "cached-zipf",
            "scalar-uniform",
            "batch-uniform",
            "cached-uniform",
        ] {
            assert!(variants.contains(v), "missing variant {v}");
        }
        // The hot-key cache must actually hit on the skewed mix: the head
        // of a Zipf(1.0) stream repeats far more often than once per key.
        let zipf_cached = out
            .records
            .iter()
            .find(|r| r.algorithm == "cached-zipf")
            .unwrap();
        assert!(
            zipf_cached.metrics["cache_hit_rate"] > 0.5,
            "cache hit rate {} on the zipf mix",
            zipf_cached.metrics["cache_hit_rate"]
        );
    }

    #[test]
    fn bench_json_roundtrips_through_parser() {
        let mut out = ExperimentOutput::default();
        for (variant, mops) in [("scalar-zipf", 10.0), ("batch-zipf", 25.0)] {
            out.records.push(
                ExperimentRecord::new("query", variant)
                    .param("rows", 5.0)
                    .metric("query_mops", mops)
                    .metric("speedup_vs_scalar", mops / 10.0),
            );
        }
        // Records from other experiments must not leak in.
        out.records
            .push(ExperimentRecord::new("throughput", "scalar").metric("query_mops", 999.0));
        let json = bench_json(&out, &Scale::small(), "abc123");
        assert!(json.contains("\"schema\": \"bench-query-v1\""));
        assert!(json.contains("\"git_rev\": \"abc123\""));
        let parsed = parse_bench_json(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["scalar-zipf@5"], 10.0);
        assert_eq!(parsed["batch-zipf@5"], 25.0);
    }
}
