//! **Fig E3** — the §4.2 two-pass max-change algorithm on paired query
//! streams with planted trends.
//!
//! Workload: two Zipf-background streams (independent samples, so
//! background items drift by sampling noise) plus planted trending /
//! vanishing items whose true changes dominate. Measured: recall of the
//! true top-k changers (vs the exact-diff oracle), and the accuracy of
//! the sketch's change estimates, as functions of the candidate-list
//! size `l` and the sketch width `b`.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_core::maxchange::max_change;
use cs_core::SketchParams;
use cs_hash::ItemKey;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::{ChangeSpec, ExactCounter, StreamPair};
use std::collections::HashSet;

/// Builds the planted workload: `planted` items with geometrically spread
/// change magnitudes, half trending up (absent in S1), half vanishing.
pub fn planted_pair(scale: &Scale, planted: usize, seed: u64) -> StreamPair {
    let base = (scale.n / 20).max(10) as u64;
    let specs: Vec<ChangeSpec> = (0..planted)
        .map(|i| {
            let magnitude = base / (1 + i as u64 / 2);
            let item = (scale.m + 1000 + i) as u64;
            if i % 2 == 0 {
                ChangeSpec {
                    item,
                    count_s1: 0,
                    count_s2: magnitude,
                }
            } else {
                ChangeSpec {
                    item,
                    count_s1: magnitude,
                    count_s2: 0,
                }
            }
        })
        .collect();
    StreamPair::zipf_background(scale.m, 1.0, scale.n, specs, seed)
}

/// Runs the max-change experiment for a grid of `(b, l)` settings.
pub fn run(scale: &Scale, bs: &[usize], l_factors: &[usize]) -> ExperimentOutput {
    let k = scale.k;
    let planted = 2 * k;
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Max-change (§4.2): recall of true top-{k} changers, {planted} planted items, n={}, m={}",
            scale.n, scale.m
        ),
        &["b", "l", "recall@k", "mean est err", "max est err"],
    );
    for &b in bs {
        for &lf in l_factors {
            let l = lf * k;
            let mut recall_sum = 0.0;
            let mut est_errs: Vec<f64> = Vec::new();
            for trial in 0..scale.trials {
                let pair = planted_pair(scale, planted, 0xD1F ^ trial);
                let e1 = ExactCounter::from_stream(&pair.s1);
                let e2 = ExactCounter::from_stream(&pair.s2);
                let truth: HashSet<ItemKey> = ExactCounter::top_k_change(&e1, &e2, k)
                    .into_iter()
                    .map(|(key, _)| key)
                    .collect();
                let result = max_change(
                    &pair.s1,
                    &pair.s2,
                    k,
                    l,
                    SketchParams::new(7, b),
                    0x3C ^ trial,
                );
                let got: HashSet<ItemKey> = result.items.iter().map(|c| c.key).collect();
                recall_sum += truth.intersection(&got).count() as f64 / truth.len() as f64;
                for item in &result.items {
                    est_errs.push((item.estimated_change - item.exact_change).abs() as f64);
                }
            }
            let recall = recall_sum / scale.trials as f64;
            let mean_err = cs_metrics::stats::mean(&est_errs);
            let max_err = est_errs.iter().cloned().fold(0.0, f64::max);
            table.row(&[
                fmt_num(b as f64),
                fmt_num(l as f64),
                format!("{recall:.3}"),
                fmt_num(mean_err),
                fmt_num(max_err),
            ]);
            out.records.push(
                ExperimentRecord::new("maxchange", "count-sketch")
                    .param("b", b as f64)
                    .param("l", l as f64)
                    .param("k", k as f64)
                    .metric("recall", recall)
                    .metric("mean_est_err", mean_err)
                    .metric("max_est_err", max_err),
            );
        }
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generous_sketch_achieves_high_recall() {
        let scale = Scale::small();
        let out = run(&scale, &[2048], &[4]);
        let recall = out.records[0].metrics["recall"];
        assert!(recall >= 0.8, "recall = {recall}");
    }

    #[test]
    fn recall_non_decreasing_in_b() {
        let scale = Scale::small();
        let out = run(&scale, &[16, 4096], &[4]);
        let small = out.records[0].metrics["recall"];
        let large = out.records[1].metrics["recall"];
        assert!(
            large + 1e-9 >= small,
            "wider sketch can't hurt: {small} -> {large}"
        );
    }

    #[test]
    fn planted_pair_has_expected_planted_count() {
        let scale = Scale::small();
        let pair = planted_pair(&scale, 6, 1);
        assert_eq!(pair.planted.len(), 6);
        // Alternating directions.
        assert!(pair.planted[0].delta() > 0);
        assert!(pair.planted[1].delta() < 0);
    }

    #[test]
    fn grid_covers_all_combinations() {
        let out = run(&Scale::small(), &[64, 128], &[2, 4]);
        assert_eq!(out.records.len(), 4);
    }
}
