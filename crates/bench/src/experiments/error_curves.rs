//! **Fig E1** — the Lemma 3/4 error bound, empirically.
//!
//! Two sweeps on a Zipf(1.0) stream:
//!
//! * `error vs b` at fixed `t`: max/mean absolute estimate error over the
//!   top-k and over random tail items, against the theoretical `8γ` with
//!   `γ = sqrt(F₂^{res(k)}/b)` (eq. 5). Expected shape: error scales as
//!   `1/sqrt(b)` and stays below `8γ`.
//! * `error vs t` at fixed `b`: the fraction of items whose error exceeds
//!   `8γ`, which Lemma 3's Chernoff argument says decays exponentially
//!   in `t`.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_core::sketch::EstimateScratch;
use cs_core::{CountSketch, SketchParams};
use cs_hash::ItemKey;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::{ErrorReport, Table};
use cs_stream::{moments, ExactCounter, Zipf, ZipfStreamKind};

/// Default bucket sweep.
pub const DEFAULT_BS: [usize; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];
/// Default row sweep.
pub const DEFAULT_TS: [usize; 6] = [1, 3, 5, 9, 15, 25];

struct Workload {
    stream: cs_stream::Stream,
    exact: ExactCounter,
    probes: Vec<ItemKey>,
}

fn workload(scale: &Scale) -> Workload {
    let zipf = Zipf::new(scale.m, 1.0);
    let stream = zipf.stream(scale.n, 0xE1, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    // Probe the top-k plus a spread of tail ranks.
    let mut probes: Vec<ItemKey> = (0..scale.k as u64).map(ItemKey).collect();
    let mut rank = scale.k * 2;
    while rank < scale.m {
        probes.push(ItemKey(rank as u64));
        rank *= 2;
    }
    Workload {
        stream,
        exact,
        probes,
    }
}

fn measure(w: &Workload, params: SketchParams, trials: u64, k: usize) -> (ErrorReport, f64, f64) {
    let gamma = moments::gamma(&w.exact, k, params.buckets);
    let mut all_estimates: Vec<(ItemKey, i64)> = Vec::new();
    let mut exceed = 0.0;
    for trial in 0..trials {
        let mut sketch = CountSketch::new(params, 0xEC ^ trial);
        sketch.absorb(&w.stream, 1);
        let mut scratch = EstimateScratch::new();
        let ests: Vec<(ItemKey, i64)> = w
            .probes
            .iter()
            .map(|&key| (key, sketch.estimate_with_scratch(key, &mut scratch)))
            .collect();
        exceed += ErrorReport::fraction_exceeding(&ests, &w.exact, 8.0 * gamma);
        all_estimates.extend(ests);
    }
    let report = ErrorReport::measure(&all_estimates, &w.exact);
    (report, gamma, exceed / trials as f64)
}

/// Sweep `b` at fixed `t`.
pub fn run_error_vs_b(scale: &Scale, t: usize, bs: &[usize]) -> ExperimentOutput {
    let w = workload(scale);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Error vs b (t={t}, Zipf z=1.0, n={}, m={}, k={}): Lemma 4 bound 8γ",
            scale.n, scale.m, scale.k
        ),
        &["b", "8γ", "max|err|", "mean|err|", "P(err>8γ)"],
    );
    for &b in bs {
        let (report, gamma, exceed) = measure(&w, SketchParams::new(t, b), scale.trials, scale.k);
        table.row(&[
            fmt_num(b as f64),
            fmt_num(8.0 * gamma),
            fmt_num(report.max_abs),
            fmt_num(report.mean_abs),
            format!("{exceed:.3}"),
        ]);
        out.records.push(
            ExperimentRecord::new("error_vs_b", "count-sketch")
                .param("b", b as f64)
                .param("t", t as f64)
                .param("k", scale.k as f64)
                .metric("gamma8", 8.0 * gamma)
                .metric("max_abs", report.max_abs)
                .metric("mean_abs", report.mean_abs)
                .metric("exceed_frac", exceed),
        );
    }
    out.tables.push(table);
    out
}

/// Sweep `t` at fixed `b`.
pub fn run_error_vs_t(scale: &Scale, b: usize, ts: &[usize]) -> ExperimentOutput {
    let w = workload(scale);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!("Error vs t (b={b}, Zipf z=1.0): Lemma 3 failure decay",),
        &["t", "max|err|", "mean|err|", "P(err>8γ)"],
    );
    for &t in ts {
        let (report, _gamma, exceed) = measure(&w, SketchParams::new(t, b), scale.trials, scale.k);
        table.row(&[
            fmt_num(t as f64),
            fmt_num(report.max_abs),
            fmt_num(report.mean_abs),
            format!("{exceed:.3}"),
        ]);
        out.records.push(
            ExperimentRecord::new("error_vs_t", "count-sketch")
                .param("b", b as f64)
                .param("t", t as f64)
                .metric("max_abs", report.max_abs)
                .metric("mean_abs", report.mean_abs)
                .metric("exceed_frac", exceed),
        );
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_decreases_with_b() {
        let scale = Scale::small();
        let out = run_error_vs_b(&scale, 5, &[32, 2048]);
        let small_b = &out.records[0].metrics;
        let large_b = &out.records[1].metrics;
        assert!(
            large_b["mean_abs"] <= small_b["mean_abs"],
            "mean error must not grow with b: {} -> {}",
            small_b["mean_abs"],
            large_b["mean_abs"]
        );
    }

    #[test]
    fn exceed_fraction_is_small_at_reasonable_t() {
        let scale = Scale::small();
        let out = run_error_vs_b(&scale, 9, &[512]);
        let exceed = out.records[0].metrics["exceed_frac"];
        assert!(exceed <= 0.1, "P(err > 8γ) = {exceed}");
    }

    #[test]
    fn failure_rate_non_increasing_in_t() {
        let scale = Scale::small();
        let out = run_error_vs_t(&scale, 128, &[1, 15]);
        let f1 = out.records[0].metrics["exceed_frac"];
        let f15 = out.records[1].metrics["exceed_frac"];
        assert!(f15 <= f1 + 0.05, "t=1 gives {f1}, t=15 gives {f15}");
    }

    #[test]
    fn tables_render() {
        let out = run_error_vs_t(&Scale::small(), 64, &[3]);
        assert!(out.render().contains("Error vs t"));
    }
}
