//! **Parallel-ingestion scaling** — wall-clock ingest throughput of the
//! three multi-core paths in `cs_core` against the sequential reference,
//! sweeping the thread count:
//!
//! * `sequential` — `CountSketch::absorb` on one thread (the baseline
//!   every speedup is ultimately judged against);
//! * `pool` — [`cs_core::parallel::SketchPool`] via
//!   `sketch_stream_pooled`: key-hash sharded workers, each with a
//!   private sketch, merged additively at the end (§3.2 additivity);
//! * `atomic` — [`cs_core::parallel::AtomicCountSketch`]: one shared
//!   lock-free sketch, every thread `fetch_add`ing into the same cells;
//! * `striped` — `cs_core::concurrent::SharedCountSketch`: the legacy
//!   mutex-per-row handle, kept as the contention reference point.
//!
//! Every number is the **median of `scale.trials` timed runs** (fresh
//! state per run), like the throughput table. The stream is 10× the
//! scale's `n` (capped at 2M items) so per-ingest wall time dominates
//! thread startup. The harness serializes the sweep as
//! `BENCH_parallel.json` (see [`bench_json`]); `harness check-parallel`
//! gates CI on it.
//!
//! Interpreting the numbers requires knowing the host: on a single
//! hardware thread every parallel variant *loses* to sequential (channel
//! hops and cache traffic buy nothing), which is why the JSON records
//! `host_cores` and the speedup gate only arms on hosts with ≥ 4 cores.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_core::concurrent::SharedCountSketch;
use cs_core::parallel::{sketch_stream_pooled, AtomicCountSketch};
use cs_core::{CountSketch, SketchParams};
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::stats::median;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::{Zipf, ZipfStreamKind};
use std::collections::BTreeMap;
use std::time::Instant;

/// Sketch shape shared by every variant (same as the throughput table).
const ROWS: usize = 5;
const BUCKETS: usize = 1024;
/// Cap on the sweep's stream length: long enough that ingest wall time
/// dominates thread startup, short enough for the full-scale harness.
const MAX_STREAM: usize = 2_000_000;

/// Hardware threads on this host (1 when the query fails).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Stream length for the sweep: 10× the scale's `n`, capped.
pub fn stream_len(scale: &Scale) -> usize {
    scale.n.saturating_mul(10).min(MAX_STREAM)
}

/// Thread counts swept: 1, 2, 4, plus 8 on hosts that have it.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4];
    if host_cores() >= 8 {
        counts.push(8);
    }
    counts
}

/// Median ingest rate (Mops/s) over `trials` runs of `ingest`.
fn measure(trials: usize, n: usize, mut ingest: impl FnMut()) -> f64 {
    let mut rates = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        ingest();
        rates.push(n as f64 / start.elapsed().as_secs_f64() / 1e6);
    }
    median(&rates)
}

/// Runs the scaling sweep.
pub fn run(scale: &Scale) -> ExperimentOutput {
    let n = stream_len(scale);
    let zipf = Zipf::new(scale.m, 1.0);
    let stream = zipf.stream(n, 0x5eed, ZipfStreamKind::Sampled);
    let params = SketchParams::new(ROWS, BUCKETS);
    let trials = scale.trials.max(1) as usize;
    let threads = thread_counts();
    let cores = host_cores();

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Parallel ingestion on Zipf(1.0), n={n}, m={}, {cores} host core(s) \
             (Mops/s, median of {trials} trials)",
            scale.m
        ),
        &["variant", "threads", "update Mops/s", "speedup vs 1 thread"],
    );

    // (variant, threads, Mops/s, speedup vs that variant's 1-thread run)
    let mut rows: Vec<(&str, usize, f64, f64)> = Vec::new();

    // Sequential reference: the plain batched absorb path on one thread.
    let seq = measure(trials, n, || {
        let mut s = CountSketch::new(params, 1);
        s.absorb(&stream, 1);
        std::hint::black_box(&s);
    });
    rows.push(("sequential", 1, seq, 1.0));

    for variant in ["pool", "atomic", "striped"] {
        let mut base = f64::NAN;
        for &t in &threads {
            let mops = match variant {
                "pool" => measure(trials, n, || {
                    let s = sketch_stream_pooled(&stream, params, 1, t);
                    std::hint::black_box(&s);
                }),
                "atomic" => measure(trials, n, || {
                    let handle = AtomicCountSketch::new(params, 1);
                    let chunks = stream.chunks(t);
                    std::thread::scope(|scope| {
                        for chunk in &chunks {
                            let h = handle.clone();
                            scope.spawn(move || {
                                for key in chunk.iter() {
                                    h.add(key);
                                }
                            });
                        }
                    });
                    std::hint::black_box(&handle);
                }),
                _ => measure(trials, n, || {
                    let handle = SharedCountSketch::new(params, 1);
                    let chunks = stream.chunks(t);
                    std::thread::scope(|scope| {
                        for chunk in &chunks {
                            let h = handle.clone();
                            scope.spawn(move || {
                                for key in chunk.iter() {
                                    h.add(key);
                                }
                            });
                        }
                    });
                    std::hint::black_box(&handle);
                }),
            };
            if t == threads[0] {
                base = mops;
            }
            rows.push((variant, t, mops, mops / base));
        }
    }

    for (variant, t, mops, speedup) in rows {
        table.row(&[
            variant.into(),
            t.to_string(),
            fmt_num(mops),
            format!("{speedup:.2}x"),
        ]);
        out.records.push(
            ExperimentRecord::new("parallel", variant)
                .param("n", n as f64)
                .param("m", scale.m as f64)
                .param("z", 1.0)
                .param("trials", trials as f64)
                .param("rows", ROWS as f64)
                .param("buckets", BUCKETS as f64)
                .param("threads", t as f64)
                .metric("update_mops", mops)
                .metric("speedup_vs_1t", speedup),
        );
    }

    out.tables.push(table);
    out
}

/// Renders the `BENCH_parallel.json` payload — the same shape as
/// `BENCH_throughput.json` (schema header, workload, git revision, one
/// record per line) plus a `host_cores` field, because parallel numbers
/// are meaningless without knowing how many hardware threads the host
/// actually had. [`parse_bench_json`] and `harness check-parallel`
/// recover everything without a full JSON parser.
pub fn bench_json(out: &ExperimentOutput, scale: &Scale, git_rev: &str, host_cores: usize) -> String {
    let rev: String = git_rev
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-')
        .collect();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench-parallel-v1\",\n");
    s.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    s.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    s.push_str(&format!(
        "  \"workload\": {{\"distribution\": \"zipf\", \"z\": 1.0, \"n\": {}, \"m\": {}, \"trials\": {}}},\n",
        stream_len(scale),
        scale.m,
        scale.trials.max(1)
    ));
    s.push_str(&format!(
        "  \"sketch\": {{\"rows\": {ROWS}, \"buckets\": {BUCKETS}}},\n"
    ));
    s.push_str("  \"records\": [\n");
    let lines: Vec<String> = out
        .records
        .iter()
        .filter(|r| r.experiment == "parallel")
        .map(|r| format!("    {}", r.to_json_line()))
        .collect();
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Recovers `"variant@threads" → update Mops/s` (e.g. `"pool@4"`) from a
/// [`bench_json`] payload. Non-record lines are skipped, so the whole
/// file can be fed in as-is.
pub fn parse_bench_json(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"experiment\"") {
                return None;
            }
            ExperimentRecord::from_json_line(line).ok()
        })
        .filter_map(|r| {
            let mops = r.metrics.get("update_mops").copied()?;
            let threads = r.params.get("threads").copied()? as u64;
            Some((format!("{}@{threads}", r.algorithm), mops))
        })
        .collect()
}

/// Recovers the `host_cores` header field from a [`bench_json`] payload.
pub fn parse_host_cores(text: &str) -> Option<u64> {
    text.lines().find_map(|line| {
        let rest = line.trim().strip_prefix("\"host_cores\":")?;
        rest.trim().trim_end_matches(',').parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_runs_and_reports_positive_rates() {
        // 10× multiplier makes even `small` long; shrink further for CI.
        let out = run(&Scale::small().with_n(2_000));
        assert_eq!(out.tables.len(), 1);
        // sequential@1 plus >= 3 thread counts for each of 3 variants.
        assert!(out.records.len() >= 10);
        for r in &out.records {
            assert!(
                r.metrics["update_mops"] > 0.0,
                "{} reported non-positive throughput",
                r.algorithm
            );
            assert!(r.params["threads"] >= 1.0);
        }
        let variants: std::collections::BTreeSet<&str> =
            out.records.iter().map(|r| r.algorithm.as_str()).collect();
        for v in ["sequential", "pool", "atomic", "striped"] {
            assert!(variants.contains(v), "missing variant {v}");
        }
        // Speedup is defined relative to the variant's own 1-thread run.
        for r in &out.records {
            if r.params["threads"] == 1.0 {
                assert!((r.metrics["speedup_vs_1t"] - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bench_json_roundtrips_through_parser() {
        let mut out = ExperimentOutput::default();
        for (threads, mops) in [(1u64, 10.0), (4, 31.5)] {
            out.records.push(
                ExperimentRecord::new("parallel", "pool")
                    .param("threads", threads as f64)
                    .metric("update_mops", mops)
                    .metric("speedup_vs_1t", mops / 10.0),
            );
        }
        // Records from other experiments must not leak in.
        out.records
            .push(ExperimentRecord::new("throughput", "pool").metric("update_mops", 999.0));
        let json = bench_json(&out, &Scale::small(), "abc123", 8);
        assert!(json.contains("\"schema\": \"bench-parallel-v1\""));
        assert!(json.contains("\"git_rev\": \"abc123\""));
        let parsed = parse_bench_json(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["pool@1"], 10.0);
        assert_eq!(parsed["pool@4"], 31.5);
        assert_eq!(parse_host_cores(&json), Some(8));
    }

    #[test]
    fn host_cores_missing_is_none() {
        assert_eq!(parse_host_cores("{\n  \"schema\": \"x\"\n}"), None);
    }
}
