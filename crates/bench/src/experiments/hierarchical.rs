//! **Extension experiment** — 1-pass hierarchical max-change vs the
//! paper's 2-pass §4.2 algorithm.
//!
//! Both consume the same planted stream pair. The §4.2 algorithm sketches
//! the difference then re-reads both streams to select candidates (and
//! gets exact counts for free); the hierarchical sketch recovers heavy
//! changers from the sketch alone — relevant when the streams cannot be
//! replayed — at the cost of `2·bits` level sketches. Measured: recall
//! of the true top-k changers and the space used, per sketch width.

use crate::config::Scale;
use crate::experiments::maxchange::planted_pair;
use crate::experiments::ExperimentOutput;
use cs_core::hierarchical::HierarchicalCountSketch;
use cs_core::maxchange::max_change;
use cs_core::SketchParams;
use cs_hash::ItemKey;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_stream::ExactCounter;
use std::collections::HashSet;

/// Runs the comparison across sketch widths.
pub fn run(scale: &Scale, bs: &[usize]) -> ExperimentOutput {
    let k = scale.k;
    let planted = 2 * k;
    // Key space: background ids < m, planted ids m+1000..; round up.
    let bits = (64 - ((scale.m + 1000 + planted) as u64).leading_zeros()).max(8);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "1-pass hierarchical vs 2-pass §4.2 max-change (k={k}, {planted} planted, bits={bits})"
        ),
        &[
            "b",
            "2-pass recall",
            "2-pass bytes",
            "1-pass recall",
            "1-pass bytes",
        ],
    );
    for &b in bs {
        let mut recall2 = 0.0;
        let mut recall1 = 0.0;
        let mut bytes2 = 0usize;
        let mut bytes1 = 0usize;
        for trial in 0..scale.trials {
            let pair = planted_pair(scale, planted, 0x41E ^ trial);
            let e1 = ExactCounter::from_stream(&pair.s1);
            let e2 = ExactCounter::from_stream(&pair.s2);
            let truth: HashSet<ItemKey> = ExactCounter::top_k_change(&e1, &e2, k)
                .into_iter()
                .map(|(key, _)| key)
                .collect();
            let min_true_change = ExactCounter::top_k_change(&e1, &e2, k)
                .iter()
                .map(|&(_, d)| d.unsigned_abs())
                .min()
                .unwrap_or(1);

            // 2-pass §4.2.
            let params = SketchParams::new(7, b);
            let result = max_change(&pair.s1, &pair.s2, k, 4 * k, params, 0x7E ^ trial);
            let got: HashSet<ItemKey> = result.items.iter().map(|c| c.key).collect();
            recall2 += truth.intersection(&got).count() as f64 / truth.len() as f64;
            bytes2 = 7 * b * 8 + 4 * k * 24;

            // 1-pass hierarchical, same per-level width; threshold at
            // half the smallest true top-k change.
            let mut h = HierarchicalCountSketch::new(bits, params, 0x7E ^ trial);
            h.absorb(&pair.s1, -1);
            h.absorb(&pair.s2, 1);
            let heavy = h.heavy_items((min_true_change / 2).max(1) as i64, 4 * k);
            let got1: HashSet<ItemKey> = heavy.iter().take(k).map(|x| x.key).collect();
            recall1 += truth.intersection(&got1).count() as f64 / truth.len() as f64;
            bytes1 = h.space_bytes();
        }
        let trials = scale.trials as f64;
        table.row(&[
            fmt_num(b as f64),
            format!("{:.3}", recall2 / trials),
            fmt_num(bytes2 as f64),
            format!("{:.3}", recall1 / trials),
            fmt_num(bytes1 as f64),
        ]);
        out.records.push(
            ExperimentRecord::new("hierarchical", "both")
                .param("b", b as f64)
                .param("bits", bits as f64)
                .metric("recall_2pass", recall2 / trials)
                .metric("recall_1pass", recall1 / trials)
                .metric("bytes_2pass", bytes2 as f64)
                .metric("bytes_1pass", bytes1 as f64),
        );
    }
    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_methods_achieve_recall_with_wide_sketch() {
        let scale = Scale::small();
        let out = run(&scale, &[2048]);
        let r2 = out.records[0].metrics["recall_2pass"];
        let r1 = out.records[0].metrics["recall_1pass"];
        assert!(r2 >= 0.8, "2-pass recall {r2}");
        assert!(r1 >= 0.6, "1-pass recall {r1}");
    }

    #[test]
    fn one_pass_costs_more_space() {
        let scale = Scale::small();
        let out = run(&scale, &[512]);
        let b1 = out.records[0].metrics["bytes_1pass"];
        let b2 = out.records[0].metrics["bytes_2pass"];
        assert!(
            b1 > b2,
            "hierarchical must cost more ({b1} vs {b2}) — it removes a pass, not space"
        );
    }
}
