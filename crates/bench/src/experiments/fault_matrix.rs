//! **Fault matrix** — recovery outcome and merged-estimate accuracy as a
//! function of how many site agents fail, measured over the *real*
//! loopback transport (`cs-net`), not a simulated tick loop.
//!
//! The setup mirrors a small deployment: `SITES` site agents each hold a
//! balanced hash-shard of one global Zipf stream and ship their sketch +
//! candidates to a quorum coordinator over TCP. We then sweep the number
//! of faulted sites from 0 upward; faulted agents alternate between a
//! corrupting link ([`LinkFault::FlipBits`] — the coordinator sees CRC
//! failures and NACKs) and a link that dies mid-SNAPSHOT
//! ([`LinkFault::CutAfter`] — indistinguishable from a killed agent).
//! Both agent and server run a 2-attempt [`RetryPolicy`], so a faulted
//! site is retried once and then excluded.
//!
//! Reported per faulted-site count, aggregated over `scale.trials`
//! seeds:
//!
//! * `quorum met` — fraction of trials where the coordinator finalized
//!   at all (with `QUORUM` of `SITES` required, enough failures produce
//!   a *typed* `QuorumNotMet`, never a silent partial answer);
//! * `coverage` — fraction of sites merged
//!   ([`cs_core::distributed::MergeReport::coverage`]);
//! * `bound widening` — the §4.1-style error-bound widening factor
//!   ([`cs_core::distributed::MergeReport::error_bound_widening`]);
//! * `recall@k` — recall of the merged top-k against the *global* exact
//!   counts, i.e. including the mass the excluded sites never shipped;
//! * `mean rel err` — mean relative error of the merged estimates over
//!   the global exact top-k.
//!
//! Accuracy rows average only the trials where the quorum was met; once
//! every trial fails, the accuracy cells are vacuous and render as `-`.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_core::distributed::{site_report, QuorumOutcome, RetryPolicy, SiteReport};
use cs_core::SketchParams;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::recall::recall_at_k;
use cs_metrics::table::fmt_num;
use cs_metrics::Table;
use cs_net::{CoordinatorServer, NetError, ServeConfig, SiteAgent};
use cs_stream::workloads::balanced_shards;
use cs_stream::{ExactCounter, LinkFault};

/// Deployment shape: enough sites that partial failure is interesting.
const SITES: usize = 6;
/// Quorum: half the deployment. 4+ faulted sites cannot finalize.
const QUORUM: usize = 3;
/// Sketch shape shared by every site (same as the throughput table).
const ROWS: usize = 5;
const BUCKETS: usize = 1024;
/// Zipf parameter of the global stream the shards are split from.
const ZIPF_Z: f64 = 1.1;
/// Faulted-site counts swept (`QUORUM..SITES` rows demonstrate the
/// typed quorum failure, not just degraded accuracy).
const FAULT_COUNTS: [usize; 5] = [0, 1, 2, 3, 4];

/// One trial's outcome: `None` when the coordinator could not finalize.
struct Trial {
    outcome: Option<QuorumOutcome>,
}

/// The fault a site agent with index `site` gets when it is one of the
/// first `faulted` sites: alternating corrupting and dying links, so
/// both NACK-exclusion and straggler-exclusion paths are exercised in
/// the same matrix row.
fn fault_for(site: usize) -> LinkFault {
    if site.is_multiple_of(2) {
        // Clean 60-byte HELLO, then every frame risks a bit flip the
        // coordinator's CRC catches.
        LinkFault::FlipBits { from_byte: 100 }
    } else {
        // HELLO lands, the SNAPSHOT tears: a killed agent.
        LinkFault::CutAfter { bytes: 64 }
    }
}

/// Runs one quorum collection over loopback TCP: a coordinator bound to
/// an ephemeral port, `SITES` agent threads, the first `faulted` of them
/// behind a fault-injected link.
fn run_trial(reports: &[SiteReport], faulted: usize, seed: u64) -> Trial {
    let params = SketchParams::new(ROWS, BUCKETS);
    let mut config = ServeConfig::new(SITES, QUORUM, params, seed);
    config.policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    config.tick_ms = 2;
    config.deadline_ticks = 10_000;
    config.timeout_ms = 500;

    let server = CoordinatorServer::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server
        .local_addr()
        .expect("ephemeral port")
        .to_string();
    let serve = std::thread::spawn(move || server.run());

    let handles: Vec<_> = reports
        .iter()
        .enumerate()
        .map(|(site, report)| {
            let addr = addr.clone();
            let report = report.clone();
            let mut agent = SiteAgent::new(site, SITES);
            agent.policy.max_attempts = 2;
            agent.tick_ms = 1;
            agent.timeout_ms = 500;
            if site < faulted {
                agent.fault = Some(fault_for(site));
                agent.fault_seed = seed ^ site as u64;
            }
            std::thread::spawn(move || agent.ship(&addr, &report))
        })
        .collect();
    for handle in handles {
        // Faulted agents are *expected* to error; the coordinator's
        // MergeReport is the authority on what that did to the merge.
        let _ = handle.join().expect("agent thread");
    }
    match serve.join().expect("server thread") {
        Ok(outcome) => Trial {
            outcome: Some(outcome),
        },
        Err(NetError::QuorumNotMet { .. }) => Trial { outcome: None },
        Err(other) => panic!("coordinator failed structurally: {other}"),
    }
}

/// Mean of `xs`, or `None` when empty.
fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Renders an optional metric, `-` once no trial met quorum.
fn cell(v: Option<f64>) -> String {
    v.map(fmt_num).unwrap_or_else(|| "-".into())
}

/// Runs the fault matrix.
pub fn run(scale: &Scale) -> ExperimentOutput {
    let params = SketchParams::new(ROWS, BUCKETS);
    let trials = scale.trials.max(1);
    let k = scale.k;

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Fault matrix over loopback TCP: {SITES} sites, quorum {QUORUM}, \
             Zipf({ZIPF_Z}) n={} m={}, k={k}, {trials} trial(s)",
            scale.n, scale.m
        ),
        &[
            "faulted sites",
            "quorum met",
            "coverage",
            "bound widening",
            "recall@k",
            "mean rel err",
        ],
    );

    for &faulted in &FAULT_COUNTS {
        let mut met = 0u64;
        let mut coverages = Vec::new();
        let mut widenings = Vec::new();
        let mut recalls = Vec::new();
        let mut rel_errs = Vec::new();

        for trial in 0..trials {
            let seed = 0xFA17 ^ (trial.wrapping_mul(0x9E37_79B9)) ^ faulted as u64;
            let (global, shards) = balanced_shards(scale.m, scale.n, ZIPF_Z, SITES, seed);
            let exact = ExactCounter::from_stream(&global);
            let reports: Vec<SiteReport> = shards
                .iter()
                .map(|s| site_report(s, k, params, seed))
                .collect();

            let result = run_trial(&reports, faulted, seed);
            let Some(outcome) = result.outcome else {
                continue;
            };
            met += 1;
            coverages.push(outcome.report.coverage());
            widenings.push(outcome.report.error_bound_widening());

            let top: Vec<_> = outcome.sketch.top_k(k).into_iter().map(|(key, _)| key).collect();
            recalls.push(recall_at_k(&top, &exact, k));

            let truth = exact.top_k(k);
            let errs: Vec<f64> = truth
                .iter()
                .filter(|&&(_, count)| count > 0)
                .map(|&(key, count)| {
                    (outcome.sketch.estimate(key) - count as i64).abs() as f64 / count as f64
                })
                .collect();
            if let Some(e) = mean(&errs) {
                rel_errs.push(e);
            }
        }

        let quorum_rate = met as f64 / trials as f64;
        table.row(&[
            faulted.to_string(),
            fmt_num(quorum_rate),
            cell(mean(&coverages)),
            cell(mean(&widenings)),
            cell(mean(&recalls)),
            cell(mean(&rel_errs)),
        ]);
        let mut record = ExperimentRecord::new("fault-matrix", "cs-net")
            .param("sites", SITES as f64)
            .param("quorum", QUORUM as f64)
            .param("faulted", faulted as f64)
            .param("n", scale.n as f64)
            .param("k", k as f64)
            .metric("quorum_met_rate", quorum_rate);
        if let Some(v) = mean(&coverages) {
            record = record.metric("coverage", v);
        }
        if let Some(v) = mean(&widenings) {
            record = record.metric("bound_widening", v);
        }
        if let Some(v) = mean(&recalls) {
            record = record.metric("recall_at_k", v);
        }
        if let Some(v) = mean(&rel_errs) {
            record = record.metric("mean_rel_err", v);
        }
        out.records.push(record);
    }

    out.tables.push(table);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full matrix at reduced scale: clean rows meet quorum with
    /// full coverage; the 4-faulted row (only 2 survivors, quorum 3)
    /// must fail *typed*, rendering vacuous accuracy cells.
    #[test]
    fn matrix_degrades_and_then_fails_typed() {
        let scale = Scale {
            n: 4_000,
            m: 500,
            trials: 1,
            k: 5,
        };
        let out = run(&scale);
        assert_eq!(out.records.len(), FAULT_COUNTS.len());

        let by_faulted = |f: f64| {
            out.records
                .iter()
                .find(|r| r.params.get("faulted") == Some(&f))
                .expect("row present")
        };
        let metric = |r: &ExperimentRecord, name: &str| r.metrics.get(name).copied();

        let clean = by_faulted(0.0);
        assert_eq!(metric(clean, "quorum_met_rate"), Some(1.0));
        assert_eq!(metric(clean, "coverage"), Some(1.0));
        assert_eq!(metric(clean, "bound_widening"), Some(1.0));
        assert!(metric(clean, "recall_at_k").expect("recall") > 0.5);

        let degraded = by_faulted(2.0);
        assert_eq!(metric(degraded, "quorum_met_rate"), Some(1.0));
        let cov = metric(degraded, "coverage").expect("coverage");
        assert!((cov - 4.0 / 6.0).abs() < 1e-9, "coverage {cov}");
        assert!(metric(degraded, "bound_widening").expect("widening") > 1.0);

        let dead = by_faulted(4.0);
        assert_eq!(metric(dead, "quorum_met_rate"), Some(0.0));
        assert_eq!(metric(dead, "coverage"), None, "no silent partials");
        assert!(out.tables[0].render().contains('-'));
    }
}
