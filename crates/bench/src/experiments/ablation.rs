//! **Ablations** — the design choices DESIGN.md calls out, each isolated
//! on the same Zipf(1.0) workload.
//!
//! 1. **Row combiner** (median vs mean vs trimmed mean): §3.1–3.2's
//!    motivation for the median. Expected: the mean's max error explodes
//!    (heavy-item collisions are outliers); median and trimmed mean stay
//!    near the `8γ` scale.
//! 2. **Sign hashes** (Count-Sketch vs Count-Min at equal `(t, b)`):
//!    what the ±1 hashes buy. Expected: on tail items Count-Min's
//!    one-sided bias dominates; the Count-Sketch is unbiased.
//! 3. **Heap policy** (paper's increment-tracked vs always-re-estimate).
//! 4. **Hash construction** (pairwise polynomial vs multiply-shift +
//!    tabulation): estimates should be statistically indistinguishable.

use crate::config::Scale;
use crate::experiments::ExperimentOutput;
use cs_baselines::{CountMinSketch, StreamSummary};
use cs_core::approx_top::{ApproxTopProcessor, HeapPolicy};
use cs_core::median::Combiner;
use cs_core::{CountSketch, FastCountSketch, SketchParams};
use cs_hash::ItemKey;
use cs_metrics::experiment::ExperimentRecord;
use cs_metrics::recall::recall_at_k;
use cs_metrics::table::fmt_num;
use cs_metrics::{ErrorReport, Table};
use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

struct Workload {
    stream: Stream,
    exact: ExactCounter,
    top: Vec<ItemKey>,
    tail: Vec<ItemKey>,
}

fn workload(scale: &Scale) -> Workload {
    let zipf = Zipf::new(scale.m, 1.0);
    let stream = zipf.stream(scale.n, 0xAB1, ZipfStreamKind::DeterministicRounded);
    let exact = ExactCounter::from_stream(&stream);
    let top: Vec<ItemKey> = (0..scale.k as u64).map(ItemKey).collect();
    let tail: Vec<ItemKey> = (0..scale.k as u64)
        .map(|i| ItemKey((scale.m as u64 / 2) + i))
        .collect();
    Workload {
        stream,
        exact,
        top,
        tail,
    }
}

/// Ablation 1: row combiner.
pub fn run_combiner(scale: &Scale, b: usize, t: usize) -> ExperimentOutput {
    let w = workload(scale);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!(
            "Ablation: row combiner (t={t}, b={b}, top-{} probes)",
            scale.k
        ),
        &["combiner", "max|err|", "mean|err|"],
    );
    for (name, combiner) in [
        ("median", Combiner::Median),
        ("mean", Combiner::Mean),
        ("trimmed-mean", Combiner::TrimmedMean),
    ] {
        let mut ests: Vec<(ItemKey, i64)> = Vec::new();
        for trial in 0..scale.trials {
            let mut sketch =
                CountSketch::new(SketchParams::new(t, b), 0xAB ^ trial).with_combiner(combiner);
            sketch.absorb(&w.stream, 1);
            ests.extend(w.top.iter().map(|&key| (key, sketch.estimate(key))));
        }
        let report = ErrorReport::measure(&ests, &w.exact);
        table.row(&[
            name.into(),
            fmt_num(report.max_abs),
            fmt_num(report.mean_abs),
        ]);
        out.records.push(
            ExperimentRecord::new("ablation_combiner", name)
                .param("b", b as f64)
                .param("t", t as f64)
                .metric("max_abs", report.max_abs)
                .metric("mean_abs", report.mean_abs),
        );
    }
    out.tables.push(table);
    out
}

/// Ablation 2: sign hashes (Count-Sketch) vs none (Count-Min), equal
/// `(t, b)`, probing tail items where Count-Min's bias concentrates.
pub fn run_signs(scale: &Scale, b: usize, t: usize) -> ExperimentOutput {
    let w = workload(scale);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!("Ablation: ±1 sign hashes, equal t={t}, b={b}; probes are tail ranks around m/2"),
        &[
            "sketch",
            "mean|err| (tail)",
            "max|err| (tail)",
            "mean signed bias",
        ],
    );
    for variant in ["count-sketch", "count-min"] {
        let mut ests: Vec<(ItemKey, i64)> = Vec::new();
        let mut bias = 0.0;
        for trial in 0..scale.trials {
            match variant {
                "count-sketch" => {
                    let mut s = CountSketch::new(SketchParams::new(t, b), 0x51 ^ trial);
                    s.absorb(&w.stream, 1);
                    for &key in &w.tail {
                        let e = s.estimate(key);
                        bias += e as f64 - w.exact.count(key) as f64;
                        ests.push((key, e));
                    }
                }
                _ => {
                    let mut s = CountMinSketch::new(t, b, scale.k, 0x51 ^ trial);
                    s.process_stream(&w.stream);
                    for &key in &w.tail {
                        let e = s.point_query(key) as i64;
                        bias += e as f64 - w.exact.count(key) as f64;
                        ests.push((key, e));
                    }
                }
            }
        }
        let report = ErrorReport::measure(&ests, &w.exact);
        let mean_bias = bias / ests.len() as f64;
        table.row(&[
            variant.into(),
            fmt_num(report.mean_abs),
            fmt_num(report.max_abs),
            fmt_num(mean_bias),
        ]);
        out.records.push(
            ExperimentRecord::new("ablation_signs", variant)
                .param("b", b as f64)
                .param("t", t as f64)
                .metric("mean_abs_tail", report.mean_abs)
                .metric("max_abs_tail", report.max_abs)
                .metric("mean_bias", mean_bias),
        );
    }
    out.tables.push(table);
    out
}

/// Ablation 3: heap maintenance policy.
pub fn run_heap_policy(scale: &Scale, b: usize, t: usize) -> ExperimentOutput {
    let w = workload(scale);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!("Ablation: heap policy (t={t}, b={b})"),
        &["policy", "recall@k", "mean|stored - true|"],
    );
    for (name, policy) in [
        ("increment-tracked", HeapPolicy::IncrementTracked),
        ("always-re-estimate", HeapPolicy::AlwaysReEstimate),
    ] {
        let mut recall_sum = 0.0;
        let mut errs: Vec<f64> = Vec::new();
        for trial in 0..scale.trials {
            let mut p = ApproxTopProcessor::new(SketchParams::new(t, b), scale.k, 0x4E ^ trial)
                .with_policy(policy);
            p.observe_stream(&w.stream);
            let result = p.result();
            recall_sum += recall_at_k(&result.keys(), &w.exact, scale.k);
            for &(key, stored) in &result.items {
                errs.push((stored as f64 - w.exact.count(key) as f64).abs());
            }
        }
        let recall = recall_sum / scale.trials as f64;
        let mean_err = cs_metrics::stats::mean(&errs);
        table.row(&[name.into(), format!("{recall:.3}"), fmt_num(mean_err)]);
        out.records.push(
            ExperimentRecord::new("ablation_heap", name)
                .param("b", b as f64)
                .metric("recall", recall)
                .metric("mean_stored_err", mean_err),
        );
    }
    out.tables.push(table);
    out
}

/// Ablation 4: hash construction (reference polynomial vs fast
/// multiply-shift/tabulation).
pub fn run_hash_family(scale: &Scale, b: usize, t: usize) -> ExperimentOutput {
    let w = workload(scale);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!("Ablation: hash construction (t={t}, b≈{b})"),
        &["construction", "actual b", "mean|err| (top-k)"],
    );
    let run_variant = |name: &'static str| {
        let mut ests: Vec<(ItemKey, i64)> = Vec::new();
        let mut actual_b = b;
        for trial in 0..scale.trials {
            match name {
                "pairwise-poly" => {
                    let mut s = CountSketch::new(SketchParams::new(t, b), 0x8A ^ trial);
                    s.absorb(&w.stream, 1);
                    actual_b = s.buckets();
                    ests.extend(w.top.iter().map(|&key| (key, s.estimate(key))));
                }
                _ => {
                    let mut s = FastCountSketch::new(SketchParams::new(t, b), 0x8A ^ trial);
                    s.absorb(&w.stream, 1);
                    actual_b = s.buckets();
                    ests.extend(w.top.iter().map(|&key| (key, s.estimate(key))));
                }
            }
        }
        let report = ErrorReport::measure(&ests, &w.exact);
        (actual_b, report)
    };
    for name in ["pairwise-poly", "multiply-shift+tabulation"] {
        let (actual_b, report) = run_variant(name);
        table.row(&[
            name.into(),
            fmt_num(actual_b as f64),
            fmt_num(report.mean_abs),
        ]);
        out.records.push(
            ExperimentRecord::new("ablation_hash", name)
                .param("b", actual_b as f64)
                .metric("mean_abs", report.mean_abs),
        );
    }
    out.tables.push(table);
    out
}

/// Ablation 5: arrival-order sensitivity. The sketch is linear (order
/// cannot matter), but the §3.2 *heap* admits items by their estimate at
/// arrival time — early arrivals of an item see a partial stream. Same
/// multiset of occurrences, three orders: i.i.d. shuffled, bursty
/// (contiguous per-item runs), and high temporal locality.
pub fn run_order(scale: &Scale, b: usize, t: usize) -> ExperimentOutput {
    use cs_stream::generators::bursty_stream;
    use cs_stream::locality::locality_stream;
    use cs_stream::Zipf;

    let zipf = Zipf::new(scale.m, 1.0);
    let counts = zipf.rounded_counts(scale.n);
    let shuffled = zipf.stream(
        scale.n,
        0x0D,
        cs_stream::ZipfStreamKind::DeterministicRounded,
    );
    let bursty = bursty_stream(&counts, 0x0D);
    let local = locality_stream(scale.m, scale.n, 1.0, 0.7, 64, 0x0D);

    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        format!("Ablation: arrival order (t={t}, b={b}, same Zipf(1.0) counts except locality)"),
        &["order", "recall@k"],
    );
    for (name, stream) in [
        ("shuffled", &shuffled),
        ("bursty-runs", &bursty),
        ("temporal-locality", &local),
    ] {
        let exact = ExactCounter::from_stream(stream);
        let mut recall_sum = 0.0;
        for trial in 0..scale.trials {
            let mut p = ApproxTopProcessor::new(SketchParams::new(t, b), scale.k, 0x0DD ^ trial);
            p.observe_stream(stream);
            recall_sum += recall_at_k(&p.result().keys(), &exact, scale.k);
        }
        let recall = recall_sum / scale.trials as f64;
        table.row(&[name.into(), format!("{recall:.3}")]);
        out.records.push(
            ExperimentRecord::new("ablation_order", name)
                .param("b", b as f64)
                .metric("recall", recall),
        );
    }
    out.tables.push(table);
    out
}

/// All five ablations with default dimensions.
pub fn run(scale: &Scale) -> ExperimentOutput {
    let b = 1024;
    let t = 7;
    let mut out = ExperimentOutput::default();
    for one in [
        run_combiner(scale, b, t),
        run_signs(scale, b, t),
        run_heap_policy(scale, b, t),
        run_hash_family(scale, b, t),
        run_order(scale, b, t),
    ] {
        out.tables.extend(one.tables);
        out.records.extend(one.records);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(out: &ExperimentOutput, alg: &str, m: &str) -> f64 {
        out.records
            .iter()
            .find(|r| r.algorithm == alg)
            .unwrap_or_else(|| panic!("no record for {alg}"))
            .metrics[m]
    }

    #[test]
    fn median_beats_mean_on_max_error() {
        // §3.2: the mean is sensitive to heavy-collision outliers. Use a
        // narrow sketch so collisions with the top item are common.
        let out = run_combiner(&Scale::small(), 64, 5);
        let median_max = metric(&out, "median", "max_abs");
        let mean_max = metric(&out, "mean", "max_abs");
        assert!(
            median_max <= mean_max,
            "median max err {median_max} should not exceed mean's {mean_max}"
        );
    }

    #[test]
    fn count_min_is_positively_biased_on_tail() {
        let out = run_signs(&Scale::small(), 256, 5);
        let cm_bias = metric(&out, "count-min", "mean_bias");
        let cs_bias = metric(&out, "count-sketch", "mean_bias").abs();
        assert!(
            cm_bias > 0.0,
            "Count-Min tail bias must be positive: {cm_bias}"
        );
        assert!(
            cs_bias <= cm_bias,
            "Count-Sketch |bias| {cs_bias} should be below Count-Min's {cm_bias}"
        );
    }

    #[test]
    fn both_heap_policies_work() {
        let out = run_heap_policy(&Scale::small(), 1024, 7);
        for alg in ["increment-tracked", "always-re-estimate"] {
            assert!(metric(&out, alg, "recall") >= 0.6, "{alg} recall too low");
        }
    }

    #[test]
    fn hash_families_statistically_similar() {
        let out = run_hash_family(&Scale::small(), 1024, 7);
        let poly = metric(&out, "pairwise-poly", "mean_abs");
        let fast = metric(&out, "multiply-shift+tabulation", "mean_abs");
        // Same order of magnitude (loose: within 5x either way, both small).
        assert!(
            fast <= 5.0 * poly + 50.0 && poly <= 5.0 * fast + 50.0,
            "poly {poly} vs fast {fast}"
        );
    }

    #[test]
    fn full_ablation_produces_all_tables() {
        let out = run(&Scale::small());
        assert_eq!(out.tables.len(), 5);
    }

    #[test]
    fn order_ablation_covers_three_orders() {
        let out = run_order(&Scale::small(), 512, 5);
        assert_eq!(out.records.len(), 3);
        for r in &out.records {
            assert!(
                r.metrics["recall"] >= 0.4,
                "{} recall collapsed: {}",
                r.algorithm,
                r.metrics["recall"]
            );
        }
    }
}
