//! Experiment implementations for the paper's evaluation.
//!
//! Every table and figure target from DESIGN.md is implemented as a pure
//! function in [`experiments`] that returns rendered tables plus
//! machine-readable [`cs_metrics::experiment::ExperimentRecord`]s; the
//! `harness` binary dispatches to them, and the crate's tests run them at
//! reduced scale so the experiment code itself is covered by
//! `cargo test`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod experiments;

pub use config::{artifact_path, Scale};
pub use experiments::ExperimentOutput;
