//! Minimal in-repo stand-in for the parts of `proptest` 1 this workspace
//! uses: the `proptest!` macro, range / `any` / tuple / `collection::vec`
//! strategies, `prop_assert*`, and `ProptestConfig` with `with_cases`
//! plus the `PROPTEST_CASES` environment override.
//!
//! Differences from upstream worth knowing:
//!
//! * **No shrinking.** A failing case panics with the regular assert
//!   message; inputs are deterministic per (test name, case index), so a
//!   failure reproduces by rerunning the test.
//! * Generation is a SplitMix64 stream keyed by the test's module path
//!   and name, so adding cases to one test does not perturb another.

#![forbid(unsafe_code)]

/// Number of cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases per property; the `PROPTEST_CASES` environment variable
    /// overrides it at run time (matching upstream behavior).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count to actually run: `PROPTEST_CASES` if set and
    /// parseable, the configured count otherwise.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// The deterministic generator driving each test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of the test identified by `name`
    /// (module path + function name).
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a default "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): plenty for the properties in this tree.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Short printable-ASCII strings: enough to exercise hashing and
        // codec properties without a full regex strategy.
        let len = (rng.next_u64() % 33) as usize;
        (0..len)
            .map(|_| char::from(b' ' + (rng.next_u64() % 95) as u8))
            .collect()
    }
}

/// Strategy generating any value of `T` (via [`Arbitrary`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Sub-modules mirroring upstream's `prop::` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Inclusive length range for collection strategies. Mirrors
        /// upstream's `SizeRange`: accepting only `usize`-typed ranges is
        /// what lets `vec(elem, 1..50)` infer `usize` for the literals.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty length range");
                Self {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        /// Strategy for `Vec`s with element strategy `E`.
        pub struct VecStrategy<E> {
            element: E,
            len: SizeRange,
        }

        /// `vec(element, 0..100)`: a vector whose length is drawn from
        /// `len` and whose elements are drawn from `element`.
        pub fn vec<E: Strategy>(element: E, len: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.hi_inclusive - self.len.lo) as u64 + 1;
                let n = self.len.lo + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Property assertion; same interface as `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property assertion; same interface as `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property assertion; same interface as `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Binds one parameter list entry per step: either `pat in strategy` or
/// `name: Type` (shorthand for `any::<Type>()`).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $var:ident : $ty:ty) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Expands the function list inside `proptest! { ... }`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.resolved_cases();
            for __case in 0..u64::from(__cases) {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// The property-test macro: each `#[test] fn name(params) { body }` runs
/// `body` for `cases` deterministic random instantiations of `params`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_resolves_env_override() {
        // Not setting the env var here (tests run in parallel); just the
        // plain path.
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::TestRng::deterministic("x::y", 3);
        let mut b = crate::TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("t", 0);
        for _ in 0..1000 {
            let v = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
            let z = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&z));
            let i = (1u32..=6).sample(&mut rng);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_length_and_elements() {
        let mut rng = crate::TestRng::deterministic("t", 1);
        let strat = prop::collection::vec(0u64..50, 2..8);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 8);
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn tuple_strategy_samples_both() {
        let mut rng = crate::TestRng::deterministic("t", 2);
        let (a, b) = (0u64..10, -5i64..0).sample(&mut rng);
        assert!(a < 10);
        assert!((-5..0).contains(&b));
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::deterministic("t", 3);
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    // The macro itself, end to end: typed params, `in` params, mut
    // patterns, trailing commas, multiple fns, and a config block.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(seed: u64, xs in prop::collection::vec(0u64..9, 0..20)) {
            let _ = seed;
            prop_assert!(xs.iter().all(|&x| x < 9));
        }

        #[test]
        fn macro_supports_mut_patterns(
            mut v in prop::collection::vec(any::<i64>(), 1..30),
        ) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
