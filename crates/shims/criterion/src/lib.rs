//! Minimal in-repo stand-in for the parts of `criterion` 0.5 this
//! workspace's benches use: `Criterion`, benchmark groups with
//! throughput annotations, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark runs a fixed number of timed iterations and prints the
//! mean wall-clock time (plus derived throughput). There is no warm-up,
//! outlier analysis, or report output — enough to keep the benches
//! compiling, runnable, and comparable run-over-run on one machine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Iterations per benchmark (upstream decides statistically; the shim is
/// fixed and overridable via `CRITERION_SHIM_ITERS`).
fn iterations() -> u32 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration annotation for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark's identifier inside a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = iterations();
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = n;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut routine: R) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 1,
        };
        routine(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, R>(&mut self, id: BenchmarkId, input: &I, mut routine: R)
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 1,
        };
        routine(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mean = b.total.as_secs_f64() / f64::from(b.iters.max(1));
    let mut line = format!("{label:<60} {:>12.3} µs/iter", mean * 1e6);
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            line.push_str(&format!("  {:>10.1} Melem/s", n as f64 / mean / 1e6));
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            line.push_str(&format!(
                "  {:>10.1} MiB/s",
                n as f64 / mean / (1 << 20) as f64
            ));
        }
        _ => {}
    }
    println!("{line}");
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 1,
        };
        routine(&mut b);
        report(&id.to_string(), &b, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 100), &100u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran >= 1, "routine must actually run");
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
