//! Minimal in-repo stand-in for the parts of `rand` 0.8 this workspace
//! uses: a seedable PRNG (`rngs::StdRng`), the `Rng`/`RngCore`/
//! `SeedableRng` traits with `gen`, `gen_range` and `gen_bool`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — fast, passes the statistical checks the
//! workspace's tests run, and deterministic per seed. It is **not** the
//! upstream `StdRng` (ChaCha12): sequences differ from upstream for the
//! same seed, and this shim makes no cryptographic claims.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator (the shim's
/// equivalent of sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Take a high bit; low bits of weak generators are the weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `gen_range` can sample uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. `hi > lo` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(hi > lo, "gen_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo draw: the bias for the spans used in this
                // workspace (far below 2^64) is immaterial for tests.
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(hi > lo);
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "gen_range requires a non-empty range");
                // Widen to i128 so `hi - lo + 1` cannot overflow for any
                // integer type up to 64 bits.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods every generator gets.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic PRNG: SplitMix64.
    ///
    /// Chosen for this shim because it is seedable from a single `u64`,
    /// equidistributed enough for the statistical tests in the tree, and
    /// four lines long. Not the upstream ChaCha12 `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so seeds 0 and 1 do not produce correlated
            // early outputs.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0u8..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And with overwhelming probability not the identity.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mean_of_f64_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
