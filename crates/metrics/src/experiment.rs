//! Machine-readable experiment records.
//!
//! Each harness experiment emits one [`ExperimentRecord`] per measured
//! configuration as a JSON line, so EXPERIMENTS.md numbers can be
//! regenerated and post-processed without re-parsing ASCII tables.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One measured data point of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"table1"` or `"error_vs_b"`.
    pub experiment: String,
    /// Algorithm under measurement, e.g. `"count-sketch"`.
    pub algorithm: String,
    /// Input parameters (z, n, m, k, b, t, eps, ...).
    pub params: BTreeMap<String, f64>,
    /// Measured outputs (space, recall, error, ...).
    pub metrics: BTreeMap<String, f64>,
}

impl ExperimentRecord {
    /// Starts a record.
    pub fn new(experiment: impl Into<String>, algorithm: impl Into<String>) -> Self {
        Self {
            experiment: experiment.into(),
            algorithm: algorithm.into(),
            params: BTreeMap::new(),
            metrics: BTreeMap::new(),
        }
    }

    /// Adds an input parameter.
    pub fn param(mut self, name: impl Into<String>, value: f64) -> Self {
        self.params.insert(name.into(), value);
        self
    }

    /// Adds a measured metric.
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.insert(name.into(), value);
        self
    }

    /// Serializes to one JSON line.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("record is always serializable")
    }

    /// Parses a JSON line back.
    pub fn from_json_line(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_fields() {
        let r = ExperimentRecord::new("table1", "count-sketch")
            .param("z", 1.0)
            .param("k", 100.0)
            .metric("space_bytes", 4096.0);
        assert_eq!(r.experiment, "table1");
        assert_eq!(r.params["z"], 1.0);
        assert_eq!(r.metrics["space_bytes"], 4096.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = ExperimentRecord::new("e", "a")
            .param("x", 2.5)
            .metric("y", -1.0);
        let line = r.to_json_line();
        assert!(!line.contains('\n'));
        let back = ExperimentRecord::from_json_line(&line).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn bad_json_is_error() {
        assert!(ExperimentRecord::from_json_line("{not json").is_err());
    }

    #[test]
    fn params_are_sorted_deterministically() {
        let r = ExperimentRecord::new("e", "a")
            .param("b", 1.0)
            .param("a", 2.0);
        let line = r.to_json_line();
        let a_pos = line.find("\"a\"").unwrap();
        let b_pos = line.find("\"b\"").unwrap();
        assert!(a_pos < b_pos, "BTreeMap keys serialize sorted");
    }
}
