//! Machine-readable experiment records.
//!
//! Each harness experiment emits one [`ExperimentRecord`] per measured
//! configuration as a JSON line, so EXPERIMENTS.md numbers can be
//! regenerated and post-processed without re-parsing ASCII tables.
//!
//! The schema is fixed (two strings, two string→f64 maps), so the JSON
//! codec is hand-rolled here rather than pulled in as a dependency; the
//! parser is strict about the schema but tolerant of field order and
//! whitespace.

use std::collections::BTreeMap;
use std::fmt;

/// One measured data point of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"table1"` or `"error_vs_b"`.
    pub experiment: String,
    /// Algorithm under measurement, e.g. `"count-sketch"`.
    pub algorithm: String,
    /// Input parameters (z, n, m, k, b, t, eps, ...).
    pub params: BTreeMap<String, f64>,
    /// Measured outputs (space, recall, error, ...).
    pub metrics: BTreeMap<String, f64>,
}

/// Error parsing a JSON experiment line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecordError {
    message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad experiment record at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseRecordError {}

impl ExperimentRecord {
    /// Starts a record.
    pub fn new(experiment: impl Into<String>, algorithm: impl Into<String>) -> Self {
        Self {
            experiment: experiment.into(),
            algorithm: algorithm.into(),
            params: BTreeMap::new(),
            metrics: BTreeMap::new(),
        }
    }

    /// Adds an input parameter.
    pub fn param(mut self, name: impl Into<String>, value: f64) -> Self {
        self.params.insert(name.into(), value);
        self
    }

    /// Adds a measured metric.
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.insert(name.into(), value);
        self
    }

    /// Serializes to one JSON line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"experiment\":");
        write_json_string(&mut out, &self.experiment);
        out.push_str(",\"algorithm\":");
        write_json_string(&mut out, &self.algorithm);
        out.push_str(",\"params\":");
        write_json_map(&mut out, &self.params);
        out.push_str(",\"metrics\":");
        write_json_map(&mut out, &self.metrics);
        out.push('}');
        out
    }

    /// Parses a JSON line back.
    pub fn from_json_line(line: &str) -> Result<Self, ParseRecordError> {
        Parser::new(line).record()
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_map(out: &mut String, map: &BTreeMap<String, f64>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, k);
        out.push(':');
        write_json_f64(out, *v);
    }
    out.push('}');
}

fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{v}` prints the shortest representation that round-trips.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

/// Minimal recursive-descent parser for the record schema.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseRecordError> {
        Err(ParseRecordError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseRecordError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn string(&mut self) -> Result<String, ParseRecordError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            self.pos += 4;
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width == 0 || start + width > self.bytes.len() {
                        return self.err("invalid utf-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + width]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid utf-8"),
                    }
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, ParseRecordError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or_else(|| self.err("expected number"), Ok)
    }

    fn map(&mut self) -> Result<BTreeMap<String, f64>, ParseRecordError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            out.insert(key, self.number()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn record(&mut self) -> Result<ExperimentRecord, ParseRecordError> {
        self.expect(b'{')?;
        let mut experiment = None;
        let mut algorithm = None;
        let mut params = None;
        let mut metrics = None;
        if self.peek() == Some(b'}') {
            return self.err("missing required fields");
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "experiment" => experiment = Some(self.string()?),
                "algorithm" => algorithm = Some(self.string()?),
                "params" => params = Some(self.map()?),
                "metrics" => metrics = Some(self.map()?),
                other => return self.err(format!("unknown field '{other}'")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing bytes after record");
        }
        match (experiment, algorithm, params, metrics) {
            (Some(experiment), Some(algorithm), Some(params), Some(metrics)) => {
                Ok(ExperimentRecord {
                    experiment,
                    algorithm,
                    params,
                    metrics,
                })
            }
            _ => self.err("missing required fields"),
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_fields() {
        let r = ExperimentRecord::new("table1", "count-sketch")
            .param("z", 1.0)
            .param("k", 100.0)
            .metric("space_bytes", 4096.0);
        assert_eq!(r.experiment, "table1");
        assert_eq!(r.params["z"], 1.0);
        assert_eq!(r.metrics["space_bytes"], 4096.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = ExperimentRecord::new("e", "a")
            .param("x", 2.5)
            .metric("y", -1.0);
        let line = r.to_json_line();
        assert!(!line.contains('\n'));
        let back = ExperimentRecord::from_json_line(&line).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn bad_json_is_error() {
        assert!(ExperimentRecord::from_json_line("{not json").is_err());
        assert!(ExperimentRecord::from_json_line("").is_err());
        assert!(ExperimentRecord::from_json_line("{}").is_err());
        assert!(ExperimentRecord::from_json_line("{\"experiment\":\"e\"}").is_err());
        let r = ExperimentRecord::new("e", "a").to_json_line();
        assert!(ExperimentRecord::from_json_line(&format!("{r} extra")).is_err());
    }

    #[test]
    fn params_are_sorted_deterministically() {
        let r = ExperimentRecord::new("e", "a")
            .param("b", 1.0)
            .param("a", 2.0);
        let line = r.to_json_line();
        let a_pos = line.find("\"a\"").unwrap();
        let b_pos = line.find("\"b\"").unwrap();
        assert!(a_pos < b_pos, "BTreeMap keys serialize sorted");
    }

    #[test]
    fn field_order_and_whitespace_tolerated() {
        let line = r#" { "metrics" : { "y" : 3.5 } , "algorithm" : "a" ,
            "experiment" : "e" , "params" : { } } "#;
        let r = ExperimentRecord::from_json_line(line).unwrap();
        assert_eq!(r.experiment, "e");
        assert_eq!(r.metrics["y"], 3.5);
        assert!(r.params.is_empty());
    }

    #[test]
    fn strings_escape_correctly() {
        let r = ExperimentRecord::new("quo\"te\\slash\nnewline", "a");
        let back = ExperimentRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back.experiment, "quo\"te\\slash\nnewline");
    }

    #[test]
    fn scientific_notation_parses() {
        let r = ExperimentRecord::new("e", "a").param("x", 1.25e-7);
        let back = ExperimentRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back.params["x"], 1.25e-7);
    }

    #[test]
    fn integral_values_keep_decimal_point() {
        let line = ExperimentRecord::new("e", "a")
            .param("n", 100000.0)
            .to_json_line();
        assert!(line.contains("100000.0"), "{line}");
    }
}
