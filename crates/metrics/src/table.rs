//! Fixed-width ASCII table rendering for harness output.
//!
//! The harness prints tables that mirror the paper's Table 1 layout; this
//! is a minimal right-aligned renderer (no external dependency).

/// A simple ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:>width$} |", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a float compactly: integers show as integers, large values in
/// scientific form, the rest with 3 significant decimals.
pub fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1e7 {
        format!("{v:.2e}")
    } else if (v.round() - v).abs() < 1e-9 && a < 1e7 {
        format!("{}", v.round() as i64)
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["alg", "space"]);
        t.row(&["cs".into(), "100".into()]);
        t.row(&["sampling".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // All body lines equal width.
        let widths: Vec<usize> = lines[1..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("", &["x"]);
        assert!(t.is_empty());
        t.row(&["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_title_omitted() {
        let t = Table::new("", &["x"]);
        assert!(!t.render().contains("##"));
    }

    #[test]
    fn fmt_num_cases() {
        assert_eq!(fmt_num(5.0), "5");
        assert_eq!(fmt_num(1234.0), "1234");
        assert_eq!(fmt_num(0.5), "0.500");
        assert_eq!(fmt_num(123.45), "123.5");
        assert_eq!(fmt_num(1e9), "1.00e9");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
    }
}
