//! Aggregating experiment records into rendered reports.
//!
//! The harness appends one JSON line per measured data point
//! ([`crate::experiment::ExperimentRecord`]); this module reads such a
//! file back and renders one table per experiment, with the union of
//! parameter and metric columns — so EXPERIMENTS.md tables can be
//! regenerated from raw records without re-running anything
//! (`harness report --records results/records.jsonl`).

use crate::experiment::ExperimentRecord;
use crate::table::{fmt_num, Table};
use std::collections::BTreeMap;

/// Parses a JSON-lines string into records, skipping blank lines.
/// Returns the records and the number of malformed lines skipped.
pub fn parse_records(jsonl: &str) -> (Vec<ExperimentRecord>, usize) {
    let mut records = Vec::new();
    let mut bad = 0;
    for line in jsonl.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match ExperimentRecord::from_json_line(line) {
            Ok(r) => records.push(r),
            Err(_) => bad += 1,
        }
    }
    (records, bad)
}

/// Groups records by experiment name (sorted).
pub fn group_by_experiment(
    records: Vec<ExperimentRecord>,
) -> BTreeMap<String, Vec<ExperimentRecord>> {
    let mut groups: BTreeMap<String, Vec<ExperimentRecord>> = BTreeMap::new();
    for r in records {
        groups.entry(r.experiment.clone()).or_default().push(r);
    }
    groups
}

/// Renders one table for a group of same-experiment records: columns are
/// `algorithm`, then the union of parameter names, then the union of
/// metric names; one row per record, in input order. Missing cells show
/// `—`.
pub fn render_experiment(name: &str, records: &[ExperimentRecord]) -> Table {
    let mut param_names: Vec<String> = Vec::new();
    let mut metric_names: Vec<String> = Vec::new();
    for r in records {
        for k in r.params.keys() {
            if !param_names.contains(k) {
                param_names.push(k.clone());
            }
        }
        for k in r.metrics.keys() {
            if !metric_names.contains(k) {
                metric_names.push(k.clone());
            }
        }
    }
    let mut header: Vec<&str> = vec!["algorithm"];
    header.extend(param_names.iter().map(String::as_str));
    header.extend(metric_names.iter().map(String::as_str));
    let mut table = Table::new(format!("{name} ({} records)", records.len()), &header);
    for r in records {
        let mut row = vec![r.algorithm.clone()];
        for p in &param_names {
            row.push(r.params.get(p).map(|&v| fmt_num(v)).unwrap_or("—".into()));
        }
        for m in &metric_names {
            row.push(r.metrics.get(m).map(|&v| fmt_num(v)).unwrap_or("—".into()));
        }
        table.row(&row);
    }
    table
}

/// Full pipeline: JSONL → rendered report.
pub fn render_report(jsonl: &str) -> String {
    let (records, bad) = parse_records(jsonl);
    let groups = group_by_experiment(records);
    let mut out = String::new();
    if bad > 0 {
        out.push_str(&format!("({bad} malformed lines skipped)\n\n"));
    }
    for (name, records) in &groups {
        out.push_str(&render_experiment(name, records).render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(exp: &str, alg: &str, p: f64, m: f64) -> ExperimentRecord {
        ExperimentRecord::new(exp, alg)
            .param("z", p)
            .metric("space", m)
    }

    fn jsonl(records: &[ExperimentRecord]) -> String {
        records
            .iter()
            .map(|r| r.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn parse_roundtrip() {
        let input = jsonl(&[record("e1", "a", 1.0, 2.0), record("e2", "b", 3.0, 4.0)]);
        let (records, bad) = parse_records(&input);
        assert_eq!(records.len(), 2);
        assert_eq!(bad, 0);
    }

    #[test]
    fn malformed_lines_counted_not_fatal() {
        let input = format!(
            "{}\nnot json\n\n{}",
            record("e", "a", 1.0, 2.0).to_json_line(),
            record("e", "b", 3.0, 4.0).to_json_line()
        );
        let (records, bad) = parse_records(&input);
        assert_eq!(records.len(), 2);
        assert_eq!(bad, 1);
    }

    #[test]
    fn grouping_by_experiment_sorted() {
        let (records, _) = parse_records(&jsonl(&[
            record("zeta", "a", 1.0, 1.0),
            record("alpha", "b", 2.0, 2.0),
            record("zeta", "c", 3.0, 3.0),
        ]));
        let groups = group_by_experiment(records);
        let names: Vec<&String> = groups.keys().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(groups["zeta"].len(), 2);
    }

    #[test]
    fn render_handles_heterogeneous_columns() {
        let r1 = ExperimentRecord::new("e", "a")
            .param("x", 1.0)
            .metric("m1", 2.0);
        let r2 = ExperimentRecord::new("e", "b")
            .param("y", 3.0)
            .metric("m2", 4.0);
        let table = render_experiment("e", &[r1, r2]);
        let s = table.render();
        assert!(s.contains("x") && s.contains("y"));
        assert!(s.contains("m1") && s.contains("m2"));
        assert!(s.contains("—"), "missing cells shown as dashes");
    }

    #[test]
    fn full_report_renders_all_groups() {
        let input = jsonl(&[record("e1", "a", 1.0, 2.0), record("e2", "b", 3.0, 4.0)]);
        let report = render_report(&input);
        assert!(report.contains("e1 (1 records)"));
        assert!(report.contains("e2 (1 records)"));
    }

    #[test]
    fn empty_input_empty_report() {
        assert_eq!(render_report(""), "");
    }
}
