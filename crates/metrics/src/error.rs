//! Estimate-error metrics against exact ground truth.

use cs_hash::ItemKey;
use cs_stream::ExactCounter;

/// Aggregate error of a set of `(item, estimate)` pairs versus truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorReport {
    /// Number of items measured.
    pub count: usize,
    /// Maximum absolute error `|est - n_q|`.
    pub max_abs: f64,
    /// Mean absolute error.
    pub mean_abs: f64,
    /// Mean relative error `|est - n_q| / n_q` (items with `n_q = 0` are
    /// measured against 1 to stay finite).
    pub mean_rel: f64,
    /// Maximum relative error.
    pub max_rel: f64,
}

impl ErrorReport {
    /// Measures signed estimates (Count-Sketch style) against truth.
    pub fn measure(estimates: &[(ItemKey, i64)], exact: &ExactCounter) -> Self {
        let mut report = ErrorReport {
            count: estimates.len(),
            ..Default::default()
        };
        if estimates.is_empty() {
            return report;
        }
        let mut sum_abs = 0.0;
        let mut sum_rel = 0.0;
        for &(key, est) in estimates {
            let truth = exact.count(key) as f64;
            let abs = (est as f64 - truth).abs();
            let rel = abs / truth.max(1.0);
            sum_abs += abs;
            sum_rel += rel;
            report.max_abs = report.max_abs.max(abs);
            report.max_rel = report.max_rel.max(rel);
        }
        report.mean_abs = sum_abs / estimates.len() as f64;
        report.mean_rel = sum_rel / estimates.len() as f64;
        report
    }

    /// Measures unsigned estimates (baseline style) against truth.
    pub fn measure_unsigned(estimates: &[(ItemKey, u64)], exact: &ExactCounter) -> Self {
        let signed: Vec<(ItemKey, i64)> = estimates
            .iter()
            .map(|&(k, v)| (k, v.min(i64::MAX as u64) as i64))
            .collect();
        Self::measure(&signed, exact)
    }

    /// The fraction of measured items whose absolute error exceeds
    /// `bound` — used to verify the `8γ` tail bound of Lemma 4.
    pub fn fraction_exceeding(
        estimates: &[(ItemKey, i64)],
        exact: &ExactCounter,
        bound: f64,
    ) -> f64 {
        if estimates.is_empty() {
            return 0.0;
        }
        let over = estimates
            .iter()
            .filter(|&&(key, est)| {
                let truth = exact.count(key) as f64;
                (est as f64 - truth).abs() > bound
            })
            .count();
        over as f64 / estimates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::Stream;

    fn exact(ids: &[u64]) -> ExactCounter {
        ExactCounter::from_stream(&Stream::from_ids(ids.iter().copied()))
    }

    #[test]
    fn exact_estimates_zero_error() {
        let e = exact(&[1, 1, 2]);
        let r = ErrorReport::measure(&[(ItemKey(1), 2), (ItemKey(2), 1)], &e);
        assert_eq!(r.count, 2);
        assert_eq!(r.max_abs, 0.0);
        assert_eq!(r.mean_abs, 0.0);
        assert_eq!(r.mean_rel, 0.0);
    }

    #[test]
    fn absolute_and_relative_errors() {
        let e = exact(&[1, 1, 1, 1, 2, 2]); // counts 4, 2
        let r = ErrorReport::measure(&[(ItemKey(1), 6), (ItemKey(2), 1)], &e);
        // errors: |6-4| = 2 (rel 0.5), |1-2| = 1 (rel 0.5)
        assert_eq!(r.max_abs, 2.0);
        assert_eq!(r.mean_abs, 1.5);
        assert!((r.mean_rel - 0.5).abs() < 1e-12);
        assert!((r.max_rel - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_item_measured_against_zero() {
        let e = exact(&[1]);
        let r = ErrorReport::measure(&[(ItemKey(9), 5)], &e);
        assert_eq!(r.max_abs, 5.0);
        assert_eq!(r.max_rel, 5.0); // divisor clamped to 1
    }

    #[test]
    fn empty_input() {
        let r = ErrorReport::measure(&[], &ExactCounter::new());
        assert_eq!(r.count, 0);
        assert_eq!(r.max_abs, 0.0);
    }

    #[test]
    fn negative_estimates_counted_as_error() {
        let e = exact(&[1, 1]);
        let r = ErrorReport::measure(&[(ItemKey(1), -2)], &e);
        assert_eq!(r.max_abs, 4.0);
    }

    #[test]
    fn unsigned_measure_matches_signed() {
        let e = exact(&[1, 1, 2]);
        let signed = ErrorReport::measure(&[(ItemKey(1), 3)], &e);
        let unsigned = ErrorReport::measure_unsigned(&[(ItemKey(1), 3u64)], &e);
        assert_eq!(signed, unsigned);
    }

    #[test]
    fn fraction_exceeding_counts_tail() {
        let e = exact(&[1, 1, 1, 2]); // counts 3, 1
        let ests = [(ItemKey(1), 10), (ItemKey(2), 1)];
        assert_eq!(ErrorReport::fraction_exceeding(&ests, &e, 5.0), 0.5);
        assert_eq!(ErrorReport::fraction_exceeding(&ests, &e, 100.0), 0.0);
        assert_eq!(ErrorReport::fraction_exceeding(&[], &e, 1.0), 0.0);
    }
}
