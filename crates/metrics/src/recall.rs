//! Set-overlap metrics and the Lemma 5 validity checks.

use cs_hash::ItemKey;
use cs_stream::ExactCounter;
use std::collections::HashSet;

/// Fraction of the true top-`k` present in `reported`.
///
/// If fewer than `k` distinct items exist, the divisor is the number that
/// do. Returns 1.0 for an empty truth set (vacuous success).
pub fn recall_at_k(reported: &[ItemKey], exact: &ExactCounter, k: usize) -> f64 {
    let truth: HashSet<ItemKey> = exact.top_k(k).into_iter().map(|(key, _)| key).collect();
    if truth.is_empty() {
        return 1.0;
    }
    let got: HashSet<ItemKey> = reported.iter().copied().collect();
    truth.intersection(&got).count() as f64 / truth.len() as f64
}

/// Fraction of `reported` that belongs to the true top-`k`.
/// Returns 1.0 for an empty report (vacuous success).
pub fn precision_at_k(reported: &[ItemKey], exact: &ExactCounter, k: usize) -> f64 {
    if reported.is_empty() {
        return 1.0;
    }
    let truth: HashSet<ItemKey> = exact.top_k(k).into_iter().map(|(key, _)| key).collect();
    reported.iter().filter(|key| truth.contains(key)).count() as f64 / reported.len() as f64
}

/// The two Lemma 5 guarantees, checked exactly against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxTopValidity {
    /// Every reported item has `n_q ≥ (1-ε)·n_k`.
    pub all_reported_heavy: bool,
    /// Every item with `n_q ≥ (1+ε)·n_k` is reported (the paper's
    /// "stronger guarantee").
    pub all_heavy_reported: bool,
    /// Number of reported items violating the first guarantee.
    pub light_reported: usize,
    /// Number of `(1+ε)`-heavy items missing from the report.
    pub heavy_missing: usize,
}

impl ApproxTopValidity {
    /// Checks both guarantees of APPROXTOP(S, k, ε) for a reported list.
    pub fn check(reported: &[ItemKey], exact: &ExactCounter, k: usize, eps: f64) -> Self {
        let nk = exact.nk(k) as f64;
        let floor = (1.0 - eps) * nk;
        let ceil = (1.0 + eps) * nk;
        let reported_set: HashSet<ItemKey> = reported.iter().copied().collect();

        let light_reported = reported
            .iter()
            .filter(|&&key| (exact.count(key) as f64) < floor)
            .count();
        let heavy_missing = exact
            .counts()
            .iter()
            .filter(|(key, &count)| count as f64 >= ceil && !reported_set.contains(key))
            .count();

        Self {
            all_reported_heavy: light_reported == 0,
            all_heavy_reported: heavy_missing == 0,
            light_reported,
            heavy_missing,
        }
    }

    /// Both guarantees hold.
    pub fn valid(&self) -> bool {
        self.all_reported_heavy && self.all_heavy_reported
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::Stream;

    fn exact(ids: &[u64]) -> ExactCounter {
        ExactCounter::from_stream(&Stream::from_ids(ids.iter().copied()))
    }

    #[test]
    fn recall_basics() {
        // counts: 3→3, 2→2, 1→1
        let e = exact(&[3, 3, 3, 2, 2, 1]);
        assert_eq!(recall_at_k(&[ItemKey(3), ItemKey(2)], &e, 2), 1.0);
        assert_eq!(recall_at_k(&[ItemKey(3)], &e, 2), 0.5);
        assert_eq!(recall_at_k(&[], &e, 2), 0.0);
        assert_eq!(recall_at_k(&[ItemKey(9)], &e, 2), 0.0);
    }

    #[test]
    fn recall_with_fewer_items_than_k() {
        let e = exact(&[1, 2]);
        // Only 2 distinct items; reporting both gives recall 1 at k=5.
        assert_eq!(recall_at_k(&[ItemKey(1), ItemKey(2)], &e, 5), 1.0);
    }

    #[test]
    fn recall_empty_truth_is_vacuous() {
        let e = ExactCounter::new();
        assert_eq!(recall_at_k(&[ItemKey(1)], &e, 3), 1.0);
    }

    #[test]
    fn precision_basics() {
        let e = exact(&[3, 3, 3, 2, 2, 1]);
        assert_eq!(precision_at_k(&[ItemKey(3), ItemKey(9)], &e, 2), 0.5);
        assert_eq!(precision_at_k(&[], &e, 2), 1.0);
        assert_eq!(precision_at_k(&[ItemKey(3), ItemKey(2)], &e, 2), 1.0);
    }

    #[test]
    fn validity_all_good() {
        // counts: 1→10, 2→9, 3→1; k=2, eps=0.5: floor = 4.5, ceil = 13.5.
        let mut ids = vec![1u64; 10];
        ids.extend(vec![2u64; 9]);
        ids.push(3);
        let e = exact(&ids);
        let v = ApproxTopValidity::check(&[ItemKey(1), ItemKey(2)], &e, 2, 0.5);
        assert!(v.valid());
        assert_eq!(v.light_reported, 0);
        assert_eq!(v.heavy_missing, 0);
    }

    #[test]
    fn validity_detects_light_reported() {
        let mut ids = vec![1u64; 10];
        ids.extend(vec![2u64; 9]);
        ids.push(3); // count 1 < floor 4.5
        let e = exact(&ids);
        let v = ApproxTopValidity::check(&[ItemKey(1), ItemKey(3)], &e, 2, 0.5);
        assert!(!v.all_reported_heavy);
        assert_eq!(v.light_reported, 1);
    }

    #[test]
    fn validity_detects_heavy_missing() {
        // counts: 1→20, 2→9, 3→9; k=2 → n_k=9, eps=0.5 → ceil=13.5.
        // Item 1 (20 ≥ 13.5) must be reported.
        let mut ids = vec![1u64; 20];
        ids.extend(vec![2u64; 9]);
        ids.extend(vec![3u64; 9]);
        let e = exact(&ids);
        let v = ApproxTopValidity::check(&[ItemKey(2), ItemKey(3)], &e, 2, 0.5);
        assert!(!v.all_heavy_reported);
        assert_eq!(v.heavy_missing, 1);
        // Reported items are both exactly n_k ≥ floor, so first guarantee
        // holds.
        assert!(v.all_reported_heavy);
    }

    #[test]
    fn validity_boundary_items_allowed() {
        // An item with exactly (1-ε)n_k may be reported: guarantee is ≥.
        let mut ids = vec![1u64; 10]; // n_1 = 10
        ids.extend(vec![2u64; 10]); // n_2 = 10 → n_k = 10 (k=2)
        ids.extend(vec![3u64; 5]); // exactly floor at eps=0.5
        let e = exact(&ids);
        let v = ApproxTopValidity::check(&[ItemKey(1), ItemKey(3)], &e, 2, 0.5);
        assert!(v.all_reported_heavy, "boundary item is allowed");
    }
}
