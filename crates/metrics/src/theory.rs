//! The closed-form space expressions of §4.1 / Table 1.
//!
//! Table 1 compares, up to constant factors, the space of three
//! algorithms solving CANDIDATETOP(S, k, O(k)) on a Zipfian input with
//! parameter `z` over `m` items and `n` occurrences:
//!
//! | regime      | SAMPLING                | KPS            | COUNT SKETCH            |
//! |-------------|-------------------------|----------------|-------------------------|
//! | `z < 1/2`   | `m(k/m)^z · log k`      | `k^z m^{1-z}`  | `m^{1-2z} k^{2z} log n` |
//! | `z = 1/2`   | `sqrt(km) · log k`      | `sqrt(km)`     | `k log m log n`         |
//! | `1/2 < z<1` | `m(k/m)^z · log k`      | `k^z m^{1-z}`  | `k log n`               |
//! | `z = 1`     | `k log m · log k`       | `k log m`      | `k log n`               |
//! | `z > 1`     | `k (log k)^{1/z}`       | `k^z`          | `k log n`               |
//!
//! SAMPLING is measured as the expected number of distinct sampled items;
//! KPS as its `O(n/n_k)` counter budget (`n/n_k = H_m(z)·k^z`); the Count-
//! Sketch as `b·t` with `b` from Lemma 5 and `t = Θ(log n)`. These
//! functions evaluate the expressions with unit constants and natural
//! logarithms — the experiments compare *shapes* (exponents and
//! crossovers), not absolute constants.

/// Workload parameters for the Table 1 formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfWorkload {
    /// Universe size `m`.
    pub m: f64,
    /// Stream length `n`.
    pub n: f64,
    /// Number of frequent items sought `k`.
    pub k: f64,
    /// Zipf parameter `z`.
    pub z: f64,
}

impl ZipfWorkload {
    /// Convenience constructor from integer sizes.
    pub fn new(m: usize, n: usize, k: usize, z: f64) -> Self {
        assert!(m >= 1 && n >= 1 && k >= 1);
        assert!(z >= 0.0 && z.is_finite());
        Self {
            m: m as f64,
            n: n as f64,
            k: k as f64,
            z,
        }
    }

    fn log_k(&self) -> f64 {
        self.k.ln().max(1.0)
    }

    fn log_m(&self) -> f64 {
        self.m.ln().max(1.0)
    }

    fn log_n(&self) -> f64 {
        self.n.ln().max(1.0)
    }

    /// The generalized harmonic number `H_m(z) = Σ_{q=1}^{m} q^{-z}`,
    /// evaluated by its asymptotic regime (matching how the paper
    /// simplifies): `m^{1-z}/(1-z)` for `z < 1`, `ln m` for `z = 1`,
    /// `ζ(z) ≈ 1/(z-1) + 1` for `z > 1`.
    pub fn harmonic(&self) -> f64 {
        const TOL: f64 = 1e-9;
        if (self.z - 1.0).abs() < TOL {
            self.log_m()
        } else if self.z < 1.0 {
            self.m.powf(1.0 - self.z) / (1.0 - self.z)
        } else {
            1.0 / (self.z - 1.0) + 1.0
        }
    }

    /// SAMPLING's expected number of distinct sampled items (§4.1):
    /// `m(k/m)^z·log k` for `z < 1`, `k·log m·log k` at `z = 1`,
    /// `k·(log k)^{1/z}` for `z > 1`.
    pub fn sampling_space(&self) -> f64 {
        const TOL: f64 = 1e-9;
        if (self.z - 1.0).abs() < TOL {
            self.k * self.log_m() * self.log_k()
        } else if self.z < 1.0 {
            self.m * (self.k / self.m).powf(self.z) * self.log_k()
        } else {
            self.k * self.log_k().powf(1.0 / self.z)
        }
    }

    /// KPS's counter budget `n/n_k = H_m(z)·k^z`.
    pub fn kps_space(&self) -> f64 {
        self.harmonic() * self.k.powf(self.z)
    }

    /// The Count-Sketch bucket count `b` from Lemma 5 with constant ε:
    /// `max(k, residual-F₂-term)` by regime — `m^{1-2z}k^{2z}` for
    /// `z < 1/2`, `k·log m` at `z = 1/2`, `k` for `z > 1/2`.
    pub fn count_sketch_buckets(&self) -> f64 {
        const TOL: f64 = 1e-9;
        if (self.z - 0.5).abs() < TOL {
            self.k * self.log_m()
        } else if self.z < 0.5 {
            self.m.powf(1.0 - 2.0 * self.z) * self.k.powf(2.0 * self.z)
        } else {
            self.k
        }
        .max(self.k)
    }

    /// The Count-Sketch total space `b·t` with `t = log n`.
    pub fn count_sketch_space(&self) -> f64 {
        self.count_sketch_buckets() * self.log_n()
    }
}

/// One evaluated Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// The workload.
    pub workload: ZipfWorkload,
    /// SAMPLING column.
    pub sampling: f64,
    /// KPS column.
    pub kps: f64,
    /// COUNT SKETCH column.
    pub count_sketch: f64,
}

impl Table1Row {
    /// Evaluates all three columns for a workload.
    pub fn evaluate(workload: ZipfWorkload) -> Self {
        Self {
            workload,
            sampling: workload.sampling_space(),
            kps: workload.kps_space(),
            count_sketch: workload.count_sketch_space(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(z: f64) -> ZipfWorkload {
        ZipfWorkload::new(100_000, 10_000_000, 100, z)
    }

    #[test]
    fn harmonic_regimes() {
        // z = 0: H = m.
        assert!((w(0.0).harmonic() - 100_000.0).abs() < 1.0);
        // z = 1: H = ln m.
        assert!((w(1.0).harmonic() - (100_000f64).ln()).abs() < 1e-9);
        // z = 2: H ≈ ζ(2) ≈ 1.64; our approximation gives 2.
        assert!((w(2.0).harmonic() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn count_sketch_buckets_regimes() {
        // z > 1/2: exactly k.
        assert_eq!(w(0.75).count_sketch_buckets(), 100.0);
        assert_eq!(w(1.5).count_sketch_buckets(), 100.0);
        // z = 1/2: k log m.
        let b = w(0.5).count_sketch_buckets();
        assert!((b - 100.0 * (100_000f64).ln()).abs() < 1e-6);
        // z < 1/2: m^{1-2z} k^{2z} — grows with m.
        let small_m = ZipfWorkload::new(1_000, 10_000_000, 100, 0.25);
        let large_m = ZipfWorkload::new(1_000_000, 10_000_000, 100, 0.25);
        assert!(large_m.count_sketch_buckets() > small_m.count_sketch_buckets());
    }

    #[test]
    fn count_sketch_wins_for_z_below_one() {
        // The paper's headline: for z < 1 the Count-Sketch beats SAMPLING.
        // The advantage is asymptotic in m (SAMPLING costs m^{1-z}k^z·log k
        // vs the m-independent k·log n): at m = 10^5 it holds up to
        // z ≈ 0.85, and for z nearer 1 it needs larger m.
        for z in [0.6, 0.75] {
            let row = Table1Row::evaluate(w(z));
            assert!(
                row.count_sketch < row.sampling,
                "z = {z}: CS {} vs SAMPLING {}",
                row.count_sketch,
                row.sampling
            );
        }
        let big_m = ZipfWorkload::new(1_000_000_000, 10_000_000, 100, 0.9);
        assert!(big_m.count_sketch_space() < big_m.sampling_space());
    }

    #[test]
    fn kps_loses_to_count_sketch_for_moderate_z() {
        // KPS's k^z m^{1-z} dwarfs k log n for z in (1/2, 1) on large m.
        for z in [0.6, 0.8] {
            let row = Table1Row::evaluate(w(z));
            assert!(row.count_sketch < row.kps, "z = {z}");
        }
    }

    #[test]
    fn sampling_space_decreases_with_z() {
        // Heavier skew ⇒ easier for sampling.
        let s: Vec<f64> = [0.25, 0.5, 0.75, 1.25, 2.0]
            .iter()
            .map(|&z| w(z).sampling_space())
            .collect();
        for pair in s.windows(2) {
            assert!(pair[1] <= pair[0] * 1.01, "not non-increasing: {s:?}");
        }
    }

    #[test]
    fn continuity_near_regime_boundaries() {
        // The piecewise formulas should roughly agree just either side of
        // z = 1/2 (same order of magnitude).
        let below = w(0.499).count_sketch_buckets();
        let at = w(0.5).count_sketch_buckets();
        let ratio = below / at;
        assert!(ratio > 0.05 && ratio < 20.0, "discontinuity: {ratio}");
    }

    #[test]
    fn row_evaluation_consistent() {
        let row = Table1Row::evaluate(w(1.0));
        assert_eq!(row.sampling, w(1.0).sampling_space());
        assert_eq!(row.kps, w(1.0).kps_space());
        assert_eq!(row.count_sketch, w(1.0).count_sketch_space());
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        ZipfWorkload::new(10, 10, 0, 1.0);
    }
}
