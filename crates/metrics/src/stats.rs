//! Small summary-statistics helpers used by the experiment harness.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation. Returns 0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample. Returns 0 for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Geometric mean of positive values. Returns 0 if empty or any value is
/// non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn std_dev_basics() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(std_dev(&[2.0, 2.0, 2.0]), 0.0);
        // Population sd of {1, 3} is 1.
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&v), 2.5);
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "q must be in [0,1]")]
    fn quantile_out_of_range() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[-1.0, 2.0]), 0.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }
}
