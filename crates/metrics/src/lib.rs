//! Evaluation metrics, theoretical space formulas and report output for
//! the Count-Sketch experiments.
//!
//! * [`recall`] — set-overlap metrics (recall/precision@k) and the two
//!   APPROXTOP validity checks from Lemma 5,
//! * [`error`] — estimate-error metrics (max/mean absolute and relative
//!   error against exact counts, observed-vs-`8γ`),
//! * [`theory`] — the closed-form space expressions from Table 1 for
//!   SAMPLING, KPS and the Count-Sketch on Zipfian inputs,
//! * [`stats`] — small summary-statistics helpers (mean/median/quantiles),
//! * [`table`] — fixed-width ASCII table rendering for harness output,
//! * [`experiment`] — machine-readable experiment records (JSON lines).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod experiment;
pub mod recall;
pub mod report;
pub mod stats;
pub mod table;
pub mod theory;

pub use error::ErrorReport;
pub use recall::{precision_at_k, recall_at_k, ApproxTopValidity};
pub use table::Table;
