//! Dietzfelbinger's strongly universal multiply-shift hashing.
//!
//! For a power-of-two range `2^d`, `h(x) = (a·x + b mod 2^64) >> (64 - d)`
//! with `a, b` uniform 64-bit values is 2-wise independent ("strongly
//! universal"), and costs one multiply and one shift — no 128-bit products
//! and no modulo. This is the fast path the sketch's hot loop uses when
//! `b` is rounded to a power of two; the polynomial family remains the
//! reference construction for arbitrary ranges.
//!
//! Reference: Dietzfelbinger, "Universal hashing and k-wise independent
//! random variables via integer arithmetic without primes" (STACS '96).

use crate::seed::SeedSequence;
use crate::traits::BucketHasher;

/// A strongly universal multiply-shift hash into `2^d` buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplyShift {
    a: u64,
    b: u64,
    /// log2 of the number of buckets; shift amount is `64 - d`.
    d: u32,
}

impl MultiplyShift {
    /// Draws a fresh function into `2^d` buckets.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > 32` (the sketch never needs more than
    /// 2^32 buckets and `usize` conversions stay trivially safe).
    pub fn draw(seeds: &mut SeedSequence, d: u32) -> Self {
        assert!((1..=32).contains(&d), "d must be in [1, 32], got {d}");
        Self {
            a: seeds.next_seed(),
            b: seeds.next_seed(),
            d,
        }
    }

    /// Draws a function into the smallest power of two `>= range`.
    /// Returns the function together with the actual bucket count used.
    pub fn draw_at_least(seeds: &mut SeedSequence, range: usize) -> (Self, usize) {
        assert!(range >= 2, "need at least two buckets");
        let d = (range as u64).next_power_of_two().trailing_zeros();
        let h = Self::draw(seeds, d);
        (h, 1usize << d)
    }

    /// log2 of the bucket count.
    pub fn log2_buckets(&self) -> u32 {
        self.d
    }
}

impl BucketHasher for MultiplyShift {
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        (self.a.wrapping_mul(key).wrapping_add(self.b) >> (64 - self.d)) as usize
    }

    #[inline]
    fn bucket_block(&self, keys: &[u64], out: &mut [usize]) {
        let shift = 64 - self.d;
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = (self.a.wrapping_mul(k).wrapping_add(self.b) >> shift) as usize;
        }
    }

    fn num_buckets(&self) -> usize {
        1usize << self.d
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_in_range() {
        let mut seeds = SeedSequence::new(1);
        for d in [1u32, 4, 10, 20, 32] {
            let h = MultiplyShift::draw(&mut seeds, d);
            assert_eq!(h.num_buckets(), 1usize << d);
            for key in 0..1000u64 {
                assert!(h.bucket(key) < h.num_buckets());
            }
        }
    }

    #[test]
    fn draw_at_least_rounds_up() {
        let mut seeds = SeedSequence::new(2);
        let (h, n) = MultiplyShift::draw_at_least(&mut seeds, 100);
        assert_eq!(n, 128);
        assert_eq!(h.num_buckets(), 128);
        let (_, n) = MultiplyShift::draw_at_least(&mut seeds, 128);
        assert_eq!(n, 128);
        let (_, n) = MultiplyShift::draw_at_least(&mut seeds, 129);
        assert_eq!(n, 256);
    }

    #[test]
    #[should_panic(expected = "d must be in [1, 32]")]
    fn oversized_d_rejected() {
        MultiplyShift::draw(&mut SeedSequence::new(0), 33);
    }

    #[test]
    fn uniformity_chi_square() {
        let h = MultiplyShift::draw(&mut SeedSequence::new(42), 6); // 64 buckets
        let n = 65_536u64;
        let mut counts = [0u64; 64];
        for key in 0..n {
            counts[h.bucket(key)] += 1;
        }
        let expected = n as f64 / 64.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let diff = c as f64 - expected;
                diff * diff / expected
            })
            .sum();
        assert!(chi2 < 130.0, "chi2 = {chi2}");
    }

    #[test]
    fn collision_rate_matches_pairwise() {
        // Strong universality guarantees Pr[h(x)=h(y)] = 1/r over the
        // family draw; use random (not consecutive) key pairs so the
        // collision indicators are roughly independent across pairs.
        let r = 64usize;
        let mut seeds = SeedSequence::new(3);
        let mut keys = SeedSequence::new(1234);
        let mut collisions = 0usize;
        let funcs = 16;
        let pairs = 2000u64;
        for _ in 0..funcs {
            let h = MultiplyShift::draw(&mut seeds, 6);
            for _ in 0..pairs {
                if h.bucket(keys.next_seed()) == h.bucket(keys.next_seed()) {
                    collisions += 1;
                }
            }
        }
        let rate = collisions as f64 / (funcs as f64 * pairs as f64);
        assert!((rate - 1.0 / r as f64).abs() < 0.01, "rate = {rate}");
    }

    proptest! {
        #[test]
        fn prop_bucket_in_range(seed: u64, key: u64, d in 1u32..=32) {
            let h = MultiplyShift::draw(&mut SeedSequence::new(seed), d);
            prop_assert!(h.bucket(key) < h.num_buckets());
        }

        #[test]
        fn prop_deterministic(seed: u64, key: u64) {
            let h1 = MultiplyShift::draw(&mut SeedSequence::new(seed), 12);
            let h2 = MultiplyShift::draw(&mut SeedSequence::new(seed), 12);
            prop_assert_eq!(h1.bucket(key), h2.bucket(key));
        }
    }
}
