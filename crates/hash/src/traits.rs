//! Core traits implemented by every hash family in this crate.
//!
//! The sketch is generic over these traits so the experiments can swap
//! constructions (polynomial vs multiply-shift vs tabulation) without
//! touching the sketch code — the "strategy" pattern.

/// A hash function from 64-bit keys to bucket indices `[0, num_buckets)`.
///
/// Implementations must be *pure*: equal keys always map to equal buckets
/// for the lifetime of the value. The Count-Sketch analysis additionally
/// requires the family the function was drawn from to be pairwise
/// independent; every implementation in this crate documents its
/// independence level.
pub trait BucketHasher {
    /// Maps a key to a bucket in `[0, self.num_buckets())`.
    fn bucket(&self, key: u64) -> usize;

    /// Maps a block of keys to buckets: `out[j] = bucket(keys[j])`.
    ///
    /// Semantically identical to calling [`BucketHasher::bucket`] per key
    /// — implementations may only pipeline, never change the mapping. The
    /// batched sketch ingestion hot loop calls this once per row per
    /// block, so the per-key evaluations are independent and specialized
    /// implementations let them overlap in the CPU pipeline instead of
    /// serializing behind per-item loop control.
    ///
    /// # Panics
    /// Panics if `out.len() < keys.len()`.
    #[inline]
    fn bucket_block(&self, keys: &[u64], out: &mut [usize]) {
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = self.bucket(k);
        }
    }

    /// Canonicalizes a key for repeated hashing through this family.
    ///
    /// Contract: `bucket(key) == bucket_canon(canon(key))` for every
    /// key, and `canon` is a function of the *family*, not the drawn
    /// instance — every hasher of one concrete type maps a key to the
    /// same canonical form. Batch read kernels rely on this to
    /// canonicalize each key once and reuse it across all `t` rows,
    /// instead of paying the reduction inside every row's evaluation.
    /// The default is the identity.
    #[inline]
    fn canon(&self, key: u64) -> u64 {
        key
    }

    /// Maps a key already canonicalized by [`BucketHasher::canon`] to a
    /// bucket. Callers must only pass values produced by `canon`; the
    /// default forwards to [`BucketHasher::bucket`], which is correct
    /// because the identity canon leaves keys untouched.
    #[inline]
    fn bucket_canon(&self, key: u64) -> usize {
        self.bucket(key)
    }

    /// The size of the range this hasher maps into.
    fn num_buckets(&self) -> usize;

    /// Heap + inline memory used by this function's description, in bytes.
    ///
    /// The paper accounts `O(log m)` random bits per function; this method
    /// lets the space experiments charge the real cost.
    fn space_bytes(&self) -> usize;
}

/// A hash function from 64-bit keys to signs `{+1, -1}`.
///
/// Pairwise independence of the sign hash is what makes each row estimate
/// `C[i][h_i(q)] * s_i(q)` unbiased (paper §3.1): cross terms
/// `E[s_i(q) s_i(q')]` vanish for `q != q'`.
pub trait SignHasher {
    /// Returns `+1` or `-1` for the key.
    fn sign(&self, key: u64) -> i64;

    /// Evaluates a block of keys: `out[j] = sign(keys[j])`.
    ///
    /// Semantically identical to per-key [`SignHasher::sign`] calls; see
    /// [`BucketHasher::bucket_block`] for why batched ingestion wants the
    /// block form.
    ///
    /// # Panics
    /// Panics if `out.len() < keys.len()`.
    #[inline]
    fn sign_block(&self, keys: &[u64], out: &mut [i64]) {
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = self.sign(k);
        }
    }

    /// Canonicalizes a key for repeated sign evaluation; the same
    /// contract as [`BucketHasher::canon`], for this trait's
    /// [`SignHasher::sign_canon`]. The default is the identity.
    #[inline]
    fn canon(&self, key: u64) -> u64 {
        key
    }

    /// Evaluates a key already canonicalized by [`SignHasher::canon`].
    #[inline]
    fn sign_canon(&self, key: u64) -> i64 {
        self.sign(key)
    }

    /// Heap + inline memory used by this function's description, in bytes.
    fn space_bytes(&self) -> usize;
}

impl<T: BucketHasher + ?Sized> BucketHasher for Box<T> {
    fn bucket(&self, key: u64) -> usize {
        (**self).bucket(key)
    }
    fn bucket_block(&self, keys: &[u64], out: &mut [usize]) {
        (**self).bucket_block(keys, out)
    }
    fn canon(&self, key: u64) -> u64 {
        (**self).canon(key)
    }
    fn bucket_canon(&self, key: u64) -> usize {
        (**self).bucket_canon(key)
    }
    fn num_buckets(&self) -> usize {
        (**self).num_buckets()
    }
    fn space_bytes(&self) -> usize {
        (**self).space_bytes()
    }
}

impl<T: SignHasher + ?Sized> SignHasher for Box<T> {
    fn sign(&self, key: u64) -> i64 {
        (**self).sign(key)
    }
    fn sign_block(&self, keys: &[u64], out: &mut [i64]) {
        (**self).sign_block(keys, out)
    }
    fn canon(&self, key: u64) -> u64 {
        (**self).canon(key)
    }
    fn sign_canon(&self, key: u64) -> i64 {
        (**self).sign_canon(key)
    }
    fn space_bytes(&self) -> usize {
        (**self).space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl BucketHasher for Fixed {
        fn bucket(&self, key: u64) -> usize {
            (key % 3) as usize
        }
        fn num_buckets(&self) -> usize {
            3
        }
        fn space_bytes(&self) -> usize {
            0
        }
    }
    impl SignHasher for Fixed {
        fn sign(&self, key: u64) -> i64 {
            if key & 1 == 0 {
                1
            } else {
                -1
            }
        }
        fn space_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn boxed_bucket_hasher_delegates() {
        let b: Box<dyn BucketHasher> = Box::new(Fixed);
        assert_eq!(b.bucket(7), 1);
        assert_eq!(b.num_buckets(), 3);
        assert_eq!(b.space_bytes(), 0);
    }

    #[test]
    fn boxed_sign_hasher_delegates() {
        let b: Box<dyn SignHasher> = Box::new(Fixed);
        assert_eq!(b.sign(2), 1);
        assert_eq!(b.sign(3), -1);
    }

    #[test]
    fn default_block_methods_match_scalar() {
        let keys = [0u64, 1, 2, 3, 4, 5, 6];
        let mut buckets = [0usize; 7];
        Fixed.bucket_block(&keys, &mut buckets);
        let mut signs = [0i64; 7];
        Fixed.sign_block(&keys, &mut signs);
        for (j, &k) in keys.iter().enumerate() {
            assert_eq!(buckets[j], Fixed.bucket(k));
            assert_eq!(signs[j], Fixed.sign(k));
        }
    }

    #[test]
    fn block_methods_tolerate_oversized_out() {
        let keys = [1u64, 2];
        let mut buckets = [99usize; 5];
        Fixed.bucket_block(&keys, &mut buckets);
        assert_eq!(&buckets[..2], &[Fixed.bucket(1), Fixed.bucket(2)]);
        assert_eq!(buckets[2], 99, "tail untouched");
    }
}
