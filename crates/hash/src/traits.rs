//! Core traits implemented by every hash family in this crate.
//!
//! The sketch is generic over these traits so the experiments can swap
//! constructions (polynomial vs multiply-shift vs tabulation) without
//! touching the sketch code — the "strategy" pattern.

/// A hash function from 64-bit keys to bucket indices `[0, num_buckets)`.
///
/// Implementations must be *pure*: equal keys always map to equal buckets
/// for the lifetime of the value. The Count-Sketch analysis additionally
/// requires the family the function was drawn from to be pairwise
/// independent; every implementation in this crate documents its
/// independence level.
pub trait BucketHasher {
    /// Maps a key to a bucket in `[0, self.num_buckets())`.
    fn bucket(&self, key: u64) -> usize;

    /// The size of the range this hasher maps into.
    fn num_buckets(&self) -> usize;

    /// Heap + inline memory used by this function's description, in bytes.
    ///
    /// The paper accounts `O(log m)` random bits per function; this method
    /// lets the space experiments charge the real cost.
    fn space_bytes(&self) -> usize;
}

/// A hash function from 64-bit keys to signs `{+1, -1}`.
///
/// Pairwise independence of the sign hash is what makes each row estimate
/// `C[i][h_i(q)] * s_i(q)` unbiased (paper §3.1): cross terms
/// `E[s_i(q) s_i(q')]` vanish for `q != q'`.
pub trait SignHasher {
    /// Returns `+1` or `-1` for the key.
    fn sign(&self, key: u64) -> i64;

    /// Heap + inline memory used by this function's description, in bytes.
    fn space_bytes(&self) -> usize;
}

impl<T: BucketHasher + ?Sized> BucketHasher for Box<T> {
    fn bucket(&self, key: u64) -> usize {
        (**self).bucket(key)
    }
    fn num_buckets(&self) -> usize {
        (**self).num_buckets()
    }
    fn space_bytes(&self) -> usize {
        (**self).space_bytes()
    }
}

impl<T: SignHasher + ?Sized> SignHasher for Box<T> {
    fn sign(&self, key: u64) -> i64 {
        (**self).sign(key)
    }
    fn space_bytes(&self) -> usize {
        (**self).space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl BucketHasher for Fixed {
        fn bucket(&self, key: u64) -> usize {
            (key % 3) as usize
        }
        fn num_buckets(&self) -> usize {
            3
        }
        fn space_bytes(&self) -> usize {
            0
        }
    }
    impl SignHasher for Fixed {
        fn sign(&self, key: u64) -> i64 {
            if key & 1 == 0 {
                1
            } else {
                -1
            }
        }
        fn space_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn boxed_bucket_hasher_delegates() {
        let b: Box<dyn BucketHasher> = Box::new(Fixed);
        assert_eq!(b.bucket(7), 1);
        assert_eq!(b.num_buckets(), 3);
        assert_eq!(b.space_bytes(), 0);
    }

    #[test]
    fn boxed_sign_hasher_delegates() {
        let b: Box<dyn SignHasher> = Box::new(Fixed);
        assert_eq!(b.sign(2), 1);
        assert_eq!(b.sign(3), -1);
    }
}
