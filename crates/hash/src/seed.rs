//! Deterministic seed derivation.
//!
//! Every randomized structure in the workspace draws its coefficients from
//! a [`SeedSequence`], a SplitMix64 stream keyed by a single `u64` master
//! seed. This gives the reproducibility the experiments need (a sketch is a
//! pure function of `(seed, t, b, stream)`) and the *shared hash functions*
//! the paper's additivity argument requires: two sketches built from equal
//! seeds and dimensions can be added or subtracted counter-by-counter.
//!
//! SplitMix64 is a bijective finalizer-based generator; it is not used
//! where independence matters analytically (the hash families carry their
//! own guarantees), only to expand one master seed into many coefficient
//! seeds.

/// Advances a SplitMix64 state and returns the next output.
///
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (the `splitmix64` finalizer, also used by `rand` to seed
/// other generators).
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of derived seeds.
///
/// ```
/// use cs_hash::SeedSequence;
/// let mut a = SeedSequence::new(42);
/// let mut b = SeedSequence::new(42);
/// assert_eq!(a.next_seed(), b.next_seed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        Self {
            // Pre-mix so that adjacent master seeds produce unrelated streams.
            state: master ^ 0xA076_1D64_78BD_642F,
            master,
        }
    }

    /// The master seed this sequence was created from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Returns the next derived seed.
    #[inline]
    pub fn next_seed(&mut self) -> u64 {
        split_mix64(&mut self.state)
    }

    /// Returns the next derived seed folded into `[0, bound)`.
    ///
    /// Uses Lemire's multiply-high reduction; the modulo bias is at most
    /// `bound / 2^64`, negligible for the coefficient ranges used here.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_seed()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns the next derived seed in `[1, bound)` (never zero).
    ///
    /// Used for leading polynomial coefficients, which must be nonzero for
    /// the family to be pairwise independent rather than merely universal.
    #[inline]
    pub fn next_nonzero_below(&mut self, bound: u64) -> u64 {
        assert!(
            bound > 1,
            "need at least two residues to pick a nonzero one"
        );
        loop {
            let v = self.next_below(bound);
            if v != 0 {
                return v;
            }
        }
    }

    /// Derives an independent child sequence (for giving each sketch row
    /// its own labelled stream without coupling row counts across layers).
    pub fn child(&mut self, label: u64) -> SeedSequence {
        let mut s = self.next_seed() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let derived = split_mix64(&mut s);
        SeedSequence::new(derived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_equal_master() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_masters_diverge() {
        let mut a = SeedSequence::new(7);
        let mut b = SeedSequence::new(8);
        let same = (0..100).filter(|_| a.next_seed() == b.next_seed()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut s = SeedSequence::new(123);
        for bound in [1u64, 2, 3, 10, 1000, 1 << 40] {
            for _ in 0..50 {
                assert!(s.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_one_is_always_zero() {
        let mut s = SeedSequence::new(5);
        for _ in 0..10 {
            assert_eq!(s.next_below(1), 0);
        }
    }

    #[test]
    fn next_nonzero_below_never_zero() {
        let mut s = SeedSequence::new(99);
        for _ in 0..1000 {
            let v = s.next_nonzero_below(2);
            assert_eq!(v, 1, "only nonzero residue below 2");
        }
        for _ in 0..1000 {
            assert_ne!(s.next_nonzero_below(1000), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics() {
        SeedSequence::new(0).next_below(0);
    }

    #[test]
    fn stream_has_no_short_cycles() {
        let mut s = SeedSequence::new(1);
        let vals: HashSet<u64> = (0..10_000).map(|_| s.next_seed()).collect();
        assert_eq!(vals.len(), 10_000, "10k outputs should be distinct");
    }

    #[test]
    fn children_are_independent_of_sibling_order() {
        // Drawing child(0) then child(1) must give the same child(0) stream
        // as drawing only child(0): children consume exactly one draw each.
        let mut p1 = SeedSequence::new(42);
        let c0_first = p1.child(0);
        let mut p2 = SeedSequence::new(42);
        let c0_again = p2.child(0);
        assert_eq!(c0_first, c0_again);
        let c1 = p1.child(1);
        assert_ne!(c0_first, c1);
    }

    #[test]
    fn split_mix_known_vector() {
        // First output for state 0, from the reference implementation.
        let mut state = 0u64;
        assert_eq!(split_mix64(&mut state), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn clone_preserves_position() {
        let mut s = SeedSequence::new(314);
        s.next_seed();
        let mut back = s.clone();
        let mut orig = s.clone();
        assert_eq!(orig.next_seed(), back.next_seed());
    }
}
