//! The pairwise-independent polynomial family `h(x) = ((a·x + b) mod p) mod r`.
//!
//! With `a` uniform in `[1, p)` and `b` uniform in `[0, p)`, the map
//! `x ↦ (a·x + b) mod p` is pairwise independent on `[0, p)`; composing
//! with `mod r` keeps pairwise independence up to an `O(r/p)` additive
//! distortion (negligible here: `r ≤ 2^32`, `p = 2^61 - 1`). This is the
//! textbook construction the paper's `h_i` functions assume.

use crate::fastdiv::FastDivisor;
use crate::prime;
use crate::seed::SeedSequence;
use crate::traits::BucketHasher;

/// A single function drawn from the pairwise-independent family.
///
/// The range reduction uses a precomputed exact reciprocal
/// ([`FastDivisor`]) instead of a hardware divide: the divisor is fixed
/// at draw time, and an unpipelined `div` per row per update would
/// dominate the sketch's ingestion cost. The mapping is bit-identical to
/// `field_eval(key) % range`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    range: FastDivisor,
}

impl PairwiseHash {
    /// Draws a fresh function with the given bucket range from `seeds`.
    ///
    /// # Panics
    /// Panics if `range == 0` or `range >= P`.
    pub fn draw(seeds: &mut SeedSequence, range: usize) -> Self {
        let range = range as u64;
        assert!(range > 0, "range must be positive");
        assert!(range < prime::P, "range must be smaller than the field");
        Self {
            a: seeds.next_nonzero_below(prime::P),
            b: seeds.next_below(prime::P),
            range: FastDivisor::new(range),
        }
    }

    /// Builds a function from explicit coefficients (folded into the field).
    /// Useful for tests that need a known function.
    pub fn from_coefficients(a: u64, b: u64, range: usize) -> Self {
        let a = prime::fold(a);
        assert!(a != 0, "leading coefficient must be nonzero");
        assert!(range > 0 && (range as u64) < prime::P);
        Self {
            a,
            b: prime::fold(b),
            range: FastDivisor::new(range as u64),
        }
    }

    /// Evaluates the underlying field map `(a·x + b) mod p` without the
    /// final range reduction.
    #[inline]
    pub fn field_eval(&self, key: u64) -> u64 {
        self.field_eval_canon(prime::fold(key))
    }

    /// [`Self::field_eval`] for a key already in canonical form
    /// (`key < P`, i.e. a [`prime::fold`] output). Batch read kernels
    /// fold each key once and evaluate all `2t` row functions on the
    /// canonical value; `fold` is idempotent, so the results are
    /// bit-identical to the folding entry points.
    #[inline]
    pub(crate) fn field_eval_canon(&self, key: u64) -> u64 {
        debug_assert!(key < prime::P);
        prime::add(prime::mul(self.a, key), self.b)
    }
}

impl BucketHasher for PairwiseHash {
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        self.range.rem(self.field_eval(key)) as usize
    }

    #[inline]
    fn bucket_block(&self, keys: &[u64], out: &mut [usize]) {
        // One loop of independent multiply chains: with the divide gone
        // the evaluations have no loop-carried dependency and pipeline
        // across keys.
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = self.range.rem(self.field_eval(k)) as usize;
        }
    }

    #[inline]
    fn canon(&self, key: u64) -> u64 {
        prime::fold(key)
    }

    #[inline]
    fn bucket_canon(&self, key: u64) -> usize {
        self.range.rem(self.field_eval_canon(key)) as usize
    }

    fn num_buckets(&self) -> usize {
        self.range.divisor() as usize
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_are_in_range() {
        let mut seeds = SeedSequence::new(1);
        for range in [1usize, 2, 3, 64, 1000, 1 << 20] {
            let h = PairwiseHash::draw(&mut seeds, range);
            for key in 0..1000u64 {
                assert!(h.bucket(key) < range);
            }
            assert_eq!(h.num_buckets(), range);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let h1 = PairwiseHash::draw(&mut SeedSequence::new(9), 128);
        let h2 = PairwiseHash::draw(&mut SeedSequence::new(9), 128);
        for key in 0..500u64 {
            assert_eq!(h1.bucket(key), h2.bucket(key));
        }
    }

    #[test]
    fn from_coefficients_matches_manual_formula() {
        let h = PairwiseHash::from_coefficients(3, 5, 7);
        for key in 0..100u64 {
            let want = ((3 * key + 5) % prime::P % 7) as usize;
            assert_eq!(h.bucket(key), want);
        }
    }

    #[test]
    #[should_panic(expected = "leading coefficient must be nonzero")]
    fn zero_leading_coefficient_rejected() {
        PairwiseHash::from_coefficients(0, 5, 7);
    }

    #[test]
    fn uniformity_chi_square() {
        // chi-square goodness of fit over 64 buckets with 64k sequential
        // keys; df = 63, mean 63, sd ~ 11.2. Threshold at ~6 sd.
        let h = PairwiseHash::draw(&mut SeedSequence::new(42), 64);
        let n = 65_536u64;
        let mut counts = [0u64; 64];
        for key in 0..n {
            counts[h.bucket(key)] += 1;
        }
        let expected = n as f64 / 64.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 130.0, "chi2 = {chi2}, suggests non-uniformity");
    }

    #[test]
    fn pairwise_collision_rate_near_one_over_r() {
        // For pairwise-independent h into r buckets, Pr[h(x)=h(y)] ≈ 1/r.
        // Average over several functions to keep variance small.
        let r = 32usize;
        let pairs = 2000usize;
        let funcs = 16usize;
        let mut seeds = SeedSequence::new(7);
        let mut collisions = 0usize;
        for _ in 0..funcs {
            let h = PairwiseHash::draw(&mut seeds, r);
            for i in 0..pairs as u64 {
                if h.bucket(2 * i) == h.bucket(2 * i + 1) {
                    collisions += 1;
                }
            }
        }
        let rate = collisions as f64 / (pairs * funcs) as f64;
        let want = 1.0 / r as f64;
        assert!(
            (rate - want).abs() < 0.01,
            "collision rate {rate}, expected ~{want}"
        );
    }

    #[test]
    fn bucket_block_matches_scalar() {
        let h = PairwiseHash::draw(&mut SeedSequence::new(11), 1000);
        let keys: Vec<u64> = (0..257u64).map(|k| k.wrapping_mul(0x9E37_79B9)).collect();
        let mut out = vec![0usize; keys.len()];
        h.bucket_block(&keys, &mut out);
        for (j, &k) in keys.iter().enumerate() {
            assert_eq!(out[j], h.bucket(k));
        }
    }

    proptest! {
        #[test]
        fn prop_bucket_in_range(seed: u64, key: u64, range in 1usize..100_000) {
            let h = PairwiseHash::draw(&mut SeedSequence::new(seed), range);
            prop_assert!(h.bucket(key) < range);
        }

        #[test]
        fn prop_bucket_is_field_eval_mod_range(seed: u64, key: u64, range in 1usize..1_000_000) {
            // The reciprocal reduction must be bit-identical to `%`.
            let h = PairwiseHash::draw(&mut SeedSequence::new(seed), range);
            prop_assert_eq!(h.bucket(key), (h.field_eval(key) % range as u64) as usize);
        }

        #[test]
        fn prop_pure_function(seed: u64, key: u64) {
            let h = PairwiseHash::draw(&mut SeedSequence::new(seed), 1024);
            prop_assert_eq!(h.bucket(key), h.bucket(key));
        }

        #[test]
        fn prop_redraw_from_same_seed_is_identical(seed: u64, key: u64) {
            // Snapshots rebuild hashers from (rows, buckets, seed) rather
            // than serializing them, so the draw must be a pure function
            // of the seed sequence.
            let h = PairwiseHash::draw(&mut SeedSequence::new(seed), 512);
            let back = PairwiseHash::draw(&mut SeedSequence::new(seed), 512);
            prop_assert_eq!(h.bucket(key), back.bucket(key));
        }
    }
}
