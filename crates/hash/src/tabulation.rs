//! Simple tabulation hashing.
//!
//! The 64-bit key is split into 8 bytes; each byte indexes a table of 256
//! random 64-bit words, and the results are XORed. Simple tabulation is
//! 3-wise independent and — by Pǎtraşcu–Thorup, "The power of simple
//! tabulation hashing" — behaves like a fully random function in many
//! applications (chaining, linear probing, Count-Sketch-style estimators).
//! It is included as a third construction for the hash ablations: fast
//! (no multiplies), more space (8 × 256 words), stronger empirically.

use crate::seed::SeedSequence;
use crate::traits::{BucketHasher, SignHasher};

const BYTES: usize = 8;
const TABLE: usize = 256;

/// A simple tabulation hash into an arbitrary range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TabulationHash {
    /// 8 tables of 256 random words, flattened row-major.
    tables: Vec<u64>,
    range: u64,
}

impl TabulationHash {
    /// Draws fresh random tables for a hash into `[0, range)`.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    pub fn draw(seeds: &mut SeedSequence, range: usize) -> Self {
        assert!(range > 0, "range must be positive");
        let tables = (0..BYTES * TABLE).map(|_| seeds.next_seed()).collect();
        Self {
            tables,
            range: range as u64,
        }
    }

    /// The raw 64-bit tabulation value, before range reduction.
    #[inline]
    pub fn raw(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        for byte in 0..BYTES {
            let idx = ((key >> (8 * byte)) & 0xFF) as usize;
            acc ^= self.tables[byte * TABLE + idx];
        }
        acc
    }
}

impl BucketHasher for TabulationHash {
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        // Multiply-high reduction avoids the modulo bias concentrating on
        // low buckets and is faster than `%` for arbitrary ranges.
        ((u128::from(self.raw(key)) * u128::from(self.range)) >> 64) as usize
    }

    #[inline]
    fn bucket_block(&self, keys: &[u64], out: &mut [usize]) {
        // The 8 table lookups per key are the cost here; batching lets
        // the loads of neighbouring keys overlap instead of serializing
        // behind each key's final XOR.
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = ((u128::from(self.raw(k)) * u128::from(self.range)) >> 64) as usize;
        }
    }

    fn num_buckets(&self) -> usize {
        self.range as usize
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tables.capacity() * std::mem::size_of::<u64>()
    }
}

impl SignHasher for TabulationHash {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        if self.raw(key) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    #[inline]
    fn sign_block(&self, keys: &[u64], out: &mut [i64]) {
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = 1 - 2 * ((self.raw(k) & 1) as i64);
        }
    }

    fn space_bytes(&self) -> usize {
        BucketHasher::space_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_in_range() {
        let mut seeds = SeedSequence::new(1);
        for range in [1usize, 2, 100, 1 << 16] {
            let h = TabulationHash::draw(&mut seeds, range);
            for key in 0..500u64 {
                assert!(h.bucket(key) < range);
            }
        }
    }

    #[test]
    fn raw_xors_all_byte_tables() {
        let h = TabulationHash::draw(&mut SeedSequence::new(4), 10);
        // key with distinct bytes: check manual xor.
        let key = 0x0102_0304_0506_0708u64;
        let mut want = 0u64;
        for byte in 0..BYTES {
            let idx = ((key >> (8 * byte)) & 0xFF) as usize;
            want ^= h.tables[byte * TABLE + idx];
        }
        assert_eq!(h.raw(key), want);
    }

    #[test]
    fn signs_balanced() {
        let h = TabulationHash::draw(&mut SeedSequence::new(9), 2);
        let n = 40_000u64;
        let sum: i64 = (0..n).map(|k| h.sign(k)).sum();
        assert!((sum as f64).abs() < 4.0 * (n as f64).sqrt(), "sum = {sum}");
    }

    #[test]
    fn uniformity_chi_square() {
        let h = TabulationHash::draw(&mut SeedSequence::new(42), 64);
        let n = 65_536u64;
        let mut counts = [0u64; 64];
        for key in 0..n {
            counts[h.bucket(key)] += 1;
        }
        let expected = n as f64 / 64.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 130.0, "chi2 = {chi2}");
    }

    #[test]
    fn space_accounts_for_tables() {
        let h = TabulationHash::draw(&mut SeedSequence::new(0), 10);
        assert!(BucketHasher::space_bytes(&h) >= BYTES * TABLE * 8);
    }

    proptest! {
        #[test]
        fn prop_bucket_in_range(seed: u64, key: u64, range in 1usize..1_000_000) {
            let h = TabulationHash::draw(&mut SeedSequence::new(seed), range);
            prop_assert!(h.bucket(key) < range);
        }

        #[test]
        fn prop_deterministic(seed: u64, key: u64) {
            let h1 = TabulationHash::draw(&mut SeedSequence::new(seed), 333);
            let h2 = TabulationHash::draw(&mut SeedSequence::new(seed), 333);
            prop_assert_eq!(h1.bucket(key), h2.bucket(key));
            prop_assert_eq!(h1.sign(key), h2.sign(key));
        }
    }
}
