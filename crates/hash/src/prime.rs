//! Arithmetic over the Mersenne prime field `GF(p)` with `p = 2^61 - 1`.
//!
//! Polynomial hash families need a prime modulus larger than the key
//! universe. `2^61 - 1` is the standard choice for 64-bit keys handled with
//! 128-bit intermediate products: reduction modulo a Mersenne prime needs
//! only shifts, masks and adds (no division), which keeps the per-update
//! cost of the sketch low.
//!
//! Keys are canonically represented in `[0, p)`. Inputs outside that range
//! are folded in by [`fold`] before use.

/// The Mersenne prime `2^61 - 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// Folds an arbitrary `u64` into the canonical range `[0, P)`.
///
/// Keys `>= P` (there are only 8 such values plus multiples) are reduced;
/// this keeps the family well-defined on the full `u64` universe at the
/// cost of mapping `x` and `x - P` to the same point for the handful of
/// values `x >= P`. Callers that need injectivity on all 64 bits should
/// pre-mix with [`crate::mix::finalize`] — collisions of that kind are
/// irrelevant to the sketch guarantees, which are stated over an item
/// universe of size `m <= P`.
#[inline]
pub fn fold(x: u64) -> u64 {
    let r = (x >> 61) + (x & P);
    // r ≤ P + 7 < 2P, so one conditional subtraction canonicalizes.
    // `min` with the wrapped difference instead of `if r >= P { r - P }`:
    // when r < P the subtraction wraps above 2^63 and loses, when r ≥ P
    // it wins — same value, but the compiler lowers the `umin` to a
    // conditional move. Whether the subtraction fires is data-dependent
    // (~uniform over the field), and a 50%-taken branch in the sketch's
    // per-update hash chain costs far more in mispredictions.
    r.min(r.wrapping_sub(P))
}

/// Adds two field elements (inputs must be `< P`).
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let s = a + b; // < 2^62, no overflow
                   // Branch-free conditional subtraction; see `fold`.
    s.min(s.wrapping_sub(P))
}

/// Multiplies two field elements (inputs must be `< P`).
///
/// Uses a 128-bit product followed by Mersenne reduction: with
/// `z = a*b = hi*2^61 + lo`, `z mod (2^61 - 1) = (hi + lo) mod (2^61 - 1)`.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let z = u128::from(a) * u128::from(b);
    let lo = (z as u64) & P;
    // hi needs no fold: z < P² gives hi = ⌊z/2^61⌋ ≤ ⌊P²/2^61⌋ < P, so
    // it is already canonical and `add` reduces the sum exactly.
    let hi = (z >> 61) as u64;
    add(lo, hi)
}

/// Computes `base^exp mod P` by square-and-multiply.
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    base = fold(base);
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse in `GF(P)` via Fermat's little theorem.
///
/// Returns `None` for zero, which has no inverse.
pub fn inv(a: u64) -> Option<u64> {
    let a = fold(a);
    if a == 0 {
        None
    } else {
        Some(pow(a, P - 2))
    }
}

/// Evaluates the polynomial `c\[0\] + c\[1\]*x + ... + c[d]*x^d` over `GF(P)`
/// by Horner's rule. Coefficients must already be canonical (`< P`).
#[inline]
pub fn poly_eval(coeffs: &[u64], x: u64) -> u64 {
    let x = fold(x);
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        debug_assert!(c < P);
        acc = add(mul(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_is_mersenne_61() {
        assert_eq!(P, 2_305_843_009_213_693_951);
        assert_eq!(P, (1u64 << 61) - 1);
    }

    #[test]
    fn fold_is_identity_below_p() {
        for x in [0u64, 1, 12345, P - 1] {
            assert_eq!(fold(x), x);
        }
    }

    #[test]
    fn fold_reduces_values_at_and_above_p() {
        assert_eq!(fold(P), 0);
        assert_eq!(fold(P + 1), 1);
        assert_eq!(fold(u64::MAX), u64::MAX % P);
        assert_eq!(fold(2 * P), 0);
        assert_eq!(fold(2 * P + 7), 7);
    }

    #[test]
    fn add_matches_u128_reference() {
        let cases = [(0, 0), (1, P - 1), (P - 1, P - 1), (123, 456)];
        for (a, b) in cases {
            let want = ((u128::from(a) + u128::from(b)) % u128::from(P)) as u64;
            assert_eq!(add(a, b), want, "add({a},{b})");
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let cases = [
            (0u64, 0u64),
            (1, P - 1),
            (P - 1, P - 1),
            (1 << 60, 1 << 60),
            (987_654_321, 123_456_789),
            (P - 2, 2),
        ];
        for (a, b) in cases {
            let want = ((u128::from(a) * u128::from(b)) % u128::from(P)) as u64;
            assert_eq!(mul(a, b), want, "mul({a},{b})");
        }
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow(2, 0), 1);
        assert_eq!(pow(2, 10), 1024);
        assert_eq!(pow(3, 4), 81);
        // Fermat: a^(P-1) = 1 for a != 0.
        assert_eq!(pow(12345, P - 1), 1);
    }

    #[test]
    fn inv_roundtrips() {
        for a in [1u64, 2, 7, 1 << 40, P - 1] {
            let ai = inv(a).expect("nonzero has inverse");
            assert_eq!(mul(a, ai), 1, "a = {a}");
        }
        assert_eq!(inv(0), None);
        assert_eq!(inv(P), None, "P folds to zero");
    }

    #[test]
    fn poly_eval_matches_naive() {
        let coeffs = [5u64, 3, 2]; // 5 + 3x + 2x^2
        for x in [0u64, 1, 2, 10, P - 1] {
            let want = add(add(5, mul(3, fold(x))), mul(2, mul(fold(x), fold(x))));
            assert_eq!(poly_eval(&coeffs, x), want, "x = {x}");
        }
    }

    #[test]
    fn poly_eval_empty_is_zero() {
        assert_eq!(poly_eval(&[], 42), 0);
    }

    #[test]
    fn poly_eval_constant() {
        assert_eq!(poly_eval(&[17], 42), 17);
        assert_eq!(poly_eval(&[17], 0), 17);
    }
}
