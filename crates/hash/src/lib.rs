//! Hash-function substrate for the Count-Sketch library.
//!
//! The analysis in Charikar, Chen & Farach-Colton ("Finding frequent items
//! in data streams") requires, for each of the `t` rows of the sketch,
//!
//! * a **bucket hash** `h_i : O -> {1, ..., b}` that is pairwise
//!   independent, and
//! * a **sign hash** `s_i : O -> {+1, -1}` that is pairwise independent,
//!
//! with all `2t` functions mutually independent. The paper notes the total
//! randomness needed is `O(t log m)` bits; concretely each of our functions
//! stores O(1) 64-bit coefficients (O(k) for k-wise families).
//!
//! This crate provides several constructions:
//!
//! * [`pairwise::PairwiseHash`] — the classic `((a*x + b) mod p) mod b`
//!   family over the Mersenne prime `p = 2^61 - 1` (exactly the amount of
//!   independence the paper's lemmas consume),
//! * [`kwise::PolynomialHash`] — degree-(k-1) polynomials over the same
//!   field for k-wise independence (used where stronger concentration is
//!   wanted, e.g. 4-wise sign hashes),
//! * [`multiply_shift::MultiplyShift`] — Dietzfelbinger's strongly
//!   universal multiply-shift scheme for power-of-two ranges (the fast
//!   path used by the sketch hot loop),
//! * [`tabulation::TabulationHash`] — simple tabulation hashing
//!   (3-independent, excellent empirical behaviour),
//! * [`sign`] — ±1 sign-hash wrappers over any of the above.
//!
//! All functions are deterministic given their seed, so two sketches
//! constructed from the same [`seed::SeedSequence`] share hash functions and
//! are therefore additive — the property §4.2 of the paper exploits for the
//! max-change algorithm.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc32;
pub mod fastdiv;
pub mod independence;
pub mod kwise;
pub mod mix;
pub mod multiply_shift;
pub mod pairwise;
pub mod prime;
pub mod seed;
pub mod sign;
pub mod tabulation;
pub mod traits;

pub use crc32::{crc32, Crc32};
pub use fastdiv::FastDivisor;
pub use kwise::PolynomialHash;
pub use mix::{shard_of, ItemKey};
pub use multiply_shift::MultiplyShift;
pub use pairwise::PairwiseHash;
pub use seed::SeedSequence;
pub use sign::{FourWiseSign, PairwiseSign, Sign};
pub use tabulation::TabulationHash;
pub use traits::{BucketHasher, SignHasher};
