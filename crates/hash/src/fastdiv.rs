//! Exact division and modulo by a runtime-invariant divisor.
//!
//! The sketch hot loop reduces every bucket-hash value modulo `b`. The
//! divisor is fixed for the lifetime of the hash function, yet a plain
//! `%` compiles to a hardware divide (~20–40 cycles, unpipelined) because
//! the compiler cannot strength-reduce a divisor it only learns at
//! runtime. This module precomputes the Granlund–Montgomery reciprocal
//! once per function and turns every later reduction into three 64-bit
//! multiplies — exact for **all** 64-bit numerators, not an approximation.
//!
//! With `M = ⌊2^128 / d⌋ + 1` (the `+1` makes the truncation round the
//! right way), Granlund & Montgomery ("Division by invariant integers
//! using multiplication", PLDI '94, Thm 4.2) give
//! `⌊n·M / 2^128⌋ = ⌊n / d⌋` for every `n < 2^64` whenever
//! `M·d − 2^128 ≤ 2^64`, which holds here because `M·d − 2^128 < d`.
//! The 128×128→high-64 product only needs two 64×64→128 multiplies since
//! `n` fits in one limb.

/// A divisor with its precomputed 128-bit reciprocal.
///
/// `rem`/`div` are exact drop-in replacements for `n % d` / `n / d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDivisor {
    d: u64,
    /// High and low limbs of `⌊2^128 / d⌋ + 1` (zero for powers of two,
    /// which take the mask/shift path instead).
    m_hi: u64,
    m_lo: u64,
    /// `d - 1` when `d` is a power of two (`rem` is then a single AND —
    /// the sketch's default bucket counts are powers of two, and a mask
    /// beats even the reciprocal's two multiplies), else `u64::MAX` as
    /// the "not a power of two" sentinel (no valid pow2 mask has all 64
    /// bits set).
    pow2_mask: u64,
    /// `log2(d)` when `d` is a power of two, else 0 (unused).
    pow2_shift: u32,
}

impl FastDivisor {
    /// Precomputes the reciprocal of `d`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub const fn new(d: u64) -> Self {
        assert!(d != 0, "division by zero");
        if d.is_power_of_two() {
            return Self {
                d,
                m_hi: 0,
                m_lo: 0,
                pow2_mask: d - 1,
                pow2_shift: d.trailing_zeros(),
            };
        }
        // ⌊(2^128 − 1) / d⌋ equals ⌊2^128 / d⌋ when d does not divide
        // 2^128 (guaranteed here: powers of two were peeled off above);
        // the +1 lands on the Granlund–Montgomery magic number.
        let m = (u128::MAX / d as u128) + 1;
        Self {
            d,
            m_hi: (m >> 64) as u64,
            m_lo: m as u64,
            pow2_mask: u64::MAX,
            pow2_shift: 0,
        }
    }

    /// The divisor this reciprocal was built for.
    #[inline]
    pub const fn divisor(&self) -> u64 {
        self.d
    }

    /// `n / d`, exactly.
    #[inline]
    pub const fn div(&self, n: u64) -> u64 {
        if self.pow2_mask != u64::MAX {
            return n >> self.pow2_shift;
        }
        // q = ⌊n·M / 2^128⌋ with M = m_hi·2^64 + m_lo. Writing
        // n·m_lo = t·2^64 + u (u < 2^64): n·M = (n·m_hi + t)·2^64 + u,
        // so the floor at 2^128 is ⌊(n·m_hi + t) / 2^64⌋ — u never
        // reaches the kept bits.
        let t = (n as u128 * self.m_lo as u128) >> 64;
        ((n as u128 * self.m_hi as u128 + t) >> 64) as u64
    }

    /// `n % d`, exactly.
    #[inline]
    pub const fn rem(&self, n: u64) -> u64 {
        if self.pow2_mask != u64::MAX {
            return n & self.pow2_mask;
        }
        n - self.div(n).wrapping_mul(self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::SeedSequence;
    use proptest::prelude::*;

    #[test]
    fn small_divisors_exhaustive_prefix() {
        for d in 1u64..=64 {
            let f = FastDivisor::new(d);
            assert_eq!(f.divisor(), d);
            for n in 0u64..4096 {
                assert_eq!(f.div(n), n / d, "div {n}/{d}");
                assert_eq!(f.rem(n), n % d, "rem {n}%{d}");
            }
        }
    }

    #[test]
    fn boundary_numerators() {
        for d in [
            1u64,
            2,
            3,
            7,
            1024,
            1 << 32,
            (1 << 32) - 1,
            crate::prime::P,
            crate::prime::P - 1,
            u64::MAX,
        ] {
            let f = FastDivisor::new(d);
            for n in [
                0u64,
                1,
                d.wrapping_sub(1),
                d,
                d.wrapping_add(1),
                u64::MAX - 1,
                u64::MAX,
                crate::prime::P,
            ] {
                assert_eq!(f.div(n), n / d, "div {n}/{d}");
                assert_eq!(f.rem(n), n % d, "rem {n}%{d}");
            }
        }
    }

    #[test]
    fn powers_of_two_divisors() {
        for s in 0..64 {
            let d = 1u64 << s;
            let f = FastDivisor::new(d);
            for n in [0u64, 1, d - 1, d, d + 1, u64::MAX] {
                assert_eq!(f.rem(n), n % d, "rem {n} % 2^{s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_rejected() {
        FastDivisor::new(0);
    }

    #[test]
    fn random_pairs_match_hardware_division() {
        // 64-bit randoms from the deterministic seed stream; denser than
        // proptest's case budget.
        let mut s = SeedSequence::new(0xFA57);
        for _ in 0..200_000 {
            let n = s.next_seed();
            let d = s.next_seed().max(1);
            let f = FastDivisor::new(d);
            assert_eq!(f.div(n), n / d, "div {n}/{d}");
            assert_eq!(f.rem(n), n % d, "rem {n}%{d}");
        }
    }

    proptest! {
        #[test]
        fn prop_matches_hardware(n: u64, d in 1u64..u64::MAX) {
            let f = FastDivisor::new(d);
            prop_assert_eq!(f.div(n), n / d);
            prop_assert_eq!(f.rem(n), n % d);
        }

        #[test]
        fn prop_rem_below_divisor(n: u64, d in 1u64..u64::MAX) {
            prop_assert!(FastDivisor::new(d).rem(n) < d);
        }
    }
}
