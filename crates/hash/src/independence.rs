//! Statistical independence testing for hash families.
//!
//! The paper's guarantees rest on the `h_i`/`s_i` families being pairwise
//! independent; these helpers quantify how close a concrete construction
//! comes, and back the empirical tests across the workspace:
//!
//! * [`chi_square_uniformity`] — goodness-of-fit of bucket occupancy,
//! * [`pairwise_collision_rate`] — `Pr[h(x) = h(y)]` over random pairs
//!   (must be ≈ `1/b` for a universal family),
//! * [`sign_balance`] — `E[s(x)]` (must be ≈ 0),
//! * [`sign_pair_correlation`] — `E[s(x)·s(y)]` over fresh function
//!   draws (must be ≈ 0 for pairwise independence).

use crate::seed::SeedSequence;
use crate::traits::{BucketHasher, SignHasher};

/// The chi-square statistic of bucket occupancy for `n` sequential keys,
/// together with the degrees of freedom (`buckets - 1`).
///
/// For a healthy function the statistic is close to the degrees of
/// freedom; values several standard deviations (`sqrt(2·df)`) above
/// indicate non-uniformity.
pub fn chi_square_uniformity<H: BucketHasher>(h: &H, n: u64) -> (f64, usize) {
    let b = h.num_buckets();
    assert!(b >= 2, "need at least two buckets");
    let mut counts = vec![0u64; b];
    for key in 0..n {
        counts[h.bucket(key)] += 1;
    }
    let expected = n as f64 / b as f64;
    let chi2 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    (chi2, b - 1)
}

/// Empirical `Pr[h(x) = h(y)]` over `pairs` random key pairs, averaged
/// over `funcs` fresh function draws.
pub fn pairwise_collision_rate<H: BucketHasher>(
    mut draw: impl FnMut(&mut SeedSequence) -> H,
    funcs: usize,
    pairs: usize,
    seed: u64,
) -> f64 {
    let mut seeds = SeedSequence::new(seed);
    let mut keys = SeedSequence::new(seed ^ 0xFEED_FACE);
    let mut collisions = 0usize;
    for _ in 0..funcs {
        let h = draw(&mut seeds);
        for _ in 0..pairs {
            if h.bucket(keys.next_seed()) == h.bucket(keys.next_seed()) {
                collisions += 1;
            }
        }
    }
    collisions as f64 / (funcs * pairs) as f64
}

/// Empirical `E[s(x)]` over `n` sequential keys.
pub fn sign_balance<S: SignHasher>(s: &S, n: u64) -> f64 {
    let sum: i64 = (0..n).map(|k| s.sign(k)).sum();
    sum as f64 / n as f64
}

/// Empirical `E[s(x)·s(y)]` for a fixed key pair over `funcs` fresh
/// function draws — the pairwise-independence cross term the sketch's
/// unbiasedness relies on (§3.1).
pub fn sign_pair_correlation<S: SignHasher>(
    mut draw: impl FnMut(&mut SeedSequence) -> S,
    funcs: usize,
    x: u64,
    y: u64,
    seed: u64,
) -> f64 {
    assert!(x != y, "correlation of a key with itself is trivially 1");
    let mut seeds = SeedSequence::new(seed);
    let mut sum = 0i64;
    for _ in 0..funcs {
        let s = draw(&mut seeds);
        sum += s.sign(x) * s.sign(y);
    }
    sum as f64 / funcs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::PairwiseHash;
    use crate::sign::PairwiseSign;
    use crate::tabulation::TabulationHash;

    #[test]
    fn chi_square_accepts_good_function() {
        let h = PairwiseHash::draw(&mut SeedSequence::new(1), 64);
        let (chi2, df) = chi_square_uniformity(&h, 65_536);
        let sd = (2.0 * df as f64).sqrt();
        assert!(chi2 < df as f64 + 6.0 * sd, "chi2 {chi2}, df {df}");
    }

    #[test]
    fn chi_square_rejects_constant_function() {
        struct Constant;
        impl BucketHasher for Constant {
            fn bucket(&self, _: u64) -> usize {
                0
            }
            fn num_buckets(&self) -> usize {
                16
            }
            fn space_bytes(&self) -> usize {
                0
            }
        }
        let (chi2, df) = chi_square_uniformity(&Constant, 1000);
        assert!(chi2 > 100.0 * df as f64, "constant map must fail: {chi2}");
    }

    #[test]
    fn collision_rate_near_one_over_b() {
        let rate = pairwise_collision_rate(|s| PairwiseHash::draw(s, 32), 32, 1000, 7);
        assert!((rate - 1.0 / 32.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn sign_balance_near_zero() {
        let s = PairwiseSign::draw(&mut SeedSequence::new(3));
        let bal = sign_balance(&s, 40_000);
        assert!(bal.abs() < 0.03, "balance {bal}");
    }

    #[test]
    fn sign_correlation_near_zero() {
        let corr = sign_pair_correlation(PairwiseSign::draw, 2_000, 123, 456, 11);
        // sd = 1/sqrt(2000) ≈ 0.022; allow 4 sd.
        assert!(corr.abs() < 0.09, "correlation {corr}");
    }

    #[test]
    fn tabulation_passes_all_tests() {
        let h = TabulationHash::draw(&mut SeedSequence::new(5), 64);
        let (chi2, df) = chi_square_uniformity(&h, 65_536);
        assert!(chi2 < df as f64 + 6.0 * (2.0 * df as f64).sqrt());
        let bal = sign_balance(&h, 40_000);
        assert!(bal.abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "correlation of a key with itself")]
    fn same_key_correlation_rejected() {
        sign_pair_correlation(PairwiseSign::draw, 10, 5, 5, 0);
    }
}
