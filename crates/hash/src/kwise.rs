//! k-wise independent polynomial hash families over `GF(2^61 - 1)`.
//!
//! A uniformly random degree-(k-1) polynomial evaluated over a prime field
//! is a k-wise independent map. The paper only needs pairwise (k = 2)
//! independence for its lemmas, but 4-wise sign hashes are a standard
//! strengthening (they make the *variance* analysis of the estimator exact
//! rather than only the expectation, cf. Alon–Matias–Szegedy) and are
//! exposed here for the ablation experiments.

use crate::prime;
use crate::seed::SeedSequence;
use crate::traits::BucketHasher;

/// A hash function drawn from a k-wise independent polynomial family.
///
/// The independence level equals the number of coefficients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolynomialHash {
    /// Coefficients `c_0 .. c_{k-1}`, low degree first; `c_{k-1} != 0`.
    coeffs: Vec<u64>,
    range: u64,
}

impl PolynomialHash {
    /// Draws a fresh k-wise independent function with the given range.
    ///
    /// # Panics
    /// Panics if `k == 0`, `range == 0`, or `range >= P`.
    pub fn draw(seeds: &mut SeedSequence, k: usize, range: usize) -> Self {
        assert!(k >= 1, "independence level must be at least 1");
        let range = range as u64;
        assert!(range > 0 && range < prime::P);
        let mut coeffs: Vec<u64> = (0..k).map(|_| seeds.next_below(prime::P)).collect();
        // A zero leading coefficient degrades the family to (k-1)-wise.
        let last = coeffs.last_mut().expect("k >= 1");
        if *last == 0 {
            *last = seeds.next_nonzero_below(prime::P);
        }
        Self { coeffs, range }
    }

    /// Builds a function from explicit coefficients (for tests).
    pub fn from_coefficients(coeffs: Vec<u64>, range: usize) -> Self {
        assert!(!coeffs.is_empty());
        assert!(range > 0 && (range as u64) < prime::P);
        let coeffs: Vec<u64> = coeffs.into_iter().map(prime::fold).collect();
        assert!(
            *coeffs.last().unwrap() != 0,
            "leading coefficient must be nonzero"
        );
        Self {
            coeffs,
            range: range as u64,
        }
    }

    /// The independence level (number of coefficients) of this function.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the polynomial over the field, before range reduction.
    #[inline]
    pub fn field_eval(&self, key: u64) -> u64 {
        prime::poly_eval(&self.coeffs, key)
    }
}

impl BucketHasher for PolynomialHash {
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        (self.field_eval(key) % self.range) as usize
    }

    fn num_buckets(&self) -> usize {
        self.range as usize
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.coeffs.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn independence_level_reported() {
        let mut seeds = SeedSequence::new(3);
        for k in 1..=6 {
            let h = PolynomialHash::draw(&mut seeds, k, 100);
            assert_eq!(h.independence(), k);
        }
    }

    #[test]
    fn degree_one_matches_pairwise_formula() {
        let h = PolynomialHash::from_coefficients(vec![5, 3], 7);
        for key in 0..200u64 {
            let want = ((3 * key + 5) % prime::P % 7) as usize;
            assert_eq!(h.bucket(key), want);
        }
    }

    #[test]
    fn leading_coefficient_never_zero_after_draw() {
        // Force many draws; the fix-up path must keep the leading
        // coefficient nonzero every time.
        let mut seeds = SeedSequence::new(11);
        for _ in 0..200 {
            let h = PolynomialHash::draw(&mut seeds, 4, 64);
            assert_ne!(*h.coeffs.last().unwrap(), 0);
        }
    }

    #[test]
    fn four_wise_uniformity_chi_square() {
        let h = PolynomialHash::draw(&mut SeedSequence::new(21), 4, 32);
        let n = 32_768u64;
        let mut counts = [0u64; 32];
        for key in 0..n {
            counts[h.bucket(key)] += 1;
        }
        let expected = n as f64 / 32.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // df = 31; mean 31, sd ~ 7.9; allow ~6 sd.
        assert!(chi2 < 80.0, "chi2 = {chi2}");
    }

    #[test]
    #[should_panic(expected = "independence level must be at least 1")]
    fn zero_independence_rejected() {
        PolynomialHash::draw(&mut SeedSequence::new(0), 0, 10);
    }

    proptest! {
        #[test]
        fn prop_bucket_in_range(seed: u64, key: u64, k in 1usize..6, range in 1usize..10_000) {
            let h = PolynomialHash::draw(&mut SeedSequence::new(seed), k, range);
            prop_assert!(h.bucket(key) < range);
        }

        #[test]
        fn prop_deterministic(seed: u64, key: u64) {
            let h1 = PolynomialHash::draw(&mut SeedSequence::new(seed), 4, 977);
            let h2 = PolynomialHash::draw(&mut SeedSequence::new(seed), 4, 977);
            prop_assert_eq!(h1.bucket(key), h2.bucket(key));
        }
    }
}
