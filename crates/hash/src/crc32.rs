//! CRC-32 (IEEE 802.3 polynomial), the integrity checksum used by the
//! stream wire format (`cs-stream::io`, CSTR v2) and the sketch snapshot
//! format (`cs-core::snapshot`).
//!
//! A checksum is the cheapest fault detector the pipeline has: a site
//! report or a checkpoint that was truncated, bit-flipped in transit, or
//! torn by a crash mid-write must be *detected* before its counters are
//! merged into a global sketch — a silently corrupted counter array
//! skews every subsequent estimate. CRC-32 detects all single-bit errors
//! and all burst errors up to 32 bits, which covers the fault model the
//! robustness tests inject.
//!
//! The implementation is the standard reflected table-driven one; the
//! table is built at compile time.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming data produced in pieces
/// (e.g. a snapshot written section by section).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data: Vec<u8> = (0u8..=255).collect();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data = vec![0xAB; 64];
        let clean = crc32(&data);
        for cut in 0..64 {
            assert_ne!(crc32(&data[..cut]), clean, "truncation at {cut} undetected");
        }
    }
}
