//! Mapping arbitrary stream items to 64-bit keys.
//!
//! The hash families in this crate operate on `u64` keys. Streams of
//! richer items (query strings, flow 5-tuples) are first reduced to an
//! [`ItemKey`] by a deterministic FNV-1a + SplitMix64 finalizer over the
//! item's `Hash` implementation. The reduction is fixed (not seeded): the
//! sketch's per-row randomness lives entirely in the `h_i`/`s_i`
//! coefficients, so the analysis is unaffected as long as distinct items
//! rarely share a key (64-bit birthday bound: `m^2 / 2^64`, about `5e-9`
//! for `m = 10^5` distinct items).

use std::hash::{Hash, Hasher};

/// A 64-bit key identifying a stream item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemKey(pub u64);

impl ItemKey {
    /// Derives the key for any hashable item.
    pub fn of<T: Hash + ?Sized>(item: &T) -> ItemKey {
        let mut h = Fnv1a::new();
        item.hash(&mut h);
        ItemKey(finalize(h.finish()))
    }

    /// The raw 64-bit key.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for ItemKey {
    fn from(v: u64) -> Self {
        ItemKey(v)
    }
}

/// Salt applied before the shard mix so [`shard_of`] is not correlated
/// with the identity reduction (`ItemKey::from(u64)` keys are often
/// sequential) nor with any sketch hash family.
const SHARD_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Deterministic key-hash shard assignment: maps `key` to a shard in
/// `0..shards`, the same shard for every occurrence of the key.
///
/// Used by the parallel ingestion pipeline to partition streams so that
/// all occurrences of one item land on one worker — per-worker candidate
/// sets are then disjoint, and each worker sees its keys in stream
/// order. The mix is fixed (salted SplitMix64), independent of any
/// sketch seed: re-seeding a sketch never re-shards the stream.
///
/// # Panics
/// Panics if `shards == 0`.
#[inline]
pub fn shard_of(key: ItemKey, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    (finalize(key.raw() ^ SHARD_SALT) % shards as u64) as usize
}

/// SplitMix64 finalizer: a fixed bijection on u64 that destroys the
/// structure of FNV output (FNV alone has weak low bits on short inputs).
#[inline]
pub fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a, 64-bit. Deterministic across processes (unlike the std
/// `DefaultHasher`, whose algorithm is unspecified).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Creates a hasher in the standard initial state.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn key_of_is_deterministic() {
        assert_eq!(ItemKey::of("hello"), ItemKey::of("hello"));
        assert_eq!(ItemKey::of(&42u64), ItemKey::of(&42u64));
    }

    #[test]
    fn distinct_strings_get_distinct_keys() {
        let keys: HashSet<ItemKey> = (0..10_000)
            .map(|i| ItemKey::of(&format!("query-{i}")))
            .collect();
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
        // FNV-1a("") = offset basis
        assert_eq!(Fnv1a::new().finish(), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn finalize_is_injective_on_sample() {
        let outs: HashSet<u64> = (0..100_000u64).map(finalize).collect();
        assert_eq!(outs.len(), 100_000, "finalizer must be a bijection");
    }

    #[test]
    fn item_key_from_u64_is_identity() {
        assert_eq!(ItemKey::from(7u64).raw(), 7);
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 8, 17] {
            for id in 0..1000u64 {
                let s = shard_of(ItemKey(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ItemKey(id), shards));
            }
        }
    }

    #[test]
    fn shard_of_spreads_sequential_keys() {
        // Sequential ids (the worst case for an unmixed modulus) must not
        // collapse onto a few shards.
        let shards = 8usize;
        let mut counts = vec![0usize; shards];
        for id in 0..8000u64 {
            counts[shard_of(ItemKey(id), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "shard {s} got {c} of 8000 sequential keys"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_zero_shards_rejected() {
        shard_of(ItemKey(1), 0);
    }

    proptest! {
        #[test]
        fn prop_key_deterministic(s: String) {
            prop_assert_eq!(ItemKey::of(s.as_str()), ItemKey::of(s.as_str()));
        }

        #[test]
        fn prop_le_bytes_roundtrip(v: u64) {
            // ItemKeys travel the wire as little-endian u64 (see
            // cs-stream's `io` module); the raw-bytes roundtrip is exact.
            let k = ItemKey(v);
            let back = ItemKey(u64::from_le_bytes(k.0.to_le_bytes()));
            prop_assert_eq!(k, back);
        }
    }
}
