//! ±1 sign hashes `s_i : O -> {+1, -1}`.
//!
//! The paper requires each `s_i` to be pairwise independent: that makes
//! every row estimate unbiased (`E[C[i][h_i(q)]·s_i(q)] = n_q`, §3.1) and
//! bounds its variance by the second moment of the colliding items
//! (Lemma 1). We derive signs from a polynomial hash into a range of
//! `2^61 - 2` values by taking the low bit — the parity of a (near-)uniform
//! field element — which preserves the family's independence level up to a
//! `2/p` bias.

use crate::kwise::PolynomialHash;
use crate::pairwise::PairwiseHash;
use crate::seed::SeedSequence;
use crate::traits::{BucketHasher, SignHasher};

/// A sign value, `+1` or `-1`.
///
/// Newtype so call sites cannot accidentally feed an arbitrary integer
/// where a sign is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sign(i8);

impl Sign {
    /// The `+1` sign.
    pub const PLUS: Sign = Sign(1);
    /// The `-1` sign.
    pub const MINUS: Sign = Sign(-1);

    /// Constructs a sign from the parity of a value (even → `+1`).
    #[inline]
    pub fn from_parity(v: u64) -> Sign {
        if v & 1 == 0 {
            Sign::PLUS
        } else {
            Sign::MINUS
        }
    }

    /// This sign as an `i64` multiplier.
    #[inline]
    pub fn as_i64(self) -> i64 {
        i64::from(self.0)
    }
}

impl std::ops::Mul<i64> for Sign {
    type Output = i64;
    #[inline]
    fn mul(self, rhs: i64) -> i64 {
        self.as_i64() * rhs
    }
}

impl std::ops::Neg for Sign {
    type Output = Sign;
    #[inline]
    fn neg(self) -> Sign {
        Sign(-self.0)
    }
}

/// Pairwise-independent sign hash — exactly what the paper's analysis uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseSign {
    inner: PairwiseHash,
}

impl PairwiseSign {
    /// Draws a fresh pairwise-independent sign function.
    pub fn draw(seeds: &mut SeedSequence) -> Self {
        // Range p-1 (even) so parity is exactly balanced over the range.
        Self {
            inner: PairwiseHash::draw(seeds, (crate::prime::P - 1) as usize),
        }
    }
}

impl SignHasher for PairwiseSign {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        Sign::from_parity(self.inner.field_eval(key)).as_i64()
    }

    #[inline]
    fn sign_block(&self, keys: &[u64], out: &mut [i64]) {
        // Branch-free parity-to-sign (`1 - 2·bit`); the field evaluations
        // are independent across keys and pipeline.
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = 1 - 2 * ((self.inner.field_eval(k) & 1) as i64);
        }
    }

    #[inline]
    fn canon(&self, key: u64) -> u64 {
        crate::prime::fold(key)
    }

    #[inline]
    fn sign_canon(&self, key: u64) -> i64 {
        1 - 2 * ((self.inner.field_eval_canon(key) & 1) as i64)
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// 4-wise independent sign hash (Alon–Matias–Szegedy style), used by the
/// ablation experiments to check whether extra independence changes the
/// empirical error (the paper's bounds only need pairwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FourWiseSign {
    inner: PolynomialHash,
}

impl FourWiseSign {
    /// Draws a fresh 4-wise independent sign function.
    pub fn draw(seeds: &mut SeedSequence) -> Self {
        Self {
            inner: PolynomialHash::draw(seeds, 4, (crate::prime::P - 1) as usize),
        }
    }
}

impl SignHasher for FourWiseSign {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        Sign::from_parity(self.inner.field_eval(key)).as_i64()
    }

    #[inline]
    fn sign_block(&self, keys: &[u64], out: &mut [i64]) {
        for (o, &k) in out[..keys.len()].iter_mut().zip(keys) {
            *o = 1 - 2 * ((self.inner.field_eval(k) & 1) as i64);
        }
    }

    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_values_are_plus_minus_one() {
        let s = PairwiseSign::draw(&mut SeedSequence::new(5));
        for key in 0..1000u64 {
            let v = s.sign(key);
            assert!(v == 1 || v == -1);
        }
    }

    #[test]
    fn sign_newtype_arithmetic() {
        assert_eq!(Sign::PLUS * 7, 7);
        assert_eq!(Sign::MINUS * 7, -7);
        assert_eq!(-Sign::PLUS, Sign::MINUS);
        assert_eq!(Sign::from_parity(4), Sign::PLUS);
        assert_eq!(Sign::from_parity(9), Sign::MINUS);
    }

    #[test]
    fn signs_are_balanced() {
        // E[s(x)] = 0 up to O(1/p); over n keys the empirical mean should
        // be within ~4/sqrt(n).
        let n = 40_000u64;
        let mut seeds = SeedSequence::new(8);
        let s = PairwiseSign::draw(&mut seeds);
        let sum: i64 = (0..n).map(|k| s.sign(k)).sum();
        let bound = 4.0 * (n as f64).sqrt();
        assert!((sum as f64).abs() < bound, "sum = {sum}, bound = {bound}");
    }

    #[test]
    fn pairwise_signs_are_uncorrelated() {
        // E[s(x)s(y)] = 0 for x != y; average over functions to check.
        let funcs = 200usize;
        let mut seeds = SeedSequence::new(77);
        let mut corr = 0i64;
        for _ in 0..funcs {
            let s = PairwiseSign::draw(&mut seeds);
            corr += s.sign(123) * s.sign(456);
        }
        // Sum of ±1 with mean 0: sd = sqrt(funcs) ~ 14; allow 4 sd.
        assert!(corr.abs() < 60, "corr sum = {corr}");
    }

    #[test]
    fn four_wise_signs_are_balanced() {
        let s = FourWiseSign::draw(&mut SeedSequence::new(15));
        let n = 40_000u64;
        let sum: i64 = (0..n).map(|k| s.sign(k)).sum();
        assert!((sum as f64).abs() < 4.0 * (n as f64).sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let s1 = FourWiseSign::draw(&mut SeedSequence::new(2));
        let s2 = FourWiseSign::draw(&mut SeedSequence::new(2));
        for key in 0..200u64 {
            assert_eq!(s1.sign(key), s2.sign(key));
        }
    }

    proptest! {
        #[test]
        fn prop_sign_is_plus_minus_one(seed: u64, key: u64) {
            let s = PairwiseSign::draw(&mut SeedSequence::new(seed));
            let v = s.sign(key);
            prop_assert!(v == 1 || v == -1);
            let f = FourWiseSign::draw(&mut SeedSequence::new(seed));
            let v = f.sign(key);
            prop_assert!(v == 1 || v == -1);
        }

        #[test]
        fn prop_redraw_from_same_seed_is_identical(seed: u64, key: u64) {
            // Snapshot recovery redraws sign hashes from the stored seed;
            // the draw must be a pure function of the seed sequence.
            let s = PairwiseSign::draw(&mut SeedSequence::new(seed));
            let back = PairwiseSign::draw(&mut SeedSequence::new(seed));
            prop_assert_eq!(s.sign(key), back.sign(key));
        }

        #[test]
        fn prop_sign_block_matches_scalar(seed: u64, keys in prop::collection::vec(any::<u64>(), 0..64)) {
            let p = PairwiseSign::draw(&mut SeedSequence::new(seed));
            let f = FourWiseSign::draw(&mut SeedSequence::new(seed));
            let mut out = vec![0i64; keys.len()];
            p.sign_block(&keys, &mut out);
            for (j, &k) in keys.iter().enumerate() {
                prop_assert_eq!(out[j], p.sign(k));
            }
            f.sign_block(&keys, &mut out);
            for (j, &k) in keys.iter().enumerate() {
                prop_assert_eq!(out[j], f.sign(k));
            }
        }
    }
}
