//! Non-Zipfian stream generators used by tests and experiments.
//!
//! Besides the Zipfian workloads of §4.1 the experiments need: uniform
//! streams (the z→0 limit where sketching is hardest), degenerate streams
//! (constant, all-distinct) as unit-test fixtures, the *adversarial
//! boundary* construction from §1 (the instance showing CANDIDATETOP is
//! hard when `n_k = n_{l+1} + 1`), and bursty streams whose items arrive
//! clustered rather than i.i.d. (heap behaviour differs when an item's
//! occurrences are contiguous).

use crate::item::Stream;
use cs_hash::ItemKey;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A uniform stream: `n` positions drawn i.i.d. from `m` items.
pub fn uniform_stream(m: usize, n: usize, seed: u64) -> Stream {
    assert!(m > 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| ItemKey(rng.gen_range(0..m as u64)))
        .collect()
}

/// A constant stream: item 0 repeated `n` times.
pub fn constant_stream(n: usize) -> Stream {
    Stream::from_keys(vec![ItemKey(0); n])
}

/// A sequential stream: items `0..n`, each occurring exactly once.
pub fn sequential_stream(n: usize) -> Stream {
    Stream::from_ids(0..n as u64)
}

/// The §1 adversarial boundary instance for CANDIDATETOP(S, k, l):
/// the `k`-th most frequent item occurs `base + 1` times while items
/// `k+1 ..= l+1` occur `base` times — distinguishing rank `k` from rank
/// `l+1` requires resolving a single occurrence. Items `1..k` get strictly
/// larger counts so ranks are otherwise unambiguous. Shuffled with `seed`.
pub fn adversarial_boundary_stream(k: usize, l: usize, base: u64, seed: u64) -> Stream {
    assert!(k >= 1 && l >= k, "need 1 <= k <= l");
    assert!(base >= 1);
    let mut items: Vec<ItemKey> = Vec::new();
    // Ranks 0..k-1 (ids 0..k-1): counts base+1+ (k-1-r) separation.
    for r in 0..k {
        let count = base + 1 + (k - 1 - r) as u64;
        items.extend(std::iter::repeat_n(ItemKey(r as u64), count as usize));
    }
    // Ranks k..l (ids k..l): the near-ties at `base`.
    for r in k..=l {
        items.extend(std::iter::repeat_n(ItemKey(r as u64), base as usize));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    items.shuffle(&mut rng);
    Stream::from_keys(items)
}

/// A bursty stream: each item's occurrences arrive as a contiguous run,
/// runs ordered randomly. `counts[r]` occurrences of item `r`.
pub fn bursty_stream(counts: &[u64], seed: u64) -> Stream {
    let mut order: Vec<usize> = (0..counts.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut items = Vec::with_capacity(counts.iter().sum::<u64>() as usize);
    for r in order {
        items.extend(std::iter::repeat_n(ItemKey(r as u64), counts[r] as usize));
    }
    Stream::from_keys(items)
}

/// A two-phase "trending" stream: first half uniform over `m` items, second
/// half with probability `boost` concentrated on `hot` items. Used for
/// time-varying workloads in the examples.
pub fn trending_stream(m: usize, n: usize, hot: usize, boost: f64, seed: u64) -> Stream {
    assert!(m > 0 && hot > 0 && hot <= m);
    assert!((0.0..=1.0).contains(&boost));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let half = n / 2;
    let mut items = Vec::with_capacity(n);
    for _ in 0..half {
        items.push(ItemKey(rng.gen_range(0..m as u64)));
    }
    for _ in half..n {
        if rng.gen::<f64>() < boost {
            items.push(ItemKey(rng.gen_range(0..hot as u64)));
        } else {
            items.push(ItemKey(rng.gen_range(0..m as u64)));
        }
    }
    Stream::from_keys(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCounter;

    #[test]
    fn uniform_stream_covers_universe() {
        let s = uniform_stream(10, 10_000, 1);
        assert_eq!(s.len(), 10_000);
        let ex = ExactCounter::from_stream(&s);
        assert_eq!(ex.distinct(), 10);
        for id in 0..10u64 {
            let c = ex.count(ItemKey(id));
            assert!((c as f64 - 1000.0).abs() < 200.0, "id {id}: {c}");
        }
    }

    #[test]
    fn constant_stream_is_single_item() {
        let s = constant_stream(42);
        assert_eq!(s.len(), 42);
        assert!(s.iter().all(|k| k == ItemKey(0)));
    }

    #[test]
    fn sequential_stream_all_distinct() {
        let s = sequential_stream(100);
        let ex = ExactCounter::from_stream(&s);
        assert_eq!(ex.distinct(), 100);
        assert!(ex.counts().values().all(|&c| c == 1));
    }

    #[test]
    fn adversarial_boundary_counts() {
        let (k, l, base) = (3usize, 9usize, 10u64);
        let s = adversarial_boundary_stream(k, l, base, 5);
        let ex = ExactCounter::from_stream(&s);
        // Rank k-1 (id 2) occurs base+1 times; ranks k..l occur base times.
        assert_eq!(ex.count(ItemKey(2)), base + 1);
        for id in k..=l {
            assert_eq!(ex.count(ItemKey(id as u64)), base, "id {id}");
        }
        // Top ranks strictly decreasing.
        assert_eq!(ex.count(ItemKey(0)), base + 1 + 2);
        assert_eq!(ex.count(ItemKey(1)), base + 1 + 1);
    }

    #[test]
    fn adversarial_boundary_gap_is_one() {
        let s = adversarial_boundary_stream(5, 20, 50, 0);
        let ex = ExactCounter::from_stream(&s);
        let top = ex.top_k(5);
        let kth = top.last().unwrap().1;
        assert_eq!(ex.count(ItemKey(5)), kth - 1, "l+1-st is one below n_k");
    }

    #[test]
    fn bursty_stream_runs_are_contiguous() {
        let counts = [5u64, 3, 7];
        let s = bursty_stream(&counts, 2);
        assert_eq!(s.len(), 15);
        // Count the number of adjacent-position item changes: exactly
        // (#items - 1) boundaries if all runs are contiguous.
        let slice = s.as_slice();
        let changes = slice.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(changes, 2);
    }

    #[test]
    fn trending_stream_shifts_mass() {
        let s = trending_stream(1000, 100_000, 5, 0.5, 9);
        let ex = ExactCounter::from_stream(&s);
        // Hot items should hold far more than the uniform share.
        let hot_total: u64 = (0..5u64).map(|id| ex.count(ItemKey(id))).sum();
        assert!(
            hot_total > 20_000,
            "hot items got {hot_total}, expected ~26k"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_stream(7, 100, 3), uniform_stream(7, 100, 3));
        assert_eq!(
            adversarial_boundary_stream(2, 5, 4, 1),
            adversarial_boundary_stream(2, 5, 4, 1)
        );
        assert_eq!(bursty_stream(&[1, 2], 0), bursty_stream(&[1, 2], 0));
        assert_eq!(
            trending_stream(10, 50, 2, 0.3, 4),
            trending_stream(10, 50, 2, 0.3, 4)
        );
    }

    #[test]
    #[should_panic(expected = "need 1 <= k <= l")]
    fn adversarial_rejects_l_below_k() {
        adversarial_boundary_stream(5, 4, 10, 0);
    }
}
