//! Deterministic fault injection for robustness testing.
//!
//! The distributed pipeline's failure model: a site report (or stream
//! file, or snapshot) can be **truncated** by a torn write, **bit-flipped**
//! in transit or at rest, **duplicated** by an at-least-once transport,
//! **reordered** by retries racing each other, or **delayed** by a
//! straggling site. [`FaultInjector`] produces all of these from one
//! seeded generator, so a failing test case reproduces from its seed
//! alone — the same engine drives both `tests/robustness.rs` and
//! `tests/fault_recovery.rs`.
//!
//! The injector deliberately knows nothing about the formats it breaks:
//! byte-level faults operate on any `Vec<u8>` payload (wire streams,
//! snapshots), collection-level faults on any `Vec<T>` (site reports,
//! update batches).

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Cut the payload short, as a torn write or interrupted transfer
    /// would.
    Truncate,
    /// Flip this many random bits in place.
    BitFlip {
        /// Number of bits to flip (each drawn uniformly).
        flips: usize,
    },
    /// Deliver one element twice (at-least-once transport).
    Duplicate,
    /// Shuffle element order (racing retries).
    Reorder,
    /// Delay delivery by this many logical ticks (straggling site).
    Straggle {
        /// Ticks until the delivery arrives.
        ticks: u64,
    },
    /// Never deliver at all.
    Drop,
}

/// A fault policy for a byte-stream *connection* (as opposed to the
/// one-shot payload faults of [`Fault`]): how an unreliable link
/// misbehaves while a transport writes through it.
///
/// The policy itself is pure data — `cs-net`'s `FaultyConn` interprets
/// it against a live `Read + Write` connection, and the CLI parses it
/// from a `--fault` spec string so multi-process tests can stand up
/// misbehaving links without code changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The link dies after delivering this many bytes (a site killed
    /// mid-ship, a torn connection). Spec: `cut:BYTES`.
    CutAfter {
        /// Bytes delivered before the link fails.
        bytes: u64,
    },
    /// Every write landing at or past this stream offset has one bit
    /// flipped (a corrupting middlebox or failing NIC). Spec:
    /// `flip:FROM_BYTE`.
    FlipBits {
        /// Stream offset past which writes are corrupted.
        from_byte: u64,
    },
    /// Every write is delayed by this many milliseconds (a congested or
    /// straggling link). Spec: `stall:MILLIS`.
    StallMs {
        /// Delay per write.
        millis: u64,
    },
}

impl LinkFault {
    /// Parses a `--fault` spec: `cut:BYTES`, `flip:FROM_BYTE` or
    /// `stall:MILLIS`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, value) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec '{spec}' is not KIND:VALUE"))?;
        let value: u64 = value
            .parse()
            .map_err(|e| format!("fault spec '{spec}': {e}"))?;
        match kind {
            "cut" => Ok(LinkFault::CutAfter { bytes: value }),
            "flip" => Ok(LinkFault::FlipBits { from_byte: value }),
            "stall" => Ok(LinkFault::StallMs { millis: value }),
            other => Err(format!(
                "unknown fault kind '{other}' (expected cut | flip | stall)"
            )),
        }
    }
}

impl std::fmt::Display for LinkFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkFault::CutAfter { bytes } => write!(f, "cut:{bytes}"),
            LinkFault::FlipBits { from_byte } => write!(f, "flip:{from_byte}"),
            LinkFault::StallMs { millis } => write!(f, "stall:{millis}"),
        }
    }
}

/// Seeded deterministic fault generator (SplitMix64 underneath).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// An injector whose whole fault sequence is a function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn pick(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli draw.
    pub fn happens(&mut self, probability: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < probability
    }

    /// Truncates the payload at a uniformly drawn point (possibly to
    /// empty; a no-op on an already-empty payload). Returns the new
    /// length.
    pub fn truncate(&mut self, payload: &mut Vec<u8>) -> usize {
        if !payload.is_empty() {
            let keep = self.pick(0, payload.len() as u64) as usize;
            payload.truncate(keep);
        }
        payload.len()
    }

    /// Flips `flips` uniformly drawn bits in place; returns the
    /// `(byte, bit)` positions flipped. A no-op on an empty payload.
    pub fn flip_bits(&mut self, payload: &mut [u8], flips: usize) -> Vec<(usize, u8)> {
        if payload.is_empty() {
            return Vec::new();
        }
        (0..flips)
            .map(|_| {
                let byte = self.pick(0, payload.len() as u64) as usize;
                let bit = self.pick(0, 8) as u8;
                payload[byte] ^= 1 << bit;
                (byte, bit)
            })
            .collect()
    }

    /// Duplicates one uniformly drawn element, appending the copy at a
    /// uniformly drawn position. A no-op on an empty collection.
    pub fn duplicate<T: Clone>(&mut self, items: &mut Vec<T>) {
        if items.is_empty() {
            return;
        }
        let src = self.pick(0, items.len() as u64) as usize;
        let dst = self.pick(0, items.len() as u64 + 1) as usize;
        let copy = items[src].clone();
        items.insert(dst, copy);
    }

    /// Fisher–Yates shuffle of the collection.
    pub fn reorder<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.pick(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A straggler delay in `[1, max_ticks]` logical ticks.
    pub fn straggler_delay(&mut self, max_ticks: u64) -> u64 {
        self.pick(1, max_ticks + 1)
    }

    /// Draws one fault uniformly from the full byte-and-collection
    /// matrix.
    pub fn any_fault(&mut self, max_straggle_ticks: u64) -> Fault {
        match self.pick(0, 6) {
            0 => Fault::Truncate,
            1 => Fault::BitFlip {
                flips: self.pick(1, 9) as usize,
            },
            2 => Fault::Duplicate,
            3 => Fault::Reorder,
            4 => Fault::Straggle {
                ticks: self.straggler_delay(max_straggle_ticks),
            },
            _ => Fault::Drop,
        }
    }

    /// Applies a byte-level fault to a payload. Collection-level faults
    /// (`Duplicate`, `Reorder`) and delivery faults (`Straggle`, `Drop`)
    /// leave the bytes untouched — they are about *when and how often*
    /// the payload arrives, which the caller's delivery loop models.
    pub fn corrupt(&mut self, fault: Fault, payload: &mut Vec<u8>) {
        match fault {
            Fault::Truncate => {
                self.truncate(payload);
            }
            Fault::BitFlip { flips } => {
                self.flip_bits(payload, flips);
            }
            Fault::Duplicate | Fault::Reorder | Fault::Straggle { .. } | Fault::Drop => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_fault_specs_roundtrip() {
        for (spec, want) in [
            ("cut:64", LinkFault::CutAfter { bytes: 64 }),
            ("flip:100", LinkFault::FlipBits { from_byte: 100 }),
            ("stall:25", LinkFault::StallMs { millis: 25 }),
        ] {
            let parsed = LinkFault::parse(spec).unwrap();
            assert_eq!(parsed, want);
            assert_eq!(parsed.to_string(), spec);
        }
        assert!(LinkFault::parse("cut").is_err());
        assert!(LinkFault::parse("cut:lots").is_err());
        assert!(LinkFault::parse("melt:3").is_err());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultInjector::new(7);
        let mut b = FaultInjector::new(7);
        for _ in 0..100 {
            assert_eq!(a.any_fault(10), b.any_fault(10));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(1);
        let mut b = FaultInjector::new(2);
        let fa: Vec<Fault> = (0..20).map(|_| a.any_fault(10)).collect();
        let fb: Vec<Fault> = (0..20).map(|_| b.any_fault(10)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn truncate_shortens() {
        let mut inj = FaultInjector::new(3);
        let mut payload = vec![0xAB; 100];
        let n = inj.truncate(&mut payload);
        assert!(n < 100);
        assert_eq!(payload.len(), n);
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(inj.truncate(&mut empty), 0);
    }

    #[test]
    fn flip_bits_changes_exactly_reported_positions() {
        let mut inj = FaultInjector::new(5);
        let clean = vec![0u8; 64];
        let mut corrupt = clean.clone();
        let flips = inj.flip_bits(&mut corrupt, 3);
        assert_eq!(flips.len(), 3);
        // Undo the reported flips: must restore the original (an odd
        // number of flips on the same bit still differs; xor is its own
        // inverse either way).
        for (byte, bit) in flips {
            corrupt[byte] ^= 1 << bit;
        }
        assert_eq!(corrupt, clean);
    }

    #[test]
    fn duplicate_grows_by_one_and_preserves_multiset_plus_copy() {
        let mut inj = FaultInjector::new(9);
        let mut items = vec![1, 2, 3, 4];
        inj.duplicate(&mut items);
        assert_eq!(items.len(), 5);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        // Exactly one element appears one extra time.
        let dupes = sorted.windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(dupes, 1);
    }

    #[test]
    fn reorder_is_a_permutation() {
        let mut inj = FaultInjector::new(11);
        let mut items: Vec<u32> = (0..50).collect();
        inj.reorder(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(items, sorted, "50 elements virtually never stay put");
    }

    #[test]
    fn straggler_delay_in_range() {
        let mut inj = FaultInjector::new(13);
        for _ in 0..100 {
            let d = inj.straggler_delay(5);
            assert!((1..=5).contains(&d));
        }
    }

    #[test]
    fn any_fault_covers_the_matrix() {
        let mut inj = FaultInjector::new(17);
        let mut seen_discriminants = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen_discriminants.insert(match inj.any_fault(10) {
                Fault::Truncate => 0,
                Fault::BitFlip { .. } => 1,
                Fault::Duplicate => 2,
                Fault::Reorder => 3,
                Fault::Straggle { .. } => 4,
                Fault::Drop => 5,
            });
        }
        assert_eq!(seen_discriminants.len(), 6, "all six fault kinds drawn");
    }

    #[test]
    fn corrupt_dispatches_byte_faults_only() {
        let mut inj = FaultInjector::new(19);
        let mut payload = vec![0xFF; 32];
        inj.corrupt(Fault::Reorder, &mut payload);
        inj.corrupt(Fault::Drop, &mut payload);
        inj.corrupt(Fault::Straggle { ticks: 3 }, &mut payload);
        inj.corrupt(Fault::Duplicate, &mut payload);
        assert_eq!(payload, vec![0xFF; 32], "delivery faults keep bytes");
        inj.corrupt(Fault::BitFlip { flips: 1 }, &mut payload);
        assert_ne!(payload, vec![0xFF; 32]);
    }
}
