//! Stream transforms used by experiments and examples.
//!
//! Pure functions from streams to streams: concatenation, seeded
//! interleaving (merging two time periods into one stream while
//! preserving per-item counts), subsampling (the SAMPLING baseline's
//! input model), filtering, and key remapping.

use crate::item::Stream;
use cs_hash::ItemKey;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Concatenates streams in order.
pub fn concat(streams: &[Stream]) -> Stream {
    let mut out = Stream::new();
    for s in streams {
        out.extend_from(s);
    }
    out
}

/// Interleaves two streams in a seeded uniformly random order,
/// preserving each stream's internal occurrence order.
pub fn interleave(a: &Stream, b: &Stream, seed: u64) -> Stream {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Positions: true = draw from a, false = from b; shuffled multiset.
    let mut picks: Vec<bool> = std::iter::repeat_n(true, a.len())
        .chain(std::iter::repeat_n(false, b.len()))
        .collect();
    picks.shuffle(&mut rng);
    let mut ia = a.iter();
    let mut ib = b.iter();
    picks
        .into_iter()
        .map(|from_a| {
            if from_a {
                ia.next().expect("counted")
            } else {
                ib.next().expect("counted")
            }
        })
        .collect()
}

/// Keeps each occurrence independently with probability `p` (Bernoulli
/// subsampling — the model behind the SAMPLING baseline).
pub fn subsample(stream: &Stream, p: f64, seed: u64) -> Stream {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    stream.iter().filter(|_| rng.gen::<f64>() < p).collect()
}

/// Keeps occurrences whose key satisfies the predicate.
pub fn filter(stream: &Stream, mut pred: impl FnMut(ItemKey) -> bool) -> Stream {
    stream.iter().filter(|&k| pred(k)).collect()
}

/// Remaps every key through a function (e.g. anonymization, bucketing
/// flows by prefix).
pub fn map_keys(stream: &Stream, f: impl FnMut(ItemKey) -> ItemKey) -> Stream {
    stream.iter().map(f).collect()
}

/// Repeats a stream `times` times (longer synthetic workloads with
/// identical relative frequencies).
pub fn repeat(stream: &Stream, times: usize) -> Stream {
    let mut out = Stream::new();
    for _ in 0..times {
        out.extend_from(stream);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCounter;

    #[test]
    fn concat_preserves_order_and_counts() {
        let a = Stream::from_ids([1, 2]);
        let b = Stream::from_ids([3]);
        let c = concat(&[a, b]);
        assert_eq!(c, Stream::from_ids([1, 2, 3]));
        assert!(concat(&[]).is_empty());
    }

    #[test]
    fn interleave_preserves_multiset_and_suborder() {
        let a = Stream::from_ids([1, 1, 2]);
        let b = Stream::from_ids([9, 9, 9, 9]);
        let m = interleave(&a, &b, 5);
        assert_eq!(m.len(), 7);
        let ex = ExactCounter::from_stream(&m);
        assert_eq!(ex.count(ItemKey(1)), 2);
        assert_eq!(ex.count(ItemKey(2)), 1);
        assert_eq!(ex.count(ItemKey(9)), 4);
        // a's occurrences keep their relative order: 1,1,2.
        let from_a: Vec<u64> = m.iter().filter(|k| k.raw() != 9).map(|k| k.raw()).collect();
        assert_eq!(from_a, vec![1, 1, 2]);
    }

    #[test]
    fn interleave_is_seed_deterministic() {
        let a = Stream::from_ids(0..50);
        let b = Stream::from_ids(50..100);
        assert_eq!(interleave(&a, &b, 7), interleave(&a, &b, 7));
        assert_ne!(interleave(&a, &b, 7), interleave(&a, &b, 8));
    }

    #[test]
    fn subsample_rate() {
        let s = Stream::from_ids((0..20_000u64).map(|i| i % 10));
        let sub = subsample(&s, 0.25, 3);
        let rate = sub.len() as f64 / s.len() as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(subsample(&s, 0.0, 1).is_empty());
        assert_eq!(subsample(&s, 1.0, 1), s);
    }

    #[test]
    fn filter_keeps_matching() {
        let s = Stream::from_ids([1, 2, 3, 4]);
        let evens = filter(&s, |k| k.raw() % 2 == 0);
        assert_eq!(evens, Stream::from_ids([2, 4]));
    }

    #[test]
    fn map_keys_rewrites() {
        let s = Stream::from_ids([1, 2]);
        let shifted = map_keys(&s, |k| ItemKey(k.raw() + 100));
        assert_eq!(shifted, Stream::from_ids([101, 102]));
    }

    #[test]
    fn repeat_multiplies_counts() {
        let s = Stream::from_ids([5, 5, 6]);
        let r = repeat(&s, 3);
        assert_eq!(r.len(), 9);
        let ex = ExactCounter::from_stream(&r);
        assert_eq!(ex.count(ItemKey(5)), 6);
        assert!(repeat(&s, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn bad_subsample_p_rejected() {
        subsample(&Stream::new(), 1.5, 0);
    }
}
