//! Data-stream substrate for the Count-Sketch library.
//!
//! The paper's model (§1): a stream `S = q_1, ..., q_n` over an item
//! universe `O = {o_1, ..., o_m}`, with `o_i` occurring `n_i` times and
//! items ordered so `n_1 >= n_2 >= ... >= n_m`. This crate provides
//!
//! * the [`Stream`] container and item model ([`item`]),
//! * generators for the distributions the paper analyzes — most
//!   importantly **Zipfian** streams with parameter `z` ([`zipf`]), plus
//!   uniform / sequential / adversarial-boundary / bursty generators
//!   ([`generators`]),
//! * an exact-count oracle used as ground truth by every experiment
//!   ([`exact`]),
//! * frequency moments, in particular the **residual second moment**
//!   `F2^{res(k)} = Σ_{q' > k} n_{q'}²` that parameterizes the paper's
//!   space bounds ([`moments`]),
//! * paired-stream generators with planted frequency changes for the
//!   §4.2 max-change experiments ([`diff`]),
//! * a compact binary wire format for streams ([`io`]),
//! * a seeded fault injector for robustness and crash-recovery tests
//!   ([`fault`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod exact;
pub mod fault;
pub mod generators;
pub mod io;
pub mod item;
pub mod locality;
pub mod moments;
pub mod transforms;
pub mod turnstile;
pub mod workloads;
pub mod zipf;

pub use diff::{ChangeSpec, StreamPair};
pub use exact::ExactCounter;
pub use fault::{Fault, FaultInjector, LinkFault};
pub use generators::{
    adversarial_boundary_stream, constant_stream, sequential_stream, uniform_stream,
};
pub use item::Stream;
pub use moments::Moments;
pub use turnstile::TurnstileStream;
pub use zipf::{Zipf, ZipfStreamKind};

pub use cs_hash::ItemKey;
