//! The exact-count oracle.
//!
//! Every experiment measures a streaming algorithm against exact ground
//! truth: true counts `n_q`, the true top-`k` set, and the rank order
//! `n_1 >= n_2 >= ...` from §1. This is the memory-intensive baseline the
//! paper's introduction rules out for real streams ("keeping a counter for
//! each distinct element \[is\] infeasible") — here it is affordable because
//! experiment streams fit in memory.

use crate::item::Stream;
use cs_hash::ItemKey;
use std::collections::HashMap;

/// Exact per-item counts for a stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExactCounter {
    counts: HashMap<ItemKey, u64>,
    total: u64,
}

impl ExactCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a whole stream.
    pub fn from_stream(stream: &Stream) -> Self {
        let mut c = Self::new();
        for key in stream.iter() {
            c.add(key);
        }
        c
    }

    /// Records one occurrence.
    pub fn add(&mut self, key: ItemKey) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// The exact count `n_q` of an item (0 if never seen).
    pub fn count(&self, key: ItemKey) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// The stream length `n`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The number of distinct items `m` seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The raw count map.
    pub fn counts(&self) -> &HashMap<ItemKey, u64> {
        &self.counts
    }

    /// All counts in non-increasing order: `n_1 >= n_2 >= ... >= n_m`.
    pub fn sorted_counts(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// The true top-`k` items as `(key, count)`, counts non-increasing.
    /// Ties are broken by key for determinism. If fewer than `k` distinct
    /// items exist, all of them are returned.
    pub fn top_k(&self, k: usize) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// The count `n_k` of the `k`-th most frequent item (1-based `k`).
    /// Returns 0 if fewer than `k` distinct items exist.
    pub fn nk(&self, k: usize) -> u64 {
        assert!(k >= 1, "k is 1-based");
        let sorted = self.sorted_counts();
        sorted.get(k - 1).copied().unwrap_or(0)
    }

    /// The exact signed difference oracle between two streams:
    /// `n_q^{S2} - n_q^{S1}` for every item appearing in either.
    pub fn signed_diff(s1: &ExactCounter, s2: &ExactCounter) -> HashMap<ItemKey, i64> {
        let mut out: HashMap<ItemKey, i64> = HashMap::new();
        for (&k, &c) in &s2.counts {
            *out.entry(k).or_insert(0) += c as i64;
        }
        for (&k, &c) in &s1.counts {
            *out.entry(k).or_insert(0) -= c as i64;
        }
        out
    }

    /// The `k` items with the largest absolute change between two streams
    /// (the §4.2 ground truth), as `(key, signed_change)`.
    pub fn top_k_change(s1: &ExactCounter, s2: &ExactCounter, k: usize) -> Vec<(ItemKey, i64)> {
        let diff = Self::signed_diff(s1, s2);
        let mut v: Vec<(ItemKey, i64)> = diff.into_iter().collect();
        v.sort_unstable_by(|a, b| {
            b.1.unsigned_abs()
                .cmp(&a.1.unsigned_abs())
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Heap bytes used by the oracle (what the paper says is infeasible
    /// for real streams — reported by experiments for context).
    pub fn space_bytes(&self) -> usize {
        self.counts.capacity()
            * (std::mem::size_of::<ItemKey>()
                + std::mem::size_of::<u64>()
                + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(ids: &[u64]) -> ExactCounter {
        ExactCounter::from_stream(&Stream::from_ids(ids.iter().copied()))
    }

    #[test]
    fn counts_and_total() {
        let c = counter(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(c.count(ItemKey(1)), 1);
        assert_eq!(c.count(ItemKey(2)), 2);
        assert_eq!(c.count(ItemKey(3)), 3);
        assert_eq!(c.count(ItemKey(99)), 0);
        assert_eq!(c.total(), 6);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn empty_counter() {
        let c = ExactCounter::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.distinct(), 0);
        assert_eq!(c.top_k(5), vec![]);
        assert_eq!(c.nk(1), 0);
    }

    #[test]
    fn sorted_counts_descending() {
        let c = counter(&[1, 2, 2, 3, 3, 3, 4]);
        assert_eq!(c.sorted_counts(), vec![3, 2, 1, 1]);
    }

    #[test]
    fn top_k_order_and_truncation() {
        let c = counter(&[1, 2, 2, 3, 3, 3]);
        let top = c.top_k(2);
        assert_eq!(top, vec![(ItemKey(3), 3), (ItemKey(2), 2)]);
        let all = c.top_k(10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        let c = counter(&[5, 9, 7]); // all count 1
        assert_eq!(
            c.top_k(2),
            vec![(ItemKey(5), 1), (ItemKey(7), 1)],
            "ties broken by ascending key"
        );
    }

    #[test]
    fn nk_matches_sorted_counts() {
        let c = counter(&[1, 1, 1, 2, 2, 3]);
        assert_eq!(c.nk(1), 3);
        assert_eq!(c.nk(2), 2);
        assert_eq!(c.nk(3), 1);
        assert_eq!(c.nk(4), 0);
    }

    #[test]
    fn signed_diff_basic() {
        let s1 = counter(&[1, 1, 2]);
        let s2 = counter(&[1, 3, 3, 3]);
        let d = ExactCounter::signed_diff(&s1, &s2);
        assert_eq!(d[&ItemKey(1)], -1);
        assert_eq!(d[&ItemKey(2)], -1);
        assert_eq!(d[&ItemKey(3)], 3);
    }

    #[test]
    fn top_k_change_uses_absolute_value() {
        let s1 = counter(&[1, 1, 1, 1, 2]);
        let s2 = counter(&[2, 2, 2, 3]);
        // changes: item1: -4, item2: +2, item3: +1
        let top = ExactCounter::top_k_change(&s1, &s2, 2);
        assert_eq!(top[0], (ItemKey(1), -4));
        assert_eq!(top[1], (ItemKey(2), 2));
    }

    #[test]
    fn diff_of_identical_streams_is_zero() {
        let s = counter(&[4, 4, 5]);
        let d = ExactCounter::signed_diff(&s, &s);
        assert!(d.values().all(|&v| v == 0));
    }

    #[test]
    fn incremental_add_matches_from_stream() {
        let stream = Stream::from_ids([9, 8, 9, 9]);
        let mut inc = ExactCounter::new();
        for k in stream.iter() {
            inc.add(k);
        }
        assert_eq!(inc, ExactCounter::from_stream(&stream));
    }
}
