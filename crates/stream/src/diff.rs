//! Paired streams with planted frequency changes (§4.2 workloads).
//!
//! The max-change problem takes two streams `S1, S2` and asks for the
//! items maximizing `|n_q^{S2} - n_q^{S1}|`. The paper motivates this with
//! consecutive time windows of a search-engine query stream (the
//! "zeitgeist" application). This module builds such pairs: a shared
//! Zipfian background plus planted *trending* items (frequency rises in
//! `S2`) and *vanishing* items (frequency drops), so the true max-change
//! set is known by construction via [`crate::ExactCounter::top_k_change`].

use crate::item::Stream;
use crate::zipf::{Zipf, ZipfStreamKind};
use cs_hash::ItemKey;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Specification of one planted change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeSpec {
    /// The item to plant (use ids >= the background universe size to
    /// keep planted items disjoint from the background, or reuse a
    /// background id to plant a change on an existing item).
    pub item: u64,
    /// Occurrences in `S1`.
    pub count_s1: u64,
    /// Occurrences in `S2`.
    pub count_s2: u64,
}

impl ChangeSpec {
    /// The signed change this spec plants.
    pub fn delta(&self) -> i64 {
        self.count_s2 as i64 - self.count_s1 as i64
    }
}

/// A pair of streams sharing a background distribution, with planted
/// changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPair {
    /// The first (earlier) stream.
    pub s1: Stream,
    /// The second (later) stream.
    pub s2: Stream,
    /// The changes that were planted.
    pub planted: Vec<ChangeSpec>,
}

impl StreamPair {
    /// Builds a pair: Zipf(`m`, `z`) background of `n` occurrences in each
    /// stream (independently sampled, so background items have small
    /// random changes), plus the planted changes.
    ///
    /// Planted item ids are the caller's responsibility; ids `>= m` are
    /// guaranteed disjoint from the background.
    pub fn zipf_background(
        m: usize,
        z: f64,
        n: usize,
        planted: Vec<ChangeSpec>,
        seed: u64,
    ) -> Self {
        let zipf = Zipf::new(m, z);
        let mut s1 = zipf.stream(n, seed, ZipfStreamKind::Sampled);
        let mut s2 = zipf.stream(n, seed.wrapping_add(1), ZipfStreamKind::Sampled);
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(2));
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(3));
        let mut extra1: Vec<ItemKey> = Vec::new();
        let mut extra2: Vec<ItemKey> = Vec::new();
        for spec in &planted {
            extra1.extend(std::iter::repeat_n(
                ItemKey(spec.item),
                spec.count_s1 as usize,
            ));
            extra2.extend(std::iter::repeat_n(
                ItemKey(spec.item),
                spec.count_s2 as usize,
            ));
        }
        // Splice planted occurrences into random positions.
        let mut v1: Vec<ItemKey> = s1.iter().collect();
        v1.append(&mut extra1);
        v1.shuffle(&mut rng1);
        s1 = Stream::from_keys(v1);
        let mut v2: Vec<ItemKey> = s2.iter().collect();
        v2.append(&mut extra2);
        v2.shuffle(&mut rng2);
        s2 = Stream::from_keys(v2);
        Self { s1, s2, planted }
    }

    /// The planted changes ordered by |delta| descending (tie: smaller id
    /// first) — the expected answer to the max-change query when planted
    /// deltas dominate background noise.
    pub fn planted_by_magnitude(&self) -> Vec<ChangeSpec> {
        let mut v = self.planted.clone();
        v.sort_by(|a, b| {
            b.delta()
                .unsigned_abs()
                .cmp(&a.delta().unsigned_abs())
                .then(a.item.cmp(&b.item))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCounter;

    #[test]
    fn planted_counts_are_exact() {
        let planted = vec![
            ChangeSpec {
                item: 1000,
                count_s1: 0,
                count_s2: 500,
            },
            ChangeSpec {
                item: 1001,
                count_s1: 300,
                count_s2: 10,
            },
        ];
        let pair = StreamPair::zipf_background(100, 1.0, 10_000, planted.clone(), 7);
        let e1 = ExactCounter::from_stream(&pair.s1);
        let e2 = ExactCounter::from_stream(&pair.s2);
        assert_eq!(e1.count(ItemKey(1000)), 0);
        assert_eq!(e2.count(ItemKey(1000)), 500);
        assert_eq!(e1.count(ItemKey(1001)), 300);
        assert_eq!(e2.count(ItemKey(1001)), 10);
    }

    #[test]
    fn stream_lengths_include_planted() {
        let planted = vec![ChangeSpec {
            item: 99,
            count_s1: 5,
            count_s2: 20,
        }];
        let pair = StreamPair::zipf_background(10, 1.0, 1000, planted, 1);
        assert_eq!(pair.s1.len(), 1005);
        assert_eq!(pair.s2.len(), 1020);
    }

    #[test]
    fn delta_sign_convention() {
        let up = ChangeSpec {
            item: 0,
            count_s1: 10,
            count_s2: 25,
        };
        assert_eq!(up.delta(), 15);
        let down = ChangeSpec {
            item: 0,
            count_s1: 25,
            count_s2: 10,
        };
        assert_eq!(down.delta(), -15);
    }

    #[test]
    fn planted_by_magnitude_orders_by_abs_delta() {
        let pair = StreamPair {
            s1: Stream::new(),
            s2: Stream::new(),
            planted: vec![
                ChangeSpec {
                    item: 1,
                    count_s1: 0,
                    count_s2: 10,
                },
                ChangeSpec {
                    item: 2,
                    count_s1: 50,
                    count_s2: 0,
                },
                ChangeSpec {
                    item: 3,
                    count_s1: 0,
                    count_s2: 30,
                },
            ],
        };
        let order: Vec<u64> = pair.planted_by_magnitude().iter().map(|c| c.item).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn exact_top_change_finds_planted_items() {
        let planted = vec![
            ChangeSpec {
                item: 5000,
                count_s1: 0,
                count_s2: 2000,
            },
            ChangeSpec {
                item: 5001,
                count_s1: 1500,
                count_s2: 0,
            },
        ];
        let pair = StreamPair::zipf_background(100, 1.0, 10_000, planted, 3);
        let e1 = ExactCounter::from_stream(&pair.s1);
        let e2 = ExactCounter::from_stream(&pair.s2);
        let top = ExactCounter::top_k_change(&e1, &e2, 2);
        let ids: Vec<u64> = top.iter().map(|(k, _)| k.raw()).collect();
        assert_eq!(ids, vec![5000, 5001]);
        assert_eq!(top[0].1, 2000);
        assert_eq!(top[1].1, -1500);
    }

    #[test]
    fn pair_generation_is_deterministic() {
        let planted = vec![ChangeSpec {
            item: 200,
            count_s1: 1,
            count_s2: 9,
        }];
        let a = StreamPair::zipf_background(50, 0.8, 500, planted.clone(), 11);
        let b = StreamPair::zipf_background(50, 0.8, 500, planted, 11);
        assert_eq!(a, b);
    }
}
