//! Temporal-locality stream generator.
//!
//! The paper's reference \[17\] (Xie & O'Hallaron, INFOCOM '02) studies
//! *locality* in search-engine query streams: beyond the global Zipfian
//! popularity, queries exhibit temporal clustering — a query seen
//! recently is more likely to recur soon. This generator reproduces
//! that structure with a working-set model:
//!
//! * with probability `locality`, the next occurrence is drawn
//!   uniformly from a bounded *working set* of recently seen items;
//! * otherwise it is drawn from the global Zipf(z) law (and enters the
//!   working set, evicting the oldest member).
//!
//! `locality = 0` degenerates to the i.i.d. Zipf stream; `locality → 1`
//! produces heavily bursty traffic. Global frequencies remain governed
//! by the Zipf law (the working set is itself populated by Zipf draws),
//! so the sketch-side theory still applies, while arrival order becomes
//! adversarial for order-sensitive structures like the APPROXTOP heap —
//! which is what the order-sensitivity ablation measures.

use crate::item::Stream;
use crate::zipf::Zipf;
use cs_hash::ItemKey;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Generates a Zipf(z) stream of length `n` over `m` items with
/// temporal locality.
///
/// # Panics
/// Panics unless `0 <= locality <= 1` and `working_set >= 1`.
pub fn locality_stream(
    m: usize,
    n: usize,
    z: f64,
    locality: f64,
    working_set: usize,
    seed: u64,
) -> Stream {
    assert!((0.0..=1.0).contains(&locality), "locality must be in [0,1]");
    assert!(working_set >= 1, "working set must be non-empty");
    let zipf = Zipf::new(m, z);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut recent: VecDeque<ItemKey> = VecDeque::with_capacity(working_set);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let key = if !recent.is_empty() && rng.gen::<f64>() < locality {
            recent[rng.gen_range(0..recent.len())]
        } else {
            let key = ItemKey(zipf.sample(&mut rng) as u64);
            if recent.len() == working_set {
                recent.pop_front();
            }
            recent.push_back(key);
            key
        };
        out.push(key);
    }
    Stream::from_keys(out)
}

/// A simple locality score: the fraction of positions whose item also
/// occurs within the previous `window` positions. Used by tests and to
/// characterize generated workloads.
pub fn locality_score(stream: &Stream, window: usize) -> f64 {
    assert!(window >= 1);
    let keys = stream.as_slice();
    if keys.len() <= 1 {
        return 0.0;
    }
    let mut hits = 0usize;
    for i in 1..keys.len() {
        let lo = i.saturating_sub(window);
        if keys[lo..i].contains(&keys[i]) {
            hits += 1;
        }
    }
    hits as f64 / (keys.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCounter;

    #[test]
    fn zero_locality_matches_iid_statistics() {
        let s = locality_stream(1_000, 50_000, 1.0, 0.0, 16, 3);
        assert_eq!(s.len(), 50_000);
        let exact = ExactCounter::from_stream(&s);
        // Top item frequency near the Zipf prediction.
        let zipf = Zipf::new(1_000, 1.0);
        let want = zipf.expected_count(0, 50_000);
        let got = exact.count(ItemKey(0)) as f64;
        assert!(
            (got - want).abs() < 5.0 * want.sqrt() + 10.0,
            "got {got}, want {want}"
        );
    }

    #[test]
    fn higher_locality_scores_higher() {
        let low = locality_stream(5_000, 20_000, 0.8, 0.1, 32, 7);
        let high = locality_stream(5_000, 20_000, 0.8, 0.8, 32, 7);
        let s_low = locality_score(&low, 32);
        let s_high = locality_score(&high, 32);
        assert!(
            s_high > s_low + 0.2,
            "locality scores: low {s_low}, high {s_high}"
        );
    }

    #[test]
    fn global_skew_preserved_under_locality() {
        // Even at high locality, rank-0 should stay the most frequent
        // item overall (working set members are Zipf draws).
        let s = locality_stream(500, 100_000, 1.2, 0.7, 16, 11);
        let exact = ExactCounter::from_stream(&s);
        let top = exact.top_k(1)[0].0;
        assert_eq!(top, ItemKey(0));
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            locality_stream(100, 5_000, 1.0, 0.5, 8, 9),
            locality_stream(100, 5_000, 1.0, 0.5, 8, 9)
        );
    }

    #[test]
    fn locality_score_extremes() {
        let constant = Stream::from_ids(std::iter::repeat_n(1, 100));
        assert!((locality_score(&constant, 4) - 1.0).abs() < 1e-12);
        let distinct = Stream::from_ids(0..100);
        assert_eq!(locality_score(&distinct, 4), 0.0);
        assert_eq!(locality_score(&Stream::new(), 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "locality must be in [0,1]")]
    fn bad_locality_rejected() {
        locality_stream(10, 10, 1.0, 1.5, 4, 0);
    }
}
