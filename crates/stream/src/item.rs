//! The stream container and item model.
//!
//! Items are identified by [`ItemKey`]s (64-bit keys; see `cs_hash::mix`
//! for the reduction from arbitrary hashable items). A [`Stream`] is an
//! in-memory sequence of keys — the experiments need random access for
//! multi-pass algorithms (the paper's CANDIDATETOP second pass and the
//! §4.2 max-change algorithm are 2-pass), so streams are materialized
//! rather than consumed lazily. Single-pass algorithms only ever call
//! [`Stream::iter`].

use cs_hash::ItemKey;
use std::hash::Hash;

/// An in-memory data stream: a sequence of item occurrences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stream {
    items: Vec<ItemKey>,
}

impl Stream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stream from raw keys.
    pub fn from_keys(items: Vec<ItemKey>) -> Self {
        Self { items }
    }

    /// Creates a stream from plain `u64` item identifiers.
    pub fn from_ids(ids: impl IntoIterator<Item = u64>) -> Self {
        Self {
            items: ids.into_iter().map(ItemKey).collect(),
        }
    }

    /// Creates a stream by hashing arbitrary items to keys.
    pub fn from_items<T: Hash>(items: impl IntoIterator<Item = T>) -> Self {
        Self {
            items: items.into_iter().map(|it| ItemKey::of(&it)).collect(),
        }
    }

    /// Appends one occurrence.
    pub fn push(&mut self, key: ItemKey) {
        self.items.push(key);
    }

    /// The stream length `n` (total occurrences, with multiplicity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over occurrences in stream order.
    pub fn iter(&self) -> impl Iterator<Item = ItemKey> + '_ {
        self.items.iter().copied()
    }

    /// The underlying key slice.
    pub fn as_slice(&self) -> &[ItemKey] {
        &self.items
    }

    /// Concatenates another stream onto this one.
    pub fn extend_from(&mut self, other: &Stream) {
        self.items.extend_from_slice(&other.items);
    }

    /// Splits the stream into `parts` nearly equal contiguous chunks
    /// (used by the concurrent sketch tests: sketch additivity means
    /// sketching chunks and merging equals sketching the whole stream).
    pub fn chunks(&self, parts: usize) -> Vec<Stream> {
        assert!(parts > 0);
        let chunk = self.items.len().div_ceil(parts).max(1);
        self.items
            .chunks(chunk)
            .map(|c| Stream { items: c.to_vec() })
            .collect()
    }

    /// Splits the stream into `parts` shards by key hash
    /// (`cs_hash::shard_of`): every occurrence of a key lands in the same
    /// shard, in stream order. This is the partition the parallel
    /// ingestion pool uses — shards have disjoint key sets, so per-shard
    /// top-k candidate sets never overlap, while sketch additivity makes
    /// the merged shard sketches equal the whole-stream sketch.
    ///
    /// Unlike [`Stream::chunks`], shard sizes depend on the key
    /// distribution (a single hot key keeps all its mass in one shard).
    pub fn shards(&self, parts: usize) -> Vec<Stream> {
        assert!(parts > 0);
        let mut shards = vec![Stream::new(); parts];
        for &key in &self.items {
            shards[cs_hash::shard_of(key, parts)].items.push(key);
        }
        shards
    }

    /// Bytes of heap memory held by the stream.
    pub fn space_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<ItemKey>()
    }
}

impl FromIterator<ItemKey> for Stream {
    fn from_iter<I: IntoIterator<Item = ItemKey>>(iter: I) -> Self {
        Stream {
            items: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Stream {
    type Item = ItemKey;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ItemKey>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ids_and_len() {
        let s = Stream::from_ids([1, 2, 2, 3]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.as_slice()[1], ItemKey(2));
    }

    #[test]
    fn empty_stream() {
        let s = Stream::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn from_items_hashes_consistently() {
        let s1 = Stream::from_items(["a", "b", "a"]);
        let s2 = Stream::from_items(["a", "b", "a"]);
        assert_eq!(s1, s2);
        assert_eq!(s1.as_slice()[0], s1.as_slice()[2]);
        assert_ne!(s1.as_slice()[0], s1.as_slice()[1]);
    }

    #[test]
    fn push_and_extend() {
        let mut s = Stream::from_ids([1]);
        s.push(ItemKey(2));
        let other = Stream::from_ids([3, 4]);
        s.extend_from(&other);
        assert_eq!(s, Stream::from_ids([1, 2, 3, 4]));
    }

    #[test]
    fn chunks_cover_whole_stream_in_order() {
        let s = Stream::from_ids(0..10);
        for parts in 1..=12 {
            let chunks = s.chunks(parts);
            assert!(chunks.len() <= parts.max(1));
            let mut recombined = Stream::new();
            for c in &chunks {
                recombined.extend_from(c);
            }
            assert_eq!(recombined, s, "parts = {parts}");
        }
    }

    #[test]
    fn chunks_of_empty_stream() {
        let s = Stream::new();
        let chunks = s.chunks(4);
        assert!(chunks.is_empty() || chunks.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn shards_partition_by_key_and_preserve_order() {
        let s = Stream::from_ids([1, 2, 3, 1, 2, 1, 4, 3, 1]);
        for parts in 1..=6 {
            let shards = s.shards(parts);
            assert_eq!(shards.len(), parts);
            // Total mass is preserved.
            assert_eq!(shards.iter().map(Stream::len).sum::<usize>(), s.len());
            for (i, shard) in shards.iter().enumerate() {
                for key in shard.iter() {
                    // Every occurrence of a key is in exactly this shard.
                    assert_eq!(cs_hash::shard_of(key, parts), i);
                }
            }
            // Per-shard subsequences keep stream order: the positions of
            // each shard's keys in the original stream are increasing.
            for shard in &shards {
                let mut last = 0usize;
                let mut from = 0usize;
                for key in shard.iter() {
                    let pos = s.as_slice()[from..]
                        .iter()
                        .position(|&k| k == key)
                        .expect("shard key must come from the stream")
                        + from;
                    assert!(pos >= last);
                    last = pos;
                    from = pos + 1;
                }
            }
        }
    }

    #[test]
    fn shards_key_sets_are_disjoint() {
        let s = Stream::from_ids(0..500);
        let shards = s.shards(4);
        let mut seen = std::collections::HashSet::new();
        for shard in &shards {
            for key in shard.iter() {
                assert!(seen.insert(key), "key {key:?} appears in two shards");
            }
        }
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Stream = (0..5).map(ItemKey).collect();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn into_iterator_for_ref() {
        let s = Stream::from_ids([7, 8]);
        let v: Vec<ItemKey> = (&s).into_iter().collect();
        assert_eq!(v, vec![ItemKey(7), ItemKey(8)]);
    }

    #[test]
    fn wire_roundtrip() {
        let s = Stream::from_ids([5, 6, 5]);
        let back = crate::io::decode(&crate::io::encode(&s)).unwrap();
        assert_eq!(s, back);
    }
}
