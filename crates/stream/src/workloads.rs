//! Canned workload recipes for the paper's three §1 motivations.
//!
//! Each builder returns seeded, reproducible streams shaped like the
//! application the paper names:
//!
//! * [`search_queries`] — "streams of queries sent to the search
//!   engine": Zipfian with `z < 1` (the paper's citation \[17\] reports
//!   real query streams are Zipfian with parameter below 1), plus a
//!   diurnal trending component.
//! * [`packet_trace`] — "identifying large packet flows in a network
//!   router": heavy-tailed flow sizes (`z > 1`, per \[3\] Crovella et al.)
//!   with bursty arrivals (packets of a flow cluster in time).
//! * [`balanced_shards`] — "load balancing in a distributed database":
//!   a key-access stream plus its split across shards by key hash; the
//!   frequent-items question is which keys make a shard hot.

use crate::generators::bursty_stream;
use crate::item::Stream;
use crate::transforms;
use crate::zipf::{Zipf, ZipfStreamKind};
use cs_hash::{BucketHasher, ItemKey, PairwiseHash, SeedSequence};

/// A search-query stream: Zipf(z) background (default z = 0.8) with a
/// planted trending query ramping up through the stream.
pub fn search_queries(m: usize, n: usize, z: f64, seed: u64) -> Stream {
    assert!(m >= 1 && n >= 1);
    let zipf = Zipf::new(m, z);
    let background = zipf.stream(n, seed, ZipfStreamKind::Sampled);
    // The trending query (id = m) ramps: absent in the first half,
    // ~2% of traffic in the second half.
    let ramp = n / 50;
    let trend = Stream::from_keys(vec![ItemKey(m as u64); ramp]);
    let (first, second) = {
        let half = background.len() / 2;
        let keys = background.as_slice();
        (
            Stream::from_keys(keys[..half].to_vec()),
            Stream::from_keys(keys[half..].to_vec()),
        )
    };
    let second = transforms::interleave(&second, &trend, seed ^ 1);
    transforms::concat(&[first, second])
}

/// A router packet trace: `flows` flows with Zipf(z) sizes (z > 1
/// typical), arrivals bursty — each flow's packets arrive in contiguous
/// runs (per-flow trains), runs shuffled.
pub fn packet_trace(flows: usize, packets: usize, z: f64, seed: u64) -> Stream {
    assert!(flows >= 1 && packets >= 1);
    let zipf = Zipf::new(flows, z);
    let counts = zipf.rounded_counts(packets);
    bursty_stream(&counts, seed)
}

/// A distributed key-access workload: the global stream plus its split
/// into `shards` sub-streams by a pairwise hash of the key (how a
/// distributed database routes accesses). The hot keys of each shard
/// are the load-balancing signal.
pub fn balanced_shards(
    m: usize,
    n: usize,
    z: f64,
    shards: usize,
    seed: u64,
) -> (Stream, Vec<Stream>) {
    assert!(shards >= 1);
    let zipf = Zipf::new(m, z);
    let global = zipf.stream(n, seed, ZipfStreamKind::Sampled);
    let router = PairwiseHash::draw(&mut SeedSequence::new(seed ^ 0x5AAD), shards);
    let mut parts: Vec<Vec<ItemKey>> = vec![Vec::new(); shards];
    for key in global.iter() {
        parts[router.bucket(key.raw())].push(key);
    }
    (global, parts.into_iter().map(Stream::from_keys).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCounter;

    #[test]
    fn search_queries_has_trend_in_second_half_only() {
        let (m, n) = (1_000, 100_000);
        let s = search_queries(m, n, 0.8, 3);
        let trend = ItemKey(m as u64);
        let keys = s.as_slice();
        let first_half = keys[..n / 2].iter().filter(|&&k| k == trend).count();
        let second_half = keys[n / 2..].iter().filter(|&&k| k == trend).count();
        assert_eq!(first_half, 0, "trend must be absent early");
        assert_eq!(second_half, n / 50, "trend volume fixed");
    }

    #[test]
    fn search_queries_total_length() {
        let s = search_queries(100, 10_000, 0.8, 1);
        assert_eq!(s.len(), 10_000 + 10_000 / 50);
    }

    #[test]
    fn packet_trace_sizes_are_zipf_and_bursty() {
        let s = packet_trace(500, 50_000, 1.2, 7);
        assert_eq!(s.len(), 50_000);
        let exact = ExactCounter::from_stream(&s);
        // Flow 0 dominates.
        let z = Zipf::new(500, 1.2);
        assert_eq!(exact.count(ItemKey(0)), z.rounded_counts(50_000)[0]);
        // Burstiness: adjacent-packet flow changes are exactly
        // (#nonempty flows - 1), far fewer than for an i.i.d. shuffle.
        let changes = s.as_slice().windows(2).filter(|w| w[0] != w[1]).count();
        let nonempty = exact.distinct();
        assert_eq!(changes, nonempty - 1);
    }

    #[test]
    fn shards_partition_the_global_stream() {
        let (global, shards) = balanced_shards(200, 20_000, 1.0, 4, 5);
        let total: usize = shards.iter().map(Stream::len).sum();
        assert_eq!(total, global.len());
        // Every key lands in exactly one shard.
        let g = ExactCounter::from_stream(&global);
        for (&key, &count) in g.counts() {
            let holders = shards.iter().filter(|s| s.iter().any(|k| k == key)).count();
            assert_eq!(holders, 1, "key {key:?} in {holders} shards");
            let shard_count: u64 = shards
                .iter()
                .map(|s| ExactCounter::from_stream(s).count(key))
                .sum();
            assert_eq!(shard_count, count);
        }
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        assert_eq!(
            search_queries(50, 1000, 0.8, 9),
            search_queries(50, 1000, 0.8, 9)
        );
        assert_eq!(
            packet_trace(50, 1000, 1.2, 9),
            packet_trace(50, 1000, 1.2, 9)
        );
        let (g1, s1) = balanced_shards(50, 1000, 1.0, 3, 9);
        let (g2, s2) = balanced_shards(50, 1000, 1.0, 3, 9);
        assert_eq!(g1, g2);
        assert_eq!(s1, s2);
    }
}
