//! Zipfian distributions and stream generators.
//!
//! Section 4.1 of the paper analyzes the algorithm on Zipfian inputs:
//! `n_q ∝ 1/q^z` for rank `q = 1..m`. The space-bound comparison in
//! Table 1 is split into the regimes `z < 1/2`, `z = 1/2`, `1/2 < z < 1`,
//! `z = 1` and `z > 1`, so the generator takes `z` as a free parameter.
//!
//! Two stream kinds are provided:
//!
//! * [`ZipfStreamKind::Sampled`] — each position drawn i.i.d. from the
//!   Zipf law (inverse-CDF sampling). Matches the probabilistic model;
//!   realized counts fluctuate around `n·f_q`.
//! * [`ZipfStreamKind::DeterministicRounded`] — item `q` occurs exactly
//!   `round(n·f_q)` times (largest-remainder rounding so the total is
//!   exactly `n`), in seeded-shuffled order. Gives exact, reproducible
//!   ground-truth ranks, which the guarantee-checking experiments prefer.
//!
//! By default item `ItemKey(r)` is the rank-`r` item (0-based), making
//! ground truth self-evident; [`Zipf::stream_scrambled`] instead maps
//! ranks through a fixed 64-bit bijection for realism.

use crate::item::Stream;
use cs_hash::mix::finalize;
use cs_hash::ItemKey;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A Zipf distribution over `m` ranked items with parameter `z >= 0`.
///
/// ```
/// use cs_stream::{Zipf, ZipfStreamKind};
///
/// let zipf = Zipf::new(1000, 1.0);
/// // Rank-0 item is twice as frequent as rank-1 at z = 1.
/// assert!((zipf.frequency(0) / zipf.frequency(1) - 2.0).abs() < 1e-9);
/// let stream = zipf.stream(10_000, 42, ZipfStreamKind::DeterministicRounded);
/// assert_eq!(stream.len(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    m: usize,
    z: f64,
    /// Cumulative probabilities `P[rank <= r]`, length `m`, last entry 1.
    cdf: Vec<f64>,
}

/// How a Zipf stream realizes the distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfStreamKind {
    /// Positions sampled i.i.d. from the law.
    Sampled,
    /// Item `q` occurs exactly `round(n·f_q)` times, shuffled.
    DeterministicRounded,
}

impl Zipf {
    /// Builds the distribution (O(m) precomputation).
    ///
    /// # Panics
    /// Panics if `m == 0` or `z` is negative/non-finite.
    pub fn new(m: usize, z: f64) -> Self {
        assert!(m > 0, "universe size must be positive");
        assert!(z.is_finite() && z >= 0.0, "z must be finite and >= 0");
        let mut cdf = Vec::with_capacity(m);
        let mut acc = 0.0f64;
        for q in 1..=m {
            acc += (q as f64).powf(-z);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        *cdf.last_mut().expect("m > 0") = 1.0;
        Self { m, z, cdf }
    }

    /// Universe size `m`.
    pub fn universe(&self) -> usize {
        self.m
    }

    /// The Zipf parameter `z`.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The probability `f_q` of the rank-`r` item (0-based rank).
    pub fn frequency(&self, rank: usize) -> f64 {
        assert!(rank < self.m, "rank out of range");
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Expected number of occurrences of the rank-`r` item in a stream of
    /// length `n`.
    pub fn expected_count(&self, rank: usize, n: usize) -> f64 {
        self.frequency(rank) * n as f64
    }

    /// The exact per-rank counts used by
    /// [`ZipfStreamKind::DeterministicRounded`]: largest-remainder
    /// rounding of `n·f_q`, summing to exactly `n`. Counts are
    /// non-increasing in rank.
    pub fn rounded_counts(&self, n: usize) -> Vec<u64> {
        let mut counts: Vec<u64> = Vec::with_capacity(self.m);
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(self.m);
        let mut assigned = 0u64;
        for rank in 0..self.m {
            let ideal = self.expected_count(rank, n);
            let floor = ideal.floor() as u64;
            counts.push(floor);
            assigned += floor;
            remainders.push((ideal - floor as f64, rank));
        }
        let mut deficit = (n as u64).saturating_sub(assigned);
        // Hand out the deficit to the largest fractional parts, breaking
        // ties toward lower ranks so counts stay sorted.
        remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, rank) in &remainders {
            if deficit == 0 {
                break;
            }
            counts[rank] += 1;
            deficit -= 1;
        }
        debug_assert_eq!(counts.iter().sum::<u64>(), n as u64);
        counts
    }

    /// Samples a 0-based rank by inverse-CDF binary search.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank with cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.m - 1)
    }

    /// Generates a stream of length `n` with items keyed by rank.
    pub fn stream(&self, n: usize, seed: u64, kind: ZipfStreamKind) -> Stream {
        self.stream_with_ids(n, seed, kind, |rank| rank as u64)
    }

    /// Generates a stream whose item ids are scrambled through a fixed
    /// 64-bit bijection (rank is no longer readable from the key).
    pub fn stream_scrambled(&self, n: usize, seed: u64, kind: ZipfStreamKind) -> Stream {
        self.stream_with_ids(n, seed, kind, |rank| finalize(rank as u64 ^ 0x5EED_CAFE))
    }

    /// The id the rank-`r` item receives in [`Zipf::stream_scrambled`].
    pub fn scrambled_id(rank: usize) -> u64 {
        finalize(rank as u64 ^ 0x5EED_CAFE)
    }

    fn stream_with_ids(
        &self,
        n: usize,
        seed: u64,
        kind: ZipfStreamKind,
        id_of: impl Fn(usize) -> u64,
    ) -> Stream {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match kind {
            ZipfStreamKind::Sampled => (0..n)
                .map(|_| ItemKey(id_of(self.sample(&mut rng))))
                .collect(),
            ZipfStreamKind::DeterministicRounded => {
                let counts = self.rounded_counts(n);
                let mut items: Vec<ItemKey> = Vec::with_capacity(n);
                for (rank, &c) in counts.iter().enumerate() {
                    let key = ItemKey(id_of(rank));
                    items.extend(std::iter::repeat_n(key, c as usize));
                }
                items.shuffle(&mut rng);
                Stream::from_keys(items)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frequencies_sum_to_one() {
        for z in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let zipf = Zipf::new(100, z);
            let total: f64 = (0..100).map(|r| zipf.frequency(r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "z = {z}, total = {total}");
        }
    }

    #[test]
    fn frequencies_non_increasing() {
        let zipf = Zipf::new(1000, 1.2);
        for r in 1..1000 {
            assert!(
                zipf.frequency(r) <= zipf.frequency(r - 1) + 1e-12,
                "rank {r}"
            );
        }
    }

    #[test]
    fn z_zero_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((zipf.frequency(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn frequency_ratio_matches_power_law() {
        let z = 1.0;
        let zipf = Zipf::new(100, z);
        // f_1 / f_2 = 2^z
        let ratio = zipf.frequency(0) / zipf.frequency(1);
        assert!((ratio - 2f64.powf(z)).abs() < 1e-9);
        let ratio = zipf.frequency(2) / zipf.frequency(5);
        assert!((ratio - 2f64.powf(z)).abs() < 1e-9); // ranks 3 vs 6
    }

    #[test]
    fn rounded_counts_total_exactly_n() {
        for (m, z, n) in [(10, 1.0, 1000), (100, 0.5, 12345), (50, 2.0, 7)] {
            let zipf = Zipf::new(m, z);
            let counts = zipf.rounded_counts(n);
            assert_eq!(counts.iter().sum::<u64>(), n as u64);
        }
    }

    #[test]
    fn rounded_counts_non_increasing() {
        let zipf = Zipf::new(200, 0.8);
        let counts = zipf.rounded_counts(100_000);
        for i in 1..counts.len() {
            assert!(counts[i] <= counts[i - 1], "rank {i}");
        }
    }

    #[test]
    fn deterministic_stream_matches_rounded_counts() {
        let zipf = Zipf::new(20, 1.0);
        let n = 5000;
        let s = zipf.stream(n, 99, ZipfStreamKind::DeterministicRounded);
        assert_eq!(s.len(), n);
        let counts = zipf.rounded_counts(n);
        let mut observed = std::collections::HashMap::new();
        for k in s.iter() {
            *observed.entry(k).or_insert(0u64) += 1;
        }
        for (rank, &c) in counts.iter().enumerate() {
            let got = observed.get(&ItemKey(rank as u64)).copied().unwrap_or(0);
            assert_eq!(got, c, "rank {rank}");
        }
    }

    #[test]
    fn sampled_stream_has_roughly_zipf_counts() {
        let zipf = Zipf::new(100, 1.0);
        let n = 200_000;
        let s = zipf.stream(n, 1, ZipfStreamKind::Sampled);
        let mut counts = vec![0u64; 100];
        for k in s.iter() {
            counts[k.raw() as usize] += 1;
        }
        // Top item: expected n*f_0; allow 5 sigma of binomial noise.
        for rank in [0usize, 1, 4] {
            let expect = zipf.expected_count(rank, n);
            let sd = (expect * (1.0 - zipf.frequency(rank))).sqrt();
            let got = counts[rank] as f64;
            assert!(
                (got - expect).abs() < 5.0 * sd + 1.0,
                "rank {rank}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let zipf = Zipf::new(50, 1.1);
        for kind in [
            ZipfStreamKind::Sampled,
            ZipfStreamKind::DeterministicRounded,
        ] {
            let a = zipf.stream(1000, 7, kind);
            let b = zipf.stream(1000, 7, kind);
            assert_eq!(a, b);
            let c = zipf.stream(1000, 8, kind);
            assert_ne!(a, c, "different seeds should differ");
        }
    }

    #[test]
    fn scrambled_ids_are_consistent_bijection() {
        let zipf = Zipf::new(30, 1.0);
        let s = zipf.stream_scrambled(2000, 3, ZipfStreamKind::DeterministicRounded);
        let counts = zipf.rounded_counts(2000);
        let mut observed = std::collections::HashMap::new();
        for k in s.iter() {
            *observed.entry(k).or_insert(0u64) += 1;
        }
        // The scrambled id of rank 0 must carry rank 0's count.
        let top = ItemKey(Zipf::scrambled_id(0));
        assert_eq!(observed.get(&top).copied().unwrap_or(0), counts[0]);
        // All scrambled ids distinct.
        let ids: std::collections::HashSet<u64> = (0..30).map(Zipf::scrambled_id).collect();
        assert_eq!(ids.len(), 30);
    }

    #[test]
    #[should_panic(expected = "universe size must be positive")]
    fn zero_universe_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "z must be finite")]
    fn negative_z_rejected() {
        Zipf::new(10, -1.0);
    }

    #[test]
    fn single_item_universe() {
        let zipf = Zipf::new(1, 1.0);
        assert!((zipf.frequency(0) - 1.0).abs() < 1e-12);
        let s = zipf.stream(10, 0, ZipfStreamKind::Sampled);
        assert!(s.iter().all(|k| k == ItemKey(0)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_sample_in_range(seed: u64, m in 1usize..500, z in 0.0f64..3.0) {
            let zipf = Zipf::new(m, z);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(zipf.sample(&mut rng) < m);
            }
        }

        #[test]
        fn prop_rounded_counts_sum(m in 1usize..300, z in 0.0f64..3.0, n in 0usize..10_000) {
            let zipf = Zipf::new(m, z);
            let counts = zipf.rounded_counts(n);
            prop_assert_eq!(counts.iter().sum::<u64>(), n as u64);
        }

        #[test]
        fn prop_stream_length(seed: u64, n in 0usize..2000) {
            let zipf = Zipf::new(20, 1.0);
            prop_assert_eq!(zipf.stream(n, seed, ZipfStreamKind::Sampled).len(), n);
            prop_assert_eq!(
                zipf.stream(n, seed, ZipfStreamKind::DeterministicRounded).len(), n);
        }
    }
}
