//! Frequency moments of a stream.
//!
//! The paper's bounds are stated in terms of the residual second moment
//! `Σ_{q' = k+1}^{m} n_{q'}²` — the second moment of everything *below*
//! the top `k` (Lemma 2, Lemma 5, Theorem 1) — and the error scale
//! `γ = sqrt(F2^{res(k)} / b)` (eq. 5). This module computes those
//! quantities exactly from an [`ExactCounter`] so experiments can check
//! the `8γ` estimate bound and size `b` per Lemma 5.

use crate::exact::ExactCounter;

/// Exact frequency moments of a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// `F0`: number of distinct items.
    pub f0: u64,
    /// `F1 = Σ n_q = n`: stream length.
    pub f1: u64,
    /// `F2 = Σ n_q²`: second frequency moment (Alon–Matias–Szegedy).
    pub f2: u128,
}

impl Moments {
    /// Computes all moments from exact counts.
    pub fn of(counts: &ExactCounter) -> Self {
        let f2 = counts
            .counts()
            .values()
            .map(|&c| u128::from(c) * u128::from(c))
            .sum();
        Self {
            f0: counts.distinct() as u64,
            f1: counts.total(),
            f2,
        }
    }
}

/// The residual second moment `F2^{res(k)} = Σ_{q' > k} n_{q'}²`
/// (counts ranked non-increasing; the top `k` are excluded).
pub fn residual_f2(counts: &ExactCounter, k: usize) -> u128 {
    let sorted = counts.sorted_counts();
    sorted
        .iter()
        .skip(k)
        .map(|&c| u128::from(c) * u128::from(c))
        .sum()
}

/// The paper's error scale `γ = sqrt(F2^{res(k)} / b)` (eq. 5): with
/// `t = Θ(log n/δ)` rows, every estimate is within `8γ` of the true count
/// with probability `1 - δ` (Lemma 4).
pub fn gamma(counts: &ExactCounter, k: usize, b: usize) -> f64 {
    assert!(b > 0, "b must be positive");
    (residual_f2(counts, k) as f64 / b as f64).sqrt()
}

/// Empirical entropy (bits) of the frequency distribution — reported by
/// experiments to characterize workloads.
pub fn entropy_bits(counts: &ExactCounter) -> f64 {
    let n = counts.total();
    if n == 0 {
        return 0.0;
    }
    counts
        .counts()
        .values()
        .map(|&c| {
            let p = c as f64 / n as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Stream;

    fn counter(ids: &[u64]) -> ExactCounter {
        ExactCounter::from_stream(&Stream::from_ids(ids.iter().copied()))
    }

    #[test]
    fn moments_basic() {
        let c = counter(&[1, 1, 1, 2, 2, 3]); // counts 3,2,1
        let m = Moments::of(&c);
        assert_eq!(m.f0, 3);
        assert_eq!(m.f1, 6);
        assert_eq!(m.f2, 9 + 4 + 1);
    }

    #[test]
    fn moments_empty() {
        let m = Moments::of(&ExactCounter::new());
        assert_eq!((m.f0, m.f1, m.f2), (0, 0, 0));
    }

    #[test]
    fn residual_excludes_top_k() {
        let c = counter(&[1, 1, 1, 2, 2, 3]); // sorted counts 3,2,1
        assert_eq!(residual_f2(&c, 0), 14);
        assert_eq!(residual_f2(&c, 1), 5);
        assert_eq!(residual_f2(&c, 2), 1);
        assert_eq!(residual_f2(&c, 3), 0);
        assert_eq!(residual_f2(&c, 100), 0);
    }

    #[test]
    fn gamma_formula() {
        let c = counter(&[1, 1, 1, 2, 2, 3]);
        let g = gamma(&c, 1, 5); // sqrt(5/5) = 1
        assert!((g - 1.0).abs() < 1e-12);
        let g = gamma(&c, 0, 14); // sqrt(14/14) = 1
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_decreases_with_b() {
        let c = counter(&[1, 1, 2, 2, 3, 3, 4, 4]);
        assert!(gamma(&c, 0, 16) < gamma(&c, 0, 4));
        // Exactly sqrt(4) = 2x smaller:
        let ratio = gamma(&c, 0, 4) / gamma(&c, 0, 16);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "b must be positive")]
    fn gamma_rejects_zero_b() {
        gamma(&ExactCounter::new(), 0, 0);
    }

    #[test]
    fn entropy_uniform_is_log_m() {
        let c = counter(&[1, 2, 3, 4]);
        assert!((entropy_bits(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_constant_is_zero() {
        let c = counter(&[7, 7, 7]);
        assert!(entropy_bits(&c).abs() < 1e-12);
        assert!(entropy_bits(&ExactCounter::new()).abs() < 1e-12);
    }

    #[test]
    fn f2_no_overflow_on_large_counts() {
        let mut c = ExactCounter::new();
        for _ in 0..1_000 {
            c.add(cs_hash::ItemKey(1));
        }
        let m = Moments::of(&c);
        assert_eq!(m.f2, 1_000_000);
    }
}
