//! Compact binary wire format for streams.
//!
//! Experiments serialize generated streams so that a workload can be
//! produced once and replayed across harness invocations, and the
//! distributed pipeline ships site payloads in the same format. The
//! format is deliberately trivial and self-describing; since v2 it is
//! also *self-checking*:
//!
//! ```text
//! magic   u32 LE  = 0x4353_5452 ("CSTR")
//! version u32 LE  = 2
//! len     u64 LE  = number of occurrences
//! keys    len × u64 LE
//! crc32   u32 LE  = CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The trailing checksum turns silent corruption into a typed
//! [`DecodeError::ChecksumMismatch`]: a bit flipped in transit or a file
//! torn by a crash mid-write can no longer decode into a plausible but
//! wrong stream. Version 1 (the same layout without the checksum) is
//! still accepted on decode for payloads written by older builds.
//!
//! (A varint/delta encoding would shrink Zipfian streams considerably;
//! plain fixed-width keeps decode simple and is not a bottleneck here.)

use crate::item::Stream;
use cs_hash::crc32::crc32;
use cs_hash::ItemKey;

const MAGIC: u32 = 0x4353_5452; // "CSTR"
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Errors that can occur while decoding a serialized stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer is shorter than a complete header + payload.
    Truncated {
        /// Bytes required to finish decoding.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Magic number mismatch — not a stream file.
    BadMagic(u32),
    /// Unknown format version.
    BadVersion(u32),
    /// The payload's CRC-32 does not match its trailing checksum: the
    /// bytes were corrupted after encoding (bit flip, torn write, ...).
    ChecksumMismatch {
        /// Checksum stored in the trailing field.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated stream: need {needed} bytes, have {available}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported stream version {v}"),
            DecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "stream checksum mismatch: stored 0x{stored:08x}, computed 0x{computed:08x} (payload corrupted)"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

fn read_u32_le(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64_le(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Serializes a stream to the current (v2, checksummed) wire format.
pub fn encode(stream: &Stream) -> Vec<u8> {
    let mut buf = Vec::with_capacity(20 + stream.len() * 8);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION_V2.to_le_bytes());
    buf.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    for key in stream.iter() {
        buf.extend_from_slice(&key.raw().to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Serializes a stream to the legacy v1 format (no checksum). Kept so
/// tests can cover the compatibility path; new code should use
/// [`encode`].
pub fn encode_v1(stream: &Stream) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + stream.len() * 8);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION_V1.to_le_bytes());
    buf.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    for key in stream.iter() {
        buf.extend_from_slice(&key.raw().to_le_bytes());
    }
    buf
}

/// Deserializes a stream from the wire format (v1 or v2).
///
/// v2 payloads are verified against their trailing CRC-32 before any
/// stream is constructed; corruption yields
/// [`DecodeError::ChecksumMismatch`] instead of bad data.
pub fn decode(buf: &[u8]) -> Result<Stream, DecodeError> {
    let header = 16usize;
    if buf.len() < header {
        return Err(DecodeError::Truncated {
            needed: header,
            available: buf.len(),
        });
    }
    let magic = read_u32_le(buf, 0);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = read_u32_le(buf, 4);
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(DecodeError::BadVersion(version));
    }
    let len = read_u64_le(buf, 8) as usize;
    let payload = len.checked_mul(8).ok_or(DecodeError::Truncated {
        needed: usize::MAX,
        available: buf.len(),
    })?;
    let trailer = if version == VERSION_V2 { 4 } else { 0 };
    let total = header
        .checked_add(payload)
        .and_then(|t| t.checked_add(trailer))
        .ok_or(DecodeError::Truncated {
            needed: usize::MAX,
            available: buf.len(),
        })?;
    if buf.len() < total {
        return Err(DecodeError::Truncated {
            needed: total,
            available: buf.len(),
        });
    }
    if version == VERSION_V2 {
        let stored = read_u32_le(buf, header + payload);
        let computed = crc32(&buf[..header + payload]);
        if stored != computed {
            return Err(DecodeError::ChecksumMismatch { stored, computed });
        }
    }
    let mut items = Vec::with_capacity(len);
    for i in 0..len {
        items.push(ItemKey(read_u64_le(buf, header + i * 8)));
    }
    Ok(Stream::from_keys(items))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let s = Stream::from_ids([3, 1, 4, 1, 5, 9, 2, 6]);
        let bytes = encode(&s);
        assert_eq!(decode(&bytes).unwrap(), s);
    }

    #[test]
    fn roundtrip_empty() {
        let s = Stream::new();
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn encoded_size_is_header_plus_keys_plus_crc() {
        let s = Stream::from_ids(0..100);
        assert_eq!(encode(&s).len(), 16 + 100 * 8 + 4);
    }

    #[test]
    fn v1_payloads_still_decode() {
        let s = Stream::from_ids([10, 20, 30, 20]);
        let bytes = encode_v1(&s);
        assert_eq!(bytes.len(), 16 + 4 * 8, "v1 has no trailer");
        assert_eq!(decode(&bytes).unwrap(), s);
    }

    #[test]
    fn bad_magic_detected() {
        let s = Stream::from_ids([1]);
        let mut bytes = encode(&s);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn bad_version_detected() {
        let s = Stream::from_ids([1]);
        let mut bytes = encode(&s);
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn truncated_header_detected() {
        let err = decode(&[0u8; 5]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
    }

    #[test]
    fn truncated_payload_detected() {
        let s = Stream::from_ids([1, 2, 3]);
        let bytes = encode(&s);
        let err = decode(&bytes[..bytes.len() - 8]).unwrap_err();
        match err {
            DecodeError::Truncated { needed, available } => {
                assert_eq!(needed, 16 + 24 + 4);
                assert_eq!(available, 16 + 24 + 4 - 8);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The satellite guarantee: corruption is *detected*, not merely
        // survived. Flip every bit of a small encoding in turn.
        let s = Stream::from_ids([7, 8, 9]);
        let clean = encode(&s);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    decode(&corrupt).is_err(),
                    "flip at {byte}:{bit} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn payload_flip_is_checksum_mismatch() {
        let s = Stream::from_ids([1, 2, 3]);
        let mut bytes = encode(&s);
        bytes[20] ^= 0x10; // inside the key payload
        assert!(matches!(
            decode(&bytes),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn error_display_strings() {
        let e = DecodeError::BadMagic(0xDEAD_BEEF);
        assert!(e.to_string().contains("deadbeef"));
        let e = DecodeError::Truncated {
            needed: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
        let e = DecodeError::ChecksumMismatch {
            stored: 0xAAAA_0000,
            computed: 0x0000_BBBB,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("aaaa0000") && msg.contains("0000bbbb"),
            "{msg}"
        );
    }

    #[test]
    fn large_roundtrip() {
        let zipf = crate::zipf::Zipf::new(1000, 1.0);
        let s = zipf.stream(50_000, 42, crate::zipf::ZipfStreamKind::Sampled);
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }
}
