//! Compact binary wire format for streams.
//!
//! Experiments serialize generated streams so that a workload can be
//! produced once and replayed across harness invocations. The format is
//! deliberately trivial and self-describing:
//!
//! ```text
//! magic  u32 LE  = 0x4353_5452 ("CSTR")
//! version u32 LE = 1
//! len    u64 LE  = number of occurrences
//! keys   len × u64 LE
//! ```
//!
//! (A varint/delta encoding would shrink Zipfian streams considerably;
//! plain fixed-width keeps decode simple and is not a bottleneck here.)

use crate::item::Stream;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cs_hash::ItemKey;

const MAGIC: u32 = 0x4353_5452; // "CSTR"
const VERSION: u32 = 1;

/// Errors that can occur while decoding a serialized stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer is shorter than a complete header + payload.
    Truncated {
        /// Bytes required to finish decoding.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Magic number mismatch — not a stream file.
    BadMagic(u32),
    /// Unknown format version.
    BadVersion(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated stream: need {needed} bytes, have {available}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported stream version {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a stream to the wire format.
pub fn encode(stream: &Stream) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + stream.len() * 8);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(stream.len() as u64);
    for key in stream.iter() {
        buf.put_u64_le(key.raw());
    }
    buf.freeze()
}

/// Deserializes a stream from the wire format.
pub fn decode(mut buf: &[u8]) -> Result<Stream, DecodeError> {
    let header = 16usize;
    if buf.len() < header {
        return Err(DecodeError::Truncated {
            needed: header,
            available: buf.len(),
        });
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let len = buf.get_u64_le() as usize;
    let payload = len.checked_mul(8).ok_or(DecodeError::Truncated {
        needed: usize::MAX,
        available: buf.len(),
    })?;
    if buf.len() < payload {
        return Err(DecodeError::Truncated {
            needed: header + payload,
            available: header + buf.len(),
        });
    }
    let mut items = Vec::with_capacity(len);
    for _ in 0..len {
        items.push(ItemKey(buf.get_u64_le()));
    }
    Ok(Stream::from_keys(items))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let s = Stream::from_ids([3, 1, 4, 1, 5, 9, 2, 6]);
        let bytes = encode(&s);
        assert_eq!(decode(&bytes).unwrap(), s);
    }

    #[test]
    fn roundtrip_empty() {
        let s = Stream::new();
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn encoded_size_is_header_plus_keys() {
        let s = Stream::from_ids(0..100);
        assert_eq!(encode(&s).len(), 16 + 100 * 8);
    }

    #[test]
    fn bad_magic_detected() {
        let s = Stream::from_ids([1]);
        let mut bytes = encode(&s).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn bad_version_detected() {
        let s = Stream::from_ids([1]);
        let mut bytes = encode(&s).to_vec();
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn truncated_header_detected() {
        let err = decode(&[0u8; 5]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
    }

    #[test]
    fn truncated_payload_detected() {
        let s = Stream::from_ids([1, 2, 3]);
        let bytes = encode(&s);
        let err = decode(&bytes[..bytes.len() - 4]).unwrap_err();
        match err {
            DecodeError::Truncated { needed, available } => {
                assert_eq!(needed, 16 + 24);
                assert_eq!(available, 16 + 20);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn error_display_strings() {
        let e = DecodeError::BadMagic(0xDEAD_BEEF);
        assert!(e.to_string().contains("deadbeef"));
        let e = DecodeError::Truncated {
            needed: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn large_roundtrip() {
        let zipf = crate::zipf::Zipf::new(1000, 1.0);
        let s = zipf.stream(50_000, 42, crate::zipf::ZipfStreamKind::Sampled);
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }
}
