//! Turnstile (insert/delete) stream model.
//!
//! The Count-Sketch is a *linear* sketch: `ADD` generalizes to weighted
//! and negative updates, which is exactly what §4.2 exploits
//! (`h_i[q] -= s_i[q]` over `S1`). This module models such streams
//! explicitly: a [`TurnstileStream`] is a sequence of `(item, Δ)` events
//! where `Δ` may be negative — the "turnstile model" of the streaming
//! literature (Muthukrishnan), with the *strict* variant keeping all
//! running counts non-negative (items leave a set no more often than
//! they entered).
//!
//! Provided: the event container, a strict-turnstile generator
//! (insertions followed by partial deletions, e.g. open/close network
//! flows), an exact signed oracle, and conversion from plain streams.

use crate::exact::ExactCounter;
use crate::item::Stream;
use cs_hash::ItemKey;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// One turnstile event: `Δ` occurrences of an item (negative = delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Update {
    /// The item.
    pub key: ItemKey,
    /// The signed weight.
    pub delta: i64,
}

/// A sequence of signed updates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TurnstileStream {
    updates: Vec<Update>,
}

impl TurnstileStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps raw updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        Self { updates }
    }

    /// Lifts a plain stream: every occurrence becomes `Δ = +1`.
    pub fn from_stream(stream: &Stream) -> Self {
        Self {
            updates: stream.iter().map(|key| Update { key, delta: 1 }).collect(),
        }
    }

    /// The difference model of §4.2: `S2 − S1` as one turnstile stream
    /// (all of `S1` with `Δ = −1`, then all of `S2` with `Δ = +1`).
    pub fn difference(s1: &Stream, s2: &Stream) -> Self {
        let mut updates = Vec::with_capacity(s1.len() + s2.len());
        updates.extend(s1.iter().map(|key| Update { key, delta: -1 }));
        updates.extend(s2.iter().map(|key| Update { key, delta: 1 }));
        Self { updates }
    }

    /// Appends one update.
    pub fn push(&mut self, key: ItemKey, delta: i64) {
        self.updates.push(Update { key, delta });
    }

    /// Number of updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether there are no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = Update> + '_ {
        self.updates.iter().copied()
    }

    /// Exact final signed counts.
    pub fn exact_counts(&self) -> HashMap<ItemKey, i64> {
        let mut out: HashMap<ItemKey, i64> = HashMap::new();
        for u in &self.updates {
            *out.entry(u.key).or_insert(0) += u.delta;
        }
        out
    }

    /// The `k` items with the largest |final count| (ties: key
    /// ascending).
    pub fn top_k_by_magnitude(&self, k: usize) -> Vec<(ItemKey, i64)> {
        let mut v: Vec<(ItemKey, i64)> = self.exact_counts().into_iter().collect();
        v.sort_unstable_by(|a, b| {
            b.1.unsigned_abs()
                .cmp(&a.1.unsigned_abs())
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Whether the stream is *strict*: no prefix drives any item's
    /// running count negative.
    pub fn is_strict(&self) -> bool {
        let mut running: HashMap<ItemKey, i64> = HashMap::new();
        for u in &self.updates {
            let c = running.entry(u.key).or_insert(0);
            *c += u.delta;
            if *c < 0 {
                return false;
            }
        }
        true
    }
}

impl FromIterator<Update> for TurnstileStream {
    fn from_iter<I: IntoIterator<Item = Update>>(iter: I) -> Self {
        Self {
            updates: iter.into_iter().collect(),
        }
    }
}

/// Generates a strict turnstile workload from a base stream: all
/// insertions, then a `delete_fraction` of each item's occurrences
/// deleted (unit deletes), in seeded shuffled order *after* the inserts
/// of the same item (strictness by construction: deletions are emitted
/// in a second phase).
pub fn strict_turnstile_from(base: &Stream, delete_fraction: f64, seed: u64) -> TurnstileStream {
    assert!(
        (0.0..=1.0).contains(&delete_fraction),
        "fraction must be in [0,1]"
    );
    let exact = ExactCounter::from_stream(base);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut updates: Vec<Update> = base.iter().map(|key| Update { key, delta: 1 }).collect();
    let mut deletions: Vec<Update> = Vec::new();
    // Deterministic item order for reproducibility.
    let mut items: Vec<(ItemKey, u64)> = exact.counts().iter().map(|(&k, &c)| (k, c)).collect();
    items.sort_unstable();
    for (key, count) in items {
        let dels = (count as f64 * delete_fraction).floor() as u64;
        deletions.extend(std::iter::repeat_n(
            Update { key, delta: -1 },
            dels as usize,
        ));
    }
    deletions.shuffle(&mut rng);
    updates.append(&mut deletions);
    TurnstileStream { updates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::{Zipf, ZipfStreamKind};

    #[test]
    fn from_stream_counts_match() {
        let s = Stream::from_ids([1, 1, 2]);
        let t = TurnstileStream::from_stream(&s);
        let counts = t.exact_counts();
        assert_eq!(counts[&ItemKey(1)], 2);
        assert_eq!(counts[&ItemKey(2)], 1);
        assert!(t.is_strict());
    }

    #[test]
    fn difference_counts_are_signed() {
        let s1 = Stream::from_ids([1, 1, 1, 2]);
        let s2 = Stream::from_ids([2, 2, 3]);
        let d = TurnstileStream::difference(&s1, &s2);
        let counts = d.exact_counts();
        assert_eq!(counts[&ItemKey(1)], -3);
        assert_eq!(counts[&ItemKey(2)], 1);
        assert_eq!(counts[&ItemKey(3)], 1);
        assert!(!d.is_strict(), "difference streams are not strict");
    }

    #[test]
    fn top_k_by_magnitude_orders_by_abs() {
        let mut t = TurnstileStream::new();
        t.push(ItemKey(1), 5);
        t.push(ItemKey(2), -9);
        t.push(ItemKey(3), 7);
        let top = t.top_k_by_magnitude(2);
        assert_eq!(top, vec![(ItemKey(2), -9), (ItemKey(3), 7)]);
    }

    #[test]
    fn strict_generator_is_strict_and_deletes_fraction() {
        let zipf = Zipf::new(100, 1.0);
        let base = zipf.stream(5_000, 1, ZipfStreamKind::DeterministicRounded);
        let t = strict_turnstile_from(&base, 0.5, 2);
        assert!(t.is_strict());
        let total: i64 = t.exact_counts().values().sum();
        // Roughly half the mass deleted (floor per item).
        assert!((2_500..=2_700).contains(&total), "remaining mass {total}");
    }

    #[test]
    fn strict_generator_zero_fraction_is_plain_inserts() {
        let base = Stream::from_ids([1, 2]);
        let t = strict_turnstile_from(&base, 0.0, 3);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|u| u.delta == 1));
    }

    #[test]
    fn full_deletion_leaves_zero_counts() {
        let base = Stream::from_ids([5, 5, 5, 5]);
        let t = strict_turnstile_from(&base, 1.0, 4);
        assert_eq!(t.exact_counts()[&ItemKey(5)], 0);
        assert!(t.is_strict());
    }

    #[test]
    fn is_strict_detects_prefix_violation() {
        let mut t = TurnstileStream::new();
        t.push(ItemKey(1), -1);
        t.push(ItemKey(1), 2);
        assert!(!t.is_strict(), "final count positive but prefix negative");
    }

    #[test]
    fn clone_and_rebuild_are_equal() {
        let mut t = TurnstileStream::new();
        t.push(ItemKey(1), 3);
        t.push(ItemKey(2), -1);
        assert_eq!(t.clone(), t);
        let rebuilt: TurnstileStream = t.iter().collect();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn from_iterator_collects() {
        let t: TurnstileStream = (0..3)
            .map(|i| Update {
                key: ItemKey(i),
                delta: 1,
            })
            .collect();
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn bad_fraction_rejected() {
        strict_turnstile_from(&Stream::new(), 1.5, 0);
    }
}
