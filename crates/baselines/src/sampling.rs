//! The SAMPLING algorithm (§2 of the paper).
//!
//! *"Keep a uniform random sample of the elements stored as a list of
//! items plus a counter for each item. If the same object is added more
//! than once, we simply increment its counter."* Each arrival enters the
//! sample independently with probability `p`; the stored counter is the
//! number of *sampled* occurrences, so `counter / p` estimates the true
//! count.
//!
//! The paper sizes `p ≥ O(log k / n_k)` so all top-k items appear w.h.p.,
//! solving CANDIDATETOP(S, k, O(log k / f_k)); its space is measured as
//! the number of distinct sampled items (§4.1) — which for Zipfian inputs
//! is what Table 1's SAMPLING column reports.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::ItemKey;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The uniform-sampling baseline.
#[derive(Debug, Clone)]
pub struct SamplingAlgorithm {
    p: f64,
    rng: rand::rngs::StdRng,
    sample: HashMap<ItemKey, u64>,
    /// Total sampled occurrences (the "size counting repetitions").
    sampled_occurrences: u64,
}

impl SamplingAlgorithm {
    /// Creates the sampler with inclusion probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        Self {
            p,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            sample: HashMap::new(),
            sampled_occurrences: 0,
        }
    }

    /// The paper's inclusion probability for CANDIDATETOP(S, k, ·):
    /// `p = log(k/δ) / n_k` (clamped to 1).
    pub fn probability_for_top_k(k: usize, delta: f64, nk: u64) -> f64 {
        assert!(k >= 1 && nk >= 1);
        assert!(delta > 0.0 && delta < 1.0);
        ((k as f64 / delta).ln() / nk as f64).min(1.0)
    }

    /// The inclusion probability in use.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of distinct items currently in the sample — the space
    /// measure used in §4.1.
    pub fn distinct_sampled(&self) -> usize {
        self.sample.len()
    }

    /// Total sampled occurrences (counting repetitions).
    pub fn sampled_occurrences(&self) -> u64 {
        self.sampled_occurrences
    }
}

impl StreamSummary for SamplingAlgorithm {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn process(&mut self, key: ItemKey) {
        if self.rng.gen::<f64>() < self.p {
            *self.sample.entry(key).or_insert(0) += 1;
            self.sampled_occurrences += 1;
        }
    }

    /// Estimate: sampled count scaled by `1/p`, rounded to nearest.
    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.sample
            .get(&key)
            .map(|&c| (c as f64 / self.p).round() as u64)
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self
            .sample
            .iter()
            .map(|(&k, &c)| (k, (c as f64 / self.p).round() as u64))
            .collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        // One (key, counter) pair per distinct sampled item.
        self.sample.len() * (std::mem::size_of::<ItemKey>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn p_one_keeps_everything_exactly() {
        let mut s = SamplingAlgorithm::new(1.0, 0);
        s.process_stream(&Stream::from_ids([1, 1, 1, 2, 2, 3]));
        assert_eq!(s.estimate(ItemKey(1)), Some(3));
        assert_eq!(s.estimate(ItemKey(2)), Some(2));
        assert_eq!(s.estimate(ItemKey(3)), Some(1));
        assert_eq!(s.estimate(ItemKey(4)), None);
        assert_eq!(s.distinct_sampled(), 3);
        assert_eq!(s.sampled_occurrences(), 6);
    }

    #[test]
    fn sampled_fraction_near_p() {
        let mut s = SamplingAlgorithm::new(0.1, 42);
        let stream = Stream::from_ids((0..50_000u64).map(|i| i % 100));
        s.process_stream(&stream);
        let frac = s.sampled_occurrences() as f64 / 50_000.0;
        assert!((frac - 0.1).abs() < 0.01, "sampled fraction {frac}");
    }

    #[test]
    fn estimates_scale_by_inverse_p() {
        let mut s = SamplingAlgorithm::new(0.5, 7);
        for _ in 0..10_000 {
            s.process(ItemKey(1));
        }
        let est = s.estimate(ItemKey(1)).unwrap() as f64;
        assert!((est - 10_000.0).abs() < 600.0, "est = {est}");
    }

    #[test]
    fn finds_top_items_on_zipf_with_paper_probability() {
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(100_000, 5, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let k = 10;
        let p = SamplingAlgorithm::probability_for_top_k(k, 0.05, exact.nk(k));
        let mut s = SamplingAlgorithm::new(p, 3);
        s.process_stream(&stream);
        // All top-k items should be in the sample (w.h.p.).
        for (key, _) in exact.top_k(k) {
            assert!(
                s.estimate(key).is_some(),
                "top item {key:?} missing from sample"
            );
        }
    }

    #[test]
    fn candidates_sorted_desc() {
        let mut s = SamplingAlgorithm::new(1.0, 0);
        s.process_stream(&Stream::from_ids([1, 2, 2, 3, 3, 3]));
        let c = s.candidates();
        assert_eq!(c[0].0, ItemKey(3));
        assert!(c.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn space_grows_with_distinct_sampled() {
        let mut s = SamplingAlgorithm::new(1.0, 0);
        assert_eq!(s.space_bytes(), 0);
        s.process_stream(&Stream::from_ids(0..100));
        assert_eq!(s.space_bytes(), 100 * 16);
    }

    #[test]
    fn probability_formula() {
        let p = SamplingAlgorithm::probability_for_top_k(10, 0.1, 100);
        assert!((p - (100f64.ln() / 100.0)).abs() < 1e-12);
        // Clamped at 1 for tiny nk.
        assert_eq!(SamplingAlgorithm::probability_for_top_k(10, 0.1, 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1]")]
    fn zero_p_rejected() {
        SamplingAlgorithm::new(0.0, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = Stream::from_ids((0..1000u64).map(|i| i % 10));
        let mut a = SamplingAlgorithm::new(0.3, 9);
        let mut b = SamplingAlgorithm::new(0.3, 9);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
    }
}
