//! Concise samples (Gibbons & Matias, SIGMOD '98), as described in §2.
//!
//! A uniform sample stored as `(item, sampled-count)` pairs that does not
//! need the stream length in advance: it "begins optimistically assuming
//! [inclusion probability] τ = 1" and, when the footprint exceeds its
//! budget, lowers τ and *subsamples the existing sample* — each sampled
//! point survives independently with probability `τ'/τ` — evicting
//! emptied entries. The invariant is that at any moment the contents are
//! exactly a τ-sample of the prefix seen so far.
//!
//! As the paper notes, the final threshold `τ_f` depends on the input in a
//! complicated way, so no clean space bound exists — which is precisely
//! why it appears in §2 as related work rather than in Table 1.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::ItemKey;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The concise-samples summary.
#[derive(Debug, Clone)]
pub struct ConciseSamples {
    /// Entry budget: max distinct items held.
    capacity: usize,
    /// Current inclusion probability τ.
    tau: f64,
    /// Multiplier applied to τ on each overflow (e.g. 0.9).
    decay: f64,
    rng: rand::rngs::StdRng,
    sample: BTreeMap<ItemKey, u64>,
}

impl ConciseSamples {
    /// Creates a concise sample holding at most `capacity` distinct items.
    /// `decay` in (0, 1) controls how aggressively τ is lowered on
    /// overflow.
    pub fn new(capacity: usize, decay: f64, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        assert!(decay > 0.0 && decay < 1.0, "decay must be in (0,1)");
        Self {
            capacity,
            tau: 1.0,
            decay,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            sample: BTreeMap::new(),
        }
    }

    /// The current inclusion probability τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Subsamples the current sample from τ to τ' (binomial thinning of
    /// each counter), evicting emptied entries.
    fn lower_threshold(&mut self) {
        let new_tau = self.tau * self.decay;
        let keep = new_tau / self.tau; // = decay
        self.sample.retain(|_, count| {
            let mut kept = 0u64;
            for _ in 0..*count {
                if self.rng.gen::<f64>() < keep {
                    kept += 1;
                }
            }
            *count = kept;
            kept > 0
        });
        self.tau = new_tau;
    }
}

impl StreamSummary for ConciseSamples {
    fn name(&self) -> &'static str {
        "concise-samples"
    }

    fn process(&mut self, key: ItemKey) {
        if self.rng.gen::<f64>() < self.tau {
            *self.sample.entry(key).or_insert(0) += 1;
        }
        // Lower τ until we are back under budget (usually one step).
        while self.sample.len() > self.capacity {
            self.lower_threshold();
        }
    }

    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.sample
            .get(&key)
            .map(|&c| (c as f64 / self.tau).round() as u64)
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self
            .sample
            .iter()
            .map(|(&k, &c)| (k, (c as f64 / self.tau).round() as u64))
            .collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        self.sample.len() * (std::mem::size_of::<ItemKey>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn small_stream_kept_exactly() {
        // Under budget: τ stays 1, everything is exact.
        let mut c = ConciseSamples::new(100, 0.9, 0);
        c.process_stream(&Stream::from_ids([1, 1, 2, 3, 3, 3]));
        assert_eq!(c.tau(), 1.0);
        assert_eq!(c.estimate(ItemKey(3)), Some(3));
        assert_eq!(c.estimate(ItemKey(1)), Some(2));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = ConciseSamples::new(50, 0.8, 1);
        c.process_stream(&Stream::from_ids(0..10_000));
        assert!(c.sample.len() <= 50);
        assert!(c.tau() < 1.0, "τ must have been lowered");
    }

    #[test]
    fn heavy_item_survives_thinning() {
        let zipf = Zipf::new(5000, 1.2);
        let stream = zipf.stream(100_000, 3, ZipfStreamKind::DeterministicRounded);
        let mut c = ConciseSamples::new(500, 0.9, 7);
        c.process_stream(&stream);
        // Rank-0 item has ~14% of the stream; it must still be present
        // and estimated within a factor of 2.
        let exact = ExactCounter::from_stream(&stream);
        let truth = exact.count(ItemKey(0)) as f64;
        let est = c.estimate(ItemKey(0)).expect("top item evicted") as f64;
        assert!(
            est > truth / 2.0 && est < truth * 2.0,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn estimates_rescale_with_tau() {
        let mut c = ConciseSamples::new(10, 0.5, 5);
        // Force overflow with distinct items, then add a heavy item.
        c.process_stream(&Stream::from_ids(0..100));
        let tau = c.tau();
        assert!(tau < 1.0);
        // Sampled count / tau is the estimate.
        for (_, est) in c.candidates() {
            assert!(est >= 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = Stream::from_ids((0..5000u64).map(|i| i % 300));
        let mut a = ConciseSamples::new(100, 0.9, 11);
        let mut b = ConciseSamples::new(100, 0.9, 11);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
        assert_eq!(a.tau(), b.tau());
    }

    #[test]
    #[should_panic(expected = "decay must be in (0,1)")]
    fn bad_decay_rejected() {
        ConciseSamples::new(10, 1.0, 0);
    }

    #[test]
    fn space_bounded_by_capacity() {
        let mut c = ConciseSamples::new(64, 0.9, 2);
        c.process_stream(&Stream::from_ids(0..100_000));
        assert!(c.space_bytes() <= 64 * 16);
    }
}
