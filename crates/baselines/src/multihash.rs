//! The Fang et al. multiple-hash iceberg heuristic (§2).
//!
//! The paper notes that Fang, Shivakumar, Garcia-Molina, Motwani & Ullman
//! \[4\] "propose a heuristic 1-pass multiple-hash scheme which has a
//! similar flavor to our algorithm" — it is the closest pre-Count-Sketch
//! design and belongs in the comparison. The scheme (their
//! MULTISCAN/DEFER-COUNT family, collapsed to its 1-pass core):
//!
//! 1. maintain `t` hash tables of unsigned counters (no sign hashes —
//!    exactly a Count-Min shape, which is why the paper calls it
//!    similar in flavor);
//! 2. an arriving item whose *every* counter (after increment) clears a
//!    candidate threshold is promoted into an exact-counting candidate
//!    table of bounded size;
//! 3. report candidates by their exact counts from promotion onward.
//!
//! Being a heuristic, it has no clean guarantee — overcounted buckets
//! promote false candidates, late-promoted items undercount — which is
//! the gap the Count-Sketch closes with signed counters + median.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::{BucketHasher, ItemKey, PairwiseHash, SeedSequence};
use std::collections::HashMap;

/// The multi-hash iceberg heuristic.
#[derive(Debug, Clone)]
pub struct MultiHashIceberg {
    rows: usize,
    buckets: usize,
    counters: Vec<u64>,
    hashers: Vec<PairwiseHash>,
    /// Promotion threshold on the minimum bucket count.
    threshold: u64,
    /// Bounded exact-count table for promoted candidates.
    capacity: usize,
    candidates: HashMap<ItemKey, u64>,
}

impl MultiHashIceberg {
    /// Creates the structure: `rows × buckets` counters, promoting items
    /// whose min-counter reaches `threshold` into an exact table of at
    /// most `capacity` entries (first-come, first-kept — the original
    /// heuristic's behaviour under overflow).
    pub fn new(rows: usize, buckets: usize, threshold: u64, capacity: usize, seed: u64) -> Self {
        assert!(rows > 0 && buckets > 0, "dimensions must be positive");
        assert!(threshold >= 1, "threshold must be at least 1");
        assert!(capacity >= 1, "capacity must be positive");
        let mut seeds = SeedSequence::new(seed);
        let hashers = (0..rows)
            .map(|_| PairwiseHash::draw(&mut seeds, buckets))
            .collect();
        Self {
            rows,
            buckets,
            counters: vec![0; rows * buckets],
            hashers,
            threshold,
            capacity,
            candidates: HashMap::new(),
        }
    }

    /// Number of promoted candidates.
    pub fn promoted(&self) -> usize {
        self.candidates.len()
    }

    /// The promotion threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    fn min_bucket(&self, key: u64) -> u64 {
        (0..self.rows)
            .map(|i| self.counters[i * self.buckets + self.hashers[i].bucket(key)])
            .min()
            .expect("rows > 0")
    }
}

impl StreamSummary for MultiHashIceberg {
    fn name(&self) -> &'static str {
        "multihash-iceberg"
    }

    fn process(&mut self, key: ItemKey) {
        // Promoted items count exactly; everything else hits the tables.
        if let Some(c) = self.candidates.get_mut(&key) {
            *c += 1;
            return;
        }
        let k = key.raw();
        for i in 0..self.rows {
            let bucket = self.hashers[i].bucket(k);
            self.counters[i * self.buckets + bucket] += 1;
        }
        if self.candidates.len() < self.capacity && self.min_bucket(k) >= self.threshold {
            // Promote with the (over)estimate at promotion time: the
            // heuristic's accounting — later occurrences are exact.
            self.candidates.insert(key, self.min_bucket(k));
        }
    }

    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.candidates.get(&key).copied()
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self.candidates.iter().map(|(&k, &c)| (k, c)).collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<u64>()
            + self.hashers.iter().map(|h| h.space_bytes()).sum::<usize>()
            + self.capacity * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn heavy_item_gets_promoted() {
        let mut m = MultiHashIceberg::new(3, 256, 10, 50, 1);
        for _ in 0..100 {
            m.process(ItemKey(42));
        }
        assert!(m.estimate(ItemKey(42)).is_some());
        // Counts after promotion are exact: promoted at min-bucket 10,
        // then 90 exact increments.
        assert_eq!(m.estimate(ItemKey(42)), Some(100));
    }

    #[test]
    fn light_items_not_promoted() {
        let mut m = MultiHashIceberg::new(3, 1024, 50, 50, 2);
        m.process_stream(&Stream::from_ids(0..500));
        assert_eq!(m.promoted(), 0, "all-distinct stream promotes nothing");
    }

    #[test]
    fn finds_top_items_on_zipf() {
        let zipf = Zipf::new(1_000, 1.2);
        let stream = zipf.stream(50_000, 3, ZipfStreamKind::DeterministicRounded);
        let n = stream.len() as u64;
        let mut m = MultiHashIceberg::new(5, 2048, n / 100, 100, 4);
        m.process_stream(&stream);
        let keys = m.top_k_keys(10);
        assert!(keys.contains(&ItemKey(0)), "missed the dominant item");
        assert!(keys.contains(&ItemKey(1)));
    }

    #[test]
    fn candidate_table_respects_capacity() {
        let mut m = MultiHashIceberg::new(2, 4, 2, 3, 5);
        // Tiny tables: collisions promote aggressively; cap must hold.
        m.process_stream(&Stream::from_ids((0..1000u64).map(|i| i % 50)));
        assert!(m.promoted() <= 3);
    }

    #[test]
    fn estimates_can_overcount_demonstrating_the_heuristic_gap() {
        // Two items colliding in every table inflate each other's
        // promotion estimate — the flaw the Count-Sketch fixes. With 1
        // row, collisions are guaranteed by a small table.
        let zipf = Zipf::new(500, 1.0);
        let stream = zipf.stream(20_000, 7, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut m = MultiHashIceberg::new(1, 32, 100, 200, 6);
        m.process_stream(&stream);
        let over = m
            .candidates()
            .iter()
            .filter(|&&(key, est)| est > exact.count(key))
            .count();
        assert!(
            over > 0,
            "with 1 row and 32 buckets some estimate must overcount"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = Stream::from_ids((0..5_000u64).map(|i| i % 100));
        let mut a = MultiHashIceberg::new(3, 128, 20, 50, 9);
        let mut b = MultiHashIceberg::new(3, 128, 20, 50, 9);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
    }

    #[test]
    #[should_panic(expected = "threshold must be at least 1")]
    fn zero_threshold_rejected() {
        MultiHashIceberg::new(1, 1, 0, 1, 0);
    }
}
