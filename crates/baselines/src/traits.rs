//! The common interface all frequent-items algorithms implement.

use cs_hash::ItemKey;
use cs_stream::Stream;

/// A one-pass stream summary that can report candidate frequent items.
///
/// ```
/// use cs_baselines::{SpaceSaving, StreamSummary};
/// use cs_stream::Stream;
///
/// let mut alg = SpaceSaving::new(4);
/// alg.process_stream(&Stream::from_ids([1, 1, 1, 2, 2, 3]));
/// assert_eq!(alg.top_k_keys(1)[0].raw(), 1);
/// assert!(alg.estimate(cs_hash::ItemKey(1)).unwrap() >= 3);
/// ```
///
/// Semantics shared by all implementations:
///
/// * [`StreamSummary::process`] consumes one occurrence;
/// * [`StreamSummary::estimate`] returns the algorithm's estimate of an
///   item's count, or `None` if the algorithm retains no information
///   about the item (counter-based algorithms drop items; sketches answer
///   for everything);
/// * [`StreamSummary::candidates`] returns the retained items ordered by
///   estimated count (non-increasing, ties by key) — a
///   CANDIDATETOP-style answer is its prefix;
/// * [`StreamSummary::space_bytes`] is the *current* memory footprint,
///   the quantity Table 1 compares.
pub trait StreamSummary {
    /// Human-readable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Consumes one stream occurrence.
    fn process(&mut self, key: ItemKey);

    /// The algorithm's estimate of `key`'s count, if it retains any.
    fn estimate(&self, key: ItemKey) -> Option<u64>;

    /// Retained items by estimated count, non-increasing (ties: key asc).
    fn candidates(&self) -> Vec<(ItemKey, u64)>;

    /// Current memory footprint in bytes.
    fn space_bytes(&self) -> usize;

    /// Consumes a block of occurrences. The default forwards to
    /// [`StreamSummary::process`] per key; implementations with a
    /// cheaper bulk path (e.g. the Count-Sketch's block ingestion
    /// engine) override this, and the throughput harness feeds every
    /// algorithm through it so such paths are exercised end-to-end.
    fn process_batch(&mut self, keys: &[ItemKey]) {
        for &key in keys {
            self.process(key);
        }
    }

    /// Convenience: consumes a whole stream via
    /// [`StreamSummary::process_batch`].
    fn process_stream(&mut self, stream: &Stream) {
        self.process_batch(stream.as_slice());
    }

    /// Convenience: the top `k` candidates' keys.
    fn top_k_keys(&self, k: usize) -> Vec<ItemKey> {
        self.candidates()
            .into_iter()
            .take(k)
            .map(|(key, _)| key)
            .collect()
    }
}

/// Sorts `(key, count)` pairs into the canonical candidate order:
/// count non-increasing, then key ascending.
pub fn sort_candidates(v: &mut [(ItemKey, u64)]) {
    v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Exact(std::collections::HashMap<ItemKey, u64>);
    impl StreamSummary for Exact {
        fn name(&self) -> &'static str {
            "exact"
        }
        fn process(&mut self, key: ItemKey) {
            *self.0.entry(key).or_insert(0) += 1;
        }
        fn estimate(&self, key: ItemKey) -> Option<u64> {
            self.0.get(&key).copied()
        }
        fn candidates(&self) -> Vec<(ItemKey, u64)> {
            let mut v: Vec<_> = self.0.iter().map(|(&k, &c)| (k, c)).collect();
            sort_candidates(&mut v);
            v
        }
        fn space_bytes(&self) -> usize {
            self.0.len() * 16
        }
    }

    #[test]
    fn process_stream_default_impl() {
        let mut e = Exact(Default::default());
        e.process_stream(&Stream::from_ids([1, 1, 2]));
        assert_eq!(e.estimate(ItemKey(1)), Some(2));
        assert_eq!(e.estimate(ItemKey(2)), Some(1));
        assert_eq!(e.estimate(ItemKey(3)), None);
    }

    #[test]
    fn process_batch_equals_per_item() {
        let keys: Vec<ItemKey> = [5u64, 5, 7, 5, 9, 7].into_iter().map(ItemKey).collect();
        let mut a = Exact(Default::default());
        let mut b = Exact(Default::default());
        for &k in &keys {
            a.process(k);
        }
        b.process_batch(&keys);
        assert_eq!(a.candidates(), b.candidates());
    }

    #[test]
    fn top_k_keys_default_impl() {
        let mut e = Exact(Default::default());
        e.process_stream(&Stream::from_ids([1, 1, 2, 3, 3, 3]));
        assert_eq!(e.top_k_keys(2), vec![ItemKey(3), ItemKey(1)]);
    }

    #[test]
    fn sort_candidates_order() {
        let mut v = vec![(ItemKey(5), 2), (ItemKey(1), 2), (ItemKey(9), 7)];
        sort_candidates(&mut v);
        assert_eq!(v, vec![(ItemKey(9), 7), (ItemKey(1), 2), (ItemKey(5), 2)]);
    }
}
