//! Count-Min sketch (Cormode & Muthukrishnan '05) — the sign-hash
//! ablation.
//!
//! Structurally a Count-Sketch with the `±1` sign hashes removed:
//! `t × b` *non-negative* counters, `ADD` increments one counter per row,
//! `ESTIMATE` takes the **min** over rows (every row overcounts, so the
//! minimum is the tightest). Point-query error is one-sided:
//! `n_q ≤ est ≤ n_q + ε·F₁^{res}` w.h.p. with `b = ⌈e/ε⌉`, versus
//! Count-Sketch's two-sided `±ε·sqrt(F₂^{res})`. Comparing the two on the
//! same `(t, b)` grid isolates exactly what the paper's sign hashes buy —
//! the `bench_ablation` benchmark and `harness ablation` experiment do
//! this.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::{BucketHasher, ItemKey, PairwiseHash, SeedSequence};
use std::collections::HashMap;

/// The Count-Min sketch plus a candidate heap (so it can answer
/// CANDIDATETOP-style queries like the others).
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    buckets: usize,
    counters: Vec<u64>,
    hashers: Vec<PairwiseHash>,
    /// Top candidates tracked alongside (item → last estimate).
    heap_capacity: usize,
    heap: HashMap<ItemKey, u64>,
}

impl CountMinSketch {
    /// Creates a `rows × buckets` Count-Min sketch tracking up to
    /// `heap_capacity` candidate items.
    pub fn new(rows: usize, buckets: usize, heap_capacity: usize, seed: u64) -> Self {
        assert!(rows > 0 && buckets > 0, "dimensions must be positive");
        assert!(heap_capacity > 0, "heap capacity must be positive");
        let mut seeds = SeedSequence::new(seed);
        let hashers = (0..rows)
            .map(|_| PairwiseHash::draw(&mut seeds, buckets))
            .collect();
        Self {
            rows,
            buckets,
            counters: vec![0; rows * buckets],
            hashers,
            heap_capacity,
            heap: HashMap::new(),
        }
    }

    /// Dimensions from the standard `(ε, δ)` guarantee:
    /// `b = ⌈e/ε⌉`, `t = ⌈ln(1/δ)⌉`.
    pub fn with_guarantee(eps: f64, delta: f64, heap_capacity: usize, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let buckets = (std::f64::consts::E / eps).ceil() as usize;
        let rows = ((1.0 / delta).ln().ceil() as usize).max(1);
        Self::new(rows, buckets, heap_capacity, seed)
    }

    /// Number of rows `t`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row `b`.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The raw point-query estimate (min over rows), without heap
    /// bookkeeping.
    pub fn point_query(&self, key: ItemKey) -> u64 {
        let k = key.raw();
        (0..self.rows)
            .map(|i| self.counters[i * self.buckets + self.hashers[i].bucket(k)])
            .min()
            .expect("rows > 0")
    }
}

impl StreamSummary for CountMinSketch {
    fn name(&self) -> &'static str {
        "count-min"
    }

    fn process(&mut self, key: ItemKey) {
        let k = key.raw();
        for i in 0..self.rows {
            let bucket = self.hashers[i].bucket(k);
            self.counters[i * self.buckets + bucket] += 1;
        }
        // Candidate heap: same discipline as the Count-Sketch algorithm.
        let est = self.point_query(key);
        if self.heap.contains_key(&key) || self.heap.len() < self.heap_capacity {
            self.heap.insert(key, est);
        } else {
            let (&min_key, &min_est) = self
                .heap
                .iter()
                .min_by_key(|&(&k2, &v)| (v, k2))
                .expect("heap non-empty at capacity");
            if est > min_est {
                self.heap.remove(&min_key);
                self.heap.insert(key, est);
            }
        }
    }

    fn estimate(&self, key: ItemKey) -> Option<u64> {
        Some(self.point_query(key))
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self.heap.iter().map(|(&k, &c)| (k, c)).collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<u64>()
            + self.hashers.iter().map(|h| h.space_bytes()).sum::<usize>()
            + self.heap_capacity * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn never_undercounts() {
        let zipf = Zipf::new(300, 1.0);
        let stream = zipf.stream(20_000, 1, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut cm = CountMinSketch::new(5, 256, 20, 3);
        cm.process_stream(&stream);
        for id in 0..300u64 {
            let est = cm.point_query(ItemKey(id));
            assert!(
                est >= exact.count(ItemKey(id)),
                "Count-Min undercounted item {id}"
            );
        }
    }

    #[test]
    fn single_item_is_exact() {
        let mut cm = CountMinSketch::new(3, 64, 5, 0);
        for _ in 0..100 {
            cm.process(ItemKey(42));
        }
        assert_eq!(cm.point_query(ItemKey(42)), 100);
    }

    #[test]
    fn overcount_bounded_by_eps_f1() {
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(50_000, 6, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let eps = 0.005;
        let mut cm = CountMinSketch::with_guarantee(eps, 0.01, 20, 7);
        cm.process_stream(&stream);
        let bound = (eps * stream.len() as f64).ceil() as u64;
        let mut violations = 0usize;
        for id in 0..1000u64 {
            let over = cm.point_query(ItemKey(id)) - exact.count(ItemKey(id));
            if over > bound {
                violations += 1;
            }
        }
        // δ = 0.01 per query: allow a few of 1000.
        assert!(violations <= 30, "{violations} overcount violations");
    }

    #[test]
    fn finds_top_items_on_zipf() {
        let zipf = Zipf::new(1000, 1.2);
        let stream = zipf.stream(50_000, 4, ZipfStreamKind::DeterministicRounded);
        let mut cm = CountMinSketch::new(5, 1024, 10, 9);
        cm.process_stream(&stream);
        let keys = cm.top_k_keys(10);
        assert!(keys.contains(&ItemKey(0)), "missed the dominant item");
        assert!(keys.contains(&ItemKey(1)));
    }

    #[test]
    fn heap_respects_capacity() {
        let mut cm = CountMinSketch::new(3, 64, 5, 1);
        cm.process_stream(&Stream::from_ids(0..1000));
        assert!(cm.candidates().len() <= 5);
    }

    #[test]
    fn with_guarantee_dimensions() {
        let cm = CountMinSketch::with_guarantee(0.01, 0.01, 5, 0);
        assert_eq!(cm.buckets(), (std::f64::consts::E / 0.01).ceil() as usize);
        assert_eq!(cm.rows(), 5); // ln(100) ≈ 4.6 → 5
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = Stream::from_ids((0..5000u64).map(|i| i % 100));
        let mut a = CountMinSketch::new(5, 128, 10, 2);
        let mut b = CountMinSketch::new(5, 128, 10, 2);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimensions_rejected() {
        CountMinSketch::new(0, 10, 5, 0);
    }
}
