//! Baseline frequent-items algorithms.
//!
//! The paper's evaluation (§2, §4.1, Table 1) compares the Count-Sketch
//! against and cites a family of sampling- and counter-based algorithms;
//! this crate implements all of them behind one trait so the experiment
//! harness can sweep algorithms uniformly:
//!
//! | Algorithm | Paper reference | Module |
//! |---|---|---|
//! | SAMPLING (uniform sample + counters) | §2, Table 1 | [`sampling`] |
//! | Concise samples (Gibbons–Matias) | §2 | [`concise`] |
//! | Counting samples (Gibbons–Matias) | §2 | [`counting`] |
//! | KPS / Frequent (Karp–Shenker–Papadimitriou, = Misra–Gries) | §2, §4.1, Table 1 | [`kps`] |
//! | Lossy Counting (Manku–Motwani) | §2 \[15\] | [`lossy`] |
//! | Multi-hash iceberg heuristic (Fang et al.) | §2 \[4\] — "similar flavor to our algorithm" | [`multihash`] |
//! | Sticky Sampling (Manku–Motwani) | §2 \[15\] | [`sticky`] |
//! | Count-Min sketch (sign-hash ablation) | — | [`countmin`] |
//! | Space-Saving (Metwally et al.) | — (strongest counter baseline; in the same-titled VLDB'08 survey) | [`spacesaving`] |
//!
//! Count-Min and Space-Saving postdate or fall outside the paper but are
//! included per DESIGN.md: Count-Min isolates exactly what the ±1 sign
//! hashes buy (it is the sketch *without* them), and Space-Saving is the
//! counter algorithm a modern comparison cannot omit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod concise;
pub mod counting;
pub mod countmin;
pub mod kps;
pub mod lossy;
pub mod multihash;
pub mod sampling;
pub mod spacesaving;
pub mod sticky;
pub mod traits;

pub use concise::ConciseSamples;
pub use counting::CountingSamples;
pub use countmin::CountMinSketch;
pub use kps::KpsFrequent;
pub use lossy::LossyCounting;
pub use multihash::MultiHashIceberg;
pub use sampling::SamplingAlgorithm;
pub use spacesaving::SpaceSaving;
pub use sticky::StickySampling;
pub use traits::StreamSummary;
