//! Counting samples (Gibbons & Matias, SIGMOD '98), as described in §2.
//!
//! The concise-samples optimization the paper describes: *"so long as we
//! are setting aside space for a count of an item in the sample anyway, we
//! may as well keep an exact count for the occurrences of the item after
//! it has been added to the sample."* Inclusion is still probabilistic
//! (threshold τ), but once an item is in, every subsequent occurrence is
//! counted exactly. "This change improves the accuracy of the counts of
//! items, but does not change who will actually get included."
//!
//! On overflow, τ is lowered to τ' and each entry is re-subsampled with
//! the Gibbons–Matias eviction rule: the entry's *first sampled
//! occurrence* survives with probability `τ'/τ`; if it does not, the
//! occurrences counted after it each get a chance `τ'` to become the new
//! first sampled occurrence, and the count is decremented for every
//! failed attempt; an entry whose count reaches zero is evicted.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::ItemKey;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The counting-samples summary.
#[derive(Debug, Clone)]
pub struct CountingSamples {
    capacity: usize,
    tau: f64,
    decay: f64,
    rng: rand::rngs::StdRng,
    /// item → occurrences counted since (and including) the first sampled
    /// occurrence.
    sample: BTreeMap<ItemKey, u64>,
}

impl CountingSamples {
    /// Creates a counting sample holding at most `capacity` distinct
    /// items; `decay` in (0, 1) is the τ multiplier on overflow.
    pub fn new(capacity: usize, decay: f64, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        assert!(decay > 0.0 && decay < 1.0, "decay must be in (0,1)");
        Self {
            capacity,
            tau: 1.0,
            decay,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            sample: BTreeMap::new(),
        }
    }

    /// The current inclusion probability τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Gibbons–Matias eviction when lowering τ → τ·decay.
    fn lower_threshold(&mut self) {
        let new_tau = self.tau * self.decay;
        let keep_first = new_tau / self.tau;
        self.sample.retain(|_, count| {
            // First sampled occurrence survives w.p. τ'/τ …
            if self.rng.gen::<f64>() < keep_first {
                return true;
            }
            // … otherwise strip occurrences one at a time; each later
            // occurrence becomes the new first w.p. τ'.
            while *count > 1 {
                *count -= 1;
                if self.rng.gen::<f64>() < new_tau {
                    return true;
                }
            }
            false
        });
        self.tau = new_tau;
    }
}

impl StreamSummary for CountingSamples {
    fn name(&self) -> &'static str {
        "counting-samples"
    }

    fn process(&mut self, key: ItemKey) {
        match self.sample.get_mut(&key) {
            // Already sampled: count exactly.
            Some(count) => *count += 1,
            // Not sampled: include with probability τ.
            None => {
                if self.rng.gen::<f64>() < self.tau {
                    self.sample.insert(key, 1);
                }
            }
        }
        while self.sample.len() > self.capacity {
            self.lower_threshold();
        }
    }

    /// Estimate: the exact count since inclusion, plus the expected
    /// `1/τ - 1` occurrences missed before inclusion (the Gibbons–Matias
    /// compensation).
    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.sample
            .get(&key)
            .map(|&c| c + ((1.0 / self.tau) - 1.0).round() as u64)
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let comp = ((1.0 / self.tau) - 1.0).round() as u64;
        let mut v: Vec<(ItemKey, u64)> = self.sample.iter().map(|(&k, &c)| (k, c + comp)).collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        self.sample.len() * (std::mem::size_of::<ItemKey>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn under_budget_counts_exact() {
        let mut c = CountingSamples::new(10, 0.9, 0);
        c.process_stream(&Stream::from_ids([1, 1, 1, 2]));
        assert_eq!(c.tau(), 1.0);
        assert_eq!(c.estimate(ItemKey(1)), Some(3));
        assert_eq!(c.estimate(ItemKey(2)), Some(1));
        assert_eq!(c.estimate(ItemKey(9)), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut c = CountingSamples::new(32, 0.7, 1);
        c.process_stream(&Stream::from_ids(0..10_000));
        assert!(c.sample.len() <= 32);
        assert!(c.tau() < 1.0);
    }

    #[test]
    fn counts_after_inclusion_are_exact() {
        // Overflow with distinct junk first, then a heavy item arrives:
        // once included, all its occurrences count exactly.
        let mut c = CountingSamples::new(50, 0.9, 3);
        c.process_stream(&Stream::from_ids(0..49));
        let tau_before = c.tau();
        for _ in 0..1000 {
            c.process(ItemKey(777_777));
        }
        // With τ near 1 the item is included near the start; its count
        // must be close to 1000 (not τ-scaled).
        if let Some(est) = c.estimate(ItemKey(777_777)) {
            assert!(
                est > 900,
                "est {est}, tau_before {tau_before}, tau {}",
                c.tau()
            );
        } else {
            panic!("heavy item missing");
        }
    }

    #[test]
    fn more_accurate_than_concise_on_heavy_items() {
        // The §2 claim: counting samples improve count accuracy. Compare
        // mean absolute relative error on the top-10 of a Zipf stream.
        let zipf = Zipf::new(2000, 1.0);
        let stream = zipf.stream(100_000, 5, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut counting = CountingSamples::new(300, 0.9, 7);
        let mut concise = crate::concise::ConciseSamples::new(300, 0.9, 7);
        counting.process_stream(&stream);
        concise.process_stream(&stream);
        let err = |est: Option<u64>, truth: u64| -> f64 {
            match est {
                Some(e) => (e as f64 - truth as f64).abs() / truth as f64,
                None => 1.0,
            }
        };
        let mut counting_err = 0.0;
        let mut concise_err = 0.0;
        for rank in 0..10u64 {
            let truth = exact.count(ItemKey(rank));
            counting_err += err(counting.estimate(ItemKey(rank)), truth);
            concise_err += err(concise.estimate(ItemKey(rank)), truth);
        }
        assert!(
            counting_err <= concise_err + 0.2,
            "counting {counting_err} vs concise {concise_err}"
        );
    }

    #[test]
    fn eviction_preserves_some_heavy_entries() {
        let zipf = Zipf::new(5000, 1.2);
        let stream = zipf.stream(50_000, 9, ZipfStreamKind::DeterministicRounded);
        let mut c = CountingSamples::new(200, 0.8, 4);
        c.process_stream(&stream);
        assert!(
            c.estimate(ItemKey(0)).is_some(),
            "the dominant item must survive"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = Stream::from_ids((0..3000u64).map(|i| i % 200));
        let mut a = CountingSamples::new(64, 0.9, 13);
        let mut b = CountingSamples::new(64, 0.9, 13);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        CountingSamples::new(0, 0.9, 0);
    }
}
