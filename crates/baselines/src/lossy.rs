//! Lossy Counting (Manku & Motwani, VLDB '02) — cited in §2 \[15\].
//!
//! Deterministic one-pass summary for iceberg queries. The stream is
//! conceptually divided into buckets of width `w = ⌈1/ε⌉`. Entries are
//! `(item, f, Δ)` where `f` counts occurrences since insertion and `Δ`
//! is the maximum possible undercount (the bucket id at insertion minus
//! one). At every bucket boundary, entries with `f + Δ ≤ b_current` are
//! pruned.
//!
//! Guarantees: estimates undercount by at most `ε·n`; every item with
//! `n_q ≥ ε·n` is retained; space is `O((1/ε)·log(ε·n))`.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::ItemKey;
use std::collections::HashMap;

/// One Lossy Counting entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// Occurrences counted since insertion.
    f: u64,
    /// Maximum undercount: `b_insert - 1`.
    delta: u64,
}

/// The Lossy Counting summary.
#[derive(Debug, Clone)]
pub struct LossyCounting {
    epsilon: f64,
    /// Bucket width `w = ⌈1/ε⌉`.
    width: u64,
    /// Occurrences processed so far (`n`).
    processed: u64,
    entries: HashMap<ItemKey, Entry>,
}

impl LossyCounting {
    /// Creates the summary with error parameter `ε`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        Self {
            epsilon,
            width: (1.0 / epsilon).ceil() as u64,
            processed: 0,
            entries: HashMap::new(),
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Occurrences processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The current bucket id `b = ⌈n/w⌉`.
    fn current_bucket(&self) -> u64 {
        self.processed.div_ceil(self.width).max(1)
    }

    /// Number of live entries.
    pub fn live_entries(&self) -> usize {
        self.entries.len()
    }

    /// Items whose retained count passes the iceberg threshold
    /// `(s - ε)·n` for support `s` — the Manku–Motwani query.
    pub fn iceberg(&self, support: f64) -> Vec<(ItemKey, u64)> {
        assert!(support > self.epsilon, "support must exceed epsilon");
        let cutoff = ((support - self.epsilon) * self.processed as f64) as u64;
        let mut v: Vec<(ItemKey, u64)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.f >= cutoff)
            .map(|(&k, e)| (k, e.f))
            .collect();
        sort_candidates(&mut v);
        v
    }
}

impl StreamSummary for LossyCounting {
    fn name(&self) -> &'static str {
        "lossy-counting"
    }

    fn process(&mut self, key: ItemKey) {
        self.processed += 1;
        let b = self.current_bucket();
        self.entries
            .entry(key)
            .and_modify(|e| e.f += 1)
            .or_insert(Entry { f: 1, delta: b - 1 });
        // Prune at bucket boundaries.
        if self.processed.is_multiple_of(self.width) {
            self.entries.retain(|_, e| e.f + e.delta > b);
        }
    }

    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.entries.get(&key).map(|e| e.f)
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self.entries.iter().map(|(&k, e)| (k, e.f)).collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<ItemKey>() + std::mem::size_of::<Entry>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn short_stream_exact() {
        let mut l = LossyCounting::new(0.1); // width 10
        l.process_stream(&Stream::from_ids([1, 1, 2]));
        assert_eq!(l.estimate(ItemKey(1)), Some(2));
        assert_eq!(l.estimate(ItemKey(2)), Some(1));
    }

    #[test]
    fn undercount_at_most_eps_n() {
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(50_000, 2, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let eps = 0.001;
        let mut l = LossyCounting::new(eps);
        l.process_stream(&stream);
        let bound = (eps * stream.len() as f64).ceil() as u64;
        for (key, est) in l.candidates() {
            let truth = exact.count(key);
            assert!(est <= truth, "lossy counting never overcounts");
            assert!(
                truth - est <= bound,
                "undercount {} > εn = {bound}",
                truth - est
            );
        }
    }

    #[test]
    fn heavy_items_retained() {
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(50_000, 4, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let eps = 0.001;
        let mut l = LossyCounting::new(eps);
        l.process_stream(&stream);
        let cutoff = (eps * stream.len() as f64) as u64;
        for (&key, &count) in exact.counts() {
            if count >= cutoff.max(1) {
                assert!(
                    l.estimate(key).is_some(),
                    "item with count {count} >= εn = {cutoff} lost"
                );
            }
        }
    }

    #[test]
    fn space_stays_bounded_on_uniform_stream() {
        // Uniform streams are the worst case; space must stay near the
        // O((1/ε) log(εn)) bound, far below the distinct count.
        let eps = 0.01;
        let mut l = LossyCounting::new(eps);
        l.process_stream(&cs_stream::uniform_stream(100_000, 200_000, 1));
        let bound = (1.0 / eps) * ((eps * 200_000.0).ln().max(1.0)) * 4.0;
        assert!(
            (l.live_entries() as f64) < bound,
            "{} entries vs bound {bound}",
            l.live_entries()
        );
    }

    #[test]
    fn iceberg_query_returns_frequent_items() {
        let zipf = Zipf::new(100, 1.2);
        let stream = zipf.stream(20_000, 3, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut l = LossyCounting::new(0.005);
        l.process_stream(&stream);
        let support = 0.05;
        let result = l.iceberg(support);
        let keys: Vec<ItemKey> = result.iter().map(|&(k, _)| k).collect();
        // Every true >= s*n item must appear.
        for (&key, &count) in exact.counts() {
            if count as f64 >= support * stream.len() as f64 {
                assert!(keys.contains(&key), "iceberg missed {key:?} ({count})");
            }
        }
        // Nothing below (s-ε)n may appear.
        for (key, _) in &result {
            let truth = exact.count(*key);
            assert!(
                truth as f64 >= (support - 2.0 * l.epsilon()) * stream.len() as f64,
                "iceberg returned too-rare item {key:?} ({truth})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "support must exceed epsilon")]
    fn iceberg_rejects_support_below_eps() {
        LossyCounting::new(0.1).iceberg(0.05);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0,1)")]
    fn bad_epsilon_rejected() {
        LossyCounting::new(0.0);
    }

    #[test]
    fn deterministic() {
        let stream = Stream::from_ids((0..10_000u64).map(|i| i % 321));
        let mut a = LossyCounting::new(0.01);
        let mut b = LossyCounting::new(0.01);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
    }
}
