//! Space-Saving (Metwally, Agrawal & El Abbadi, ICDT '05).
//!
//! Not in the 2002/2004 paper (it postdates it), but the strongest
//! counter-based frequent-items algorithm and a fixture of every later
//! comparison — including the same-titled VLDB 2008 survey. Included per
//! DESIGN.md as the modern counter baseline.
//!
//! Maintain exactly `c` counters `(item, count, error)`. On arrival of
//! `q`: if tracked, increment; else if a slot is free, insert with count
//! 1; else *replace* the minimum-count item: the newcomer inherits
//! `count = min + 1` with `error = min`.
//!
//! Guarantees: `est - error ≤ n_q ≤ est` for tracked items; every item
//! with `n_q > n/c` is tracked; with `c = O(k · (something distribution
//! dependent))` the top-k are tracked — for Zipf(z>½), `c = O(k)`.

use crate::traits::StreamSummary;
use cs_hash::ItemKey;
use std::collections::{BTreeSet, HashMap};

/// One Space-Saving counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    /// The (over)estimate of the item's count.
    pub count: u64,
    /// Maximum overestimation (the count inherited at replacement).
    pub error: u64,
}

/// The Space-Saving summary (a Stream-Summary structure simplified to a
/// hash map + ordered set; asymptotics are the same up to log factors).
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    counters: HashMap<ItemKey, Counter>,
    /// (count, key) ordered view for O(log c) min lookup.
    ordered: BTreeSet<(u64, ItemKey)>,
}

impl SpaceSaving {
    /// Creates the summary with exactly `capacity` counter slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity),
            ordered: BTreeSet::new(),
        }
    }

    /// Counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The full counter record for an item.
    pub fn counter(&self, key: ItemKey) -> Option<Counter> {
        self.counters.get(&key).copied()
    }

    /// Guaranteed lower bound on a tracked item's true count
    /// (`count - error`).
    pub fn guaranteed_count(&self, key: ItemKey) -> Option<u64> {
        self.counters.get(&key).map(|c| c.count - c.error)
    }
}

impl StreamSummary for SpaceSaving {
    fn name(&self) -> &'static str {
        "space-saving"
    }

    fn process(&mut self, key: ItemKey) {
        if let Some(c) = self.counters.get_mut(&key) {
            self.ordered.remove(&(c.count, key));
            c.count += 1;
            self.ordered.insert((c.count, key));
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, Counter { count: 1, error: 0 });
            self.ordered.insert((1, key));
            return;
        }
        // Replace the minimum.
        let &(min_count, min_key) = self.ordered.first().expect("at capacity");
        self.ordered.remove(&(min_count, min_key));
        self.counters.remove(&min_key);
        self.counters.insert(
            key,
            Counter {
                count: min_count + 1,
                error: min_count,
            },
        );
        self.ordered.insert((min_count + 1, key));
    }

    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.counters.get(&key).map(|c| c.count)
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        self.ordered.iter().rev().map(|&(c, k)| (k, c)).collect()
    }

    fn space_bytes(&self) -> usize {
        self.capacity
            * (std::mem::size_of::<ItemKey>()
                + std::mem::size_of::<Counter>()
                + std::mem::size_of::<(u64, ItemKey)>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn under_capacity_exact() {
        let mut s = SpaceSaving::new(10);
        s.process_stream(&Stream::from_ids([1, 1, 1, 2, 2, 3]));
        assert_eq!(s.estimate(ItemKey(1)), Some(3));
        assert_eq!(s.estimate(ItemKey(2)), Some(2));
        assert_eq!(s.estimate(ItemKey(3)), Some(1));
        assert_eq!(s.counter(ItemKey(1)).unwrap().error, 0);
    }

    #[test]
    fn never_undercounts_tracked_items() {
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(50_000, 3, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut s = SpaceSaving::new(100);
        s.process_stream(&stream);
        for (key, est) in s.candidates() {
            let truth = exact.count(key);
            assert!(est >= truth, "space-saving must overestimate");
            let c = s.counter(key).unwrap();
            assert!(c.count - c.error <= truth, "lower bound violated");
        }
    }

    #[test]
    fn heavy_items_always_tracked() {
        // Every item with n_q > n/c is tracked.
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(50_000, 8, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let c = 200;
        let mut s = SpaceSaving::new(c);
        s.process_stream(&stream);
        let threshold = stream.len() as u64 / c as u64;
        for (&key, &count) in exact.counts() {
            if count > threshold {
                assert!(
                    s.estimate(key).is_some(),
                    "item with count {count} > n/c = {threshold} lost"
                );
            }
        }
    }

    #[test]
    fn top_k_recall_on_zipf() {
        let zipf = Zipf::new(1000, 1.1);
        let stream = zipf.stream(100_000, 5, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let k = 10;
        let mut s = SpaceSaving::new(10 * k);
        s.process_stream(&stream);
        let got = s.top_k_keys(k);
        let mut hits = 0;
        for (key, _) in exact.top_k(k) {
            if got.contains(&key) {
                hits += 1;
            }
        }
        assert!(hits >= 9, "recall {hits}/10");
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut s = SpaceSaving::new(7);
        s.process_stream(&Stream::from_ids(0..10_000));
        assert_eq!(s.counters.len(), 7);
        assert_eq!(s.ordered.len(), 7);
    }

    #[test]
    fn replacement_inherits_min_plus_one() {
        let mut s = SpaceSaving::new(2);
        s.process(ItemKey(1)); // (1,c1)
        s.process(ItemKey(1)); // c1 = 2
        s.process(ItemKey(2)); // c2 = 1
        s.process(ItemKey(3)); // replaces item 2: count 2, error 1
        let c = s.counter(ItemKey(3)).unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.error, 1);
        assert!(s.estimate(ItemKey(2)).is_none());
    }

    #[test]
    fn total_count_conservation() {
        // Sum of counts == stream length (each arrival adds exactly 1 to
        // the multiset of counts).
        let zipf = Zipf::new(100, 0.9);
        let stream = zipf.stream(5000, 1, ZipfStreamKind::Sampled);
        let mut s = SpaceSaving::new(20);
        s.process_stream(&stream);
        let total: u64 = s.candidates().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SpaceSaving::new(0);
    }
}
