//! Sticky Sampling (Manku & Motwani, VLDB '02) — cited in §2 \[15\].
//!
//! Probabilistic counterpart of Lossy Counting. Entries are
//! `(item, count)`; a non-tracked arrival is sampled with rate `1/r`, and
//! a tracked item is counted exactly ("sticky": once sampled, always
//! counted). The sampling rate `r` doubles on a schedule — the first
//! `2t` arrivals use `r = 1`, the next `2t` use `r = 2`, then `4t` at
//! `r = 4`, and so on, with `t = (1/ε)·ln(1/(s·δ))`. When `r` doubles,
//! each entry's count is diminished by a geometric repair step (tails of
//! an unbiased coin decrement; first heads stops), evicting zeros — this
//! restores the invariant that each entry looks as if sampled at rate
//! `1/r` from the start.
//!
//! Guarantees (w.p. `1-δ`): every item with `n_q ≥ s·n` is reported, and
//! undercounts are at most `ε·n`. Expected space `O((2/ε)·ln(1/(s·δ)))` —
//! notably *independent of n*.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::ItemKey;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The Sticky Sampling summary.
#[derive(Debug, Clone)]
pub struct StickySampling {
    epsilon: f64,
    /// `t = (1/ε)·ln(1/(s·δ))` — the schedule granule.
    t: f64,
    /// Current sampling rate divisor `r` (inclusion probability `1/r`).
    rate: u64,
    /// Arrivals remaining before the next rate doubling.
    remaining_at_rate: u64,
    processed: u64,
    rng: rand::rngs::StdRng,
    entries: BTreeMap<ItemKey, u64>,
}

impl StickySampling {
    /// Creates the summary for support `s`, error `ε`, failure
    /// probability `δ`.
    pub fn new(support: f64, epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(support > epsilon, "support must exceed epsilon");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let t = (1.0 / epsilon) * (1.0 / (support * delta)).ln();
        Self {
            epsilon,
            t,
            rate: 1,
            // First window: 2t arrivals at rate 1.
            remaining_at_rate: (2.0 * t).ceil() as u64,
            processed: 0,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            entries: BTreeMap::new(),
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The current rate divisor `r`.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Live tracked entries.
    pub fn live_entries(&self) -> usize {
        self.entries.len()
    }

    /// Rate-doubling repair: for each entry, toss an unbiased coin;
    /// while tails, decrement and toss again; evict entries hitting zero.
    fn double_rate(&mut self) {
        self.rate *= 2;
        self.entries.retain(|_, count| {
            while *count > 0 && self.rng.gen::<bool>() {
                *count -= 1;
            }
            *count > 0
        });
        // Next window: r·t arrivals at the new rate (1st window 2t at
        // r=1, then 2t at r=2, 4t at r=4, ... — window length r·t).
        self.remaining_at_rate = (self.rate as f64 * self.t).ceil() as u64;
    }

    /// Items passing the iceberg threshold `(s - ε)·n`.
    pub fn iceberg(&self, support: f64) -> Vec<(ItemKey, u64)> {
        assert!(support > self.epsilon);
        let cutoff = ((support - self.epsilon) * self.processed as f64) as u64;
        let mut v: Vec<(ItemKey, u64)> = self
            .entries
            .iter()
            .filter(|(_, &c)| c >= cutoff)
            .map(|(&k, &c)| (k, c))
            .collect();
        sort_candidates(&mut v);
        v
    }
}

impl StreamSummary for StickySampling {
    fn name(&self) -> &'static str {
        "sticky-sampling"
    }

    fn process(&mut self, key: ItemKey) {
        if self.remaining_at_rate == 0 {
            self.double_rate();
        }
        self.remaining_at_rate -= 1;
        self.processed += 1;
        match self.entries.get_mut(&key) {
            Some(count) => *count += 1, // sticky: exact once tracked
            None => {
                if self.rate == 1 || self.rng.gen_range(0..self.rate) == 0 {
                    self.entries.insert(key, 1);
                }
            }
        }
    }

    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.entries.get(&key).copied()
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self.entries.iter().map(|(&k, &c)| (k, c)).collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<ItemKey>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn short_stream_exact_at_rate_one() {
        let mut s = StickySampling::new(0.1, 0.01, 0.1, 0);
        s.process_stream(&Stream::from_ids([1, 1, 2]));
        assert_eq!(s.rate(), 1);
        assert_eq!(s.estimate(ItemKey(1)), Some(2));
    }

    #[test]
    fn rate_doubles_on_schedule() {
        let mut s = StickySampling::new(0.2, 0.1, 0.5, 1);
        // t = 10·ln(10) ≈ 23; window 2t ≈ 47 at rate 1.
        let window = (2.0 * s.t).ceil() as u64;
        for i in 0..window + 1 {
            s.process(ItemKey(i));
        }
        assert_eq!(s.rate(), 2, "rate must double after the first window");
    }

    #[test]
    fn never_overcounts() {
        let zipf = Zipf::new(500, 1.0);
        let stream = zipf.stream(50_000, 2, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut s = StickySampling::new(0.01, 0.001, 0.1, 5);
        s.process_stream(&stream);
        for (key, est) in s.candidates() {
            assert!(est <= exact.count(key), "sticky sampling overcounted");
        }
    }

    #[test]
    fn heavy_items_reported_by_iceberg() {
        let zipf = Zipf::new(1000, 1.1);
        let stream = zipf.stream(100_000, 7, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let (support, eps) = (0.02, 0.002);
        let mut s = StickySampling::new(support, eps, 0.05, 3);
        s.process_stream(&stream);
        let found = s.iceberg(support);
        let keys: Vec<ItemKey> = found.iter().map(|&(k, _)| k).collect();
        for (&key, &count) in exact.counts() {
            if count as f64 >= support * stream.len() as f64 {
                assert!(keys.contains(&key), "missed heavy item {key:?} ({count})");
            }
        }
    }

    #[test]
    fn space_roughly_independent_of_stream_length() {
        let mut short = StickySampling::new(0.05, 0.01, 0.1, 4);
        let mut long = StickySampling::new(0.05, 0.01, 0.1, 4);
        short.process_stream(&cs_stream::uniform_stream(50_000, 20_000, 1));
        long.process_stream(&cs_stream::uniform_stream(50_000, 200_000, 2));
        // 10x the stream should not cost 10x the entries; allow 4x slack.
        assert!(
            (long.live_entries() as f64) < 4.0 * (short.live_entries().max(1) as f64),
            "short {} vs long {}",
            short.live_entries(),
            long.live_entries()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = Stream::from_ids((0..20_000u64).map(|i| i % 500));
        let mut a = StickySampling::new(0.05, 0.01, 0.1, 9);
        let mut b = StickySampling::new(0.05, 0.01, 0.1, 9);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
    }

    #[test]
    #[should_panic(expected = "support must exceed epsilon")]
    fn support_below_eps_rejected() {
        StickySampling::new(0.01, 0.05, 0.1, 0);
    }
}
