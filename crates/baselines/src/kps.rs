//! KPS — Karp, Shenker & Papadimitriou's deterministic frequent-elements
//! algorithm (§2, §4.1, Table 1), equivalent to Misra–Gries '82 and the
//! "Frequent" algorithm.
//!
//! *"A simple 1-pass deterministic algorithm for finding a superset of
//! all items with frequency at least θn, in O(1/θ) space."* Maintain at
//! most `⌈1/θ⌉ - 1` counters. On arrival of `q`: if `q` has a counter,
//! increment it; else if a counter slot is free, start one at 1; else
//! decrement *every* counter, dropping those that reach zero.
//!
//! Guarantee: every item with `n_q > θ·n` is retained, and each retained
//! counter undercounts by at most `θ·n`. As §4.1 notes it solves
//! CANDIDATETOP (via `θ = n_k/n` ⇒ space `O(n/n_k)`, the KPS column of
//! Table 1) but not APPROXTOP, since low-frequency items can be returned
//! and counts are biased down.

use crate::traits::{sort_candidates, StreamSummary};
use cs_hash::ItemKey;
use std::collections::HashMap;

/// The KPS / Misra–Gries / Frequent summary.
#[derive(Debug, Clone)]
pub struct KpsFrequent {
    /// Maximum number of simultaneous counters (`⌈1/θ⌉ - 1`).
    capacity: usize,
    counters: HashMap<ItemKey, u64>,
    /// Total decrement rounds performed (each subtracts 1 from all
    /// retained counters) — bounds the undercount of any estimate.
    decrements: u64,
}

impl KpsFrequent {
    /// Creates the summary with an explicit counter budget.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            counters: HashMap::with_capacity(capacity),
            decrements: 0,
        }
    }

    /// Creates the summary for the frequency threshold `θ`: capacity
    /// `⌈1/θ⌉ - 1`.
    pub fn for_threshold(theta: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0,1]");
        let cap = ((1.0 / theta).ceil() as usize).saturating_sub(1).max(1);
        Self::with_capacity(cap)
    }

    /// The counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of counters currently live.
    pub fn live_counters(&self) -> usize {
        self.counters.len()
    }

    /// Total decrement rounds — any estimate undercounts by at most this.
    pub fn max_undercount(&self) -> u64 {
        self.decrements
    }
}

impl StreamSummary for KpsFrequent {
    fn name(&self) -> &'static str {
        "kps-frequent"
    }

    fn process(&mut self, key: ItemKey) {
        if let Some(c) = self.counters.get_mut(&key) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, 1);
            return;
        }
        // Full and key absent: decrement all, drop zeros. (The arriving
        // item and one unit of every counter "cancel"; the arriving item
        // itself is not stored.)
        self.decrements += 1;
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// The retained (under)count — `None` if the item holds no counter.
    fn estimate(&self, key: ItemKey) -> Option<u64> {
        self.counters.get(&key).copied()
    }

    fn candidates(&self) -> Vec<(ItemKey, u64)> {
        let mut v: Vec<(ItemKey, u64)> = self.counters.iter().map(|(&k, &c)| (k, c)).collect();
        sort_candidates(&mut v);
        v
    }

    fn space_bytes(&self) -> usize {
        self.counters.len() * (std::mem::size_of::<ItemKey>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Stream, Zipf, ZipfStreamKind};

    #[test]
    fn few_distinct_items_counted_exactly() {
        let mut k = KpsFrequent::with_capacity(5);
        k.process_stream(&Stream::from_ids([1, 2, 1, 1, 2, 3]));
        assert_eq!(k.estimate(ItemKey(1)), Some(3));
        assert_eq!(k.estimate(ItemKey(2)), Some(2));
        assert_eq!(k.estimate(ItemKey(3)), Some(1));
        assert_eq!(k.max_undercount(), 0);
    }

    #[test]
    fn majority_item_survives_capacity_one() {
        // capacity 1 is the Boyer–Moore majority vote.
        let mut k = KpsFrequent::with_capacity(1);
        let mut ids = vec![7u64; 60];
        ids.extend(0..40u64);
        let mut rng_ids = ids.clone();
        // Interleave deterministically: alternate heavy / junk.
        rng_ids.sort_by_key(|&v| (v != 7, v));
        let mut stream_ids = Vec::new();
        let mut heavy = 0usize;
        let mut junk = 60usize;
        for i in 0..100 {
            if i % 2 == 0 && heavy < 60 {
                stream_ids.push(7u64);
                heavy += 1;
            } else if junk < 100 {
                stream_ids.push(rng_ids[junk]);
                junk += 1;
            } else {
                stream_ids.push(7u64);
                heavy += 1;
            }
        }
        k.process_stream(&Stream::from_ids(stream_ids));
        assert_eq!(k.candidates()[0].0, ItemKey(7));
    }

    #[test]
    fn guarantee_superset_of_heavy_items() {
        // Every item with n_q > θn must be retained.
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(50_000, 3, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let theta = 0.01;
        let mut k = KpsFrequent::for_threshold(theta);
        k.process_stream(&stream);
        let threshold = (theta * stream.len() as f64) as u64;
        for (&key, &count) in exact.counts() {
            if count > threshold {
                assert!(
                    k.estimate(key).is_some(),
                    "item {key:?} with count {count} > θn = {threshold} lost"
                );
            }
        }
    }

    #[test]
    fn undercount_bounded_by_decrements() {
        let zipf = Zipf::new(500, 0.8);
        let stream = zipf.stream(20_000, 1, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut k = KpsFrequent::with_capacity(100);
        k.process_stream(&stream);
        for (key, est) in k.candidates() {
            let truth = exact.count(key);
            assert!(est <= truth, "KPS must never overcount");
            assert!(
                truth - est <= k.max_undercount(),
                "undercount exceeds decrement bound"
            );
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut k = KpsFrequent::with_capacity(10);
        k.process_stream(&Stream::from_ids(0..10_000));
        assert!(k.live_counters() <= 10);
    }

    #[test]
    fn for_threshold_capacity_formula() {
        assert_eq!(KpsFrequent::for_threshold(0.5).capacity(), 1);
        assert_eq!(KpsFrequent::for_threshold(0.1).capacity(), 9);
        assert_eq!(KpsFrequent::for_threshold(1.0).capacity(), 1);
    }

    #[test]
    fn deterministic_no_seed_needed() {
        let stream = Stream::from_ids((0..5000u64).map(|i| i * i % 997));
        let mut a = KpsFrequent::with_capacity(50);
        let mut b = KpsFrequent::with_capacity(50);
        a.process_stream(&stream);
        b.process_stream(&stream);
        assert_eq!(a.candidates(), b.candidates());
    }

    #[test]
    #[should_panic(expected = "theta must be in (0,1]")]
    fn bad_theta_rejected() {
        KpsFrequent::for_threshold(0.0);
    }

    #[test]
    fn all_distinct_stream_cycles_counters() {
        let mut k = KpsFrequent::with_capacity(3);
        k.process_stream(&Stream::from_ids(0..9));
        // Capacity 3, 9 distinct: repeated fill/decrement; at most 3 live.
        assert!(k.live_counters() <= 3);
    }
}
