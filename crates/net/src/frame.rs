//! The `CSWP` v1 frame protocol: length-prefixed, CRC-guarded frames.
//!
//! Every message on a cs-net connection is one frame:
//!
//! ```text
//! magic    u32  = 0x4353_5750 ("CSWP")
//! version  u32  = 1
//! type     u32  = 1 HELLO | 2 SNAPSHOT | 3 REPORT | 4 ACK | 5 NACK | 6 BYE
//! length   u32  -- payload bytes (bounded by MAX_PAYLOAD)
//! payload  length × u8
//! crc32    u32  -- CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The payload of SNAPSHOT is a complete `CSNP` snapshot and the
//! candidate list inside REPORT is a complete `CSTR` stream — both carry
//! their own trailing checksums, which stay in force. The frame-level
//! CRC exists so that truncation and mid-stream corruption are detected
//! *before* any payload decode runs: a torn or bit-flipped frame is a
//! typed [`NetError`], never a panic and never a silently wrong sketch.
//!
//! Decoding is total and allocation-safe: the length field is validated
//! against [`MAX_PAYLOAD`] and against the bytes actually present before
//! any buffer is sized from it, so a forged length cannot trigger a huge
//! allocation or an out-of-bounds read.

use crate::NetError;
use cs_hash::crc32::crc32;
use std::io::{Read, Write};

/// Frame magic, "CSWP" in the byte order of the sibling `CSNP`/`CSTR`
/// formats.
pub const MAGIC: u32 = 0x4353_5750;
/// Protocol version this implementation speaks.
pub const VERSION: u32 = 1;
/// Hard cap on a frame payload. A site ships one sketch snapshot plus a
/// candidate list — megabytes at most; anything claiming more is a
/// corrupt or hostile length field.
pub const MAX_PAYLOAD: usize = 64 << 20;
/// Fixed frame header size: magic + version + type + length.
pub const HEADER: usize = 16;

const TYPE_HELLO: u32 = 1;
const TYPE_SNAPSHOT: u32 = 2;
const TYPE_REPORT: u32 = 3;
const TYPE_ACK: u32 = 4;
const TYPE_NACK: u32 = 5;
const TYPE_BYE: u32 = 6;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection opener: who is shipping, and the sketch configuration
    /// it was built with (advisory — the coordinator validates the
    /// decoded payloads, not the greeting).
    Hello {
        /// The shipping site's index in `0..sites`.
        site_id: u64,
        /// How many sites the agent believes the deployment has.
        sites: u64,
        /// Sketch depth `t` at the site.
        rows: u64,
        /// Buckets per row `b` at the site.
        buckets: u64,
        /// Hash-function seed at the site.
        seed: u64,
    },
    /// The site's sketch as complete `CSNP` snapshot bytes.
    Snapshot(Vec<u8>),
    /// The rest of the site report: local stream length plus the
    /// candidate keys as complete `CSTR` stream bytes.
    Report {
        /// Occurrences the site's sketch covers.
        local_n: u64,
        /// Candidate keys, `CSTR`-encoded.
        candidates: Vec<u8>,
    },
    /// Coordinator's verdict on a delivered report.
    Ack {
        /// `true` if the report was accepted into the merge; `false` if
        /// the coordinator recorded a permanent exclusion (retrying will
        /// not help — first delivery wins).
        accepted: bool,
    },
    /// Coordinator-side failure the agent should treat as a failed
    /// attempt (frame corruption, protocol violation).
    Nack {
        /// Human-readable reason, for logs.
        reason: String,
    },
    /// Polite close after the final ACK.
    Bye,
}

impl Frame {
    fn type_code(&self) -> u32 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::Snapshot(_) => TYPE_SNAPSHOT,
            Frame::Report { .. } => TYPE_REPORT,
            Frame::Ack { .. } => TYPE_ACK,
            Frame::Nack { .. } => TYPE_NACK,
            Frame::Bye => TYPE_BYE,
        }
    }

    fn payload_bytes(&self) -> Vec<u8> {
        match self {
            Frame::Hello {
                site_id,
                sites,
                rows,
                buckets,
                seed,
            } => {
                let mut p = Vec::with_capacity(40);
                for v in [site_id, sites, rows, buckets, seed] {
                    p.extend_from_slice(&v.to_le_bytes());
                }
                p
            }
            Frame::Snapshot(bytes) => bytes.clone(),
            Frame::Report { local_n, candidates } => {
                let mut p = Vec::with_capacity(8 + candidates.len());
                p.extend_from_slice(&local_n.to_le_bytes());
                p.extend_from_slice(candidates);
                p
            }
            Frame::Ack { accepted } => u32::from(!*accepted).to_le_bytes().to_vec(),
            Frame::Nack { reason } => reason.as_bytes().to_vec(),
            Frame::Bye => Vec::new(),
        }
    }

    fn from_parts(code: u32, payload: &[u8]) -> Result<Self, NetError> {
        let exact = |want: usize| {
            if payload.len() == want {
                Ok(())
            } else {
                Err(NetError::BadPayload(format!(
                    "frame type {code} payload is {} bytes, expected {want}",
                    payload.len()
                )))
            }
        };
        match code {
            TYPE_HELLO => {
                exact(40)?;
                let u = |i: usize| {
                    u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
                };
                Ok(Frame::Hello {
                    site_id: u(0),
                    sites: u(1),
                    rows: u(2),
                    buckets: u(3),
                    seed: u(4),
                })
            }
            TYPE_SNAPSHOT => Ok(Frame::Snapshot(payload.to_vec())),
            TYPE_REPORT => {
                if payload.len() < 8 {
                    return Err(NetError::BadPayload(format!(
                        "REPORT payload is {} bytes, need at least 8",
                        payload.len()
                    )));
                }
                Ok(Frame::Report {
                    local_n: u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")),
                    candidates: payload[8..].to_vec(),
                })
            }
            TYPE_ACK => {
                exact(4)?;
                match u32::from_le_bytes(payload.try_into().expect("4 bytes")) {
                    0 => Ok(Frame::Ack { accepted: true }),
                    1 => Ok(Frame::Ack { accepted: false }),
                    other => Err(NetError::BadPayload(format!("unknown ACK status {other}"))),
                }
            }
            TYPE_NACK => match std::str::from_utf8(payload) {
                Ok(reason) => Ok(Frame::Nack {
                    reason: reason.to_string(),
                }),
                Err(e) => Err(NetError::BadPayload(format!("NACK reason not UTF-8: {e}"))),
            },
            TYPE_BYE => {
                exact(0)?;
                Ok(Frame::Bye)
            }
            other => Err(NetError::BadFrameType(other)),
        }
    }
}

/// Encodes a frame to its complete wire bytes (header, payload, CRC).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = frame.payload_bytes();
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "frame payload exceeds MAX_PAYLOAD"
    );
    let mut buf = Vec::with_capacity(HEADER + payload.len() + 4);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&frame.type_code().to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decodes one frame from the front of `bytes`; returns the frame and
/// how many bytes it consumed.
///
/// Total: every input yields either a frame or a typed [`NetError`] —
/// truncation at any point is [`NetError::Truncated`], any single-bit
/// corruption of a well-formed frame fails the magic/version/length
/// checks or the CRC. No length field is trusted before it is checked
/// against [`MAX_PAYLOAD`] and the bytes actually present.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), NetError> {
    if bytes.len() < HEADER {
        return Err(NetError::Truncated {
            needed: HEADER,
            available: bytes.len(),
        });
    }
    let field = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
    let magic = field(0);
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    let version = field(4);
    if version != VERSION {
        return Err(NetError::BadVersion(version));
    }
    let len = field(12) as usize;
    if len > MAX_PAYLOAD {
        return Err(NetError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let total = HEADER + len + 4;
    if bytes.len() < total {
        return Err(NetError::Truncated {
            needed: total,
            available: bytes.len(),
        });
    }
    let stored = u32::from_le_bytes(bytes[total - 4..total].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..total - 4]);
    if stored != computed {
        return Err(NetError::ChecksumMismatch { stored, computed });
    }
    let frame = Frame::from_parts(field(8), &bytes[HEADER..HEADER + len])?;
    Ok((frame, total))
}

/// Writes one frame to a (socket) writer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), NetError> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes).map_err(NetError::from_io)?;
    w.flush().map_err(NetError::from_io)
}

/// Reads one complete frame from a (socket) reader.
///
/// A clean end-of-stream *at a frame boundary* is [`NetError::Closed`];
/// mid-frame EOF, timeouts and OS errors are [`NetError::Io`]. The
/// header is validated before the payload buffer is allocated, so a
/// corrupt length cannot drive a huge allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, NetError> {
    let mut header = [0u8; HEADER];
    let mut got = 0;
    while got < HEADER {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(NetError::Closed),
            Ok(0) => {
                return Err(NetError::Truncated {
                    needed: HEADER,
                    available: got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::from_io(e)),
        }
    }
    let field = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().expect("4 bytes"));
    let magic = field(0);
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    let version = field(4);
    if version != VERSION {
        return Err(NetError::BadVersion(version));
    }
    let len = field(12) as usize;
    if len > MAX_PAYLOAD {
        return Err(NetError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let mut rest = vec![0u8; len + 4];
    r.read_exact(&mut rest).map_err(NetError::from_io)?;
    let stored =
        u32::from_le_bytes(rest[len..].try_into().expect("4 bytes"));
    let mut crc_input = Vec::with_capacity(HEADER + len);
    crc_input.extend_from_slice(&header);
    crc_input.extend_from_slice(&rest[..len]);
    let computed = crc32(&crc_input);
    if stored != computed {
        return Err(NetError::ChecksumMismatch { stored, computed });
    }
    Frame::from_parts(field(8), &rest[..len])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                site_id: 2,
                sites: 5,
                rows: 5,
                buckets: 512,
                seed: 99,
            },
            Frame::Snapshot(vec![1, 2, 3, 4, 5, 6, 7]),
            Frame::Snapshot(Vec::new()),
            Frame::Report {
                local_n: 123_456,
                candidates: vec![0xAA; 33],
            },
            Frame::Ack { accepted: true },
            Frame::Ack { accepted: false },
            Frame::Nack {
                reason: "checksum mismatch".into(),
            },
            Frame::Bye,
        ]
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (back, used) = decode_frame(&bytes).unwrap();
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn stream_io_roundtrips_a_conversation() {
        let mut wire = Vec::new();
        for frame in sample_frames() {
            write_frame(&mut wire, &frame).unwrap();
        }
        let mut r = wire.as_slice();
        for frame in sample_frames() {
            assert_eq!(read_frame(&mut r).unwrap(), frame);
        }
        assert!(matches!(read_frame(&mut r), Err(NetError::Closed)));
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        for frame in sample_frames() {
            let clean = encode_frame(&frame);
            for cut in 0..clean.len() {
                match decode_frame(&clean[..cut]) {
                    Err(NetError::Truncated { .. }) => {}
                    other => panic!("truncation to {cut} bytes: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        // Flip every bit of every byte of a representative frame: the
        // decoder must reject each mutation with a typed error. (Length
        // corruptions that claim *more* bytes than present surface as
        // Truncated; everything else as a header check or CRC mismatch.)
        let clean = encode_frame(&Frame::Report {
            local_n: 42,
            candidates: vec![7; 24],
        });
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&corrupt).is_err(),
                    "flip at {byte}:{bit} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn stream_reader_rejects_the_same_corruptions() {
        let clean = encode_frame(&Frame::Snapshot(vec![9; 16]));
        for byte in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[byte] ^= 0x10;
            assert!(
                read_frame(&mut corrupt.as_slice()).is_err(),
                "flip at byte {byte} read successfully"
            );
        }
    }

    #[test]
    fn forged_length_never_allocates() {
        // Claim a 3 GiB payload: rejected from the length check alone.
        let mut bytes = encode_frame(&Frame::Bye);
        bytes[12..16].copy_from_slice(&(3u32 << 30).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(NetError::Oversized { .. })
        ));
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(NetError::Oversized { .. })
        ));
    }

    #[test]
    fn alien_magic_and_version_are_typed() {
        let mut bytes = encode_frame(&Frame::Bye);
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(NetError::BadMagic(_))));
        let mut bytes = encode_frame(&Frame::Bye);
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        // Version check runs before the CRC, so a future-versioned frame
        // is reported as such rather than as generic corruption.
        assert!(matches!(
            decode_frame(&bytes),
            Err(NetError::BadVersion(9))
        ));
    }

    #[test]
    fn unknown_frame_type_is_typed() {
        // Re-seal the CRC so the type check is what fires.
        let mut bytes = encode_frame(&Frame::Bye);
        bytes[8..12].copy_from_slice(&77u32.to_le_bytes());
        let n = bytes.len();
        let crc = cs_hash::crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(NetError::BadFrameType(77))
        ));
    }

    proptest! {
        #[test]
        fn prop_payloads_roundtrip(
            snapshot in prop::collection::vec(any::<u8>(), 0..512),
            candidates in prop::collection::vec(any::<u8>(), 0..256),
            local_n in any::<u64>(),
        ) {
            for frame in [
                Frame::Snapshot(snapshot.clone()),
                Frame::Report { local_n, candidates: candidates.clone() },
            ] {
                let bytes = encode_frame(&frame);
                let (back, used) = decode_frame(&bytes).unwrap();
                prop_assert_eq!(back, frame);
                prop_assert_eq!(used, bytes.len());
            }
        }

        #[test]
        fn prop_arbitrary_bytes_never_panic(
            bytes in prop::collection::vec(any::<u8>(), 0..128),
        ) {
            let _ = decode_frame(&bytes);
            let _ = read_frame(&mut bytes.as_slice());
        }

        #[test]
        fn prop_single_bit_flips_never_decode(
            payload in prop::collection::vec(any::<u8>(), 0..64),
            byte_frac in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let clean = encode_frame(&Frame::Snapshot(payload));
            let byte = ((clean.len() as f64) * byte_frac) as usize % clean.len();
            let mut corrupt = clean.clone();
            corrupt[byte] ^= 1 << bit;
            prop_assert!(decode_frame(&corrupt).is_err());
        }
    }
}
