//! The coordinator server: a threaded accept loop that drives the
//! tick-based [`QuorumCoordinator`] off real sockets.
//!
//! Each accepted connection is handled on its own thread and walks the
//! shipping conversation (`HELLO → SNAPSHOT → REPORT → ACK/NACK`),
//! feeding the coordinator's `deliver_*` methods under a mutex. The
//! accept loop itself is non-blocking and owns logical time: every
//! `tick_ms` of wall clock it advances the coordinator one tick, so
//! straggler/backoff bookkeeping matches the deterministic in-process
//! model. The loop exits when every site is resolved (accepted or
//! excluded) or the deadline tick passes, then finalizes.
//!
//! Every socket carries explicit read/write timeouts; a wedged or
//! half-dead client can stall one handler thread for at most
//! `timeout_ms` before the failure is recorded and the slot retried.

use crate::frame::{read_frame, write_frame, Frame};
use crate::NetError;
use cs_core::distributed::{
    DistributedSketch, ExclusionReason, QuorumCoordinator, QuorumOutcome, RetryPolicy,
};
use cs_core::{CoreError, SketchParams};
use cs_stream::io as stream_io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for a coordinator server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of site agents expected to report.
    pub sites: usize,
    /// Minimum validated reports for a usable merge.
    pub quorum: usize,
    /// Sketch geometry every site must match.
    pub params: SketchParams,
    /// Hash seed every site must match.
    pub seed: u64,
    /// Straggler/backoff policy (in logical ticks).
    pub policy: RetryPolicy,
    /// Wall-clock milliseconds per logical tick.
    pub tick_ms: u64,
    /// Ticks after which collection stops and stragglers are excluded.
    pub deadline_ticks: u64,
    /// Per-connection read/write timeout in milliseconds.
    pub timeout_ms: u64,
}

impl ServeConfig {
    /// A config with 50 ms ticks, a 200-tick (10 s) deadline and 5 s
    /// per-connection timeouts.
    pub fn new(sites: usize, quorum: usize, params: SketchParams, seed: u64) -> Self {
        Self {
            sites,
            quorum,
            params,
            seed,
            policy: RetryPolicy::default(),
            tick_ms: 50,
            deadline_ticks: 200,
            timeout_ms: 5_000,
        }
    }
}

/// A bound coordinator server, ready to [`run`](CoordinatorServer::run).
#[derive(Debug)]
pub struct CoordinatorServer {
    listener: TcpListener,
    coordinator: Arc<Mutex<QuorumCoordinator>>,
    config: ServeConfig,
}

/// Binds a coordinator at `addr`, runs it to completion and returns the
/// merged outcome. Convenience for [`CoordinatorServer::bind`] + `run`.
pub fn serve(addr: impl ToSocketAddrs, config: ServeConfig) -> Result<QuorumOutcome, NetError> {
    CoordinatorServer::bind(addr, config)?.run()
}

impl CoordinatorServer {
    /// Binds the listening socket and validates the quorum config.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> Result<Self, NetError> {
        let coordinator = QuorumCoordinator::new(
            config.sites,
            config.quorum,
            config.params,
            config.seed,
            config.policy,
        )
        .map_err(|e| NetError::Config(e.to_string()))?;
        let listener = TcpListener::bind(addr).map_err(NetError::from_io)?;
        listener.set_nonblocking(true).map_err(NetError::from_io)?;
        Ok(Self {
            listener,
            coordinator: Arc::new(Mutex::new(coordinator)),
            config,
        })
    }

    /// The bound address — use with `"127.0.0.1:0"` binds to learn the
    /// kernel-assigned port.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        self.listener.local_addr().map_err(NetError::from_io)
    }

    /// Runs the accept loop until every site resolves or the deadline
    /// passes, then finalizes the quorum merge.
    pub fn run(self) -> Result<QuorumOutcome, NetError> {
        let started = Instant::now();
        let tick_ms = self.config.tick_ms.max(1);
        let poll = Duration::from_millis(tick_ms.clamp(1, 5));
        let mut handlers = Vec::new();
        loop {
            match self.listener.accept() {
                Ok((sock, _peer)) => {
                    let coordinator = Arc::clone(&self.coordinator);
                    let config = self.config.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(sock, &coordinator, &config);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::from_io(e)),
            }
            // Advance logical time to match the wall clock, one tick at a
            // time so due/backoff bookkeeping never skips a tick.
            let target_tick =
                (started.elapsed().as_millis() as u64 / tick_ms).min(self.config.deadline_ticks);
            let done = {
                let mut coord = self.coordinator.lock().expect("coordinator lock");
                while coord.tick() < target_tick {
                    coord.advance_tick();
                }
                coord.pending_sites().is_empty() || coord.tick() >= self.config.deadline_ticks
            };
            if done {
                break;
            }
        }
        // Stop accepting, then drain handlers; each is bounded by the
        // per-connection timeout so this join cannot hang.
        drop(self.listener);
        for h in handlers {
            let _ = h.join();
        }
        let coordinator = self.coordinator.lock().expect("coordinator lock").clone();
        coordinator.finalize().map_err(|e| match e {
            CoreError::QuorumNotMet {
                validated,
                required,
            } => NetError::QuorumNotMet {
                validated,
                required,
            },
            other => NetError::Config(other.to_string()),
        })
    }
}

/// Walks one connection through the shipping conversation.
///
/// Session failures after HELLO identify the site, so the failure is
/// recorded via `deliver_failed` (feeding the straggler/backoff
/// machinery) and a best-effort NACK tells the agent why.
fn handle_connection(
    sock: TcpStream,
    coordinator: &Mutex<QuorumCoordinator>,
    config: &ServeConfig,
) {
    let timeout = Duration::from_millis(config.timeout_ms.max(1));
    if sock.set_read_timeout(Some(timeout)).is_err()
        || sock.set_write_timeout(Some(timeout)).is_err()
    {
        return;
    }
    sock.set_nodelay(true).ok();
    let mut conn = sock;
    let site = match read_frame(&mut conn) {
        Ok(Frame::Hello { site_id, sites, .. }) => {
            if sites as usize != config.sites || site_id as usize >= config.sites {
                let _ = write_frame(
                    &mut conn,
                    &Frame::Nack {
                        reason: format!(
                            "bad topology: site {site_id} of {sites}, expected {} site(s)",
                            config.sites
                        ),
                    },
                );
                return;
            }
            site_id as usize
        }
        // Anything else (garbage, torn frame, EOF) before HELLO: the
        // site is unidentified, so there is no slot to fail.
        _ => return,
    };
    match session(&mut conn, site, coordinator) {
        Ok(accepted) => {
            let _ = write_frame(&mut conn, &Frame::Ack { accepted });
            // Tolerant read of the closing BYE (or EOF).
            let _ = read_frame(&mut conn);
        }
        Err(err) => {
            let _ = write_frame(
                &mut conn,
                &Frame::Nack {
                    reason: err.to_string(),
                },
            );
            let mut coord = coordinator.lock().expect("coordinator lock");
            let _ = coord.deliver_failed(site);
        }
    }
}

/// Reads SNAPSHOT + REPORT and delivers them; returns whether the site
/// ended up accepted.
fn session(
    conn: &mut TcpStream,
    site: usize,
    coordinator: &Mutex<QuorumCoordinator>,
) -> Result<bool, NetError> {
    let snapshot = match read_frame(conn)? {
        Frame::Snapshot(bytes) => bytes,
        other => {
            return Err(NetError::Protocol(format!(
                "expected SNAPSHOT, got {other:?}"
            )))
        }
    };
    let (local_n, candidate_bytes) = match read_frame(conn)? {
        Frame::Report {
            local_n,
            candidates,
        } => (local_n, candidates),
        other => {
            return Err(NetError::Protocol(format!(
                "expected REPORT, got {other:?}"
            )))
        }
    };
    let candidates = stream_io::decode(&candidate_bytes)
        .map_err(|e| NetError::BadPayload(format!("candidate stream: {e}")))?
        .as_slice()
        .to_vec();
    let mut coord = coordinator.lock().expect("coordinator lock");
    coord
        .deliver_snapshot(site, &snapshot, candidates, local_n)
        .map_err(|e| NetError::Protocol(e.to_string()))?;
    Ok(coord.accepted_sites().contains(&site))
}

/// Renders a merged outcome as the canonical top-k report text.
///
/// This is the byte-identity surface between the wire path and the
/// in-process [`DistributedSketch::coordinate`] path: both render
/// through this function, so `fi serve` output over loopback must equal
/// `fi coordinate` output over the same site files. Exclusions appear
/// as leading `# excluded` comment lines (absent in clean runs).
pub fn render_report(
    sketch: &DistributedSketch,
    k: usize,
    excluded: &[(usize, ExclusionReason)],
) -> String {
    let mut out = format!(
        "# top-{k} of {} occurrences across {} site(s)\n",
        sketch.total_n(),
        sketch.sites()
    );
    for (site, reason) in excluded {
        out.push_str(&format!("# excluded site {site}: {reason}\n"));
    }
    for (key, est) in sketch.top_k(k) {
        out.push_str(&format!("{est:>10}  key {:#018x}\n", key.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{ShipOutcome, SiteAgent};
    use cs_core::distributed::site_report;
    use cs_stream::{LinkFault, Stream};

    const SEED: u64 = 41;

    fn params() -> SketchParams {
        SketchParams::new(3, 64)
    }

    fn fast_config(sites: usize, quorum: usize) -> ServeConfig {
        let mut config = ServeConfig::new(sites, quorum, params(), SEED);
        config.tick_ms = 2;
        config.deadline_ticks = 500;
        config.timeout_ms = 500;
        config
    }

    fn fast_agent(site_id: usize, sites: usize) -> SiteAgent {
        let mut agent = SiteAgent::new(site_id, sites);
        agent.tick_ms = 1;
        agent.timeout_ms = 500;
        agent
    }

    #[test]
    fn loopback_quorum_matches_in_process_coordinate() {
        let streams: Vec<Stream> = vec![
            Stream::from_ids([1, 1, 1, 2, 2, 3]),
            Stream::from_ids([1, 2, 2, 2, 4]),
            Stream::from_ids([3, 3, 1, 5]),
        ];
        let reports: Vec<_> = streams
            .iter()
            .map(|s| site_report(s, 3, params(), SEED))
            .collect();

        let server = CoordinatorServer::bind("127.0.0.1:0", fast_config(3, 3)).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let serve = std::thread::spawn(move || server.run());
        let agents: Vec<_> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let addr = addr.clone();
                let r = r.clone();
                std::thread::spawn(move || fast_agent(i, 3).ship(&addr, &r))
            })
            .collect();
        for a in agents {
            assert_eq!(a.join().unwrap().unwrap(), ShipOutcome::Accepted);
        }
        let outcome = serve.join().unwrap().unwrap();
        assert!(outcome.report.is_complete());

        let direct = DistributedSketch::coordinate(&reports).unwrap();
        assert_eq!(
            render_report(&outcome.sketch, 3, &outcome.report.excluded),
            render_report(&direct, 3, &[]),
            "wire path must be byte-identical to the in-process merge"
        );
    }

    #[test]
    fn bad_topology_is_nacked_and_never_occupies_a_slot() {
        let server = CoordinatorServer::bind("127.0.0.1:0", fast_config(2, 1)).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let serve = std::thread::spawn(move || server.run());

        // An agent claiming a site index outside the topology.
        let report = site_report(&Stream::from_ids([1, 1]), 1, params(), SEED);
        let mut rogue = fast_agent(7, 2);
        rogue.policy.max_attempts = 1;
        assert!(matches!(
            rogue.ship(&addr, &report),
            Err(NetError::Rejected(_))
        ));

        // Legit agents still complete the quorum.
        for i in 0..2 {
            let r = site_report(&Stream::from_ids([10 + i, 10 + i]), 1, params(), SEED);
            assert_eq!(
                fast_agent(i as usize, 2).ship(&addr, &r).unwrap(),
                ShipOutcome::Accepted
            );
        }
        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(outcome.report.included, vec![0, 1]);
    }

    #[test]
    fn corrupting_link_ends_in_a_reported_exclusion() {
        let mut config = fast_config(2, 1);
        config.policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let server = CoordinatorServer::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let serve = std::thread::spawn(move || server.run());

        let good = site_report(&Stream::from_ids([1, 1, 1, 2]), 2, params(), SEED);
        let bad = site_report(&Stream::from_ids([3, 3, 4]), 2, params(), SEED);
        let good_agent = fast_agent(0, 2);
        let mut bad_agent = fast_agent(1, 2);
        // Flip bits from byte 100 on: HELLO (60 bytes on the wire) gets
        // through clean, so the server knows *which* site is corrupting.
        bad_agent.fault = Some(LinkFault::FlipBits { from_byte: 100 });
        bad_agent.policy.max_attempts = 2;

        let addr2 = addr.clone();
        let bad_handle = std::thread::spawn(move || bad_agent.ship(&addr2, &bad));
        assert_eq!(
            good_agent.ship(&addr, &good).unwrap(),
            ShipOutcome::Accepted
        );
        assert!(bad_handle.join().unwrap().is_err());

        let outcome = serve.join().unwrap().unwrap();
        assert_eq!(outcome.report.included, vec![0]);
        assert_eq!(outcome.report.excluded.len(), 1);
        assert_eq!(outcome.report.excluded[0].0, 1);
    }

    #[test]
    fn quorum_not_met_is_a_typed_error() {
        let mut config = fast_config(2, 2);
        config.deadline_ticks = 5;
        let server = CoordinatorServer::bind("127.0.0.1:0", config).unwrap();
        // No agents ever ship: deadline passes, both sites straggle.
        assert!(matches!(
            server.run(),
            Err(NetError::QuorumNotMet {
                validated: 0,
                required: 2
            })
        ));
    }

    #[test]
    fn invalid_quorum_config_fails_at_bind() {
        assert!(matches!(
            CoordinatorServer::bind("127.0.0.1:0", fast_config(2, 3)),
            Err(NetError::Config(_))
        ));
    }
}
