//! A fault-injecting wrapper over any `Read + Write` connection.
//!
//! [`FaultyConn`] interprets a [`cs_stream::LinkFault`] policy against a
//! live connection, so robustness tests exercise the *real* transport
//! code path — the same `write_frame`/`read_frame` calls, the same
//! retry loop — rather than corrupting byte buffers on the side. The
//! corruption is deterministic (seeded [`FaultInjector`]), so a failing
//! scenario reproduces from its seed.
//!
//! Faults apply to the *write* (uplink) side: that is where a site's
//! report travels, and where the paper-level failure model (torn
//! transfers, bit flips in transit, stragglers) bites. Reads pass
//! through untouched.

use cs_stream::{FaultInjector, LinkFault};
use std::io::{self, Read, Write};

/// A `Read + Write` connection that misbehaves per a [`LinkFault`]
/// policy.
#[derive(Debug)]
pub struct FaultyConn<T> {
    inner: T,
    fault: LinkFault,
    injector: FaultInjector,
    written: u64,
}

impl<T> FaultyConn<T> {
    /// Wraps `inner` with the given fault policy; `seed` drives the
    /// deterministic corruption choices (which bit flips).
    pub fn new(inner: T, fault: LinkFault, seed: u64) -> Self {
        Self {
            inner,
            fault,
            injector: FaultInjector::new(seed),
            written: 0,
        }
    }

    /// Bytes successfully written through the faulty link so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner connection.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Read> Read for FaultyConn<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<T: Write> Write for FaultyConn<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = match self.fault {
            LinkFault::CutAfter { bytes } => {
                if self.written >= bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        format!("link cut after {bytes} bytes"),
                    ));
                }
                // Deliver only what fits under the cut, so the peer sees
                // a torn frame — exactly what a killed sender leaves.
                let allow = ((bytes - self.written) as usize).min(buf.len());
                self.inner.write(&buf[..allow])?
            }
            LinkFault::FlipBits { from_byte } => {
                if self.written >= from_byte && !buf.is_empty() {
                    let mut corrupted = buf.to_vec();
                    self.injector.flip_bits(&mut corrupted, 1);
                    self.inner.write(&corrupted)?
                } else {
                    self.inner.write(buf)?
                }
            }
            LinkFault::StallMs { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.inner.write(buf)?
            }
        };
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame, read_frame, write_frame, Frame};

    #[test]
    fn cut_delivers_a_prefix_then_fails() {
        let mut conn = FaultyConn::new(Vec::new(), LinkFault::CutAfter { bytes: 10 }, 1);
        assert!(conn.write_all(&[0xAB; 8]).is_ok());
        // The next write crosses the cut: 2 bytes land, then the link is
        // dead for good.
        assert!(conn.write_all(&[0xCD; 8]).is_err());
        assert!(conn.write_all(&[0xEF; 1]).is_err());
        assert_eq!(conn.written(), 10);
        assert_eq!(conn.into_inner().len(), 10);
    }

    #[test]
    fn cut_frame_is_rejected_as_truncated_by_the_peer() {
        let frame = Frame::Snapshot(vec![5; 100]);
        let mut conn = FaultyConn::new(Vec::new(), LinkFault::CutAfter { bytes: 40 }, 1);
        assert!(write_frame(&mut conn, &frame).is_err());
        let wire = conn.into_inner();
        assert_eq!(wire.len(), 40);
        // The peer's stream reader sees mid-frame EOF, a typed error.
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn flipped_frame_fails_the_frame_crc() {
        let frame = Frame::Snapshot(vec![7; 64]);
        let clean = encode_frame(&frame);
        let mut conn = FaultyConn::new(Vec::new(), LinkFault::FlipBits { from_byte: 0 }, 9);
        write_frame(&mut conn, &frame).unwrap();
        let wire = conn.into_inner();
        assert_eq!(wire.len(), clean.len(), "flip corrupts, never resizes");
        assert_ne!(wire, clean);
        // Whichever byte the flip landed on (header field or payload),
        // the decode fails with a typed error before any payload use.
        assert!(read_frame(&mut wire.as_slice()).is_err());
        assert!(decode_frame(&wire).is_err());
    }

    #[test]
    fn flip_spares_bytes_before_the_offset() {
        let mut conn = FaultyConn::new(Vec::new(), LinkFault::FlipBits { from_byte: 100 }, 3);
        conn.write_all(&[0u8; 50]).unwrap();
        assert_eq!(conn.into_inner(), vec![0u8; 50]);
    }

    #[test]
    fn stall_delays_but_delivers_intact() {
        let frame = Frame::Ack { accepted: true };
        let mut conn = FaultyConn::new(Vec::new(), LinkFault::StallMs { millis: 1 }, 5);
        let t0 = std::time::Instant::now();
        write_frame(&mut conn, &frame).unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(1));
        let wire = conn.into_inner();
        assert_eq!(read_frame(&mut wire.as_slice()).unwrap(), frame);
    }
}
