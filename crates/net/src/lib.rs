//! Wire transport for distributed sketch shipping.
//!
//! Count-Sketch's additivity (paper §3.2) makes the distributed story
//! cheap: each site ships `O(b·t)` counters plus its candidate list,
//! and the coordinator merges by addition. This crate gives that story
//! a real transport:
//!
//! * **CSWP v1** ([`frame`]) — a length-prefixed, CRC-guarded frame
//!   protocol carrying the existing CSNP snapshot and CSTR candidate
//!   payloads. Truncation and corruption are detected at the frame
//!   layer, before any payload decoding.
//! * **Site agents** ([`agent`]) — [`SiteAgent::ship`] delivers a
//!   [`SiteReport`](cs_core::distributed::SiteReport) over TCP with
//!   [`RetryPolicy`](cs_core::distributed::RetryPolicy)-driven
//!   reconnect/backoff wired to real connect/write failures.
//! * **Coordinator server** ([`server`]) — a threaded accept loop
//!   driving the tick-based
//!   [`QuorumCoordinator`](cs_core::distributed::QuorumCoordinator)
//!   off real sockets, finalizing on quorum or deadline.
//! * **Fault-injected links** ([`conn`]) — [`FaultyConn`] wraps any
//!   connection with a [`LinkFault`](cs_stream::LinkFault) policy
//!   (cut, bit-flip, stall) so robustness tests exercise the real
//!   transport path.
//!
//! Std-only: `std::net` + `std::thread`, explicit timeouts everywhere,
//! no unbounded blocking, no external dependencies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod conn;
pub mod frame;
pub mod server;

pub use agent::{ShipOutcome, SiteAgent};
pub use conn::FaultyConn;
pub use frame::{decode_frame, encode_frame, read_frame, write_frame, Frame};
pub use server::{render_report, serve, CoordinatorServer, ServeConfig};

/// Errors from the wire transport.
///
/// Frame-level decode failures are fully typed so tests can assert the
/// *kind* of rejection (truncation vs corruption vs protocol abuse) —
/// a damaged frame must never panic or silently yield a wrong sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Fewer bytes than a complete frame requires.
    Truncated {
        /// Bytes the frame (or header) needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The leading magic was not `CSWP`.
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u32),
    /// Unknown frame type code.
    BadFrameType(u32),
    /// Declared payload length exceeds the protocol ceiling.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// Maximum the protocol accepts.
        max: usize,
    },
    /// Frame CRC-32 mismatch: bytes were corrupted in transit.
    ChecksumMismatch {
        /// CRC stored in the frame trailer.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// Frame type and CRC were fine but the payload is malformed.
    BadPayload(String),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A socket operation failed (connect, read, write, timeout).
    Io(String),
    /// The peer violated the conversation protocol.
    Protocol(String),
    /// The coordinator refused the delivery with a NACK.
    Rejected(String),
    /// Collection finished below the configured quorum.
    QuorumNotMet {
        /// Sites that validated and were merged.
        validated: usize,
        /// Sites required by the configured quorum.
        required: usize,
    },
    /// Invalid server or agent configuration.
    Config(String),
}

impl NetError {
    /// Wraps an I/O error, preserving its rendered message.
    pub fn from_io(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated { needed, available } => {
                write!(f, "truncated frame: need {needed} bytes, have {available}")
            }
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            NetError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            NetError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte ceiling")
            }
            NetError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            NetError::BadPayload(msg) => write!(f, "bad frame payload: {msg}"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::Io(msg) => write!(f, "i/o error: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Rejected(reason) => write!(f, "coordinator rejected delivery: {reason}"),
            NetError::QuorumNotMet {
                validated,
                required,
            } => write!(
                f,
                "quorum not met: {validated} site(s) validated, {required} required"
            ),
            NetError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_diagnostics() {
        let cases: Vec<(NetError, &str)> = vec![
            (
                NetError::Truncated {
                    needed: 16,
                    available: 3,
                },
                "16",
            ),
            (NetError::BadMagic(0xdead_beef), "0xdeadbeef"),
            (NetError::BadVersion(9), "9"),
            (NetError::BadFrameType(77), "77"),
            (
                NetError::Oversized {
                    len: 100,
                    max: 64,
                },
                "ceiling",
            ),
            (
                NetError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (NetError::BadPayload("short".into()), "short"),
            (NetError::Closed, "closed"),
            (NetError::Io("refused".into()), "refused"),
            (NetError::Protocol("bad order".into()), "bad order"),
            (NetError::Rejected("topology".into()), "topology"),
            (
                NetError::QuorumNotMet {
                    validated: 1,
                    required: 3,
                },
                "quorum",
            ),
            (NetError::Config("quorum > sites".into()), "quorum > sites"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn from_io_preserves_the_message() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "nope");
        assert!(matches!(NetError::from_io(io), NetError::Io(m) if m.contains("nope")));
    }
}
