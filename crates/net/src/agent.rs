//! The shipping side: a site agent that delivers its report to the
//! coordinator over TCP, with [`RetryPolicy`]-driven reconnect/backoff.
//!
//! One delivery attempt is the fixed conversation
//! `HELLO → SNAPSHOT → REPORT → (ACK | NACK) → BYE`. Any connect,
//! write, read or NACK failure is one *failed attempt*; the agent then
//! sleeps the policy's backoff (logical ticks × [`SiteAgent::tick_ms`])
//! and reconnects from scratch, until the policy's attempt budget runs
//! out — the same deterministic schedule the coordinator uses to decide
//! when a site becomes a straggler, wired to real socket failures.
//!
//! Every socket operation carries an explicit timeout: connect via
//! [`TcpStream::connect_timeout`], reads and writes via per-socket
//! deadlines. Nothing blocks unboundedly.

use crate::conn::FaultyConn;
use crate::frame::{read_frame, write_frame, Frame};
use crate::NetError;
use cs_core::distributed::{RetryPolicy, SiteReport};
use cs_stream::{io as stream_io, LinkFault, Stream};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How a shipped report was received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipOutcome {
    /// The coordinator validated and merged the report.
    Accepted,
    /// The coordinator received the report but recorded a permanent
    /// exclusion (incompatible configuration, or another delivery for
    /// this site already won). Retrying cannot change this.
    Excluded,
}

/// A site-side shipping agent.
#[derive(Debug, Clone)]
pub struct SiteAgent {
    /// This site's index in `0..sites`.
    pub site_id: usize,
    /// Total sites in the deployment (echoed in HELLO; the coordinator
    /// rejects a mismatched topology before reading payloads).
    pub sites: usize,
    /// Retry schedule for failed delivery attempts.
    pub policy: RetryPolicy,
    /// Wall-clock milliseconds per logical backoff tick.
    pub tick_ms: u64,
    /// Per-socket connect/read/write timeout in milliseconds.
    pub timeout_ms: u64,
    /// Optional link-fault policy: when set, every connection is wrapped
    /// in a [`FaultyConn`] so tests drive the real transport through a
    /// misbehaving link.
    pub fault: Option<LinkFault>,
    /// Seed for the fault injector's deterministic choices.
    pub fault_seed: u64,
}

impl SiteAgent {
    /// An agent with the default retry policy (3 attempts, exponential
    /// backoff), 50 ms ticks and 5 s socket timeouts.
    pub fn new(site_id: usize, sites: usize) -> Self {
        Self {
            site_id,
            sites,
            policy: RetryPolicy::default(),
            tick_ms: 50,
            timeout_ms: 5_000,
            fault: None,
            fault_seed: 1,
        }
    }

    /// Ships `report` to the coordinator at `addr`, retrying per the
    /// agent's [`RetryPolicy`]. Returns how the final successful
    /// delivery was received, or the last attempt's error once the
    /// budget is exhausted.
    pub fn ship(&self, addr: &str, report: &SiteReport) -> Result<ShipOutcome, NetError> {
        let mut attempt: u32 = 0;
        loop {
            match self.try_ship(addr, report) {
                Ok(outcome) => return Ok(outcome),
                Err(err) => match self.policy.backoff_ticks(attempt) {
                    Some(ticks) => {
                        std::thread::sleep(Duration::from_millis(ticks * self.tick_ms));
                        attempt += 1;
                    }
                    None => return Err(err),
                },
            }
        }
    }

    /// One delivery attempt over one fresh connection.
    fn try_ship(&self, addr: &str, report: &SiteReport) -> Result<ShipOutcome, NetError> {
        let timeout = Duration::from_millis(self.timeout_ms.max(1));
        let sock_addr = resolve(addr)?;
        let sock = TcpStream::connect_timeout(&sock_addr, timeout).map_err(NetError::from_io)?;
        sock.set_read_timeout(Some(timeout)).map_err(NetError::from_io)?;
        sock.set_write_timeout(Some(timeout)).map_err(NetError::from_io)?;
        sock.set_nodelay(true).ok();
        match self.fault {
            Some(fault) => {
                let mut conn = FaultyConn::new(sock, fault, self.fault_seed);
                self.converse(&mut conn, report)
            }
            None => {
                let mut conn = sock;
                self.converse(&mut conn, report)
            }
        }
    }

    /// Runs the shipping conversation over an established connection.
    fn converse<C: Read + Write>(
        &self,
        conn: &mut C,
        report: &SiteReport,
    ) -> Result<ShipOutcome, NetError> {
        write_frame(
            conn,
            &Frame::Hello {
                site_id: self.site_id as u64,
                sites: self.sites as u64,
                rows: report.sketch.rows() as u64,
                buckets: report.sketch.buckets() as u64,
                seed: report.sketch.seed(),
            },
        )?;
        write_frame(conn, &Frame::Snapshot(report.sketch.to_snapshot_bytes()))?;
        let candidates = stream_io::encode(&Stream::from_keys(report.candidates.clone()));
        write_frame(
            conn,
            &Frame::Report {
                local_n: report.local_n,
                candidates,
            },
        )?;
        match read_frame(conn)? {
            Frame::Ack { accepted } => {
                // Best-effort polite close; the verdict already landed.
                let _ = write_frame(conn, &Frame::Bye);
                Ok(if accepted {
                    ShipOutcome::Accepted
                } else {
                    ShipOutcome::Excluded
                })
            }
            Frame::Nack { reason } => Err(NetError::Rejected(reason)),
            other => Err(NetError::Protocol(format!(
                "expected ACK or NACK, got {other:?}"
            ))),
        }
    }
}

/// Resolves `addr` to a socket address (required by `connect_timeout`).
fn resolve(addr: &str) -> Result<SocketAddr, NetError> {
    addr.to_socket_addrs()
        .map_err(NetError::from_io)?
        .next()
        .ok_or_else(|| NetError::Io(format!("{addr}: no usable address")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_core::distributed::site_report;
    use cs_core::SketchParams;
    use std::net::TcpListener;

    fn report() -> SiteReport {
        site_report(
            &Stream::from_ids([1, 1, 2]),
            2,
            SketchParams::new(3, 64),
            7,
        )
    }

    #[test]
    fn unreachable_coordinator_exhausts_the_retry_budget() {
        // Bind-then-drop reserves a port with nothing listening.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut agent = SiteAgent::new(0, 1);
        agent.tick_ms = 1;
        agent.timeout_ms = 200;
        let t0 = std::time::Instant::now();
        let err = agent.ship(&format!("127.0.0.1:{port}"), &report());
        assert!(err.is_err(), "{err:?}");
        // Default policy: 3 attempts with backoffs of 1 and 2 ticks.
        assert!(
            t0.elapsed() >= Duration::from_millis(3),
            "backoff must actually sleep"
        );
    }

    #[test]
    fn unresolvable_address_is_a_typed_error() {
        let agent = SiteAgent::new(0, 1);
        assert!(matches!(
            agent.ship("not-an-address", &report()),
            Err(NetError::Io(_))
        ));
    }
}
