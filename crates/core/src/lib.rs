//! # Count-Sketch: finding frequent items in data streams
//!
//! A faithful implementation of Charikar, Chen & Farach-Colton, *"Finding
//! frequent items in data streams"* — the COUNT SKETCH data structure and
//! the three algorithms built on it:
//!
//! * **The sketch itself** ([`sketch::CountSketch`]): a `t × b` array of
//!   signed counters with per-row pairwise-independent bucket hashes
//!   `h_i` and sign hashes `s_i`. `ADD(q)` updates one counter per row by
//!   `±1`; `ESTIMATE(q)` returns the *median* over rows of
//!   `C[i][h_i(q)]·s_i(q)` (§3.2).
//! * **APPROXTOP(S, k, ε)** ([`approx_top`]): one pass, sketch + a k-slot
//!   heap ([`topk::TopKTracker`]); every reported item has
//!   `n_q >= (1-ε)·n_k` and every item with `n_q >= (1+ε)·n_k` is
//!   reported, w.h.p. (Lemma 5), when `b` is sized by
//!   [`params::SketchParams::for_approx_top`].
//! * **CANDIDATETOP(S, k, l)** ([`candidate_top`]): track `l = O(k)`
//!   candidates; an optional second pass recovers exact counts and thus
//!   the true top-k (§4.1).
//! * **Max-change** ([`maxchange`]): the 2-pass §4.2 algorithm over two
//!   streams — the sketch is *additive*, so subtracting `S1` and adding
//!   `S2` sketches the difference vector.
//!
//! Extensions beyond the paper's text, each exercised by the ablation
//! benchmarks: mean and trimmed-mean row combiners ([`median`]), a fast
//! multiply-shift/tabulation hasher configuration
//! ([`sketch::FastCountSketch`]), and parallel sketching via additivity
//! — a long-lived sharded worker pool, a lock-free atomic shared handle,
//! and a deterministic parallel APPROXTOP ([`parallel`]), with the older
//! spawn-per-call fan-out kept in [`concurrent`].
//!
//! ## Quick example
//!
//! ```
//! use cs_core::prelude::*;
//!
//! // A stream where item 7 dominates.
//! let mut sketch = CountSketch::new(SketchParams::new(5, 256), 42);
//! for _ in 0..1000 {
//!     sketch.add(ItemKey(7));
//! }
//! for i in 0..100u64 {
//!     sketch.add(ItemKey(i));
//! }
//! let est = sketch.estimate(ItemKey(7));
//! assert!((est - 1001).abs() <= 50);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx_top;
pub mod builder;
pub mod candidate_top;
pub mod concurrent;
pub mod distributed;
pub mod error;
pub mod hierarchical;
pub mod iceberg;
pub mod ingest;
pub mod maxchange;
pub mod median;
pub mod parallel;
pub mod params;
pub mod query;
pub mod relchange;
pub mod sketch;
pub mod snapshot;
pub mod topk;
pub mod window;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::approx_top::{approx_top, ApproxTopResult};
    pub use crate::builder::CountSketchBuilder;
    pub use crate::candidate_top::{candidate_top_one_pass, candidate_top_two_pass};
    pub use crate::distributed::{
        site_report, DistributedSketch, ExclusionReason, MergeReport, QuorumCoordinator,
        QuorumOutcome, RetryPolicy, SiteReport,
    };
    pub use crate::error::CoreError;
    pub use crate::hierarchical::{HeavyItem, HierarchicalCountSketch};
    pub use crate::iceberg::{iceberg, IcebergProcessor, IcebergResult};
    pub use crate::maxchange::{max_change, MaxChangeResult};
    pub use crate::parallel::{
        parallel_approx_top, sketch_stream_pooled, AtomicCountSketch, ParallelApproxTop,
        SketchPool,
    };
    pub use crate::params::SketchParams;
    pub use crate::query::QueryEngine;
    pub use crate::relchange::{max_relative_change, ChangeObjective, RelChangeSketch};
    pub use crate::sketch::{
        CheckedEstimate, CountSketch, EstimateBatchScratch, EstimateScratch, FastCountSketch,
        GenericCountSketch, SketchHealth,
    };
    pub use crate::snapshot::{
        inspect_snapshot_bytes, read_snapshot_file, write_snapshot_file, SnapshotInfo,
        SnapshotKind,
    };
    pub use crate::topk::TopKTracker;
    pub use crate::window::SlidingSketch;
    pub use cs_hash::ItemKey;
}

pub use error::CoreError;
pub use params::SketchParams;
pub use sketch::{CountSketch, FastCountSketch, GenericCountSketch};
