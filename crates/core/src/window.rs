//! Extension: sliding-window frequent items via epoch sketches.
//!
//! The paper's motivating application is "the most frequent queries
//! handled [by a search engine] in some period of time" (§1), and §4.2
//! already manipulates sketches of *time periods* (two consecutive days).
//! This module pushes that idea to a sliding window: the stream is cut
//! into fixed-size **epochs**, each epoch gets its own Count-Sketch
//! (same seed ⇒ same hash functions), and the window sketch is their
//! running sum. When an epoch leaves the window its sketch is
//! *subtracted* — additivity (§3.2) makes expiry O(t·b), independent of
//! how many occurrences the epoch held.
//!
//! Space: `(window_epochs + 1) · t · b` counters plus an `l`-slot
//! candidate set. The candidate set is refreshed from the window sketch
//! at every epoch boundary, so items whose mass has expired are evicted;
//! between boundaries it is maintained with the §3.2 heap rule.

use crate::params::SketchParams;
use crate::sketch::{CountSketch, EstimateScratch};
use crate::topk::TopKTracker;
use cs_hash::ItemKey;
use std::collections::VecDeque;

/// A sliding-window Count-Sketch with top-k tracking.
///
/// ```
/// use cs_core::window::SlidingSketch;
/// use cs_core::SketchParams;
/// use cs_hash::ItemKey;
///
/// // Window of 2 epochs × 100 occurrences.
/// let mut w = SlidingSketch::new(SketchParams::new(5, 64), 1, 100, 2, 3);
/// for _ in 0..100 {
///     w.observe(ItemKey(1)); // epoch 1: all item 1
/// }
/// for _ in 0..150 {
///     w.observe(ItemKey(2)); // epochs 2-3: item 2
/// }
/// // Epoch 1 expired with the roll into epoch 3.
/// assert_eq!(w.estimate(ItemKey(1)), 0);
/// assert_eq!(w.estimate(ItemKey(2)), 150);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingSketch {
    params: SketchParams,
    seed: u64,
    /// Occurrences per epoch.
    epoch_len: usize,
    /// Window size in epochs (the window covers the current, partial
    /// epoch plus the `window_epochs - 1` most recent complete ones).
    window_epochs: usize,
    /// Completed epochs still inside the window, oldest first.
    completed: VecDeque<CountSketch>,
    /// The in-progress epoch.
    current: CountSketch,
    /// Sum of `completed` + `current` (maintained incrementally).
    window: CountSketch,
    /// Occurrences in the current epoch so far.
    filled: usize,
    /// Candidate tracker over the window.
    tracker: TopKTracker,
    capacity: usize,
    scratch: EstimateScratch,
}

impl SlidingSketch {
    /// Creates a sliding sketch: `window_epochs` epochs of `epoch_len`
    /// occurrences, tracking `k` candidates.
    pub fn new(
        params: SketchParams,
        seed: u64,
        epoch_len: usize,
        window_epochs: usize,
        k: usize,
    ) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        assert!(window_epochs > 0, "window must hold at least one epoch");
        assert!(k > 0, "k must be positive");
        Self {
            params,
            seed,
            epoch_len,
            window_epochs,
            completed: VecDeque::new(),
            current: CountSketch::new(params, seed),
            window: CountSketch::new(params, seed),
            filled: 0,
            tracker: TopKTracker::new(k),
            capacity: k,
            scratch: EstimateScratch::new(),
        }
    }

    /// Number of completed epochs currently in the window.
    pub fn completed_epochs(&self) -> usize {
        self.completed.len()
    }

    /// Occurrences currently covered by the window (current partial
    /// epoch plus completed epochs).
    pub fn window_occurrences(&self) -> usize {
        self.completed.len() * self.epoch_len + self.filled
    }

    /// Feeds one occurrence.
    pub fn observe(&mut self, key: ItemKey) {
        self.current.add(key);
        self.window.add(key);
        self.filled += 1;

        // Maintain the candidate set with the §3.2 heap rule against the
        // window estimate.
        if !self.tracker.increment(key) {
            let est = self.window.estimate_with_scratch(key, &mut self.scratch);
            self.tracker.offer(key, est);
        }

        if self.filled == self.epoch_len {
            self.roll_epoch();
        }
    }

    /// Closes the current epoch and expires the oldest if the window is
    /// over-full.
    fn roll_epoch(&mut self) {
        let finished =
            std::mem::replace(&mut self.current, CountSketch::new(self.params, self.seed));
        self.completed.push_back(finished);
        self.filled = 0;
        if self.completed.len() >= self.window_epochs {
            let expired = self.completed.pop_front().expect("non-empty");
            self.window
                .subtract(&expired)
                .expect("same params and seed by construction");
        }
        // Refresh the candidate set: re-estimate every tracked item
        // against the post-expiry window, dropping items whose mass left.
        let tracked = self.tracker.items_desc();
        let mut fresh = TopKTracker::new(self.capacity);
        for (key, _) in tracked {
            let est = self.window.estimate_with_scratch(key, &mut self.scratch);
            if est > 0 {
                fresh.offer(key, est);
            }
        }
        self.tracker = fresh;
    }

    /// The window estimate of an item's count.
    pub fn estimate(&self, key: ItemKey) -> i64 {
        self.window.estimate(key)
    }

    /// The current top-k candidates `(key, windowed estimate)`,
    /// non-increasing. Estimates are refreshed against the live window.
    pub fn top_k(&self) -> Vec<(ItemKey, i64)> {
        let mut items: Vec<(ItemKey, i64)> = self
            .tracker
            .items_desc()
            .into_iter()
            .map(|(key, _)| (key, self.window.estimate(key)))
            .collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items
    }

    /// Heap + counter bytes held.
    pub fn space_bytes(&self) -> usize {
        let per_sketch = self.window.space_bytes();
        per_sketch * (self.completed.len() + 2) + self.tracker.space_bytes()
    }

    // Snapshot plumbing: the CSNP codec in `crate::snapshot` serializes
    // every field and reassembles via [`WindowParts`], so restore is
    // bit-identical to an uninterrupted run (including saturation flags,
    // which is why the window sum is stored rather than recomputed).

    pub(crate) fn window_sketch(&self) -> &CountSketch {
        &self.window
    }

    pub(crate) fn completed_sketches(&self) -> &VecDeque<CountSketch> {
        &self.completed
    }

    pub(crate) fn current_sketch(&self) -> &CountSketch {
        &self.current
    }

    pub(crate) fn tracker(&self) -> &TopKTracker {
        &self.tracker
    }

    pub(crate) fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    pub(crate) fn window_epochs(&self) -> usize {
        self.window_epochs
    }

    pub(crate) fn filled(&self) -> usize {
        self.filled
    }

    pub(crate) fn tracker_capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn from_parts(parts: WindowParts) -> Self {
        Self {
            params: parts.params,
            seed: parts.seed,
            epoch_len: parts.epoch_len,
            window_epochs: parts.window_epochs,
            completed: parts.completed,
            current: parts.current,
            window: parts.window,
            filled: parts.filled,
            tracker: parts.tracker,
            capacity: parts.capacity,
            scratch: EstimateScratch::new(),
        }
    }
}

/// Restored state for [`SlidingSketch::from_parts`]; every field is
/// validated by the snapshot loader before assembly.
pub(crate) struct WindowParts {
    pub(crate) params: SketchParams,
    pub(crate) seed: u64,
    pub(crate) epoch_len: usize,
    pub(crate) window_epochs: usize,
    pub(crate) completed: VecDeque<CountSketch>,
    pub(crate) current: CountSketch,
    pub(crate) window: CountSketch,
    pub(crate) filled: usize,
    pub(crate) tracker: TopKTracker,
    pub(crate) capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(s: &mut SlidingSketch, key: u64, times: usize) {
        for _ in 0..times {
            s.observe(ItemKey(key));
        }
    }

    #[test]
    fn window_sums_recent_epochs_only() {
        // epoch 100, window 3 epochs: after 5 epochs, only the last 3
        // (incl. partial) remain.
        let mut s = SlidingSketch::new(SketchParams::new(5, 64), 1, 100, 3, 5);
        feed(&mut s, 7, 100); // epoch 1: all item 7 — will expire
        feed(&mut s, 8, 100); // epoch 2
        feed(&mut s, 8, 100); // epoch 3
        feed(&mut s, 8, 100); // epoch 4
        feed(&mut s, 9, 50); // partial epoch 5
                             // Window = epochs {3, 4} + partial: item 7 fully expired.
        assert_eq!(s.estimate(ItemKey(7)), 0);
        assert_eq!(s.estimate(ItemKey(8)), 200);
        assert_eq!(s.estimate(ItemKey(9)), 50);
    }

    #[test]
    fn expired_heavy_item_leaves_top_k() {
        let mut s = SlidingSketch::new(SketchParams::new(5, 256), 2, 1000, 2, 3);
        // Old star: dominates the first epoch.
        feed(&mut s, 1, 1000);
        // New items dominate later epochs.
        for _ in 0..2 {
            feed(&mut s, 2, 600);
            feed(&mut s, 3, 400);
        }
        let top: Vec<u64> = s.top_k().iter().map(|&(k, _)| k.raw()).collect();
        assert!(top.contains(&2));
        assert!(top.contains(&3));
        assert!(
            !top.contains(&1),
            "expired item must leave the top-k: {top:?}"
        );
    }

    #[test]
    fn window_occurrences_tracks_coverage() {
        let mut s = SlidingSketch::new(SketchParams::new(3, 32), 0, 10, 2, 2);
        assert_eq!(s.window_occurrences(), 0);
        feed(&mut s, 1, 25);
        // 2 complete epochs → one expired, one kept (window holds 1
        // complete + partial of 5).
        assert_eq!(s.completed_epochs(), 1);
        assert_eq!(s.window_occurrences(), 15);
    }

    #[test]
    fn window_of_one_epoch_resets_each_epoch() {
        let mut s = SlidingSketch::new(SketchParams::new(3, 32), 4, 10, 1, 2);
        feed(&mut s, 5, 10); // completes epoch → immediately expires
        assert_eq!(s.estimate(ItemKey(5)), 0);
        feed(&mut s, 6, 5);
        assert_eq!(s.estimate(ItemKey(6)), 5);
    }

    #[test]
    fn estimates_match_manual_epoch_arithmetic() {
        // The window sketch must equal sum(completed) + current, which by
        // additivity equals a sketch of just the surviving occurrences.
        let params = SketchParams::new(5, 64);
        let mut s = SlidingSketch::new(params, 9, 50, 2, 3);
        for i in 0..125u64 {
            s.observe(ItemKey(i % 10));
        }
        // 2 complete epochs (one expired), 25 in the partial epoch:
        // surviving occurrences are positions 50..125.
        let mut manual = CountSketch::new(params, 9);
        for i in 50..125u64 {
            manual.add(ItemKey(i % 10));
        }
        for id in 0..10u64 {
            assert_eq!(
                s.estimate(ItemKey(id)),
                manual.estimate(ItemKey(id)),
                "id {id}"
            );
        }
    }

    #[test]
    fn top_k_sorted_desc() {
        let mut s = SlidingSketch::new(SketchParams::new(5, 128), 3, 1000, 4, 4);
        feed(&mut s, 1, 300);
        feed(&mut s, 2, 200);
        feed(&mut s, 3, 100);
        let top = s.top_k();
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(top[0].0, ItemKey(1));
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_rejected() {
        SlidingSketch::new(SketchParams::new(1, 1), 0, 0, 1, 1);
    }

    #[test]
    fn space_scales_with_window_epochs() {
        let small = SlidingSketch::new(SketchParams::new(3, 64), 0, 10, 2, 2);
        let mut large = SlidingSketch::new(SketchParams::new(3, 64), 0, 10, 8, 2);
        for i in 0..60u64 {
            large.observe(ItemKey(i));
        }
        assert!(large.space_bytes() > small.space_bytes());
    }
}
