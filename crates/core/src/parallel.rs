//! Multi-core sharded ingestion: worker pool, lock-free atomic sketch,
//! and a deterministic parallel APPROXTOP.
//!
//! §3.2's additivity (sketches built with the same hash functions merge
//! by counter addition) is a parallelization license: partition the
//! stream, sketch the shards independently with the same `(params,
//! seed)`, and add. This module turns that license into a long-lived
//! pipeline — [`SketchPool`] — rather than the spawn-per-call fan-out in
//! [`crate::concurrent`], plus a lock-free shared handle
//! ([`AtomicCountSketch`]) and a sharded top-k pipeline
//! ([`ParallelApproxTop`]).
//!
//! ## Sharding
//!
//! Streams are partitioned **by key hash** ([`cs_hash::shard_of`]), not
//! by position: every occurrence of a key lands on one worker, in stream
//! order. Two consequences:
//!
//! * per-worker top-k candidate sets are disjoint, so the parallel
//!   APPROXTOP merge never has to reconcile two partial counts of the
//!   same item, and
//! * each worker's sketch sees a key's updates as a contiguous
//!   subsequence, so per-key sequential semantics (e.g. single-key
//!   saturation) are preserved exactly.
//!
//! ## Determinism contract
//!
//! The guarantees are layered, strongest first:
//!
//! 1. **Healthy regime** — if the stream's total absolute mass `Σ|w|`
//!    fits in `i64` (no counter can clamp on any path), the pool-merged
//!    sketch is **bit-identical** to the sequential sketch — counters
//!    *and* (all-zero) saturation flags — at every worker count. All
//!    tier-1 workloads live here.
//! 2. **Single-key saturation** — a key whose own mass overflows still
//!    behaves bit-identically to sequential at any worker count: all its
//!    occurrences are on one worker (key sharding), and merging with the
//!    other workers' disjoint-key sketches reproduces the sequential
//!    clamp-and-flag cell states.
//! 3. **General saturating streams** — exact bit-identity to the
//!    *stream-order* sequential run is impossible for any sharding: a
//!    cell that clamps under one interleaving of ±`i64::MAX` updates
//!    holds a different value under another (clamping is not
//!    associative). What is guaranteed — and property-tested — is that
//!    every **unflagged cell holds the exact signed sum** of its
//!    updates (no silent wraparound, same invariant as the scalar
//!    two-tier path), and that the result is a pure function of
//!    `(stream, params, seed, worker count)` — reruns are reproducible.
//!
//! [`ParallelApproxTop`] resolves the candidate union against the merged
//! sketch, so its reported estimates are thread-count-invariant whenever
//! the candidate sets agree (w.h.p. under the paper's Lemma 5
//! dimensioning; exact determinism per fixed worker count always).

use crate::approx_top::{ApproxTopProcessor, ApproxTopResult};
use crate::ingest::IngestLanes;
use crate::median::combine;
use crate::params::SketchParams;
use crate::sketch::CountSketch;
use cs_hash::{shard_of, ItemKey};
use cs_stream::turnstile::Update;
use cs_stream::{Stream, TurnstileStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Keys buffered per shard before a job is sent to the worker. Always a
/// multiple of [`crate::ingest::BLOCK`], and jobs are emitted **exactly
/// at** this length, so the job (and hence block) boundaries each worker
/// sees are a pure function of the stream content — never of how callers
/// happened to slice their `ingest` calls.
const FLUSH_LEN: usize = 1024;

/// Bounded depth of each worker's job channel: enough to keep a worker
/// busy while the router fills the next buffer, small enough to
/// backpressure the router instead of ballooning memory.
const CHANNEL_DEPTH: usize = 2;

/// A job routed to one pool worker. Per-shard channels are FIFO, so a
/// worker applies its jobs in routing order.
enum Job {
    /// `weight` occurrences of each key, in stream order.
    Weighted(Vec<ItemKey>, i64),
    /// Signed turnstile updates, in stream order.
    Turnstile(Vec<Update>),
}

/// A long-lived pool of sketch workers fed by bounded channels.
///
/// Each worker owns a private [`CountSketch`] built from the same
/// `(params, seed)` and ingests its key-hash shard through the block
/// engine ([`crate::ingest`]). [`SketchPool::finish`] joins the workers
/// and merges additively; see the module docs for the exact determinism
/// contract.
///
/// ```
/// use cs_core::parallel::SketchPool;
/// use cs_core::{CountSketch, SketchParams};
/// use cs_stream::Stream;
///
/// let params = SketchParams::new(5, 256);
/// let stream = Stream::from_ids((0..10_000).map(|i| i % 97));
/// let mut pool = SketchPool::new(params, 42, 4);
/// pool.ingest_stream(&stream);
/// let mut sequential = CountSketch::new(params, 42);
/// sequential.absorb(&stream, 1);
/// assert_eq!(pool.finish().counters(), sequential.counters());
/// ```
pub struct SketchPool {
    senders: Vec<SyncSender<Job>>,
    handles: Vec<JoinHandle<CountSketch>>,
    keys: Vec<Vec<ItemKey>>,
    weight: i64,
    updates: Vec<Vec<Update>>,
}

impl SketchPool {
    /// Spawns `workers` sketch workers, each with a private
    /// `CountSketch::new(params, seed)`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(params: SketchParams, seed: u64, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx): (SyncSender<Job>, Receiver<Job>) = sync_channel(CHANNEL_DEPTH);
            let handle = std::thread::Builder::new()
                .name(format!("cs-pool-{w}"))
                .spawn(move || {
                    let mut sketch = CountSketch::new(params, seed);
                    let mut lanes = IngestLanes::new();
                    while let Ok(job) = rx.recv() {
                        match job {
                            Job::Weighted(keys, weight) => {
                                sketch.update_batch_weighted_with_lanes(&keys, weight, &mut lanes);
                            }
                            Job::Turnstile(updates) => {
                                for u in &updates {
                                    sketch.update(u.key, u.delta);
                                }
                            }
                        }
                    }
                    sketch
                })
                .expect("failed to spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            keys: vec![Vec::new(); workers],
            weight: 1,
            updates: vec![Vec::new(); workers],
        }
    }

    /// The number of workers (= shards).
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Routes unit-weight occurrences to their shards.
    pub fn ingest(&mut self, keys: &[ItemKey]) {
        self.ingest_weighted(keys, 1);
    }

    /// Routes a whole stream of unit-weight occurrences.
    pub fn ingest_stream(&mut self, stream: &Stream) {
        self.ingest(stream.as_slice());
    }

    /// Routes `weight` occurrences of each key to its shard.
    pub fn ingest_weighted(&mut self, keys: &[ItemKey], weight: i64) {
        if weight != self.weight {
            // Pending keys carry the previous weight: flush before
            // retagging the buffers.
            for shard in 0..self.workers() {
                self.flush_keys(shard);
            }
            self.weight = weight;
        }
        for &key in keys {
            let shard = shard_of(key, self.workers());
            // Per-shard FIFO across job kinds: turnstile updates buffered
            // for this shard precede these keys in stream order.
            self.flush_updates(shard);
            self.keys[shard].push(key);
            if self.keys[shard].len() == FLUSH_LEN {
                self.flush_keys(shard);
            }
        }
    }

    /// Routes signed turnstile updates to their shards.
    pub fn ingest_updates(&mut self, updates: &[Update]) {
        for &u in updates {
            let shard = shard_of(u.key, self.workers());
            self.flush_keys(shard);
            self.updates[shard].push(u);
            if self.updates[shard].len() == FLUSH_LEN {
                self.flush_updates(shard);
            }
        }
    }

    /// Routes a whole turnstile stream.
    pub fn ingest_turnstile(&mut self, stream: &TurnstileStream) {
        let updates: Vec<Update> = stream.iter().collect();
        self.ingest_updates(&updates);
    }

    fn flush_keys(&mut self, shard: usize) {
        if !self.keys[shard].is_empty() {
            let batch = std::mem::take(&mut self.keys[shard]);
            self.senders[shard]
                .send(Job::Weighted(batch, self.weight))
                .expect("pool worker hung up");
        }
    }

    fn flush_updates(&mut self, shard: usize) {
        if !self.updates[shard].is_empty() {
            let batch = std::mem::take(&mut self.updates[shard]);
            self.senders[shard]
                .send(Job::Turnstile(batch))
                .expect("pool worker hung up");
        }
    }

    /// Flushes the routing buffers, joins the workers, and merges their
    /// sketches additively (strict [`CountSketch::merge`]; falls back to
    /// [`CountSketch::merge_saturating`] only if the combined mass
    /// overflows a cell, which clamps and flags it exactly like the
    /// scalar slow tier would).
    pub fn finish(mut self) -> CountSketch {
        for shard in 0..self.workers() {
            self.flush_keys(shard);
            self.flush_updates(shard);
        }
        // Closing the channels is each worker's shutdown signal.
        drop(std::mem::take(&mut self.senders));
        let mut partials: Vec<CountSketch> = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("pool worker panicked"))
            .collect();
        let mut merged = partials.remove(0);
        for p in &partials {
            if merged.merge(p).is_err() {
                merged
                    .merge_saturating(p)
                    .expect("pool sketches share params and seed");
            }
        }
        merged
    }
}

/// One-shot pooled sketching: routes `stream` through a fresh
/// [`SketchPool`] and returns the merged sketch.
pub fn sketch_stream_pooled(
    stream: &Stream,
    params: SketchParams,
    seed: u64,
    workers: usize,
) -> CountSketch {
    let mut pool = SketchPool::new(params, seed, workers);
    pool.ingest_stream(stream);
    pool.finish()
}

/// A sharded APPROXTOP pipeline: each worker runs a private
/// [`ApproxTopProcessor`] (sketch + k-slot heap) over its key-hash
/// shard; [`ParallelApproxTop::finish`] merges the sketches, unions the
/// per-shard candidates (disjoint by construction), and resolves the
/// union by re-estimating every candidate against the merged sketch.
///
/// The reported list is the top `k` candidates by merged-sketch
/// estimate (ties broken toward smaller keys), so for a fixed worker
/// count the result is a pure function of `(stream, params, k, seed)`.
/// With one worker this *is* the sequential reference: the same sketch,
/// the same candidate set, the same resolution. Across worker counts the
/// candidate unions may differ, but whenever each true top-k item is
/// tracked by its shard (the Lemma 5 regime) the resolved list is
/// identical at every worker count — which the tests assert on planted
/// heavy-hitter streams.
pub struct ParallelApproxTop {
    senders: Vec<SyncSender<Vec<ItemKey>>>,
    handles: Vec<JoinHandle<ApproxTopProcessor>>,
    pending: Vec<Vec<ItemKey>>,
    k: usize,
}

impl ParallelApproxTop {
    /// Spawns `workers` APPROXTOP workers, each with a private
    /// `ApproxTopProcessor::new(params, k, seed)`.
    ///
    /// # Panics
    /// Panics if `workers == 0` (or `k == 0`, via the tracker).
    pub fn new(params: SketchParams, k: usize, seed: u64, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx): (SyncSender<Vec<ItemKey>>, Receiver<Vec<ItemKey>>) =
                sync_channel(CHANNEL_DEPTH);
            let handle = std::thread::Builder::new()
                .name(format!("cs-top-{w}"))
                .spawn(move || {
                    let mut proc = ApproxTopProcessor::new(params, k, seed);
                    while let Ok(keys) = rx.recv() {
                        proc.observe_batch(&keys);
                    }
                    proc
                })
                .expect("failed to spawn approx-top worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            pending: vec![Vec::new(); workers],
            k,
        }
    }

    /// The number of workers (= shards).
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Routes occurrences to their shard workers. Deliveries happen at
    /// fixed `FLUSH_LEN` boundaries, so worker state never depends on
    /// how callers slice their `ingest` calls.
    pub fn ingest(&mut self, keys: &[ItemKey]) {
        for &key in keys {
            let shard = shard_of(key, self.workers());
            self.pending[shard].push(key);
            if self.pending[shard].len() == FLUSH_LEN {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.senders[shard]
                    .send(batch)
                    .expect("approx-top worker hung up");
            }
        }
    }

    /// Routes a whole stream.
    pub fn ingest_stream(&mut self, stream: &Stream) {
        self.ingest(stream.as_slice());
    }

    /// Finishes the run and also returns the merged sketch (the CLI uses
    /// it for snapshots; tests use it to check bit-identity with the
    /// sequential sketch).
    pub fn finish_with_sketch(mut self) -> (ApproxTopResult, CountSketch) {
        for shard in 0..self.workers() {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.senders[shard]
                    .send(batch)
                    .expect("approx-top worker hung up");
            }
        }
        drop(std::mem::take(&mut self.senders));
        let parts: Vec<_> = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("approx-top worker panicked").into_parts())
            .collect();
        // True run footprint: every worker's sketch and heap existed at
        // once, so the space bound is the sum, not the merged size.
        let space_bytes: usize = parts
            .iter()
            .map(|(s, t, _)| s.space_bytes() + t.space_bytes())
            .sum();
        let mut parts = parts.into_iter();
        let (mut merged, tracker, _) = parts.next().expect("at least one worker");
        let mut candidates: Vec<ItemKey> =
            tracker.items_desc().into_iter().map(|(k, _)| k).collect();
        for (sketch, tracker, _) in parts {
            if merged.merge(&sketch).is_err() {
                merged
                    .merge_saturating(&sketch)
                    .expect("worker sketches share params and seed");
            }
            candidates.extend(tracker.items_desc().into_iter().map(|(k, _)| k));
        }
        // Shards are key-disjoint, but dedup defensively and sort so the
        // resolution order is canonical.
        candidates.sort_unstable();
        candidates.dedup();
        // Re-estimate the whole candidate union through the batched
        // read kernel — one row-major sweep instead of per-key strides.
        let estimates = merged.estimate_batch(&candidates);
        let mut items: Vec<(ItemKey, i64)> = candidates.into_iter().zip(estimates).collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(self.k);
        (
            ApproxTopResult { items, space_bytes },
            merged,
        )
    }

    /// Finishes the run: merge, union, re-estimate, report top `k`.
    pub fn finish(self) -> ApproxTopResult {
        self.finish_with_sketch().0
    }
}

/// One-shot parallel APPROXTOP over a stream.
pub fn parallel_approx_top(
    stream: &Stream,
    k: usize,
    params: SketchParams,
    seed: u64,
    workers: usize,
) -> ApproxTopResult {
    let mut top = ParallelApproxTop::new(params, k, seed, workers);
    top.ingest_stream(stream);
    top.finish()
}

/// A lock-free shared Count-Sketch handle.
///
/// The hot path is a relaxed [`AtomicI64::fetch_add`] per row — no
/// mutexes, no CAS loops — guarded by the same headroom-watermark idea
/// as the scalar two-tier path ([`CountSketch::update`]): a global
/// `Σ|w|` reservation counter proves, before any cell is touched, that
/// the additions cannot wrap. Once the watermark is exhausted, updates
/// divert to a lazily allocated mutex-guarded **overflow sketch** whose
/// `i128` clamp-and-flag mirrors the scalar slow tier; the atomic cells
/// themselves are then never written past the proof, so they can never
/// silently wrap even while other threads are mid-`fetch_add`.
///
/// [`AtomicCountSketch::snapshot`] folds the overflow tier back in with
/// [`CountSketch::merge_saturating`] and restores the mass-floor
/// invariant, so a snapshot's [`CountSketch::health`] faithfully reports
/// any clamping — unlike the legacy striped
/// [`crate::concurrent::SharedCountSketch`] this type replaces on the
/// hot path.
///
/// Concurrent-read caveat (same as the striped variant): `estimate` and
/// `snapshot` taken *during* concurrent writes are not an atomic cut
/// across cells; quiescent snapshots are exact.
#[derive(Debug, Clone)]
pub struct AtomicCountSketch {
    inner: Arc<AtomicInner>,
}

#[derive(Debug)]
struct AtomicInner {
    /// Read-only template holding the hash functions (never updated).
    template: CountSketch,
    /// Row-major counter cells, same layout as the scalar sketch.
    cells: Vec<AtomicI64>,
    /// Total `Σ|w|` reserved by fast-path updates — the headroom
    /// watermark. A fast-path update first reserves its mass here and
    /// proceeds only if the running total still fits `i64`, which proves
    /// no cell can wrap.
    mass_reserved: AtomicU64,
    /// Whether any update has been diverted to the overflow tier.
    overflowed: AtomicBool,
    /// The slow tier: a scalar two-tier sketch absorbing every update
    /// the watermark refused. Lazily allocated — the common all-fast
    /// case never pays for it.
    overflow: Mutex<Option<Box<CountSketch>>>,
}

impl AtomicCountSketch {
    /// Creates an empty atomic sketch.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        let template = CountSketch::new(params, seed);
        let cells = (0..template.rows() * template.buckets())
            .map(|_| AtomicI64::new(0))
            .collect();
        Self {
            inner: Arc::new(AtomicInner {
                template,
                cells,
                mass_reserved: AtomicU64::new(0),
                overflowed: AtomicBool::new(false),
                overflow: Mutex::new(None),
            }),
        }
    }

    /// Adds one occurrence (lock-free unless the watermark is exhausted).
    pub fn add(&self, key: ItemKey) {
        self.update(key, 1);
    }

    /// Turnstile update (lock-free unless the watermark is exhausted).
    pub fn update(&self, key: ItemKey, weight: i64) {
        let inner = &*self.inner;
        let amount = weight.unsigned_abs();
        // Reserve this update's mass. `fetch_update` serializes the
        // reservations, so at most `i64::MAX` total absolute mass is ever
        // granted to the fast path — the per-cell no-wrap proof.
        let prev = inner
            .mass_reserved
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |m| {
                Some(m.saturating_add(amount))
            })
            .expect("reservation closure is total");
        if prev.saturating_add(amount) <= i64::MAX as u64 {
            // Fast tier: |weight| ≤ i64::MAX here, so `sign * weight` is
            // exact, and the granted-mass bound keeps every cell's
            // partial sum inside i64 regardless of thread interleaving.
            let buckets = inner.template.buckets();
            for (i, (bucket, sign)) in inner.template.row_cells(key).enumerate() {
                inner.cells[i * buckets + bucket].fetch_add(sign * weight, Ordering::Relaxed);
            }
        } else {
            // Slow tier: never touch the atomic cells past the proof —
            // divert to the scalar overflow sketch, whose own two-tier
            // path clamps and flags exactly.
            let mut guard = inner.overflow.lock().expect("overflow lock poisoned");
            guard
                .get_or_insert_with(|| Box::new(inner.template.clone()))
                .update(key, weight);
            inner.overflowed.store(true, Ordering::Release);
        }
    }

    /// Estimates a count: the combiner over per-row probes of the atomic
    /// cells (plus the overflow tier when present).
    pub fn estimate(&self, key: ItemKey) -> i64 {
        let inner = &*self.inner;
        let guard = if inner.overflowed.load(Ordering::Acquire) {
            Some(inner.overflow.lock().expect("overflow lock poisoned"))
        } else {
            None
        };
        let side = guard.as_ref().and_then(|g| g.as_deref());
        let buckets = inner.template.buckets();
        let mut rows = Vec::with_capacity(inner.template.rows());
        for (i, (bucket, sign)) in inner.template.row_cells(key).enumerate() {
            let idx = i * buckets + bucket;
            let mut c = inner.cells[idx].load(Ordering::Relaxed);
            if let Some(side) = side {
                c = c.saturating_add(side.counters()[idx]);
            }
            rows.push(sign.saturating_mul(c));
        }
        let mut scratch = Vec::with_capacity(rows.len());
        combine(inner.template.combiner(), &rows, &mut scratch)
    }

    /// Freezes into a plain sketch: copies the atomic cells, restores
    /// the mass-floor invariant, and folds in the overflow tier
    /// (clamping and flagging any cell the combined mass pushes past the
    /// `i64` limits, so [`CountSketch::health`] reflects the truth).
    pub fn snapshot(&self) -> CountSketch {
        let inner = &*self.inner;
        let mut s = inner.template.clone();
        for (dst, cell) in s.counters_mut().iter_mut().zip(&inner.cells) {
            *dst = cell.load(Ordering::Relaxed);
        }
        // Counters were filled behind the sketch's back: re-establish
        // `|counter| ≤ abs_mass` before the merge below relies on it.
        s.refresh_mass_floor();
        if inner.overflowed.load(Ordering::Acquire) {
            let guard = inner.overflow.lock().expect("overflow lock poisoned");
            if let Some(side) = guard.as_deref() {
                s.merge_saturating(side)
                    .expect("overflow sketch shares params and seed");
            }
        }
        s
    }

    /// Heap bytes of the atomic cells plus the template (and overflow
    /// tier when allocated).
    pub fn space_bytes(&self) -> usize {
        let inner = &*self.inner;
        let mut bytes =
            inner.template.space_bytes() + inner.cells.len() * std::mem::size_of::<AtomicI64>();
        if let Some(side) = inner
            .overflow
            .lock()
            .expect("overflow lock poisoned")
            .as_deref()
        {
            bytes += side.space_bytes();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{Zipf, ZipfStreamKind};

    fn zipf_stream(n: usize, seed: u64) -> Stream {
        Zipf::new(300, 1.1).stream(n, seed, ZipfStreamKind::Sampled)
    }

    /// Counters and saturation flags must both agree.
    fn assert_sketch_identical(a: &CountSketch, b: &CountSketch, ctx: &str) {
        assert_eq!(a.counters(), b.counters(), "{ctx}: counters diverge");
        for row in 0..a.rows() {
            for bucket in 0..a.buckets() {
                assert_eq!(
                    a.is_cell_saturated(row, bucket),
                    b.is_cell_saturated(row, bucket),
                    "{ctx}: saturation flag diverges at ({row}, {bucket})"
                );
            }
        }
    }

    #[test]
    fn pool_matches_sequential_across_worker_counts() {
        let stream = zipf_stream(30_000, 4);
        let params = SketchParams::new(5, 256);
        let mut sequential = CountSketch::new(params, 9);
        sequential.absorb(&stream, 1);
        for workers in [1, 2, 4, 8] {
            let pooled = sketch_stream_pooled(&stream, params, 9, workers);
            assert_sketch_identical(&pooled, &sequential, &format!("workers = {workers}"));
        }
    }

    #[test]
    fn pool_weighted_matches_sequential() {
        let stream = zipf_stream(10_000, 6);
        let params = SketchParams::new(5, 128);
        let mut sequential = CountSketch::new(params, 3);
        sequential.absorb(&stream, 7);
        sequential.absorb(&stream, -2);
        for workers in [1, 2, 4, 8] {
            let mut pool = SketchPool::new(params, 3, workers);
            pool.ingest_weighted(stream.as_slice(), 7);
            pool.ingest_weighted(stream.as_slice(), -2);
            assert_sketch_identical(
                &pool.finish(),
                &sequential,
                &format!("weighted, workers = {workers}"),
            );
        }
    }

    #[test]
    fn pool_turnstile_matches_sequential() {
        let base = zipf_stream(8_000, 12);
        let turnstile = TurnstileStream::difference(&zipf_stream(4_000, 13), &base);
        let params = SketchParams::new(5, 128);
        let mut sequential = CountSketch::new(params, 21);
        sequential.absorb_turnstile(&turnstile);
        for workers in [1, 2, 4, 8] {
            let mut pool = SketchPool::new(params, 21, workers);
            pool.ingest_turnstile(&turnstile);
            assert_sketch_identical(
                &pool.finish(),
                &sequential,
                &format!("turnstile, workers = {workers}"),
            );
        }
    }

    #[test]
    fn pool_mixed_job_kinds_keep_per_shard_order() {
        // Interleave weighted and turnstile ingestion; per-shard FIFO
        // must preserve the relative order so the sums stay exact.
        let a = zipf_stream(3_000, 1);
        let b = TurnstileStream::difference(&zipf_stream(3_000, 2), &Stream::new());
        let c = zipf_stream(3_000, 3);
        let params = SketchParams::new(5, 128);
        let mut sequential = CountSketch::new(params, 5);
        sequential.absorb(&a, 2);
        sequential.absorb_turnstile(&b);
        sequential.absorb(&c, 1);
        for workers in [1, 3, 4] {
            let mut pool = SketchPool::new(params, 5, workers);
            pool.ingest_weighted(a.as_slice(), 2);
            pool.ingest_turnstile(&b);
            pool.ingest(c.as_slice());
            assert_sketch_identical(
                &pool.finish(),
                &sequential,
                &format!("mixed, workers = {workers}"),
            );
        }
    }

    #[test]
    fn pool_call_slicing_does_not_matter() {
        // Ragged ingest calls vs one call: FLUSH_LEN buffering makes the
        // delivered job boundaries identical.
        let stream = zipf_stream(10_000, 8);
        let keys = stream.as_slice();
        let params = SketchParams::new(5, 128);
        let mut one_call = SketchPool::new(params, 2, 4);
        one_call.ingest(keys);
        let mut ragged = SketchPool::new(params, 2, 4);
        let mut at = 0usize;
        for len in [1, 31, 1000, 1024, 2500] {
            ragged.ingest(&keys[at..at + len]);
            at += len;
        }
        ragged.ingest(&keys[at..]);
        assert_sketch_identical(&ragged.finish(), &one_call.finish(), "ragged slicing");
    }

    #[test]
    fn pool_single_key_saturation_is_bit_identical() {
        // All of one key's mass lands on one worker, so even a clamping
        // key reproduces the sequential cell states at any worker count.
        let key = ItemKey(77);
        let params = SketchParams::new(3, 32);
        let mut sequential = CountSketch::new(params, 1);
        for _ in 0..3 {
            sequential.update(key, i64::MAX);
        }
        #[cfg(feature = "saturation-tracking")]
        assert!(sequential.health().saturated_cells > 0);
        for workers in [1, 2, 4, 8] {
            let mut pool = SketchPool::new(params, 1, workers);
            for _ in 0..3 {
                pool.ingest_weighted(&[key], i64::MAX);
            }
            assert_sketch_identical(
                &pool.finish(),
                &sequential,
                &format!("saturating key, workers = {workers}"),
            );
        }
    }

    #[test]
    fn pool_empty_stream() {
        let params = SketchParams::new(3, 16);
        let pool = SketchPool::new(params, 0, 4);
        let merged = pool.finish();
        assert!(merged.counters().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn pool_zero_workers_rejected() {
        SketchPool::new(SketchParams::new(1, 1), 0, 0);
    }

    #[test]
    fn parallel_approx_top_deterministic_across_worker_counts() {
        // Planted heavy hitters, well-separated counts: every shard
        // tracks its heavies, so the resolved list is identical at every
        // worker count (and equals the 1-worker sequential reference).
        let zipf = Zipf::new(1000, 1.2);
        let stream = zipf.stream(50_000, 5, ZipfStreamKind::DeterministicRounded);
        let params = SketchParams::new(7, 1024);
        let reference = parallel_approx_top(&stream, 10, params, 42, 1);
        assert_eq!(reference.items.len(), 10);
        assert!(reference.keys().contains(&ItemKey(0)));
        for workers in [2, 4, 8] {
            let got = parallel_approx_top(&stream, 10, params, 42, workers);
            assert_eq!(got.items, reference.items, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_approx_top_sketch_matches_sequential() {
        let stream = zipf_stream(20_000, 17);
        let params = SketchParams::new(5, 512);
        let mut sequential = CountSketch::new(params, 11);
        sequential.absorb(&stream, 1);
        for workers in [1, 2, 4] {
            let mut top = ParallelApproxTop::new(params, 8, 11, workers);
            top.ingest_stream(&stream);
            let (_, sketch) = top.finish_with_sketch();
            assert_sketch_identical(&sketch, &sequential, &format!("workers = {workers}"));
        }
    }

    #[test]
    fn parallel_approx_top_space_sums_workers() {
        let stream = zipf_stream(5_000, 9);
        let params = SketchParams::new(5, 128);
        let one = parallel_approx_top(&stream, 5, params, 2, 1);
        let four = parallel_approx_top(&stream, 5, params, 2, 4);
        assert!(four.space_bytes > 3 * one.space_bytes);
    }

    #[test]
    fn atomic_matches_plain_sequential() {
        let stream = zipf_stream(10_000, 7);
        let params = SketchParams::new(5, 128);
        let atomic = AtomicCountSketch::new(params, 3);
        for key in stream.iter() {
            atomic.add(key);
        }
        let mut plain = CountSketch::new(params, 3);
        plain.absorb(&stream, 1);
        assert_sketch_identical(&atomic.snapshot(), &plain, "atomic sequential");
        for id in 0..100u64 {
            assert_eq!(atomic.estimate(ItemKey(id)), plain.estimate(ItemKey(id)));
        }
    }

    #[test]
    fn atomic_concurrent_adds_match_plain() {
        let params = SketchParams::new(5, 128);
        let atomic = AtomicCountSketch::new(params, 11);
        let stream = zipf_stream(20_000, 2);
        let chunks = stream.chunks(4);
        std::thread::scope(|scope| {
            for chunk in &chunks {
                let handle = atomic.clone();
                scope.spawn(move || {
                    for key in chunk.iter() {
                        handle.add(key);
                    }
                });
            }
        });
        let mut plain = CountSketch::new(params, 11);
        plain.absorb(&stream, 1);
        assert_sketch_identical(&atomic.snapshot(), &plain, "atomic concurrent");
    }

    #[test]
    fn atomic_overflow_diverts_and_flags() {
        let params = SketchParams::new(3, 32);
        let atomic = AtomicCountSketch::new(params, 1);
        let key = ItemKey(5);
        atomic.update(key, i64::MAX);
        atomic.update(key, i64::MAX); // exhausts the watermark → slow tier
        atomic.update(ItemKey(6), 100); // also slow tier now
        let snap = atomic.snapshot();
        #[cfg(feature = "saturation-tracking")]
        assert!(
            snap.health().saturated_cells > 0,
            "clamped atomic sketch must not report healthy"
        );
        // Sequential reference: identical clamp-and-flag states.
        let mut plain = CountSketch::new(params, 1);
        plain.update(key, i64::MAX);
        plain.update(key, i64::MAX);
        plain.update(ItemKey(6), 100);
        assert_sketch_identical(&snap, &plain, "atomic overflow");
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn atomic_unflagged_cells_are_exact() {
        // Even past the watermark, any cell that never clamps must hold
        // the exact signed sum — checked against an i128 oracle.
        let params = SketchParams::new(3, 16);
        let atomic = AtomicCountSketch::new(params, 4);
        let updates: Vec<(ItemKey, i64)> = vec![
            (ItemKey(1), i64::MAX),
            (ItemKey(2), -500),
            (ItemKey(1), -i64::MAX),
            (ItemKey(3), 123_456),
            (ItemKey(2), 500),
            (ItemKey(1), 42),
        ];
        let template = CountSketch::new(params, 4);
        let mut oracle = vec![0i128; template.rows() * template.buckets()];
        for &(key, w) in &updates {
            atomic.update(key, w);
            for (i, (bucket, sign)) in template.row_cells(key).enumerate() {
                oracle[i * template.buckets() + bucket] += i128::from(sign) * i128::from(w);
            }
        }
        let snap = atomic.snapshot();
        for row in 0..snap.rows() {
            for bucket in 0..snap.buckets() {
                if !snap.is_cell_saturated(row, bucket) {
                    let idx = row * snap.buckets() + bucket;
                    assert_eq!(
                        i128::from(snap.counters()[idx]),
                        oracle[idx],
                        "unflagged cell ({row}, {bucket}) is not exact"
                    );
                }
            }
        }
    }

    #[test]
    fn atomic_snapshot_restores_mass_floor() {
        // After a snapshot, further batched updates on the snapshot must
        // stay overflow-safe: the watermark invariant |c| ≤ abs_mass is
        // re-established by refresh_mass_floor.
        let params = SketchParams::new(3, 16);
        let atomic = AtomicCountSketch::new(params, 9);
        for id in 0..1000u64 {
            atomic.update(ItemKey(id), 1_000_000);
        }
        let mut snap = atomic.snapshot();
        // A fast-tier update after restore must not wrap anything.
        snap.update(ItemKey(1), i64::MAX / 2);
        let checked = snap.estimate_checked(ItemKey(1));
        assert!(checked.clean_rows > 0);
    }
}
