//! Error types for sketch operations.

/// Errors returned by fallible sketch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Two sketches cannot be combined: different dimensions.
    ///
    /// The paper's additivity requires the sketches to "share the same
    /// hash functions — and therefore the same `b` and `t`" (§3.2).
    DimensionMismatch {
        /// `(t, b)` of the left operand.
        left: (usize, usize),
        /// `(t, b)` of the right operand.
        right: (usize, usize),
    },
    /// Two sketches have equal dimensions but were drawn from different
    /// seeds, so their hash functions differ and adding their counter
    /// arrays would be meaningless.
    SeedMismatch {
        /// Seed of the left operand.
        left: u64,
        /// Seed of the right operand.
        right: u64,
    },
    /// A parameter was out of its valid domain.
    InvalidParameter(String),
    /// A snapshot's stored CRC-32 does not match the checksum computed
    /// over its bytes: the snapshot was corrupted after it was written
    /// (bit flip, torn write, truncation past the header).
    ChecksumMismatch {
        /// Checksum stored in the snapshot's trailing field.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// A strict merge would overflow a counter; the operation was
    /// refused and the receiving sketch left untouched. The cell that
    /// would have overflowed is identified so operators can correlate
    /// with [`crate::sketch::SketchHealth`].
    CounterSaturated {
        /// Row of the cell that would overflow.
        row: usize,
        /// Bucket within the row.
        bucket: usize,
    },
    /// A snapshot is structurally invalid (bad magic, unknown version,
    /// impossible section lengths) even though — or before — its
    /// checksum could be verified.
    CorruptSnapshot(String),
    /// A quorum merge could not gather enough valid site reports.
    QuorumNotMet {
        /// Sites that validated and were merged.
        validated: usize,
        /// Sites required by the configured quorum.
        required: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::DimensionMismatch { left, right } => write!(
                f,
                "sketch dimension mismatch: (t, b) = {left:?} vs {right:?}"
            ),
            CoreError::SeedMismatch { left, right } => write!(
                f,
                "sketch seed mismatch: {left} vs {right} (hash functions differ)"
            ),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored 0x{stored:08x}, computed 0x{computed:08x} (data corrupted)"
            ),
            CoreError::CounterSaturated { row, bucket } => write!(
                f,
                "counter saturated at row {row}, bucket {bucket}: merge would overflow i64"
            ),
            CoreError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            CoreError::QuorumNotMet {
                validated,
                required,
            } => write!(
                f,
                "quorum not met: {validated} site(s) validated, {required} required"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::DimensionMismatch {
            left: (5, 64),
            right: (5, 128),
        };
        assert!(e.to_string().contains("(5, 64)"));
        let e = CoreError::SeedMismatch { left: 1, right: 2 };
        assert!(e.to_string().contains("hash functions differ"));
        let e = CoreError::InvalidParameter("b must be positive".into());
        assert!(e.to_string().contains("b must be positive"));
    }

    #[test]
    fn display_messages_robustness_variants() {
        let e = CoreError::ChecksumMismatch {
            stored: 0xDEAD_BEEF,
            computed: 0x0BAD_F00D,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("deadbeef") && msg.contains("0badf00d"),
            "{msg}"
        );
        let e = CoreError::CounterSaturated { row: 3, bucket: 17 };
        let msg = e.to_string();
        assert!(msg.contains("row 3") && msg.contains("bucket 17"), "{msg}");
        let e = CoreError::CorruptSnapshot("kind 9 unknown".into());
        assert!(e.to_string().contains("kind 9 unknown"));
        let e = CoreError::QuorumNotMet {
            validated: 2,
            required: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('2') && msg.contains('3'), "{msg}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::InvalidParameter(String::new()));
        takes_err(&CoreError::ChecksumMismatch {
            stored: 0,
            computed: 1,
        });
    }

    #[test]
    fn variants_are_comparable_and_cloneable() {
        let e = CoreError::CounterSaturated { row: 0, bucket: 0 };
        assert_eq!(e.clone(), e);
        assert_ne!(e, CoreError::CounterSaturated { row: 0, bucket: 1 });
    }
}
