//! Error types for sketch operations.

/// Errors returned by fallible sketch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Two sketches cannot be combined: different dimensions.
    ///
    /// The paper's additivity requires the sketches to "share the same
    /// hash functions — and therefore the same `b` and `t`" (§3.2).
    DimensionMismatch {
        /// `(t, b)` of the left operand.
        left: (usize, usize),
        /// `(t, b)` of the right operand.
        right: (usize, usize),
    },
    /// Two sketches have equal dimensions but were drawn from different
    /// seeds, so their hash functions differ and adding their counter
    /// arrays would be meaningless.
    SeedMismatch {
        /// Seed of the left operand.
        left: u64,
        /// Seed of the right operand.
        right: u64,
    },
    /// A parameter was out of its valid domain.
    InvalidParameter(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::DimensionMismatch { left, right } => write!(
                f,
                "sketch dimension mismatch: (t, b) = {left:?} vs {right:?}"
            ),
            CoreError::SeedMismatch { left, right } => write!(
                f,
                "sketch seed mismatch: {left} vs {right} (hash functions differ)"
            ),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::DimensionMismatch {
            left: (5, 64),
            right: (5, 128),
        };
        assert!(e.to_string().contains("(5, 64)"));
        let e = CoreError::SeedMismatch { left: 1, right: 2 };
        assert!(e.to_string().contains("hash functions differ"));
        let e = CoreError::InvalidParameter("b must be positive".into());
        assert!(e.to_string().contains("b must be positive"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::InvalidParameter(String::new()));
    }
}
