//! Parallel sketching via additivity (legacy entry points).
//!
//! §3.2's observation that sketches with shared hash functions can be
//! added is not just the basis of the max-change algorithm — it is a
//! parallelization strategy: partition the stream, sketch each partition
//! independently with the *same seed*, and merge. The long-lived
//! pipeline lives in [`crate::parallel`]; this module keeps the original
//! one-shot entry point [`sketch_stream_parallel`] (now routed through
//! the worker pool) and the mutex-striped [`SharedCountSketch`].
//!
//! [`SharedCountSketch`] is a lock-based concurrent handle for pipelines
//! where partitioning is awkward (items arrive on many threads):
//! per-row striped mutexes, writers lock one stripe per row update. For
//! the hot path prefer [`crate::parallel::AtomicCountSketch`], which
//! replaces the `t` lock acquisitions per update with relaxed atomic
//! adds; the striped type is kept as the contended-baseline for the
//! scaling benchmarks and for callers that want strictly bounded memory
//! (no overflow side sketch).

use crate::median::combine;
use crate::params::SketchParams;
use crate::sketch::{CountSketch, EstimateScratch};
use cs_hash::ItemKey;
use cs_stream::Stream;
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// Sketches a stream in parallel on `threads` workers and merges the
/// per-worker sketches (delegates to [`crate::parallel::SketchPool`]).
///
/// Deterministic: the result equals the sequential sketch of the same
/// stream with the same `(params, seed)` — see the determinism contract
/// in [`crate::parallel`] for the saturating-stream fine print.
pub fn sketch_stream_parallel(
    stream: &Stream,
    params: SketchParams,
    seed: u64,
    threads: usize,
) -> CountSketch {
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 {
        let mut s = CountSketch::new(params, seed);
        s.absorb(stream, 1);
        return s;
    }
    crate::parallel::sketch_stream_pooled(stream, params, seed, threads)
}

/// A thread-safe Count-Sketch behind striped locks.
///
/// Each row is guarded by its own mutex, so concurrent updates contend
/// only when they touch the same row — and every update touches every
/// row, so this is effectively a pipeline of `t` short critical sections.
/// For bulk throughput prefer [`sketch_stream_parallel`]; for shared
/// handles on the hot path prefer [`crate::parallel::AtomicCountSketch`].
#[derive(Debug, Clone)]
pub struct SharedCountSketch {
    inner: Arc<SharedInner>,
}

#[derive(Debug)]
struct SharedInner {
    /// The hash functions live in a read-only template sketch; row
    /// counters are split out under per-row locks.
    template: CountSketch,
    rows: Vec<Mutex<SharedRow>>,
}

/// One row's counters plus its local saturation-flag words. The flags
/// live *inside* the row lock (not in a shared global bitset) because
/// bitset words straddle row boundaries whenever `buckets % 64 != 0` —
/// two rows writing one shared word would race. [`SharedCountSketch::snapshot`]
/// translates the row-local bits into the plain sketch's global bitset.
#[derive(Debug)]
struct SharedRow {
    counters: Vec<i64>,
    saturated: Vec<u64>,
}

impl SharedRow {
    fn new(buckets: usize) -> Self {
        Self {
            counters: vec![0i64; buckets],
            saturated: vec![0u64; buckets.div_ceil(64)],
        }
    }

    /// Applies a signed update to one bucket with the same exact-`i128`
    /// clamp-and-flag semantics as the scalar slow tier
    /// ([`CountSketch::update_exact`]).
    fn apply(&mut self, bucket: usize, sign: i64, weight: i64) {
        let sum = i128::from(self.counters[bucket]) + i128::from(sign) * i128::from(weight);
        self.counters[bucket] = if sum > i128::from(i64::MAX) {
            self.saturated[bucket / 64] |= 1 << (bucket % 64);
            i64::MAX
        } else if sum < i128::from(i64::MIN) {
            self.saturated[bucket / 64] |= 1 << (bucket % 64);
            i64::MIN
        } else {
            sum as i64
        };
    }
}

impl SharedCountSketch {
    /// Creates a shared sketch.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        let template = CountSketch::new(params, seed);
        let rows = (0..params.rows)
            .map(|_| Mutex::new(SharedRow::new(template.buckets())))
            .collect();
        Self {
            inner: Arc::new(SharedInner { template, rows }),
        }
    }

    /// Adds one occurrence (thread-safe).
    pub fn add(&self, key: ItemKey) {
        self.update(key, 1);
    }

    /// Turnstile update (thread-safe).
    ///
    /// Cell sums are carried in `i128` and clamped at the `i64` limits
    /// with the clamp **recorded** in a per-row flag bitset — a clamped
    /// shared sketch therefore reports its degradation through
    /// [`CountSketch::health`] after [`Self::snapshot`], exactly like
    /// the scalar two-tier path.
    pub fn update(&self, key: ItemKey, weight: i64) {
        // The template's hashers are probed through `row_cells`, keeping
        // this hot path allocation-free.
        for (i, (bucket, sign)) in self.inner.template.row_cells(key).enumerate() {
            let mut row = self.inner.rows[i].lock().expect("row lock poisoned");
            row.apply(bucket, sign, weight);
        }
    }

    /// Estimates a count (thread-safe; takes the row locks one at a time,
    /// so the estimate is not an atomic snapshot across rows — fine for
    /// the sketch's probabilistic guarantees, which are per-row).
    ///
    /// Allocation-free: the row buffer lives in a thread-local
    /// [`EstimateScratch`] (it used to be a fresh `Vec` per call). Hot
    /// loops that already own a scratch can pass it explicitly via
    /// [`Self::estimate_with_scratch`].
    pub fn estimate(&self, key: ItemKey) -> i64 {
        thread_local! {
            static SCRATCH: RefCell<EstimateScratch> = RefCell::new(EstimateScratch::new());
        }
        SCRATCH.with(|s| self.estimate_with_scratch(key, &mut s.borrow_mut()))
    }

    /// [`Self::estimate`] with a caller-owned scratch, for hot query
    /// loops that probe many keys against the shared handle.
    pub fn estimate_with_scratch(&self, key: ItemKey, scratch: &mut EstimateScratch) -> i64 {
        scratch.rows.clear();
        for (i, (bucket, sign)) in self.inner.template.row_cells(key).enumerate() {
            let row = self.inner.rows[i].lock().expect("row lock poisoned");
            scratch.rows.push(sign.saturating_mul(row.counters[bucket]));
        }
        combine(
            self.inner.template.combiner(),
            &scratch.rows,
            &mut scratch.sort,
        )
    }

    /// Freezes into a plain sketch: counters, saturation flags (when the
    /// `saturation-tracking` feature is on, matching the scalar sketch's
    /// semantics), and a restored mass-floor watermark.
    pub fn snapshot(&self) -> CountSketch {
        let mut s = self.inner.template.clone();
        let buckets = s.buckets();
        for (i, row) in self.inner.rows.iter().enumerate() {
            let row = row.lock().expect("row lock poisoned");
            s.counters_mut()[i * buckets..(i + 1) * buckets].copy_from_slice(&row.counters);
            #[cfg(feature = "saturation-tracking")]
            for bucket in 0..buckets {
                if row.saturated[bucket / 64] >> (bucket % 64) & 1 == 1 {
                    let idx = i * buckets + bucket;
                    s.saturated_words_mut()[idx / 64] |= 1 << (idx % 64);
                }
            }
        }
        // Counters were filled behind the sketch's back: restore the
        // headroom watermark so later batched updates stay overflow-safe.
        s.refresh_mass_floor();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{Zipf, ZipfStreamKind};

    #[test]
    fn parallel_equals_sequential() {
        let zipf = Zipf::new(300, 1.0);
        let stream = zipf.stream(30_000, 4, ZipfStreamKind::Sampled);
        let params = SketchParams::new(5, 256);
        let sequential = sketch_stream_parallel(&stream, params, 9, 1);
        for threads in [2, 3, 4, 8] {
            let parallel = sketch_stream_parallel(&stream, params, 9, threads);
            assert_eq!(
                sequential.counters(),
                parallel.counters(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_handles_tiny_streams() {
        let stream = Stream::from_ids([1, 2]);
        let s = sketch_stream_parallel(&stream, SketchParams::new(3, 16), 0, 8);
        let mut want = CountSketch::new(SketchParams::new(3, 16), 0);
        want.absorb(&stream, 1);
        assert_eq!(s.counters(), want.counters());
    }

    #[test]
    fn shared_sketch_matches_plain() {
        let zipf = Zipf::new(100, 1.0);
        let stream = zipf.stream(5000, 7, ZipfStreamKind::Sampled);
        let params = SketchParams::new(5, 128);
        let shared = SharedCountSketch::new(params, 3);
        for key in stream.iter() {
            shared.add(key);
        }
        let mut plain = CountSketch::new(params, 3);
        plain.absorb(&stream, 1);
        assert_eq!(shared.snapshot().counters(), plain.counters());
        for id in 0..100u64 {
            assert_eq!(shared.estimate(ItemKey(id)), plain.estimate(ItemKey(id)));
        }
    }

    #[test]
    fn shared_estimate_with_scratch_matches_plain_estimate() {
        let zipf = Zipf::new(80, 1.0);
        let stream = zipf.stream(4_000, 12, ZipfStreamKind::Sampled);
        let shared = SharedCountSketch::new(SketchParams::new(5, 64), 21);
        for key in stream.iter() {
            shared.add(key);
        }
        let mut scratch = EstimateScratch::new();
        for id in 0..80u64 {
            assert_eq!(
                shared.estimate_with_scratch(ItemKey(id), &mut scratch),
                shared.estimate(ItemKey(id))
            );
        }
    }

    #[test]
    fn shared_sketch_concurrent_adds() {
        let params = SketchParams::new(5, 128);
        let shared = SharedCountSketch::new(params, 11);
        let zipf = Zipf::new(50, 1.0);
        let stream = zipf.stream(20_000, 2, ZipfStreamKind::Sampled);
        let chunks = stream.chunks(4);
        std::thread::scope(|scope| {
            for chunk in &chunks {
                let handle = shared.clone();
                scope.spawn(move || {
                    for key in chunk.iter() {
                        handle.add(key);
                    }
                });
            }
        });
        let mut plain = CountSketch::new(params, 11);
        plain.absorb(&stream, 1);
        assert_eq!(shared.snapshot().counters(), plain.counters());
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn shared_sketch_clamp_is_recorded_in_health() {
        // Regression: the striped sketch used to clamp silently, so a
        // saturated shared sketch reported healthy after snapshot().
        let params = SketchParams::new(3, 32);
        let shared = SharedCountSketch::new(params, 1);
        let key = ItemKey(77);
        shared.update(key, i64::MAX);
        shared.update(key, i64::MAX);
        let snap = shared.snapshot();
        assert!(
            snap.health().saturated_cells > 0,
            "clamped shared sketch must not report healthy"
        );
        // And the cell states match the scalar sequence exactly.
        let mut plain = CountSketch::new(params, 1);
        plain.update(key, i64::MAX);
        plain.update(key, i64::MAX);
        assert_eq!(snap.counters(), plain.counters());
        for row in 0..snap.rows() {
            for bucket in 0..snap.buckets() {
                assert_eq!(
                    snap.is_cell_saturated(row, bucket),
                    plain.is_cell_saturated(row, bucket),
                    "flag diverges at ({row}, {bucket})"
                );
            }
        }
    }

    #[test]
    fn shared_sketch_extreme_weights_do_not_wrap() {
        // weight = i64::MIN used to go through sign.saturating_mul and
        // lose a unit of mass; the i128 path is exact until it clamps.
        let params = SketchParams::new(3, 16);
        let shared = SharedCountSketch::new(params, 5);
        let key = ItemKey(9);
        shared.update(key, i64::MIN);
        shared.update(key, i64::MAX);
        // Cell states must match the scalar slow tier exactly (positive
        // sign rows end at -1; negative sign rows clamp then cancel).
        let mut plain = CountSketch::new(params, 5);
        plain.update(key, i64::MIN);
        plain.update(key, i64::MAX);
        assert_eq!(shared.snapshot().counters(), plain.counters());
        assert_eq!(shared.estimate(key), plain.estimate(key));
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_rejected() {
        sketch_stream_parallel(&Stream::new(), SketchParams::new(1, 1), 0, 0);
    }
}
