//! Parallel sketching via additivity.
//!
//! §3.2's observation that sketches with shared hash functions can be
//! added is not just the basis of the max-change algorithm — it is a
//! parallelization strategy: partition the stream, sketch each partition
//! independently with the *same seed*, and merge. The result is
//! bit-identical to sketching the whole stream sequentially (addition of
//! counters commutes), which [`sketch_stream_parallel`]'s tests verify.
//!
//! [`SharedCountSketch`] additionally offers a lock-based concurrent
//! handle for pipelines where partitioning is awkward (items arrive on
//! many threads): per-row striped mutexes, writers lock one stripe per
//! row update.

use crate::params::SketchParams;
use crate::sketch::CountSketch;
use cs_hash::ItemKey;
use cs_stream::Stream;
use std::sync::{Arc, Mutex};

/// Sketches a stream by fanning chunks out to `threads` scoped worker
/// threads, then merging the per-thread sketches.
///
/// Deterministic: the result equals the sequential sketch of the same
/// stream with the same `(params, seed)`.
pub fn sketch_stream_parallel(
    stream: &Stream,
    params: SketchParams,
    seed: u64,
    threads: usize,
) -> CountSketch {
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 || stream.len() < 2 * threads {
        let mut s = CountSketch::new(params, seed);
        s.absorb(stream, 1);
        return s;
    }
    let chunks = stream.chunks(threads);
    let mut partials: Vec<CountSketch> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut local = CountSketch::new(params, seed);
                    local.absorb(chunk, 1);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut merged = partials.pop().expect("at least one chunk");
    for p in &partials {
        merged
            .merge(p)
            .expect("same params and seed are compatible");
    }
    merged
}

/// A thread-safe Count-Sketch behind striped locks.
///
/// Each row is guarded by its own mutex, so concurrent updates contend
/// only when they touch the same row — and every update touches every
/// row, so this is effectively a pipeline of `t` short critical sections.
/// For bulk throughput prefer [`sketch_stream_parallel`]; this type is for
/// long-lived shared handles.
#[derive(Debug, Clone)]
pub struct SharedCountSketch {
    inner: Arc<SharedInner>,
}

#[derive(Debug)]
struct SharedInner {
    /// The hash functions live in a read-only template sketch; row
    /// counters are split out under per-row locks.
    template: CountSketch,
    rows: Vec<Mutex<Vec<i64>>>,
}

impl SharedCountSketch {
    /// Creates a shared sketch.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        let template = CountSketch::new(params, seed);
        let rows = (0..params.rows)
            .map(|_| Mutex::new(vec![0i64; template.buckets()]))
            .collect();
        Self {
            inner: Arc::new(SharedInner { template, rows }),
        }
    }

    /// Adds one occurrence (thread-safe).
    pub fn add(&self, key: ItemKey) {
        self.update(key, 1);
    }

    /// Turnstile update (thread-safe).
    pub fn update(&self, key: ItemKey, weight: i64) {
        // Reuse the template's hashers by probing a throwaway single-add
        // sketch would be wasteful; instead expose bucket/sign through a
        // scratch estimate: we re-derive the per-row cells via the
        // template's public row probe on a zero sketch. To keep this hot
        // path allocation-free we inline the loop over rows using the
        // template's hashers through `row_cells`.
        for (i, (bucket, sign)) in self.inner.template.row_cells(key).enumerate() {
            let mut row = self.inner.rows[i].lock().expect("row lock poisoned");
            // Saturating like the plain sketch's update: a shared counter
            // must clamp, not wrap, at the i64 limits.
            row[bucket] = row[bucket].saturating_add(sign.saturating_mul(weight));
        }
    }

    /// Estimates a count (thread-safe; takes the row locks one at a time,
    /// so the estimate is not an atomic snapshot across rows — fine for
    /// the sketch's probabilistic guarantees, which are per-row).
    pub fn estimate(&self, key: ItemKey) -> i64 {
        let mut rows_est = Vec::with_capacity(self.inner.rows.len());
        for (i, (bucket, sign)) in self.inner.template.row_cells(key).enumerate() {
            let row = self.inner.rows[i].lock().expect("row lock poisoned");
            rows_est.push(sign * row[bucket]);
        }
        let mut scratch = Vec::with_capacity(rows_est.len());
        crate::median::median(&rows_est, &mut scratch)
    }

    /// Freezes into a plain sketch (snapshot of all counters).
    pub fn snapshot(&self) -> CountSketch {
        let mut s = self.inner.template.clone();
        let buckets = s.buckets();
        for (i, row) in self.inner.rows.iter().enumerate() {
            let row = row.lock().expect("row lock poisoned");
            s.counters_mut()[i * buckets..(i + 1) * buckets].copy_from_slice(&row);
        }
        // Counters were filled behind the sketch's back: restore the
        // headroom watermark so later batched updates stay overflow-safe.
        s.refresh_mass_floor();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{Zipf, ZipfStreamKind};

    #[test]
    fn parallel_equals_sequential() {
        let zipf = Zipf::new(300, 1.0);
        let stream = zipf.stream(30_000, 4, ZipfStreamKind::Sampled);
        let params = SketchParams::new(5, 256);
        let sequential = sketch_stream_parallel(&stream, params, 9, 1);
        for threads in [2, 3, 4, 8] {
            let parallel = sketch_stream_parallel(&stream, params, 9, threads);
            assert_eq!(
                sequential.counters(),
                parallel.counters(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_handles_tiny_streams() {
        let stream = Stream::from_ids([1, 2]);
        let s = sketch_stream_parallel(&stream, SketchParams::new(3, 16), 0, 8);
        let mut want = CountSketch::new(SketchParams::new(3, 16), 0);
        want.absorb(&stream, 1);
        assert_eq!(s.counters(), want.counters());
    }

    #[test]
    fn shared_sketch_matches_plain() {
        let zipf = Zipf::new(100, 1.0);
        let stream = zipf.stream(5000, 7, ZipfStreamKind::Sampled);
        let params = SketchParams::new(5, 128);
        let shared = SharedCountSketch::new(params, 3);
        for key in stream.iter() {
            shared.add(key);
        }
        let mut plain = CountSketch::new(params, 3);
        plain.absorb(&stream, 1);
        assert_eq!(shared.snapshot().counters(), plain.counters());
        for id in 0..100u64 {
            assert_eq!(shared.estimate(ItemKey(id)), plain.estimate(ItemKey(id)));
        }
    }

    #[test]
    fn shared_sketch_concurrent_adds() {
        let params = SketchParams::new(5, 128);
        let shared = SharedCountSketch::new(params, 11);
        let zipf = Zipf::new(50, 1.0);
        let stream = zipf.stream(20_000, 2, ZipfStreamKind::Sampled);
        let chunks = stream.chunks(4);
        std::thread::scope(|scope| {
            for chunk in &chunks {
                let handle = shared.clone();
                scope.spawn(move || {
                    for key in chunk.iter() {
                        handle.add(key);
                    }
                });
            }
        });
        let mut plain = CountSketch::new(params, 11);
        plain.absorb(&stream, 1);
        assert_eq!(shared.snapshot().counters(), plain.counters());
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_rejected() {
        sketch_stream_parallel(&Stream::new(), SketchParams::new(1, 1), 0, 0);
    }
}
