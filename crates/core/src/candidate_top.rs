//! CANDIDATETOP(S, k, l) — the §4.1 candidate-list algorithms.
//!
//! CANDIDATETOP asks for a list of `l ≥ k` elements containing the true
//! top `k`. The paper's approach: run the one-pass algorithm tracking
//! `l` estimated-top elements; "the k most frequent elements can only be
//! preceded by elements with number of occurrences at least `(1-ε)·n_k`",
//! so choosing `l` with `n_{l+1} < (1-ε)·n_k` suffices — for Zipf(z) this
//! gives `l = k/(1-ε)^{1/z} = O(k)`.
//!
//! *"If the algorithm is allowed one more pass, the true frequencies of
//! all the l elements in the algorithm's list can be determined, so the
//! actual list of k most frequent elements can be correctly identified."*
//! [`candidate_top_two_pass`] implements exactly that.

use crate::approx_top::{ApproxTopProcessor, ApproxTopResult};
use crate::params::SketchParams;
use cs_hash::ItemKey;
use cs_stream::Stream;
use std::collections::HashMap;

/// Result of the two-pass CANDIDATETOP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateTopResult {
    /// The `l` candidates from pass 1, by estimate (non-increasing).
    pub candidates: Vec<(ItemKey, i64)>,
    /// The final top-`k` with *exact* counts from pass 2, non-increasing.
    pub top_k: Vec<(ItemKey, u64)>,
}

/// Pass 1 only: the `l`-element candidate list (a CANDIDATETOP solution
/// whenever `l` is large enough per §4.1).
pub fn candidate_top_one_pass(
    stream: &Stream,
    l: usize,
    params: SketchParams,
    seed: u64,
) -> ApproxTopResult {
    let mut p = ApproxTopProcessor::new(params, l, seed);
    p.observe_stream(stream);
    p.result()
}

/// The paper's choice of `l` for Zipf(z): `l = ⌈k / (1-ε)^{1/z}⌉`.
pub fn zipf_candidate_list_size(k: usize, eps: f64, z: f64) -> usize {
    assert!(k >= 1);
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(z > 0.0, "z must be positive");
    (k as f64 / (1.0 - eps).powf(1.0 / z)).ceil() as usize
}

/// Full two-pass CANDIDATETOP: pass 1 collects `l` candidates via the
/// sketch + heap; pass 2 counts the candidates exactly and returns the
/// true top `k` among them.
pub fn candidate_top_two_pass(
    stream: &Stream,
    k: usize,
    l: usize,
    params: SketchParams,
    seed: u64,
) -> CandidateTopResult {
    assert!(l >= k, "need l >= k");
    let pass1 = candidate_top_one_pass(stream, l, params, seed);

    // Pass 2: exact counts for the candidate set only — O(l) counters,
    // not O(m).
    let mut exact: HashMap<ItemKey, u64> = pass1.items.iter().map(|&(key, _)| (key, 0)).collect();
    for key in stream.iter() {
        if let Some(c) = exact.get_mut(&key) {
            *c += 1;
        }
    }
    let mut top_k: Vec<(ItemKey, u64)> = exact.into_iter().collect();
    top_k.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top_k.truncate(k);

    CandidateTopResult {
        candidates: pass1.items,
        top_k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Zipf, ZipfStreamKind};
    use std::collections::HashSet;

    #[test]
    fn zipf_list_size_formula() {
        // z = 1, eps = 0.5: l = 2k.
        assert_eq!(zipf_candidate_list_size(10, 0.5, 1.0), 20);
        // z = 0.5, eps = 0.5: l = k / 0.5^2 = 4k.
        assert_eq!(zipf_candidate_list_size(10, 0.5, 0.5), 40);
        // Larger z needs smaller l.
        assert!(zipf_candidate_list_size(10, 0.5, 2.0) < zipf_candidate_list_size(10, 0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn list_size_rejects_bad_eps() {
        zipf_candidate_list_size(10, 1.0, 1.0);
    }

    #[test]
    fn two_pass_recovers_exact_top_k_zipf() {
        let zipf = Zipf::new(1000, 1.0);
        let stream = zipf.stream(100_000, 7, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let k = 10;
        let l = zipf_candidate_list_size(k, 0.5, 1.0);
        let result = candidate_top_two_pass(&stream, k, l, SketchParams::new(7, 2048), 13);

        let truth: Vec<(ItemKey, u64)> = exact.top_k(k);
        let truth_keys: HashSet<ItemKey> = truth.iter().map(|&(k, _)| k).collect();
        let got_keys: HashSet<ItemKey> = result.top_k.iter().map(|&(k, _)| k).collect();
        assert_eq!(truth_keys, got_keys, "two-pass must recover the true top-k");
        // And the counts are exact.
        for &(key, count) in &result.top_k {
            assert_eq!(count, exact.count(key));
        }
    }

    #[test]
    fn candidates_contain_top_k_even_when_order_fuzzy() {
        let zipf = Zipf::new(500, 0.8);
        let stream = zipf.stream(50_000, 3, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let k = 5;
        let l = 4 * k;
        let result = candidate_top_two_pass(&stream, k, l, SketchParams::new(7, 4096), 5);
        let cand_keys: HashSet<ItemKey> = result.candidates.iter().map(|&(k, _)| k).collect();
        for (key, _) in exact.top_k(k) {
            assert!(cand_keys.contains(&key), "candidate list missed {key:?}");
        }
    }

    #[test]
    fn pass2_counts_are_exact() {
        let stream = Stream::from_ids([1, 1, 1, 2, 2, 3, 4, 5]);
        let result = candidate_top_two_pass(&stream, 2, 4, SketchParams::new(5, 64), 1);
        assert_eq!(result.top_k[0], (ItemKey(1), 3));
        assert_eq!(result.top_k[1], (ItemKey(2), 2));
    }

    #[test]
    fn l_equal_k_is_allowed() {
        let stream = Stream::from_ids([1, 1, 2]);
        let result = candidate_top_two_pass(&stream, 2, 2, SketchParams::new(3, 16), 0);
        assert_eq!(result.top_k.len(), 2);
        assert_eq!(result.candidates.len(), 2);
    }

    #[test]
    #[should_panic(expected = "need l >= k")]
    fn l_below_k_rejected() {
        candidate_top_two_pass(&Stream::new(), 5, 4, SketchParams::new(3, 16), 0);
    }

    #[test]
    fn fewer_distinct_items_than_k() {
        let stream = Stream::from_ids([1, 1, 2]);
        let result = candidate_top_two_pass(&stream, 5, 10, SketchParams::new(3, 16), 0);
        assert_eq!(result.top_k.len(), 2);
    }

    #[test]
    fn one_pass_result_has_l_items() {
        let zipf = Zipf::new(100, 1.0);
        let stream = zipf.stream(5000, 1, ZipfStreamKind::Sampled);
        let r = candidate_top_one_pass(&stream, 15, SketchParams::new(5, 256), 2);
        assert_eq!(r.items.len(), 15);
    }
}
