//! The COUNT SKETCH data structure (§3.2 of the paper).
//!
//! A `t × b` array of signed counters. Row `i` owns a pairwise-independent
//! bucket hash `h_i` and sign hash `s_i`. The two operations are exactly
//! the paper's:
//!
//! ```text
//! ADD(C, q):      for i in 1..=t { C[i][h_i(q)] += s_i(q) }
//! ESTIMATE(C, q): median_i { C[i][h_i(q)] · s_i(q) }
//! ```
//!
//! The structure additionally supports weighted and negative updates
//! (needed verbatim by the §4.2 max-change first pass, which does
//! `h_i[q] -= s_i(q)` over `S1`), and addition/subtraction of whole
//! sketches that share hash functions — the additivity §3.2 points out.
//!
//! The sketch is generic over the hash constructions via
//! [`DrawBucketHasher`]/[`DrawSignHasher`]; [`CountSketch`] is the
//! paper-faithful pairwise-polynomial instantiation and
//! [`FastCountSketch`] the multiply-shift/tabulation fast path (buckets
//! rounded up to a power of two).

use crate::error::CoreError;
use crate::median::{combine, Combiner};
use crate::params::SketchParams;
use cs_hash::{
    BucketHasher, ItemKey, MultiplyShift, PairwiseHash, PairwiseSign, SeedSequence, SignHasher,
    TabulationHash,
};
use cs_stream::Stream;

/// A bucket-hash construction the sketch can draw rows from.
///
/// `draw_for` may round the requested bucket count up (multiply-shift
/// requires powers of two) and returns the count actually used.
pub trait DrawBucketHasher: BucketHasher + Sized {
    /// Draws one row hash aiming at `buckets` buckets.
    fn draw_for(seeds: &mut SeedSequence, buckets: usize) -> Self;
}

/// A sign-hash construction the sketch can draw rows from.
pub trait DrawSignHasher: SignHasher + Sized {
    /// Draws one row sign hash.
    fn draw_for(seeds: &mut SeedSequence) -> Self;
}

impl DrawBucketHasher for PairwiseHash {
    fn draw_for(seeds: &mut SeedSequence, buckets: usize) -> Self {
        PairwiseHash::draw(seeds, buckets)
    }
}

impl DrawBucketHasher for MultiplyShift {
    fn draw_for(seeds: &mut SeedSequence, buckets: usize) -> Self {
        let (h, _) = MultiplyShift::draw_at_least(seeds, buckets.max(2));
        h
    }
}

impl DrawBucketHasher for TabulationHash {
    fn draw_for(seeds: &mut SeedSequence, buckets: usize) -> Self {
        TabulationHash::draw(seeds, buckets)
    }
}

impl DrawSignHasher for PairwiseSign {
    fn draw_for(seeds: &mut SeedSequence) -> Self {
        PairwiseSign::draw(seeds)
    }
}

impl DrawSignHasher for cs_hash::FourWiseSign {
    fn draw_for(seeds: &mut SeedSequence) -> Self {
        cs_hash::FourWiseSign::draw(seeds)
    }
}

impl DrawSignHasher for TabulationHash {
    fn draw_for(seeds: &mut SeedSequence) -> Self {
        // Range is irrelevant for sign use; 2 keeps it cheap.
        TabulationHash::draw(seeds, 2)
    }
}

/// The Count-Sketch, generic over hash constructions.
///
/// ```
/// use cs_core::{CountSketch, SketchParams};
/// use cs_hash::ItemKey;
///
/// let mut sketch = CountSketch::new(SketchParams::new(5, 256), 42);
/// for _ in 0..500 {
///     sketch.add(ItemKey(7));
/// }
/// sketch.update(ItemKey(7), -100); // turnstile deletion
/// assert_eq!(sketch.estimate(ItemKey(7)), 400);
///
/// // Additivity: same (params, seed) sketches can be merged.
/// let other = CountSketch::new(SketchParams::new(5, 256), 42);
/// sketch.merge(&other).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct GenericCountSketch<H, S> {
    pub(crate) rows: usize,
    pub(crate) buckets: usize,
    /// Row-major `rows × buckets` counters.
    pub(crate) counters: Vec<i64>,
    /// One bit per counter, set when that counter has ever been clamped
    /// at `i64::MAX`/`i64::MIN` instead of silently wrapping. A saturated
    /// cell no longer tracks its true signed mass, so estimates that
    /// probe it are suspect — [`GenericCountSketch::estimate_checked`]
    /// excludes such rows and [`GenericCountSketch::health`] reports them.
    /// Maintained only with the `saturation-tracking` feature (default
    /// on); without it the bitset stays all-zero and clamping is silent.
    pub(crate) saturated: Vec<u64>,
    pub(crate) hashers: Vec<H>,
    pub(crate) signs: Vec<S>,
    pub(crate) seed: u64,
    pub(crate) combiner: Combiner,
    /// Upper bound on `|counter|` over every cell: the saturating sum of
    /// `|weight|` across all updates ever absorbed (refreshed to the
    /// tight `max |counter|` after bulk counter writes). While
    /// `abs_mass + n·|w| ≤ i64::MAX` a block of `n` weight-`w` updates
    /// provably cannot overflow any cell, so ingestion may take the
    /// branch-free pure-`i64` path and skip the per-cell `i128`
    /// clamp-and-flag entirely — the two-tier overflow scheme.
    pub(crate) abs_mass: u64,
}

/// Saturation report for a sketch: which fraction of the structure still
/// carries exact signed mass.
///
/// The paper's Lemma-3/4 analysis needs the median to be taken over rows
/// whose probed counters are exact; a saturated counter is effectively an
/// adversarially corrupted row. The median tolerates corrupted rows only
/// while the clean rows still form a strict majority, so the confidence
/// of an estimate degrades as `degraded_rows` grows — quantified by
/// [`SketchHealth::error_bound_widening`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchHealth {
    /// Total rows `t`.
    pub rows: usize,
    /// Buckets per row `b`.
    pub buckets: usize,
    /// Counters that have been clamped at least once.
    pub saturated_cells: usize,
    /// Rows containing at least one saturated counter.
    pub degraded_rows: usize,
}

impl SketchHealth {
    /// No counter has ever saturated: every guarantee holds as analyzed.
    pub fn is_healthy(&self) -> bool {
        self.saturated_cells == 0
    }

    /// Rows with no saturated counters — the rows whose estimates are
    /// still exact signed sums.
    pub fn clean_rows(&self) -> usize {
        self.rows - self.degraded_rows
    }

    /// The factor by which the estimate's failure-probability exponent
    /// widens. A degraded row can out-vote a clean one, so the median's
    /// margin shrinks from `t` to `t - 2·degraded`; the bound widens by
    /// `t / (t - 2·degraded)`, and becomes vacuous (`+∞`) once the clean
    /// rows no longer form a strict majority.
    pub fn error_bound_widening(&self) -> f64 {
        let margin = self.rows as i64 - 2 * self.degraded_rows as i64;
        if margin <= 0 {
            f64::INFINITY
        } else {
            self.rows as f64 / margin as f64
        }
    }
}

/// An estimate plus the evidence behind it, from
/// [`GenericCountSketch::estimate_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckedEstimate {
    /// The combined estimate, computed over the clean rows only (all
    /// rows, if every probed cell is saturated).
    pub value: i64,
    /// Rows whose probed counter was exact.
    pub clean_rows: usize,
    /// Rows whose probed counter had saturated.
    pub saturated_rows: usize,
}

impl CheckedEstimate {
    /// Whether the estimate carries the full analyzed guarantee: no
    /// probed counter had saturated.
    pub fn is_exact_evidence(&self) -> bool {
        self.saturated_rows == 0
    }
}

/// The paper-faithful instantiation: pairwise-independent polynomial
/// bucket hashes and pairwise-independent sign hashes.
pub type CountSketch = GenericCountSketch<PairwiseHash, PairwiseSign>;

/// Fast instantiation: multiply-shift bucket hashes (buckets rounded up to
/// a power of two) and tabulation sign hashes.
pub type FastCountSketch = GenericCountSketch<MultiplyShift, TabulationHash>;

impl<H: DrawBucketHasher, S: DrawSignHasher> GenericCountSketch<H, S> {
    /// Creates a sketch with the given dimensions, drawing all `2t` hash
    /// functions deterministically from `seed`. Two sketches created with
    /// equal `(params, seed)` share hash functions and may be added or
    /// subtracted.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        let mut seeds = SeedSequence::new(seed);
        let hashers: Vec<H> = (0..params.rows)
            .map(|_| H::draw_for(&mut seeds, params.buckets))
            .collect();
        let signs: Vec<S> = (0..params.rows).map(|_| S::draw_for(&mut seeds)).collect();
        // Constructions may round the bucket count up; take the real one.
        let buckets = hashers
            .first()
            .map(|h| h.num_buckets())
            .unwrap_or(params.buckets);
        debug_assert!(hashers.iter().all(|h| h.num_buckets() == buckets));
        Self {
            rows: params.rows,
            buckets,
            counters: vec![0; params.rows * buckets],
            saturated: vec![0; (params.rows * buckets).div_ceil(64)],
            hashers,
            signs,
            seed,
            combiner: Combiner::default(),
            abs_mass: 0,
        }
    }
}

impl<H: BucketHasher, S: SignHasher> GenericCountSketch<H, S> {
    /// Replaces the row combiner (default: the paper's median). Used by
    /// the mean-vs-median ablation.
    pub fn with_combiner(mut self, combiner: Combiner) -> Self {
        self.combiner = combiner;
        self
    }

    /// Number of rows `t`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of buckets per row `b` (after any rounding by the hash
    /// construction).
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The seed all hash functions were drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The active row combiner.
    pub fn combiner(&self) -> Combiner {
        self.combiner
    }

    /// The paper's `ADD(C, q)`.
    #[inline]
    pub fn add(&mut self, key: ItemKey) {
        self.update(key, 1);
    }

    /// Removes one occurrence (`h_i[q] -= s_i[q]`, the §4.2 first-pass
    /// step over `S1`).
    #[inline]
    pub fn remove(&mut self, key: ItemKey) {
        self.update(key, -1);
    }

    /// General turnstile update: adds `weight` occurrences (may be
    /// negative).
    ///
    /// Counters never wrap. Two-tier overflow handling: while the
    /// `abs_mass` watermark proves no cell can reach the `i64` limits the
    /// additions run branch-free in pure `i64`; once headroom is exhausted
    /// every update falls back to [`Self::update_exact`], whose `i128`
    /// clamp-and-flag is surfaced by [`Self::health`] and
    /// [`Self::estimate_checked`]. Both tiers produce bit-identical
    /// counters — the fast tier is only taken when clamping cannot occur.
    #[inline]
    pub fn update(&mut self, key: ItemKey, weight: i64) {
        match self.headroom_after(1, weight) {
            Some(mass) => {
                self.abs_mass = mass;
                let k = key.raw();
                for i in 0..self.rows {
                    let bucket = self.hashers[i].bucket(k);
                    let sign = self.signs[i].sign(k);
                    self.counters[i * self.buckets + bucket] += sign * weight;
                }
            }
            None => self.update_exact(key, weight),
        }
    }

    /// The exact slow tier: carries every cell sum in `i128` so even
    /// `sign · i64::MIN` is handled correctly, clamping and flagging any
    /// cell that would overflow. Public so the microbenchmarks can
    /// compare the tiers directly; [`Self::update`] dispatches here
    /// automatically when headroom runs out.
    #[inline]
    pub fn update_exact(&mut self, key: ItemKey, weight: i64) {
        self.abs_mass = self.abs_mass.saturating_add(weight.unsigned_abs());
        let k = key.raw();
        for i in 0..self.rows {
            let bucket = self.hashers[i].bucket(k);
            let sign = self.signs[i].sign(k);
            let idx = i * self.buckets + bucket;
            let sum = i128::from(self.counters[idx]) + i128::from(sign) * i128::from(weight);
            self.counters[idx] = self.clamp_and_flag(idx, sum);
        }
    }

    /// The watermark after absorbing `items` updates of `weight` each, or
    /// `None` if some cell could then exceed the `i64` range. Since
    /// `|counter| ≤ abs_mass` holds for every cell, `Some` proves the
    /// whole block is clamp-free.
    #[inline]
    pub(crate) fn headroom_after(&self, items: usize, weight: i64) -> Option<u64> {
        let total = self.abs_mass as u128 + items as u128 * weight.unsigned_abs() as u128;
        if total <= i64::MAX as u128 {
            Some(total as u64)
        } else {
            None
        }
    }

    /// Restores the `abs_mass` invariant (`|counter| ≤ abs_mass` for all
    /// cells) after counters were overwritten wholesale — snapshot
    /// restore, concurrent snapshot assembly. The tight bound
    /// `max |counter|` is the most headroom the invariant allows us to
    /// reclaim without replaying the stream.
    pub(crate) fn refresh_mass_floor(&mut self) {
        self.abs_mass = self
            .counters
            .iter()
            .map(|c| c.unsigned_abs())
            .max()
            .unwrap_or(0);
    }

    /// Clamps an exact `i128` cell value into `i64`, flagging the cell as
    /// saturated if clamping happened (flag elided without the
    /// `saturation-tracking` feature).
    #[inline]
    fn clamp_and_flag(&mut self, idx: usize, exact: i128) -> i64 {
        if exact > i128::from(i64::MAX) {
            self.flag_saturated(idx);
            i64::MAX
        } else if exact < i128::from(i64::MIN) {
            self.flag_saturated(idx);
            i64::MIN
        } else {
            exact as i64
        }
    }

    /// Records that cell `idx` has been clamped. With the
    /// `saturation-tracking` feature disabled this compiles to nothing:
    /// the bitset stays all-zero, trading diagnosability for one fewer
    /// random store on the (already slow) clamping tier.
    #[inline]
    fn flag_saturated(&mut self, idx: usize) {
        #[cfg(feature = "saturation-tracking")]
        {
            self.saturated[idx / 64] |= 1 << (idx % 64);
        }
        #[cfg(not(feature = "saturation-tracking"))]
        {
            let _ = idx;
        }
    }

    /// Whether the counter at `(row, bucket)` has ever been clamped.
    pub fn is_cell_saturated(&self, row: usize, bucket: usize) -> bool {
        let idx = row * self.buckets + bucket;
        self.saturated[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Saturation report: how much of the structure still carries exact
    /// signed mass, and how far the error bound has widened.
    pub fn health(&self) -> SketchHealth {
        let mut saturated_cells = 0;
        let mut degraded_rows = 0;
        for row in 0..self.rows {
            let mut row_hit = false;
            for bucket in 0..self.buckets {
                if self.is_cell_saturated(row, bucket) {
                    saturated_cells += 1;
                    row_hit = true;
                }
            }
            if row_hit {
                degraded_rows += 1;
            }
        }
        SketchHealth {
            rows: self.rows,
            buckets: self.buckets,
            saturated_cells,
            degraded_rows,
        }
    }

    /// Adds every occurrence of a stream, each with `weight`.
    ///
    /// Routed through the block-lane batch engine ([`crate::ingest`]);
    /// the resulting counters and saturation flags are bit-identical to
    /// calling [`Self::update`] per occurrence.
    pub fn absorb(&mut self, stream: &Stream, weight: i64) {
        self.update_batch_weighted(stream.as_slice(), weight);
    }

    /// Applies every signed update of a turnstile stream (the sketch is
    /// linear, so insertions and deletions are the same operation).
    pub fn absorb_turnstile(&mut self, stream: &cs_stream::TurnstileStream) {
        for u in stream.iter() {
            self.update(u.key, u.delta);
        }
    }

    /// Writes the `t` per-row estimates `C[i][h_i(q)]·s_i(q)` into `out`.
    pub fn row_estimates(&self, key: ItemKey, out: &mut Vec<i64>) {
        out.clear();
        let k = key.raw();
        for i in 0..self.rows {
            let bucket = self.hashers[i].bucket(k);
            let sign = self.signs[i].sign(k);
            // saturating: −1 · i64::MIN must not wrap (a clamped cell can
            // legitimately hold i64::MIN).
            out.push(sign.saturating_mul(self.counters[i * self.buckets + bucket]));
        }
    }

    /// The paper's `ESTIMATE(C, q)`: the combiner (median by default) of
    /// the per-row estimates.
    pub fn estimate(&self, key: ItemKey) -> i64 {
        let mut rows = Vec::with_capacity(self.rows);
        let mut scratch = Vec::with_capacity(self.rows);
        self.row_estimates(key, &mut rows);
        combine(self.combiner, &rows, &mut scratch)
    }

    /// Overflow-aware estimate: rows whose probed counter has saturated
    /// are excluded from the combine (they no longer carry the true
    /// signed mass), and the returned [`CheckedEstimate`] says how many
    /// rows of exact evidence back the value. If *every* probed cell is
    /// saturated the value falls back to combining the clamped counters —
    /// still the best available answer, but flagged as zero clean rows.
    pub fn estimate_checked(&self, key: ItemKey) -> CheckedEstimate {
        let k = key.raw();
        let mut clean = Vec::with_capacity(self.rows);
        let mut all = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let bucket = self.hashers[i].bucket(k);
            let sign = self.signs[i].sign(k);
            let est = sign.saturating_mul(self.counters[i * self.buckets + bucket]);
            all.push(est);
            if !self.is_cell_saturated(i, bucket) {
                clean.push(est);
            }
        }
        let mut scratch = Vec::with_capacity(self.rows);
        let evidence = if clean.is_empty() { &all } else { &clean };
        CheckedEstimate {
            value: combine(self.combiner, evidence, &mut scratch),
            clean_rows: clean.len(),
            saturated_rows: self.rows - clean.len(),
        }
    }

    /// Allocation-free estimate for hot loops: both buffers are reused.
    #[inline]
    pub fn estimate_with_scratch(&self, key: ItemKey, scratch: &mut EstimateScratch) -> i64 {
        self.row_estimates(key, &mut scratch.rows);
        combine(self.combiner, &scratch.rows, &mut scratch.sort)
    }

    /// Whether two sketches share dimensions and hash functions (equal
    /// seeds of the same construction imply equal functions).
    pub fn compatible<H2: BucketHasher, S2: SignHasher>(
        &self,
        other: &GenericCountSketch<H2, S2>,
    ) -> Result<(), CoreError> {
        if self.rows != other.rows || self.buckets != other.buckets {
            return Err(CoreError::DimensionMismatch {
                left: (self.rows, self.buckets),
                right: (other.rows, other.buckets),
            });
        }
        if self.seed != other.seed {
            return Err(CoreError::SeedMismatch {
                left: self.seed,
                right: other.seed,
            });
        }
        Ok(())
    }

    /// Adds another sketch into this one (`C += D`). The sketches must
    /// have been created with equal `(params, seed)` — §3.2: "if two
    /// sketches share the same hash functions ... we can add and subtract
    /// them".
    ///
    /// Strict about overflow: the whole addition is validated first, and
    /// if any cell would overflow `i64` the merge is refused with
    /// [`CoreError::CounterSaturated`] and `self` is left untouched
    /// (validate-then-apply, so a failed merge never half-applies). Use
    /// [`Self::merge_saturating`] when clamped degradation is preferred
    /// to refusal.
    pub fn merge(&mut self, other: &Self) -> Result<(), CoreError> {
        self.compatible(other)?;
        for (idx, (&c, &d)) in self.counters.iter().zip(&other.counters).enumerate() {
            if c.checked_add(d).is_none() {
                return Err(CoreError::CounterSaturated {
                    row: idx / self.buckets,
                    bucket: idx % self.buckets,
                });
            }
        }
        for (c, &d) in self.counters.iter_mut().zip(&other.counters) {
            *c += d;
        }
        for (w, &o) in self.saturated.iter_mut().zip(&other.saturated) {
            *w |= o;
        }
        // |c + d| ≤ |c| + |d| ≤ abs_mass + other.abs_mass cell-wise.
        self.abs_mass = self.abs_mass.saturating_add(other.abs_mass);
        Ok(())
    }

    /// Adds another sketch, clamping any overflowing cell at the `i64`
    /// limits and flagging it instead of refusing. The degradation is
    /// visible through [`Self::health`].
    pub fn merge_saturating(&mut self, other: &Self) -> Result<(), CoreError> {
        self.compatible(other)?;
        for idx in 0..self.counters.len() {
            let sum = i128::from(self.counters[idx]) + i128::from(other.counters[idx]);
            self.counters[idx] = self.clamp_and_flag(idx, sum);
        }
        for (w, &o) in self.saturated.iter_mut().zip(&other.saturated) {
            *w |= o;
        }
        self.abs_mass = self.abs_mass.saturating_add(other.abs_mass);
        Ok(())
    }

    /// Subtracts another sketch (`C -= D`), yielding a sketch of the
    /// difference of the two streams — the basis of the max-change
    /// algorithm. Validate-then-apply like [`Self::merge`]: refused with
    /// [`CoreError::CounterSaturated`] if any cell would overflow.
    pub fn subtract(&mut self, other: &Self) -> Result<(), CoreError> {
        self.compatible(other)?;
        for (idx, (&c, &d)) in self.counters.iter().zip(&other.counters).enumerate() {
            if c.checked_sub(d).is_none() {
                return Err(CoreError::CounterSaturated {
                    row: idx / self.buckets,
                    bucket: idx % self.buckets,
                });
            }
        }
        for (c, &d) in self.counters.iter_mut().zip(&other.counters) {
            *c -= d;
        }
        for (w, &o) in self.saturated.iter_mut().zip(&other.saturated) {
            *w |= o;
        }
        // |c − d| ≤ |c| + |d|, same bound as merge.
        self.abs_mass = self.abs_mass.saturating_add(other.abs_mass);
        Ok(())
    }

    /// Resets all counters to zero (hash functions are kept), including
    /// saturation flags. Headroom for the fast ingestion tier is fully
    /// restored.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.saturated.fill(0);
        self.abs_mass = 0;
    }

    /// Raw counter array (row-major), for tests and diagnostics.
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Mutable counter array — crate-internal, used by the concurrent
    /// wrapper's snapshot and the snapshot codec.
    pub(crate) fn counters_mut(&mut self) -> &mut [i64] {
        &mut self.counters
    }

    /// Saturation bitset words (row-major cell order, 64 cells per word)
    /// — crate-internal, persisted by the snapshot codec.
    pub(crate) fn saturated_words(&self) -> &[u64] {
        &self.saturated
    }

    /// Mutable saturation bitset — crate-internal, restored by the
    /// snapshot codec.
    pub(crate) fn saturated_words_mut(&mut self) -> &mut [u64] {
        &mut self.saturated
    }

    /// The `(bucket, sign)` cell a key maps to in each row, in row order.
    /// Exposes the hash functions without exposing the hasher types.
    pub fn row_cells(&self, key: ItemKey) -> impl Iterator<Item = (usize, i64)> + '_ {
        let k = key.raw();
        (0..self.rows).map(move |i| (self.hashers[i].bucket(k), self.signs[i].sign(k)))
    }

    /// Heap + inline bytes: counters plus the stored hash functions. This
    /// is the `O(tb)` term of the paper's space bound, with real constants.
    pub fn space_bytes(&self) -> usize {
        let counters = self.counters.capacity() * std::mem::size_of::<i64>();
        let hashers: usize = self.hashers.iter().map(|h| h.space_bytes()).sum();
        let signs: usize = self.signs.iter().map(|s| SignHasher::space_bytes(s)).sum();
        std::mem::size_of::<Self>() + counters + hashers + signs
    }
}

/// Reusable buffers for [`GenericCountSketch::estimate_with_scratch`].
#[derive(Debug, Default, Clone)]
pub struct EstimateScratch {
    pub(crate) rows: Vec<i64>,
    pub(crate) sort: Vec<i64>,
}

impl EstimateScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable lanes for [`GenericCountSketch::estimate_batch_with_scratch`]
/// — the read-path sibling of [`crate::ingest::IngestLanes`]. Row-major:
/// lane `i*BLOCK + j` holds row `i`'s sign-tagged bucket (and later its
/// signed row estimate) for the j-th key of the current block. Create
/// once and reuse; zeroing ~16 KiB of lanes per call would eat the
/// batch win.
#[derive(Debug, Clone)]
pub struct EstimateBatchScratch {
    /// Bucket index with the row's ±1 sign packed into bit 63 (a bucket
    /// index never reaches 2^63). One lane instead of two halves the
    /// staging traffic between the hash and gather passes, and the
    /// gather recovers the sign mask with a single arithmetic shift.
    pub(crate) buckets: [usize; BATCH_LANES],
    pub(crate) ests: [i64; BATCH_LANES],
    /// Per-key column buffer handed to the combiner (`t` values).
    pub(crate) rows: Vec<i64>,
    /// Combiner sort scratch (unused at network depths).
    pub(crate) sort: Vec<i64>,
}

/// Keys per read-path block. Twice the write path's
/// [`crate::ingest::BLOCK`]: the gather pass lives on memory-level
/// parallelism once the counter array outgrows L1, and a wider block
/// keeps more independent counter loads in flight; reads have no
/// two-tier overflow bookkeeping, so the wider lanes stay cheap.
pub(crate) const READ_BLOCK: usize = 2 * crate::ingest::BLOCK;

/// Lane count: one read block per row, sketch depths up to the
/// ingestion engine's [`crate::ingest::LANE_ROWS`].
const BATCH_LANES: usize = READ_BLOCK * crate::ingest::LANE_ROWS;

impl EstimateBatchScratch {
    /// Fresh (zeroed) lanes and empty combiner buffers.
    pub fn new() -> Self {
        Self {
            buckets: [0; BATCH_LANES],
            ests: [0; BATCH_LANES],
            rows: Vec::new(),
            sort: Vec::new(),
        }
    }
}

impl Default for EstimateBatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: BucketHasher, S: SignHasher> GenericCountSketch<H, S> {
    /// Batched `ESTIMATE(C, q)` over a block of keys: the answer for
    /// `keys[j]` lands in `out[j]`. Bit-identical to calling
    /// [`Self::estimate`] per key, for every combiner — the same row
    /// estimates `s_i(q)·C[i][h_i(q)]` (saturating multiply included)
    /// feed the same combiner; only the order of memory traffic changes.
    ///
    /// The kernel mirrors the write path's block engine
    /// ([`crate::ingest`]): each block of 64 keys is
    /// canonicalized once per hash family and hashed into the scratch
    /// lanes rows-outer (every key's `2t` multiply chains are
    /// independent and pipeline), then the counters are gathered
    /// **row-major** — each row's bucket array is walked for the whole
    /// block, keeping a block's worth of independent counter loads in
    /// flight per row — and finally each key's column is combined, at
    /// the common depths through a branch-free sorting-network median.
    /// Sketches taller than the lanes (t > 16) take the scalar path per
    /// key.
    ///
    /// `out` is cleared and refilled; no allocation happens beyond its
    /// (reused) capacity.
    pub fn estimate_batch_with_scratch(
        &self,
        keys: &[ItemKey],
        scratch: &mut EstimateBatchScratch,
        out: &mut Vec<i64>,
    ) {
        const BLOCK: usize = READ_BLOCK;
        out.clear();
        let lanes_fit = self.rows <= crate::ingest::LANE_ROWS;
        if !lanes_fit {
            for &key in keys {
                self.row_estimates(key, &mut scratch.rows);
                out.push(combine(self.combiner, &scratch.rows, &mut scratch.sort));
            }
            return;
        }
        // Results are written through a pre-sized slice rather than
        // `push`: the per-key capacity-and-length bookkeeping is the kind
        // of overhead this kernel exists to amortize away.
        out.resize(keys.len(), 0);
        let mut done = 0usize;
        let EstimateBatchScratch {
            buckets,
            ests,
            rows,
            sort,
        } = scratch;
        // At the network depths (median combiner, t ∈ {3,5,7,9}) the
        // combine pass is a fixed branch-free sorting network dispatched
        // once per call, and the gather stays block-wide: a whole chunk's
        // counter loads are independent and in flight together, which is
        // what keeps the kernel fast once the sketch outgrows L1.
        let network = self.combiner == Combiner::Median && matches!(self.rows, 3 | 5 | 7 | 9);
        let mut braw = [0u64; BLOCK];
        let mut sraw = [0u64; BLOCK];
        for chunk in keys.chunks(BLOCK) {
            let n = chunk.len();
            // Hash pass: each key is canonicalized ONCE per hash family
            // (for the Mersenne-field families that is the `mod p` fold,
            // which is idempotent) and the canonical value feeds all `t`
            // row functions — the scalar path re-folds inside every one
            // of the `2t` evaluations. Rows outer keeps the per-key
            // multiply chains independent so they pipeline.
            for ((b, s), key) in braw.iter_mut().zip(&mut sraw).zip(chunk) {
                let k = key.raw();
                *b = self.hashers[0].canon(k);
                *s = self.signs[0].canon(k);
            }
            for (i, (h, sg)) in self.hashers.iter().zip(&self.signs).enumerate() {
                let bl = &mut buckets[i * BLOCK..i * BLOCK + n];
                for ((&k, &ks), b) in braw[..n].iter().zip(&sraw[..n]).zip(bl) {
                    // Sign −1 sets bit 63 of the lane (`±1 >> 1` is the
                    // 0/−1 mask); the bucket index lives in the low bits.
                    *b = h.bucket_canon(k)
                        | (((sg.sign_canon(ks) >> 1) as usize) & (1usize << 63));
                }
            }
            // Gather pass: row-major counter reads, branch-free row
            // estimates. The lane's sign bit arithmetic-shifts back into
            // a 0/−1 mask, and the ±1 multiply is mask arithmetic (m = 0
            // keeps v, m = −1 two's-complement negates, and the wrapping
            // `fix` turns the one overflow, −i64::MIN, into i64::MAX
            // exactly like `saturating_mul(-1, ·)`) — branch-free, which
            // matters because the sign is a fair coin, and off the
            // multiply port the hash chains keep saturated.
            for (i, row) in self.counters.chunks_exact(self.buckets).enumerate() {
                let bl = &buckets[i * BLOCK..i * BLOCK + n];
                let el = &mut ests[i * BLOCK..i * BLOCK + n];
                for (&b, e) in bl.iter().zip(el) {
                    let m = (b as i64) >> 63;
                    let v = row[b & (usize::MAX >> 1)];
                    let w = (v ^ m).wrapping_sub(m);
                    let fix = ((v == i64::MIN) as i64).wrapping_neg() & m;
                    *e = w.wrapping_add(fix);
                }
            }
            // Combine pass: transpose one key's column out of the lanes
            // (t strided L1 reads) and run the combiner — at the network
            // depths that is a branch-free sorting network whose input
            // array fills straight from the transposed reads.
            let dst = &mut out[done..done + n];
            if network {
                macro_rules! net {
                    ($f:ident, $($i:literal),+) => {
                        for (j, d) in dst.iter_mut().enumerate() {
                            *d = crate::median::$f([$(ests[$i * BLOCK + j]),+]);
                        }
                    };
                }
                match self.rows {
                    3 => net!(median3, 0, 1, 2),
                    5 => net!(median5, 0, 1, 2, 3, 4),
                    7 => net!(median7, 0, 1, 2, 3, 4, 5, 6),
                    9 => net!(median9, 0, 1, 2, 3, 4, 5, 6, 7, 8),
                    _ => unreachable!("the network guard admits only 3/5/7/9"),
                }
            } else {
                for (j, d) in dst.iter_mut().enumerate() {
                    rows.clear();
                    for i in 0..self.rows {
                        rows.push(ests[i * BLOCK + j]);
                    }
                    *d = combine(self.combiner, rows, sort);
                }
            }
            done += n;
        }
    }

    /// Convenience wrapper around [`Self::estimate_batch_with_scratch`]
    /// that allocates its own scratch and output. Per-call cost makes it
    /// the wrong entry point for hot loops; callers with a standing
    /// scratch should use the `_with_scratch` form.
    pub fn estimate_batch(&self, keys: &[ItemKey]) -> Vec<i64> {
        let mut scratch = EstimateBatchScratch::new();
        let mut out = Vec::with_capacity(keys.len());
        self.estimate_batch_with_scratch(keys, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Zipf, ZipfStreamKind};
    use proptest::prelude::*;

    fn small() -> CountSketch {
        CountSketch::new(SketchParams::new(5, 64), 42)
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = small();
        assert_eq!(s.estimate(ItemKey(1)), 0);
        assert_eq!(s.estimate(ItemKey(999)), 0);
    }

    #[test]
    fn single_item_exact_without_collisions() {
        let mut s = small();
        for _ in 0..100 {
            s.add(ItemKey(7));
        }
        // Only one item in the sketch: every row estimate is exact.
        assert_eq!(s.estimate(ItemKey(7)), 100);
    }

    #[test]
    fn add_then_remove_cancels() {
        let mut s = small();
        for _ in 0..10 {
            s.add(ItemKey(3));
        }
        for _ in 0..10 {
            s.remove(ItemKey(3));
        }
        assert!(s.counters().iter().all(|&c| c == 0));
    }

    #[test]
    fn update_weight_equals_repeated_add() {
        let mut a = small();
        let mut b = small();
        for _ in 0..25 {
            a.add(ItemKey(9));
        }
        b.update(ItemKey(9), 25);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn counter_sum_per_row_tracks_signed_mass() {
        // Each add changes exactly one counter per row by ±1, so each
        // row's L1 mass equals the number of updates when no cancellation.
        let mut s = small();
        s.add(ItemKey(1));
        let nonzero = s.counters().iter().filter(|&&c| c != 0).count();
        assert_eq!(nonzero, 5, "one counter per row");
    }

    #[test]
    fn estimates_unbiased_on_zipf() {
        // Average the estimate of the top item over several seeds: should
        // land near the true count.
        let zipf = Zipf::new(500, 1.0);
        let stream = zipf.stream(20_000, 9, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let truth = exact.count(ItemKey(0)) as f64;
        let mut total = 0.0;
        let trials = 10;
        for seed in 0..trials {
            let mut s = CountSketch::new(SketchParams::new(5, 512), seed);
            s.absorb(&stream, 1);
            total += s.estimate(ItemKey(0)) as f64;
        }
        let avg = total / trials as f64;
        assert!(
            (avg - truth).abs() < 0.05 * truth,
            "avg {avg} vs truth {truth}"
        );
    }

    #[test]
    fn error_within_8_gamma_on_zipf() {
        // Lemma 4's bound, checked empirically for the top-20 items.
        let zipf = Zipf::new(2000, 1.0);
        let stream = zipf.stream(50_000, 3, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let k = 20;
        let b = 1024;
        let gamma = cs_stream::moments::gamma(&exact, k, b);
        let mut s = CountSketch::new(SketchParams::new(11, b), 77);
        s.absorb(&stream, 1);
        for rank in 0..k as u64 {
            let truth = exact.count(ItemKey(rank)) as i64;
            let est = s.estimate(ItemKey(rank));
            assert!(
                (est - truth).abs() as f64 <= 8.0 * gamma,
                "rank {rank}: est {est}, truth {truth}, 8γ = {}",
                8.0 * gamma
            );
        }
    }

    #[test]
    fn merge_equals_sketching_concatenation() {
        let zipf = Zipf::new(100, 1.0);
        let s1 = zipf.stream(2000, 1, ZipfStreamKind::Sampled);
        let s2 = zipf.stream(2000, 2, ZipfStreamKind::Sampled);
        let params = SketchParams::new(5, 128);
        let mut a = CountSketch::new(params, 7);
        a.absorb(&s1, 1);
        let mut b = CountSketch::new(params, 7);
        b.absorb(&s2, 1);
        a.merge(&b).unwrap();

        let mut whole = CountSketch::new(params, 7);
        whole.absorb(&s1, 1);
        whole.absorb(&s2, 1);
        assert_eq!(a.counters(), whole.counters());
    }

    #[test]
    fn subtract_sketches_difference_vector() {
        let params = SketchParams::new(5, 128);
        let mut a = CountSketch::new(params, 3);
        let mut b = CountSketch::new(params, 3);
        for _ in 0..50 {
            a.add(ItemKey(1));
        }
        for _ in 0..20 {
            b.add(ItemKey(1));
        }
        a.subtract(&b).unwrap();
        assert_eq!(a.estimate(ItemKey(1)), 30);
    }

    #[test]
    fn merge_rejects_dimension_mismatch() {
        let mut a = CountSketch::new(SketchParams::new(5, 64), 1);
        let b = CountSketch::new(SketchParams::new(5, 128), 1);
        assert!(matches!(
            a.merge(&b),
            Err(CoreError::DimensionMismatch { .. })
        ));
        let c = CountSketch::new(SketchParams::new(7, 64), 1);
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn merge_rejects_seed_mismatch() {
        let mut a = CountSketch::new(SketchParams::new(5, 64), 1);
        let b = CountSketch::new(SketchParams::new(5, 64), 2);
        assert_eq!(
            a.merge(&b),
            Err(CoreError::SeedMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn clear_zeroes_but_keeps_functions() {
        let mut s = small();
        s.add(ItemKey(5));
        s.clear();
        assert!(s.counters().iter().all(|&c| c == 0));
        // Same hash functions: a fresh add lands in the same cells.
        let mut fresh = small();
        s.add(ItemKey(5));
        fresh.add(ItemKey(5));
        assert_eq!(s.counters(), fresh.counters());
    }

    #[test]
    fn same_seed_same_functions() {
        let mut a = small();
        let mut b = small();
        let zipf = Zipf::new(50, 1.0);
        let stream = zipf.stream(1000, 4, ZipfStreamKind::Sampled);
        a.absorb(&stream, 1);
        b.absorb(&stream, 1);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn fast_sketch_rounds_buckets_to_power_of_two() {
        let s = FastCountSketch::new(SketchParams::new(3, 100), 5);
        assert_eq!(s.buckets(), 128);
        assert_eq!(s.counters().len(), 3 * 128);
    }

    #[test]
    fn fast_sketch_estimates_reasonably() {
        let zipf = Zipf::new(500, 1.0);
        let stream = zipf.stream(20_000, 6, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let mut s = FastCountSketch::new(SketchParams::new(7, 512), 11);
        s.absorb(&stream, 1);
        let truth = exact.count(ItemKey(0)) as i64;
        let est = s.estimate(ItemKey(0));
        assert!(
            (est - truth).abs() < truth / 5,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn scratch_estimate_matches_plain() {
        let zipf = Zipf::new(100, 1.0);
        let stream = zipf.stream(5000, 8, ZipfStreamKind::Sampled);
        let mut s = small();
        s.absorb(&stream, 1);
        let mut scratch = EstimateScratch::new();
        for id in 0..100u64 {
            assert_eq!(
                s.estimate(ItemKey(id)),
                s.estimate_with_scratch(ItemKey(id), &mut scratch)
            );
        }
    }

    #[test]
    fn batch_estimate_matches_scalar_all_combiners() {
        let zipf = Zipf::new(200, 1.0);
        let stream = zipf.stream(10_000, 13, ZipfStreamKind::Sampled);
        for combiner in [Combiner::Median, Combiner::Mean, Combiner::TrimmedMean] {
            let mut s = small().with_combiner(combiner);
            s.absorb(&stream, 1);
            let keys: Vec<ItemKey> = (0..300u64).map(ItemKey).collect();
            let batch = s.estimate_batch(&keys);
            for (j, &key) in keys.iter().enumerate() {
                assert_eq!(batch[j], s.estimate(key), "{combiner:?} key {key:?}");
            }
        }
    }

    #[test]
    fn batch_estimate_block_boundaries() {
        use super::READ_BLOCK as BLOCK;
        let mut s = small();
        let stream = Zipf::new(100, 1.0).stream(5_000, 4, ZipfStreamKind::Sampled);
        s.absorb(&stream, 1);
        let mut scratch = EstimateBatchScratch::new();
        let mut out = Vec::new();
        for len in [0usize, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 7] {
            let keys: Vec<ItemKey> = (0..len as u64).map(ItemKey).collect();
            s.estimate_batch_with_scratch(&keys, &mut scratch, &mut out);
            assert_eq!(out.len(), len);
            for (j, &key) in keys.iter().enumerate() {
                assert_eq!(out[j], s.estimate(key), "len {len} key {key:?}");
            }
        }
    }

    #[test]
    fn batch_estimate_tall_sketch_takes_scalar_path() {
        // 17 rows exceeds the lane height; the fallback must agree too.
        let mut s = CountSketch::new(SketchParams::new(17, 32), 9);
        let stream = Zipf::new(50, 1.0).stream(2_000, 6, ZipfStreamKind::Sampled);
        s.absorb(&stream, 1);
        let keys: Vec<ItemKey> = (0..80u64).map(ItemKey).collect();
        let batch = s.estimate_batch(&keys);
        for (j, &key) in keys.iter().enumerate() {
            assert_eq!(batch[j], s.estimate(key));
        }
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn batch_estimate_matches_scalar_on_saturated_cells() {
        let mut s = CountSketch::new(SketchParams::new(3, 4), 5);
        for id in 0..16u64 {
            s.update(ItemKey(id), i64::MAX);
            s.update(ItemKey(id), i64::MAX);
            s.update(ItemKey(id + 100), i64::MIN);
        }
        assert!(!s.health().is_healthy());
        let keys: Vec<ItemKey> = (0..200u64).map(ItemKey).collect();
        let batch = s.estimate_batch(&keys);
        for (j, &key) in keys.iter().enumerate() {
            assert_eq!(batch[j], s.estimate(key), "key {key:?}");
        }
    }

    #[test]
    fn combiner_can_be_swapped() {
        let s = small().with_combiner(Combiner::Mean);
        assert_eq!(s.combiner(), Combiner::Mean);
    }

    #[test]
    fn space_bytes_grows_with_dimensions() {
        let small = CountSketch::new(SketchParams::new(3, 64), 0);
        let big = CountSketch::new(SketchParams::new(9, 4096), 0);
        assert!(big.space_bytes() > small.space_bytes());
        assert!(small.space_bytes() >= 3 * 64 * 8);
    }

    #[test]
    fn snapshot_roundtrip_preserves_estimates() {
        let mut s = small();
        let zipf = Zipf::new(50, 1.0);
        s.absorb(&zipf.stream(1000, 2, ZipfStreamKind::Sampled), 1);
        let bytes = s.to_snapshot_bytes();
        let back = CountSketch::from_snapshot_bytes(&bytes).unwrap();
        for id in 0..50u64 {
            assert_eq!(s.estimate(ItemKey(id)), back.estimate(ItemKey(id)));
        }
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn update_saturates_instead_of_wrapping() {
        let mut s = CountSketch::new(SketchParams::new(1, 1), 0);
        s.update(ItemKey(1), i64::MAX);
        s.update(ItemKey(1), i64::MAX);
        let c = s.counters()[0];
        assert!(c == i64::MAX || c == i64::MIN, "clamped, not wrapped: {c}");
        assert!(s.is_cell_saturated(0, 0));
        let health = s.health();
        assert_eq!(health.saturated_cells, 1);
        assert_eq!(health.degraded_rows, 1);
        assert!(!health.is_healthy());
        // Estimating must not panic even on the clamped cell.
        let _ = s.estimate(ItemKey(1));
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn negative_saturation_clamps_at_min() {
        let mut s = CountSketch::new(SketchParams::new(1, 1), 0);
        s.update(ItemKey(1), i64::MIN);
        s.update(ItemKey(1), i64::MIN);
        let c = s.counters()[0];
        assert!(c == i64::MIN || c == i64::MAX);
        assert!(s.is_cell_saturated(0, 0));
        // −1 · i64::MIN inside row_estimates must not overflow either.
        let _ = s.estimate(ItemKey(2));
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn strict_merge_refuses_overflow_and_leaves_self_untouched() {
        let params = SketchParams::new(1, 1);
        let mut a = CountSketch::new(params, 0);
        let mut b = CountSketch::new(params, 0);
        a.update(ItemKey(1), i64::MAX);
        b.update(ItemKey(1), i64::MAX);
        let before = a.counters().to_vec();
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err, CoreError::CounterSaturated { row: 0, bucket: 0 });
        assert_eq!(a.counters(), &before[..], "validate-then-apply");
        // The saturating variant degrades gracefully instead.
        a.merge_saturating(&b).unwrap();
        assert!(a.is_cell_saturated(0, 0));
        assert!(!a.health().is_healthy());
    }

    #[test]
    fn subtract_refuses_overflow() {
        let params = SketchParams::new(1, 1);
        let mut a = CountSketch::new(params, 0);
        let mut b = CountSketch::new(params, 0);
        a.update(ItemKey(1), i64::MAX);
        b.update(ItemKey(1), i64::MIN);
        assert!(matches!(
            a.subtract(&b),
            Err(CoreError::CounterSaturated { .. })
        ));
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn estimate_checked_excludes_saturated_rows() {
        // Row 0 of a 3-row sketch saturates; the checked estimate should
        // report 2 clean rows and still produce a sane value.
        let mut s = CountSketch::new(SketchParams::new(3, 4), 5);
        for _ in 0..10 {
            s.add(ItemKey(9));
        }
        let clean = s.estimate_checked(ItemKey(9));
        assert_eq!(clean.saturated_rows, 0);
        assert_eq!(clean.clean_rows, 3);
        assert!(clean.is_exact_evidence());
        assert_eq!(clean.value, s.estimate(ItemKey(9)));

        // Saturate every cell of the sketch via massive updates on many keys.
        for id in 0..64u64 {
            s.update(ItemKey(id), i64::MAX);
            s.update(ItemKey(id), i64::MAX);
        }
        let degraded = s.estimate_checked(ItemKey(9));
        assert!(degraded.saturated_rows > 0);
        assert!(!degraded.is_exact_evidence());
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn clear_resets_saturation() {
        let mut s = CountSketch::new(SketchParams::new(1, 1), 0);
        s.update(ItemKey(1), i64::MAX);
        s.update(ItemKey(1), i64::MAX);
        assert!(!s.health().is_healthy());
        s.clear();
        assert!(s.health().is_healthy());
        assert!(!s.is_cell_saturated(0, 0));
    }

    #[test]
    fn health_widening_math() {
        let h = SketchHealth {
            rows: 5,
            buckets: 64,
            saturated_cells: 0,
            degraded_rows: 0,
        };
        assert!(h.is_healthy());
        assert_eq!(h.error_bound_widening(), 1.0);
        let h = SketchHealth {
            rows: 5,
            buckets: 64,
            saturated_cells: 3,
            degraded_rows: 1,
        };
        assert_eq!(h.clean_rows(), 4);
        assert!((h.error_bound_widening() - 5.0 / 3.0).abs() < 1e-12);
        let h = SketchHealth {
            rows: 5,
            buckets: 64,
            saturated_cells: 9,
            degraded_rows: 3,
        };
        assert!(h.error_bound_widening().is_infinite());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_turnstile_net_zero(ids in prop::collection::vec(0u64..50, 0..100)) {
            // Adding then removing every occurrence leaves all counters 0.
            let mut s = CountSketch::new(SketchParams::new(3, 32), 1);
            for &id in &ids {
                s.add(ItemKey(id));
            }
            for &id in &ids {
                s.remove(ItemKey(id));
            }
            prop_assert!(s.counters().iter().all(|&c| c == 0));
        }

        #[test]
        fn prop_merge_commutes(seed: u64, ids1 in prop::collection::vec(0u64..20, 0..50),
                               ids2 in prop::collection::vec(0u64..20, 0..50)) {
            let params = SketchParams::new(3, 16);
            let mut a = CountSketch::new(params, seed);
            let mut b = CountSketch::new(params, seed);
            for &id in &ids1 { a.add(ItemKey(id)); }
            for &id in &ids2 { b.add(ItemKey(id)); }
            let mut ab = a.clone();
            ab.merge(&b).unwrap();
            let mut ba = b.clone();
            ba.merge(&a).unwrap();
            prop_assert_eq!(ab.counters(), ba.counters());
        }

        #[test]
        fn prop_single_row_single_bucket_is_signed_sum(ids in prop::collection::vec(0u64..10, 0..50)) {
            // With b = 1 every item hits the same counter: the estimate of
            // q is sum_j s(q_j) * s(q) — check internal consistency: the
            // counter equals the signed sum.
            let mut s = CountSketch::new(SketchParams::new(1, 1), 3);
            for &id in &ids {
                s.add(ItemKey(id));
            }
            let total: i64 = s.counters().iter().sum();
            let mut expect = 0i64;
            let probe = CountSketch::new(SketchParams::new(1, 1), 3);
            // Recompute via fresh per-item single adds.
            for &id in &ids {
                let mut one = probe.clone();
                one.add(ItemKey(id));
                expect += one.counters()[0];
            }
            prop_assert_eq!(total, expect);
        }
    }
}
