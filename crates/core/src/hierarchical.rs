//! Extension: hierarchical Count-Sketch — heavy-hitter recovery *from
//! the sketch alone*, with no second pass.
//!
//! The paper's algorithms identify candidates by streaming: APPROXTOP
//! re-estimates arriving items, and the §4.2 max-change algorithm makes
//! a second pass over `S1` and `S2` to find the items with large
//! `|n̂_q|`. When the streams cannot be replayed (they were sketched on
//! another machine and only the sketch was shipped — precisely the
//! §4.2 deployment), recovery must come from the sketch itself.
//!
//! The standard fix (dyadic decomposition, as in Cormode–Muthukrishnan's
//! hierarchical search and the group-testing structures of Gilbert et
//! al. \[9\]) is one Count-Sketch per *prefix level* of the key space:
//! level `ℓ` sketches the `2^ℓ` length-`ℓ` key prefixes. An item update
//! touches one node per level; a query walks the prefix tree from the
//! root, descending into a child only when its estimated weight clears
//! the threshold — `O(bits · candidates)` sketch probes instead of a
//! stream pass.
//!
//! **Signed streams and cancellation.** A difference stream `S2 − S1`
//! carries positive and negative mass, and opposite-signed items under
//! one prefix cancel in a single hierarchy — a +600 trender can hide a
//! −800 vanisher in the same subtree. To keep descent sound we maintain
//! *two* hierarchies, one for positive updates and one for (absolute)
//! negative updates: the descent criterion `pos + neg ≥ threshold` never
//! cancels, so no item with `|Δ| ≥ threshold` is pruned (up to sketch
//! error); the leaf estimate is `pos − neg`, the signed change. Cost:
//! 2× the counters — the price of removing the second pass.

use crate::params::SketchParams;
use crate::sketch::{CountSketch, EstimateScratch};
use cs_hash::ItemKey;
use cs_stream::Stream;

/// A recovered heavy item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyItem {
    /// The full key.
    pub key: ItemKey,
    /// The leaf-level estimate of its signed weight.
    pub estimate: i64,
}

/// A dyadic hierarchy of Count-Sketch pairs over the key space
/// `[0, 2^bits)`.
///
/// ```
/// use cs_core::hierarchical::HierarchicalCountSketch;
/// use cs_core::SketchParams;
/// use cs_hash::ItemKey;
///
/// let mut h = HierarchicalCountSketch::new(16, SketchParams::new(5, 256), 1);
/// h.update(ItemKey(4242), 900);    // a trender
/// h.update(ItemKey(999), -700);    // a vanisher
/// // Recover both from the sketch alone — no stream replay.
/// let heavy = h.heavy_items(500, 10);
/// assert_eq!(heavy[0].key, ItemKey(4242));
/// assert_eq!(heavy[1].key, ItemKey(999));
/// assert!(heavy[1].estimate < 0);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalCountSketch {
    bits: u32,
    /// `pos[ℓ]` sketches positive mass of length-`ℓ+1` prefixes.
    pos: Vec<CountSketch>,
    /// `neg[ℓ]` sketches absolute negative mass.
    neg: Vec<CountSketch>,
    /// Signed total weight (the root node, exact).
    total: i64,
}

impl HierarchicalCountSketch {
    /// Creates the hierarchy for keys in `[0, 2^bits)`, each level a
    /// pair of `params`-sized sketches. Typical use:
    /// `bits = ⌈log₂(universe)⌉`.
    ///
    /// # Panics
    /// Panics if `bits` is 0 or exceeds 63.
    pub fn new(bits: u32, params: SketchParams, seed: u64) -> Self {
        assert!((1..=63).contains(&bits), "bits must be in [1, 63]");
        // Positive and negative sketches at the same level share hash
        // functions (same derived seed) so their difference estimates
        // the signed weight of a prefix consistently.
        let level_seed = |level: u32| seed ^ 0x1E7E_1000u64.wrapping_add(level as u64);
        let pos = (0..bits)
            .map(|l| CountSketch::new(params, level_seed(l)))
            .collect();
        let neg = (0..bits)
            .map(|l| CountSketch::new(params, level_seed(l)))
            .collect();
        Self {
            bits,
            pos,
            neg,
            total: 0,
        }
    }

    /// Key-space width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Adds `weight` occurrences of `key` (negative for deletions /
    /// first-stream absorption).
    ///
    /// # Panics
    /// Panics if the key is outside `[0, 2^bits)`.
    pub fn update(&mut self, key: ItemKey, weight: i64) {
        let k = key.raw();
        assert!(
            self.bits == 63 || k < (1u64 << self.bits),
            "key {k} outside [0, 2^{})",
            self.bits
        );
        self.total += weight;
        let (side, magnitude) = if weight >= 0 {
            (&mut self.pos, weight)
        } else {
            (&mut self.neg, -weight)
        };
        for level in 0..self.bits {
            let prefix = k >> (self.bits - 1 - level);
            side[level as usize].update(ItemKey(prefix), magnitude);
        }
    }

    /// Absorbs a whole stream with the given weight per occurrence.
    pub fn absorb(&mut self, stream: &Stream, weight: i64) {
        for key in stream.iter() {
            self.update(key, weight);
        }
    }

    /// Merges another hierarchy built with the same `(bits, params,
    /// seed)`.
    pub fn merge(&mut self, other: &Self) -> Result<(), crate::error::CoreError> {
        if self.bits != other.bits {
            return Err(crate::error::CoreError::InvalidParameter(format!(
                "bits mismatch: {} vs {}",
                self.bits, other.bits
            )));
        }
        for (a, b) in self.pos.iter_mut().zip(&other.pos) {
            a.merge(b)?;
        }
        for (a, b) in self.neg.iter_mut().zip(&other.neg) {
            a.merge(b)?;
        }
        self.total += other.total;
        Ok(())
    }

    /// The signed mass estimate of a prefix at a level, and the
    /// non-cancelling descent mass `pos + neg` (both clamped at 0).
    fn probe(&self, level: u32, prefix: u64, scratch: &mut EstimateScratch) -> (i64, u64) {
        let p = self.pos[level as usize]
            .estimate_with_scratch(ItemKey(prefix), scratch)
            .max(0);
        let n = self.neg[level as usize]
            .estimate_with_scratch(ItemKey(prefix), scratch)
            .max(0);
        (p - n, p as u64 + n as u64)
    }

    /// The leaf-level signed point estimate for a full key.
    pub fn estimate(&self, key: ItemKey) -> i64 {
        let mut scratch = EstimateScratch::new();
        self.probe(self.bits - 1, key.raw(), &mut scratch).0
    }

    /// Recovers all keys whose |signed weight estimate| is at least
    /// `threshold`, by descending the prefix tree. Descent prunes on the
    /// *non-cancelling* mass `pos + neg ≥ threshold` (so a heavy change
    /// can never be masked by an opposite change in the same subtree),
    /// and leaves are filtered by the signed estimate — an item whose
    /// inserts and deletes cancel is touched-heavy but not reported.
    /// `max_results` bounds the output (and, together with `threshold`,
    /// the work).
    ///
    /// Results are sorted by |signed estimate| descending (ties: key
    /// ascending).
    pub fn heavy_items(&self, threshold: i64, max_results: usize) -> Vec<HeavyItem> {
        assert!(threshold > 0, "threshold must be positive");
        let mut out: Vec<HeavyItem> = Vec::new();
        let mut scratch = EstimateScratch::new();
        let mut frontier: Vec<u64> = vec![0, 1];
        for level in 0..self.bits {
            let mut next = Vec::new();
            for &prefix in &frontier {
                let (signed, mass) = self.probe(level, prefix, &mut scratch);
                if mass < threshold as u64 {
                    continue;
                }
                if level == self.bits - 1 {
                    if signed.unsigned_abs() >= threshold as u64 {
                        out.push(HeavyItem {
                            key: ItemKey(prefix),
                            estimate: signed,
                        });
                    }
                } else {
                    next.push(prefix << 1);
                    next.push((prefix << 1) | 1);
                }
            }
            // Work cap: keep the strongest prefixes if the frontier
            // explodes (threshold set below the noise floor).
            let cap = 4 * max_results.max(1);
            if next.len() > 2 * cap {
                let lvl = (level + 1).min(self.bits - 1);
                next.sort_by_key(|&p| std::cmp::Reverse(self.probe(lvl, p, &mut scratch).1));
                next.truncate(2 * cap);
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out.sort_by(|a, b| {
            b.estimate
                .unsigned_abs()
                .cmp(&a.estimate.unsigned_abs())
                .then(a.key.cmp(&b.key))
        });
        out.truncate(max_results);
        out
    }

    /// Total signed stream weight (exact).
    pub fn total_weight(&self) -> i64 {
        self.total
    }

    /// Counter + hash bytes across all levels (both sign sides).
    pub fn space_bytes(&self) -> usize {
        self.pos.iter().map(|s| s.space_bytes()).sum::<usize>()
            + self.neg.iter().map(|s| s.space_bytes()).sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{Zipf, ZipfStreamKind};

    fn hierarchy(bits: u32) -> HierarchicalCountSketch {
        HierarchicalCountSketch::new(bits, SketchParams::new(5, 256), 42)
    }

    #[test]
    fn recovers_single_heavy_item() {
        let mut h = hierarchy(16);
        h.update(ItemKey(12345), 1000);
        for i in 0..200u64 {
            h.update(ItemKey(i), 1);
        }
        let heavy = h.heavy_items(500, 10);
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy[0].key, ItemKey(12345));
        assert!((heavy[0].estimate - 1000).abs() <= 50);
    }

    #[test]
    fn recovers_multiple_heavy_items_sorted() {
        let mut h = hierarchy(16);
        h.update(ItemKey(100), 900);
        h.update(ItemKey(20_000), 700);
        h.update(ItemKey(65_535), 500);
        for i in 1000..1400u64 {
            h.update(ItemKey(i), 1);
        }
        let heavy = h.heavy_items(300, 10);
        let keys: Vec<u64> = heavy.iter().map(|x| x.key.raw()).collect();
        assert_eq!(keys, vec![100, 20_000, 65_535]);
    }

    #[test]
    fn negative_weights_recovered_by_magnitude() {
        // The §4.2 use case: a difference stream with a vanishing item.
        // Keys 7 and 9 share high-level prefixes, so a single signed
        // hierarchy would cancel them (-800 + 600 = -200 < threshold);
        // the pos/neg split must still find both.
        let mut h = hierarchy(12);
        h.update(ItemKey(7), -800);
        h.update(ItemKey(9), 600);
        let heavy = h.heavy_items(400, 10);
        assert_eq!(heavy.len(), 2);
        assert_eq!(heavy[0].key, ItemKey(7));
        assert!(heavy[0].estimate < 0);
        assert_eq!(heavy[1].key, ItemKey(9));
        assert!(heavy[1].estimate > 0);
    }

    #[test]
    fn one_pass_max_change_from_sketches_only() {
        // Absorb S1 with -1 and S2 with +1; recover the planted change
        // without ever re-reading the streams.
        let zipf = Zipf::new(2_000, 1.0);
        let s1 = zipf.stream(20_000, 1, ZipfStreamKind::Sampled);
        let s2 = zipf.stream(20_000, 2, ZipfStreamKind::Sampled);
        let mut h = HierarchicalCountSketch::new(16, SketchParams::new(7, 1024), 9);
        h.absorb(&s1, -1);
        h.absorb(&s2, 1);
        // Plant a trender; its mass must dominate pos+neg of the
        // background prefixes (each background prefix holds ~2n/2^ℓ
        // touched mass at level ℓ, so the threshold must clear the
        // level-1 mass of ~20k per child... we instead ask only for the
        // top result, which the cap-and-sort path handles).
        h.update(ItemKey(60_000), 8_000);
        let heavy = h.heavy_items(6_000, 5);
        assert!(
            heavy.iter().any(|x| x.key == ItemKey(60_000)),
            "planted trender missing from {heavy:?}"
        );
    }

    #[test]
    fn merge_combines_hierarchies() {
        let mut a = hierarchy(10);
        let mut b = hierarchy(10);
        a.update(ItemKey(5), 400);
        b.update(ItemKey(5), 400);
        b.update(ItemKey(6), 100);
        a.merge(&b).unwrap();
        assert_eq!(a.total_weight(), 900);
        let heavy = a.heavy_items(500, 5);
        assert_eq!(heavy[0].key, ItemKey(5));
        assert!((heavy[0].estimate - 800).abs() <= 20);
    }

    #[test]
    fn merge_rejects_bits_mismatch() {
        let mut a = hierarchy(10);
        let b = hierarchy(12);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn empty_hierarchy_reports_nothing() {
        let h = hierarchy(8);
        assert!(h.heavy_items(1, 10).is_empty());
        assert_eq!(h.total_weight(), 0);
    }

    #[test]
    fn cancelled_item_not_reported() {
        // Equal positive and negative mass on the SAME key: descent may
        // reach the leaf (mass = 1000) but the signed estimate is 0, so
        // it must not be reported.
        let mut h = hierarchy(8);
        h.update(ItemKey(3), 500);
        h.update(ItemKey(3), -500);
        assert!(h.heavy_items(100, 10).is_empty());
        assert_eq!(h.estimate(ItemKey(3)), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn key_out_of_range_rejected() {
        hierarchy(8).update(ItemKey(256), 1);
    }

    #[test]
    fn max_results_caps_output() {
        let mut h = hierarchy(10);
        for i in 0..20u64 {
            h.update(ItemKey(i * 37), 1000);
        }
        let heavy = h.heavy_items(500, 5);
        assert_eq!(heavy.len(), 5);
    }

    #[test]
    fn leaf_estimate_matches_update() {
        let mut h = hierarchy(12);
        h.update(ItemKey(77), 123);
        assert_eq!(h.estimate(ItemKey(77)), 123);
        h.update(ItemKey(77), -23);
        assert_eq!(h.estimate(ItemKey(77)), 100);
    }

    #[test]
    fn space_scales_with_bits() {
        assert!(hierarchy(16).space_bytes() > hierarchy(8).space_bytes());
    }

    #[test]
    fn rebuild_from_seed_is_deterministic() {
        // All state is (params, seed) + the applied updates: replaying
        // the updates into a fresh instance reproduces the structure,
        // which is what the distributed/persistence paths rely on.
        let mut h = hierarchy(8);
        h.update(ItemKey(9), 300);
        let mut again = hierarchy(8);
        again.update(ItemKey(9), 300);
        assert_eq!(again.heavy_items(100, 5), h.heavy_items(100, 5));
    }
}
