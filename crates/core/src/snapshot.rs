//! Versioned, checksummed binary snapshots of sketch state.
//!
//! A long-running sketch (or the [`crate::approx_top::ApproxTopProcessor`]
//! built around one) needs to survive process restarts without replaying
//! its stream. §3.2 additivity makes this safe: the sketch's state is
//! exactly its counter array plus the `(params, seed)` the hash functions
//! are drawn from, so *resume-from-snapshot is bit-identical to an
//! uninterrupted run* — a property the crate's proptests assert rather
//! than assume.
//!
//! ## Wire layout (`CSNP` v1, all integers little-endian)
//!
//! ```text
//! magic      u32  = 0x4353_4E50 ("CSNP")
//! version    u32  = 1
//! kind       u32  = 1 (sketch) | 2 (approx-top processor) | 3 (sliding window)
//! combiner   u32  = 0 median | 1 mean | 2 trimmed mean
//! rows       u64
//! buckets    u64            -- post-rounding, a fixed point of redrawing
//! seed       u64
//! counters   rows·buckets × i64       -- kind 3: the window sum sketch
//! saturation ⌈rows·buckets/64⌉ × u64   -- overflow flags, 1 bit per cell
//! [kind 2 only]
//!   policy   u32  = 0 increment-tracked | 1 always-re-estimate
//!   capacity u64
//!   entries  u64
//!   entry    entries × (key u64, value i64)
//! [kind 3 only]
//!   epoch_len      u64
//!   window_epochs  u64
//!   capacity       u64
//!   filled         u64   -- occurrences in the partial epoch (< epoch_len)
//!   completed      u64   -- completed epochs in the window (< window_epochs)
//!   epoch sketch   completed × (counters + saturation)   -- oldest first
//!   current sketch counters + saturation
//!   entries        u64
//!   entry          entries × (key u64, value i64)
//! crc32      u32  -- CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The kind-3 window sum is *stored*, not recomputed from the epochs on
//! load: with saturation tracking the sum sketch's overflow flags are
//! path-dependent, and storing it keeps resume bit-identical.
//!
//! Hash functions are *not* serialized: they are reconstructed
//! deterministically from `(rows, buckets, seed)`, which both shrinks the
//! snapshot and makes it impossible for a corrupted snapshot to smuggle
//! in mismatched hash functions. The stored `buckets` is the
//! post-rounding count, which every hasher construction maps to itself,
//! so redrawing reproduces the original functions exactly (verified on
//! load).
//!
//! ## Failure semantics
//!
//! Loading is total: any byte sequence produces either a valid value or
//! a typed [`CoreError`] — never a panic, never a silently wrong sketch.
//! Structural problems (bad magic/version/kind, impossible lengths)
//! yield [`CoreError::CorruptSnapshot`]; any corruption of an otherwise
//! well-formed snapshot is caught by the trailing CRC-32 and yields
//! [`CoreError::ChecksumMismatch`]. [`write_snapshot_file`] writes
//! through a temporary file and renames, so a crash mid-write leaves
//! either the old snapshot or a detectably torn temp file — never a
//! half-written snapshot under the final name.

use crate::approx_top::{ApproxTopProcessor, HeapPolicy};
use crate::error::CoreError;
use crate::median::Combiner;
use crate::params::SketchParams;
use crate::sketch::{CountSketch, DrawBucketHasher, DrawSignHasher, GenericCountSketch};
use crate::topk::TopKTracker;
use crate::window::{SlidingSketch, WindowParts};
use cs_hash::crc32::crc32;
use cs_hash::{BucketHasher, ItemKey, SignHasher};
use std::collections::VecDeque;
use std::io;
use std::path::Path;

const MAGIC: u32 = 0x4353_4E50; // "CSNP"
const VERSION: u32 = 1;
const KIND_SKETCH: u32 = 1;
const KIND_PROCESSOR: u32 = 2;
const KIND_WINDOW: u32 = 3;
const HEADER: usize = 40;

fn combiner_code(c: Combiner) -> u32 {
    match c {
        Combiner::Median => 0,
        Combiner::Mean => 1,
        Combiner::TrimmedMean => 2,
    }
}

fn combiner_from(code: u32) -> Result<Combiner, CoreError> {
    match code {
        0 => Ok(Combiner::Median),
        1 => Ok(Combiner::Mean),
        2 => Ok(Combiner::TrimmedMean),
        other => Err(CoreError::CorruptSnapshot(format!(
            "unknown combiner code {other}"
        ))),
    }
}

fn policy_code(p: HeapPolicy) -> u32 {
    match p {
        HeapPolicy::IncrementTracked => 0,
        HeapPolicy::AlwaysReEstimate => 1,
    }
}

fn policy_from(code: u32) -> Result<HeapPolicy, CoreError> {
    match code {
        0 => Ok(HeapPolicy::IncrementTracked),
        1 => Ok(HeapPolicy::AlwaysReEstimate),
        other => Err(CoreError::CorruptSnapshot(format!(
            "unknown heap policy code {other}"
        ))),
    }
}

/// Appends a sketch's counter and saturation sections (no header).
fn push_counters<H: BucketHasher, S: SignHasher>(
    buf: &mut Vec<u8>,
    sketch: &GenericCountSketch<H, S>,
) {
    for &c in sketch.counters() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    for &w in sketch.saturated_words() {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

fn push_sketch_body<H: BucketHasher, S: SignHasher>(
    buf: &mut Vec<u8>,
    kind: u32,
    sketch: &GenericCountSketch<H, S>,
) {
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&kind.to_le_bytes());
    buf.extend_from_slice(&combiner_code(sketch.combiner()).to_le_bytes());
    buf.extend_from_slice(&(sketch.rows() as u64).to_le_bytes());
    buf.extend_from_slice(&(sketch.buckets() as u64).to_le_bytes());
    buf.extend_from_slice(&sketch.seed().to_le_bytes());
    push_counters(buf, sketch);
}

fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// A validated, checksummed view over snapshot bytes; parsing happens
/// against this after the CRC has been verified.
struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Verifies magic, version and CRC; returns a reader over the body
    /// (everything between the magic and the trailing checksum) plus the
    /// snapshot's kind code, without constraining what that kind is.
    fn open_any(bytes: &'a [u8]) -> Result<(Self, u32), CoreError> {
        if bytes.len() < HEADER + 4 {
            return Err(CoreError::CorruptSnapshot(format!(
                "snapshot too short: {} bytes, need at least {}",
                bytes.len(),
                HEADER + 4
            )));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(CoreError::CorruptSnapshot(format!(
                "bad magic 0x{magic:08x}"
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(CoreError::CorruptSnapshot(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let body_end = bytes.len() - 4;
        let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..body_end]);
        if stored != computed {
            return Err(CoreError::ChecksumMismatch { stored, computed });
        }
        let kind = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        Ok((
            Self {
                body: &bytes[..body_end],
                pos: 12,
            },
            kind,
        ))
    }

    /// [`Reader::open_any`] plus a kind check: loading a processor
    /// snapshot as a bare sketch (or vice versa) is a structural error.
    fn open(bytes: &'a [u8], want_kind: u32) -> Result<(Self, u32), CoreError> {
        let (r, kind) = Self::open_any(bytes)?;
        if kind != want_kind {
            return Err(CoreError::CorruptSnapshot(format!(
                "snapshot kind {kind}, expected {want_kind}"
            )));
        }
        Ok((r, kind))
    }

    fn remaining(&self) -> usize {
        self.body.len() - self.pos
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        if self.remaining() < 4 {
            return Err(CoreError::CorruptSnapshot("section truncated".into()));
        }
        let v = u32::from_le_bytes(self.body[self.pos..self.pos + 4].try_into().expect("4"));
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        if self.remaining() < 8 {
            return Err(CoreError::CorruptSnapshot("section truncated".into()));
        }
        let v = u64::from_le_bytes(self.body[self.pos..self.pos + 8].try_into().expect("8"));
        self.pos += 8;
        Ok(v)
    }

    fn i64(&mut self) -> Result<i64, CoreError> {
        self.u64().map(|v| v as i64)
    }

    fn skip(&mut self, n: usize) -> Result<(), CoreError> {
        if self.remaining() < n {
            return Err(CoreError::CorruptSnapshot("section truncated".into()));
        }
        self.pos += n;
        Ok(())
    }

    fn finish(self) -> Result<(), CoreError> {
        if self.remaining() != 0 {
            return Err(CoreError::CorruptSnapshot(format!(
                "{} unexpected trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn read_sketch<H, S>(r: &mut Reader<'_>) -> Result<GenericCountSketch<H, S>, CoreError>
where
    H: DrawBucketHasher,
    S: DrawSignHasher,
{
    let combiner = combiner_from(r.u32()?)?;
    let rows = r.u64()? as usize;
    let buckets = r.u64()? as usize;
    let seed = r.u64()?;
    let cells = rows
        .checked_mul(buckets)
        .ok_or_else(|| CoreError::CorruptSnapshot("rows × buckets overflows".into()))?;
    let words = cells.div_ceil(64);
    // Every section length is checked against the buffer before any
    // allocation, so a forged length cannot trigger a huge allocation.
    let need = cells
        .checked_mul(8)
        .and_then(|c| c.checked_add(words * 8))
        .ok_or_else(|| CoreError::CorruptSnapshot("section size overflows".into()))?;
    if r.remaining() < need {
        return Err(CoreError::CorruptSnapshot(format!(
            "counter section needs {need} bytes, {} remain",
            r.remaining()
        )));
    }
    let mut sketch = GenericCountSketch::<H, S>::new(SketchParams::new(rows, buckets), seed)
        .with_combiner(combiner);
    if sketch.buckets() != buckets || sketch.rows() != rows {
        return Err(CoreError::CorruptSnapshot(format!(
            "dimensions ({rows}, {buckets}) are not reproducible by this hasher construction"
        )));
    }
    for c in sketch.counters_mut() {
        *c = r.i64()?;
    }
    for w in sketch.saturated_words_mut() {
        *w = r.u64()?;
    }
    // The counters were filled wholesale: re-establish the headroom
    // watermark the batched ingestion fast path relies on.
    sketch.refresh_mass_floor();
    Ok(sketch)
}

/// Reads one headerless counter+saturation section into a fresh sketch
/// of known geometry. The caller has already bounds-checked the section.
fn read_counters(
    r: &mut Reader<'_>,
    params: SketchParams,
    seed: u64,
    combiner: Combiner,
) -> Result<CountSketch, CoreError> {
    let mut sketch = CountSketch::new(params, seed).with_combiner(combiner);
    for c in sketch.counters_mut() {
        *c = r.i64()?;
    }
    for w in sketch.saturated_words_mut() {
        *w = r.u64()?;
    }
    sketch.refresh_mass_floor();
    Ok(sketch)
}

/// Bytes one counter+saturation section occupies for `cells` cells.
fn counter_section_bytes(cells: usize) -> usize {
    cells * 8 + cells.div_ceil(64) * 8
}

impl<H: BucketHasher, S: SignHasher> GenericCountSketch<H, S> {
    /// Serializes the sketch to the checksummed `CSNP` snapshot format.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER + self.counters().len() * 8 + 64);
        push_sketch_body(&mut buf, KIND_SKETCH, self);
        seal(buf)
    }
}

impl<H: DrawBucketHasher, S: DrawSignHasher> GenericCountSketch<H, S> {
    /// Restores a sketch from snapshot bytes, verifying the checksum and
    /// every structural invariant. Total: returns a typed [`CoreError`]
    /// on any malformed input, never panics.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let (mut r, _) = Reader::open(bytes, KIND_SKETCH)?;
        let sketch = read_sketch(&mut r)?;
        r.finish()?;
        Ok(sketch)
    }
}

impl<H: BucketHasher, S: SignHasher> ApproxTopProcessor<H, S> {
    /// Serializes the processor (sketch + top-k tracker + policy) to the
    /// checksummed `CSNP` snapshot format.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let sketch = self.sketch();
        let tracker = self.tracker();
        let mut buf =
            Vec::with_capacity(HEADER + sketch.counters().len() * 8 + tracker.len() * 16 + 96);
        push_sketch_body(&mut buf, KIND_PROCESSOR, sketch);
        buf.extend_from_slice(&policy_code(self.policy()).to_le_bytes());
        buf.extend_from_slice(&(tracker.capacity() as u64).to_le_bytes());
        let items = tracker.items_desc();
        buf.extend_from_slice(&(items.len() as u64).to_le_bytes());
        for (key, value) in items {
            buf.extend_from_slice(&key.raw().to_le_bytes());
            buf.extend_from_slice(&value.to_le_bytes());
        }
        seal(buf)
    }
}

impl<H: DrawBucketHasher, S: DrawSignHasher> ApproxTopProcessor<H, S> {
    /// Restores a processor from snapshot bytes. Resuming observation
    /// afterwards is bit-identical to never having stopped (asserted by
    /// the fault-recovery proptests).
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let (mut r, _) = Reader::open(bytes, KIND_PROCESSOR)?;
        let sketch = read_sketch(&mut r)?;
        let policy = policy_from(r.u32()?)?;
        let capacity = r.u64()? as usize;
        if capacity == 0 {
            return Err(CoreError::CorruptSnapshot(
                "tracker capacity must be positive".into(),
            ));
        }
        let entries = r.u64()? as usize;
        if entries > capacity {
            return Err(CoreError::CorruptSnapshot(format!(
                "{entries} tracker entries exceed capacity {capacity}"
            )));
        }
        if r.remaining() < entries * 16 {
            return Err(CoreError::CorruptSnapshot(format!(
                "tracker section needs {} bytes, {} remain",
                entries * 16,
                r.remaining()
            )));
        }
        let mut tracker = TopKTracker::new(capacity);
        for _ in 0..entries {
            let key = ItemKey(r.u64()?);
            let value = r.i64()?;
            // entries ≤ capacity, so every offer lands in the has-room
            // branch and the rebuilt tracker state is exact.
            tracker.offer(key, value);
        }
        r.finish()?;
        Ok(Self::from_parts(sketch, tracker, policy))
    }
}

impl SlidingSketch {
    /// Serializes the full window state — every epoch sketch, the window
    /// sum, the partial-epoch fill level and the candidate tracker — to
    /// the checksummed `CSNP` snapshot format (kind 3).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let window = self.window_sketch();
        let per = counter_section_bytes(window.counters().len());
        let items = self.tracker().items_desc();
        let mut buf = Vec::with_capacity(
            HEADER + per * (self.completed_sketches().len() + 2) + items.len() * 16 + 96,
        );
        push_sketch_body(&mut buf, KIND_WINDOW, window);
        buf.extend_from_slice(&(self.epoch_len() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.window_epochs() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.tracker_capacity() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.filled() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.completed_sketches().len() as u64).to_le_bytes());
        for epoch in self.completed_sketches() {
            push_counters(&mut buf, epoch);
        }
        push_counters(&mut buf, self.current_sketch());
        buf.extend_from_slice(&(items.len() as u64).to_le_bytes());
        for (key, value) in items {
            buf.extend_from_slice(&key.raw().to_le_bytes());
            buf.extend_from_slice(&value.to_le_bytes());
        }
        seal(buf)
    }

    /// Restores a sliding window from snapshot bytes. Resuming
    /// observation afterwards — including epoch rolls and expiry — is
    /// bit-identical to never having stopped. Total: any malformed input
    /// yields a typed [`CoreError`], never a panic.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let (mut r, _) = Reader::open(bytes, KIND_WINDOW)?;
        let window = read_sketch(&mut r)?;
        let params = SketchParams {
            rows: window.rows(),
            buckets: window.buckets(),
        };
        let seed = window.seed();
        let combiner = window.combiner();
        let epoch_len = r.u64()? as usize;
        let window_epochs = r.u64()? as usize;
        let capacity = r.u64()? as usize;
        let filled = r.u64()? as usize;
        let completed_count = r.u64()? as usize;
        if epoch_len == 0 || window_epochs == 0 || capacity == 0 {
            return Err(CoreError::CorruptSnapshot(
                "window geometry fields must be positive".into(),
            ));
        }
        if filled >= epoch_len {
            return Err(CoreError::CorruptSnapshot(format!(
                "partial epoch holds {filled} occurrences, epoch length is {epoch_len}"
            )));
        }
        if completed_count >= window_epochs {
            return Err(CoreError::CorruptSnapshot(format!(
                "{completed_count} completed epochs exceed a {window_epochs}-epoch window"
            )));
        }
        // Bound every epoch section against the buffer before any
        // allocation, so a forged count cannot trigger a huge one.
        let per = counter_section_bytes(params.rows * params.buckets);
        let need = completed_count
            .checked_add(1)
            .and_then(|n| n.checked_mul(per))
            .ok_or_else(|| CoreError::CorruptSnapshot("epoch section size overflows".into()))?;
        if r.remaining() < need {
            return Err(CoreError::CorruptSnapshot(format!(
                "epoch sections need {need} bytes, {} remain",
                r.remaining()
            )));
        }
        let mut completed = VecDeque::with_capacity(completed_count);
        for _ in 0..completed_count {
            completed.push_back(read_counters(&mut r, params, seed, combiner)?);
        }
        let current = read_counters(&mut r, params, seed, combiner)?;
        let entries = r.u64()? as usize;
        if entries > capacity {
            return Err(CoreError::CorruptSnapshot(format!(
                "{entries} tracker entries exceed capacity {capacity}"
            )));
        }
        if r.remaining() < entries * 16 {
            return Err(CoreError::CorruptSnapshot(format!(
                "tracker section needs {} bytes, {} remain",
                entries * 16,
                r.remaining()
            )));
        }
        let mut tracker = TopKTracker::new(capacity);
        for _ in 0..entries {
            let key = ItemKey(r.u64()?);
            let value = r.i64()?;
            tracker.offer(key, value);
        }
        r.finish()?;
        Ok(Self::from_parts(WindowParts {
            params,
            seed,
            epoch_len,
            window_epochs,
            completed,
            current,
            window,
            filled,
            tracker,
            capacity,
        }))
    }
}

/// Writes snapshot bytes to `path` crash-safely: the bytes go to a
/// sibling temporary file which is fsync'd and renamed into place, so a
/// crash mid-write never leaves a torn file under the final name.
pub fn write_snapshot_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("csnp.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads snapshot bytes back from `path`. I/O errors (missing file,
/// permissions) surface as `io::Error`; corruption is detected later by
/// the `from_snapshot_bytes` checksum verification.
pub fn read_snapshot_file(path: &Path) -> io::Result<Vec<u8>> {
    std::fs::read(path)
}

/// What a `CSNP` snapshot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A bare sketch (`kind = 1`).
    Sketch,
    /// An approx-top processor: sketch plus tracker (`kind = 2`).
    Processor,
    /// A sliding-window sketch: epoch sketches plus tracker (`kind = 3`).
    Window,
}

impl std::fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotKind::Sketch => write!(f, "sketch"),
            SnapshotKind::Processor => write!(f, "processor"),
            SnapshotKind::Window => write!(f, "sliding window"),
        }
    }
}

/// Window geometry decoded from a kind-3 snapshot, for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInfo {
    /// Occurrences per epoch.
    pub epoch_len: usize,
    /// Window size in epochs.
    pub window_epochs: usize,
    /// Completed epochs captured in the snapshot.
    pub completed_epochs: usize,
    /// Occurrences in the partial epoch at snapshot time.
    pub filled: usize,
}

/// A decoded-for-display summary of a snapshot, produced by
/// [`inspect_snapshot_bytes`] without reconstructing hash functions or a
/// live sketch. Drives `fi inspect`.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// Snapshot kind (sketch or processor).
    pub kind: SnapshotKind,
    /// The estimate combiner the sketch was configured with.
    pub combiner: Combiner,
    /// Sketch depth `t`.
    pub rows: usize,
    /// Buckets per row `b` (post-rounding, as stored).
    pub buckets: usize,
    /// Hash-function seed.
    pub seed: u64,
    /// Total snapshot size in bytes, checksum included.
    pub total_bytes: usize,
    /// Saturated (overflowed) cells per row; the per-row health bitset
    /// in count form — a row is healthy iff its entry is zero.
    pub row_saturated: Vec<usize>,
    /// Largest-magnitude counters as `(row, bucket, value)`, magnitude
    /// descending.
    pub top_counters: Vec<(usize, usize, i64)>,
    /// Tracker eviction policy (processor snapshots only).
    pub policy: Option<HeapPolicy>,
    /// Tracker capacity `k` (processor snapshots only).
    pub tracker_capacity: Option<usize>,
    /// Tracked `(key, estimate)` entries, estimate descending
    /// (processor and window snapshots).
    pub tracked: Vec<(ItemKey, i64)>,
    /// Window geometry (window snapshots only).
    pub window: Option<WindowInfo>,
}

impl SnapshotInfo {
    /// Total number of saturated cells across all rows.
    pub fn saturated_cells(&self) -> usize {
        self.row_saturated.iter().sum()
    }
}

/// Summarizes snapshot bytes for display: header fields, sketch
/// geometry, per-row saturation, the `top` largest-magnitude counters,
/// and (for processor snapshots) the tracked entries. Applies the same
/// total validation as the loaders — checksum first, then every section
/// length — so feeding it a torn or bit-flipped file yields a typed
/// [`CoreError`], never a panic.
pub fn inspect_snapshot_bytes(bytes: &[u8], top: usize) -> Result<SnapshotInfo, CoreError> {
    let (mut r, kind_code) = Reader::open_any(bytes)?;
    let kind = match kind_code {
        KIND_SKETCH => SnapshotKind::Sketch,
        KIND_PROCESSOR => SnapshotKind::Processor,
        KIND_WINDOW => SnapshotKind::Window,
        other => {
            return Err(CoreError::CorruptSnapshot(format!(
                "unknown snapshot kind {other}"
            )))
        }
    };
    let combiner = combiner_from(r.u32()?)?;
    let rows = r.u64()? as usize;
    let buckets = r.u64()? as usize;
    let seed = r.u64()?;
    let cells = rows
        .checked_mul(buckets)
        .ok_or_else(|| CoreError::CorruptSnapshot("rows × buckets overflows".into()))?;
    let words = cells.div_ceil(64);
    let need = cells
        .checked_mul(8)
        .and_then(|c| c.checked_add(words * 8))
        .ok_or_else(|| CoreError::CorruptSnapshot("section size overflows".into()))?;
    if r.remaining() < need {
        return Err(CoreError::CorruptSnapshot(format!(
            "counter section needs {need} bytes, {} remain",
            r.remaining()
        )));
    }
    let mut counters = Vec::with_capacity(cells);
    for _ in 0..cells {
        counters.push(r.i64()?);
    }
    let mut row_saturated = vec![0usize; rows];
    for w in 0..words {
        let mut word = r.u64()?;
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            let cell = w * 64 + bit;
            if cell < cells {
                row_saturated[cell / buckets] += 1;
            }
            word &= word - 1;
        }
    }
    let mut ranked: Vec<(usize, usize, i64)> = counters
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(i, &v)| (i / buckets, i % buckets, v))
        .collect();
    ranked.sort_by(|a, b| {
        b.2.unsigned_abs()
            .cmp(&a.2.unsigned_abs())
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    ranked.truncate(top);
    fn read_tracked(
        r: &mut Reader<'_>,
        capacity: usize,
    ) -> Result<Vec<(ItemKey, i64)>, CoreError> {
        let entries = r.u64()? as usize;
        if entries > capacity {
            return Err(CoreError::CorruptSnapshot(format!(
                "{entries} tracker entries exceed capacity {capacity}"
            )));
        }
        if r.remaining() < entries.saturating_mul(16) {
            return Err(CoreError::CorruptSnapshot(format!(
                "tracker section needs {} bytes, {} remain",
                entries.saturating_mul(16),
                r.remaining()
            )));
        }
        let mut tracked = Vec::with_capacity(entries);
        for _ in 0..entries {
            let key = ItemKey(r.u64()?);
            let value = r.i64()?;
            tracked.push((key, value));
        }
        tracked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(tracked)
    }
    let (policy, tracker_capacity, tracked, window) = match kind {
        SnapshotKind::Sketch => (None, None, Vec::new(), None),
        SnapshotKind::Processor => {
            let policy = policy_from(r.u32()?)?;
            let capacity = r.u64()? as usize;
            let tracked = read_tracked(&mut r, capacity)?;
            (Some(policy), Some(capacity), tracked, None)
        }
        SnapshotKind::Window => {
            let epoch_len = r.u64()? as usize;
            let window_epochs = r.u64()? as usize;
            let capacity = r.u64()? as usize;
            let filled = r.u64()? as usize;
            let completed_epochs = r.u64()? as usize;
            if window_epochs == 0 || completed_epochs >= window_epochs {
                return Err(CoreError::CorruptSnapshot(format!(
                    "{completed_epochs} completed epochs exceed a {window_epochs}-epoch window"
                )));
            }
            // Skip the epoch + current-sketch counter sections; `need`
            // is one section's size, computed above.
            let epoch_bytes = completed_epochs
                .checked_add(1)
                .and_then(|n| n.checked_mul(need))
                .ok_or_else(|| {
                    CoreError::CorruptSnapshot("epoch section size overflows".into())
                })?;
            r.skip(epoch_bytes)?;
            let tracked = read_tracked(&mut r, capacity)?;
            (
                None,
                Some(capacity),
                tracked,
                Some(WindowInfo {
                    epoch_len,
                    window_epochs,
                    completed_epochs,
                    filled,
                }),
            )
        }
    };
    r.finish()?;
    Ok(SnapshotInfo {
        kind,
        combiner,
        rows,
        buckets,
        seed,
        total_bytes: bytes.len(),
        row_saturated,
        top_counters: ranked,
        policy,
        tracker_capacity,
        tracked,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::CountSketch;
    use cs_stream::{Stream, Zipf, ZipfStreamKind};
    use proptest::prelude::*;

    const PARAMS: SketchParams = SketchParams {
        rows: 5,
        buckets: 64,
    };

    fn sketched(stream: &Stream) -> CountSketch {
        let mut s = CountSketch::new(PARAMS, 42);
        s.absorb(stream, 1);
        s
    }

    #[test]
    fn sketch_roundtrip_is_bit_identical() {
        let zipf = Zipf::new(200, 1.0);
        let s = sketched(&zipf.stream(10_000, 3, ZipfStreamKind::Sampled));
        let back = CountSketch::from_snapshot_bytes(&s.to_snapshot_bytes()).unwrap();
        assert_eq!(s.counters(), back.counters());
        assert_eq!(s.seed(), back.seed());
        assert_eq!(s.combiner(), back.combiner());
        assert_eq!((s.rows(), s.buckets()), (back.rows(), back.buckets()));
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn saturation_flags_survive_the_roundtrip() {
        let mut s = CountSketch::new(SketchParams::new(1, 1), 0);
        s.update(ItemKey(1), i64::MAX);
        s.update(ItemKey(1), i64::MAX);
        assert!(!s.health().is_healthy());
        let back = CountSketch::from_snapshot_bytes(&s.to_snapshot_bytes()).unwrap();
        assert_eq!(back.health(), s.health());
        assert!(back.is_cell_saturated(0, 0));
    }

    #[test]
    fn combiner_survives_the_roundtrip() {
        let s = CountSketch::new(PARAMS, 7).with_combiner(Combiner::TrimmedMean);
        let back = CountSketch::from_snapshot_bytes(&s.to_snapshot_bytes()).unwrap();
        assert_eq!(back.combiner(), Combiner::TrimmedMean);
    }

    #[test]
    fn processor_roundtrip_preserves_all_state() {
        let zipf = Zipf::new(100, 1.2);
        let stream = zipf.stream(5_000, 9, ZipfStreamKind::Sampled);
        let mut p =
            ApproxTopProcessor::new(PARAMS, 8, 11).with_policy(HeapPolicy::AlwaysReEstimate);
        p.observe_stream(&stream);
        let back =
            ApproxTopProcessor::<cs_hash::PairwiseHash, cs_hash::PairwiseSign>::from_snapshot_bytes(
                &p.to_snapshot_bytes(),
            )
            .unwrap();
        assert_eq!(back.sketch().counters(), p.sketch().counters());
        assert_eq!(back.result().items, p.result().items);
        assert_eq!(back.policy(), p.policy());
        assert_eq!(back.tracker().capacity(), p.tracker().capacity());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let s = sketched(&Stream::from_ids([1, 2, 3, 2, 1]));
        let clean = s.to_snapshot_bytes();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    CountSketch::from_snapshot_bytes(&corrupt).is_err(),
                    "flip at {byte}:{bit} loaded successfully"
                );
            }
        }
    }

    #[test]
    fn truncations_are_detected() {
        let s = sketched(&Stream::from_ids(0..50));
        let clean = s.to_snapshot_bytes();
        for cut in 0..clean.len() {
            assert!(
                CountSketch::from_snapshot_bytes(&clean[..cut]).is_err(),
                "truncation to {cut} bytes loaded successfully"
            );
        }
    }

    #[test]
    fn payload_corruption_is_checksum_mismatch() {
        let s = sketched(&Stream::from_ids(0..50));
        let mut bytes = s.to_snapshot_bytes();
        bytes[HEADER + 3] ^= 0x40;
        assert!(matches!(
            CountSketch::from_snapshot_bytes(&bytes),
            Err(CoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn structural_garbage_is_corrupt_snapshot() {
        assert!(matches!(
            CountSketch::from_snapshot_bytes(b"not a snapshot"),
            Err(CoreError::CorruptSnapshot(_))
        ));
        assert!(matches!(
            CountSketch::from_snapshot_bytes(&[]),
            Err(CoreError::CorruptSnapshot(_))
        ));
        // Valid checksum but wrong kind: a processor snapshot is not a
        // sketch snapshot.
        let mut p = ApproxTopProcessor::new(PARAMS, 4, 1);
        p.observe(ItemKey(5));
        assert!(matches!(
            CountSketch::from_snapshot_bytes(&p.to_snapshot_bytes()),
            Err(CoreError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn loading_never_allocates_from_forged_lengths() {
        // Forge a snapshot claiming 2^60 cells; the loader must reject it
        // from the length check, not attempt the allocation. The CRC has
        // to be fixed up so the structural check is what fires.
        let s = CountSketch::new(SketchParams::new(1, 1), 0);
        let mut bytes = s.to_snapshot_bytes();
        bytes[16..24].copy_from_slice(&(1u64 << 30).to_le_bytes()); // rows
        bytes[24..32].copy_from_slice(&(1u64 << 30).to_le_bytes()); // buckets
        let n = bytes.len();
        let crc = cs_hash::crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            CountSketch::from_snapshot_bytes(&bytes),
            Err(CoreError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn inspect_reports_sketch_header_and_top_counters() {
        let zipf = Zipf::new(100, 1.2);
        let s = sketched(&zipf.stream(5_000, 3, ZipfStreamKind::Sampled));
        let bytes = s.to_snapshot_bytes();
        let info = inspect_snapshot_bytes(&bytes, 5).unwrap();
        assert_eq!(info.kind, SnapshotKind::Sketch);
        assert_eq!(info.combiner, s.combiner());
        assert_eq!((info.rows, info.buckets), (s.rows(), s.buckets()));
        assert_eq!(info.seed, s.seed());
        assert_eq!(info.total_bytes, bytes.len());
        assert_eq!(info.row_saturated.len(), s.rows());
        assert!(info.policy.is_none() && info.tracked.is_empty());
        assert_eq!(info.top_counters.len(), 5);
        // Magnitude-descending, and each entry matches the live sketch.
        for pair in info.top_counters.windows(2) {
            assert!(pair[0].2.unsigned_abs() >= pair[1].2.unsigned_abs());
        }
        for &(row, bucket, value) in &info.top_counters {
            assert_eq!(s.counters()[row * s.buckets() + bucket], value);
        }
    }

    #[test]
    fn inspect_reports_processor_tracker() {
        let zipf = Zipf::new(50, 1.3);
        let mut p = ApproxTopProcessor::new(PARAMS, 6, 17);
        p.observe_stream(&zipf.stream(3_000, 5, ZipfStreamKind::Sampled));
        let info = inspect_snapshot_bytes(&p.to_snapshot_bytes(), 3).unwrap();
        assert_eq!(info.kind, SnapshotKind::Processor);
        assert_eq!(info.policy, Some(p.policy()));
        assert_eq!(info.tracker_capacity, Some(6));
        // The tracked entries (estimate-descending) are exactly the
        // processor's report.
        assert_eq!(info.tracked, p.result().items);
    }

    #[test]
    #[cfg(feature = "saturation-tracking")]
    fn inspect_counts_saturated_cells_per_row() {
        let mut s = CountSketch::new(SketchParams::new(1, 1), 0);
        s.update(ItemKey(1), i64::MAX);
        s.update(ItemKey(1), i64::MAX);
        let info = inspect_snapshot_bytes(&s.to_snapshot_bytes(), 1).unwrap();
        assert_eq!(info.row_saturated, vec![1]);
        assert_eq!(info.saturated_cells(), 1);
    }

    #[test]
    fn inspect_rejects_corruption_like_the_loaders() {
        let s = sketched(&Stream::from_ids(0..50));
        let mut bytes = s.to_snapshot_bytes();
        bytes[HEADER + 3] ^= 0x40;
        assert!(matches!(
            inspect_snapshot_bytes(&bytes, 10),
            Err(CoreError::ChecksumMismatch { .. })
        ));
        assert!(inspect_snapshot_bytes(b"junk", 10).is_err());
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("cs_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sketch.csnp");
        let s = sketched(&Stream::from_ids(0..100));
        write_snapshot_file(&path, &s.to_snapshot_bytes()).unwrap();
        let bytes = read_snapshot_file(&path).unwrap();
        let back = CountSketch::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back.counters(), s.counters());
        std::fs::remove_file(&path).ok();
    }

    fn window_fixture() -> SlidingSketch {
        SlidingSketch::new(SketchParams::new(3, 32), 13, 50, 3, 4)
    }

    #[test]
    fn window_restart_mid_window_is_bit_identical() {
        // 230 occurrences: 4 complete epochs (one already expired) plus a
        // 30-deep partial epoch — snapshot right there, then keep feeding
        // far enough that post-restore epoch rolls and expiry both fire.
        let ids: Vec<u64> = (0..400u64).map(|i| i % 17).collect();
        let split = 230;
        let mut interrupted = window_fixture();
        for &id in &ids[..split] {
            interrupted.observe(ItemKey(id));
        }
        let bytes = interrupted.to_snapshot_bytes();
        let mut resumed = SlidingSketch::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(resumed.completed_epochs(), interrupted.completed_epochs());
        assert_eq!(
            resumed.window_occurrences(),
            interrupted.window_occurrences()
        );
        for &id in &ids[split..] {
            resumed.observe(ItemKey(id));
        }
        let mut uninterrupted = window_fixture();
        for &id in &ids {
            uninterrupted.observe(ItemKey(id));
        }
        for id in 0..17u64 {
            assert_eq!(
                resumed.estimate(ItemKey(id)),
                uninterrupted.estimate(ItemKey(id)),
                "id {id}"
            );
        }
        assert_eq!(resumed.top_k(), uninterrupted.top_k());
        assert_eq!(resumed.completed_epochs(), uninterrupted.completed_epochs());
        assert_eq!(
            resumed.window_occurrences(),
            uninterrupted.window_occurrences()
        );
    }

    #[test]
    fn window_single_bit_flips_are_detected() {
        let mut w = window_fixture();
        for i in 0..120u64 {
            w.observe(ItemKey(i % 7));
        }
        let clean = w.to_snapshot_bytes();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut corrupt = clean.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    SlidingSketch::from_snapshot_bytes(&corrupt).is_err(),
                    "flip at {byte}:{bit} loaded successfully"
                );
            }
        }
    }

    #[test]
    fn window_kind_is_not_interchangeable() {
        let mut w = window_fixture();
        w.observe(ItemKey(1));
        let bytes = w.to_snapshot_bytes();
        // A window snapshot is neither a sketch nor a processor...
        assert!(CountSketch::from_snapshot_bytes(&bytes).is_err());
        assert!(ApproxTopProcessor::<cs_hash::PairwiseHash, cs_hash::PairwiseSign>::from_snapshot_bytes(&bytes).is_err());
        // ...and vice versa.
        let s = sketched(&Stream::from_ids([1, 2, 3]));
        assert!(SlidingSketch::from_snapshot_bytes(&s.to_snapshot_bytes()).is_err());
    }

    #[test]
    fn window_inspect_reports_geometry_and_tracker() {
        let mut w = window_fixture();
        for i in 0..130u64 {
            w.observe(ItemKey(i % 5));
        }
        let info = inspect_snapshot_bytes(&w.to_snapshot_bytes(), 3).unwrap();
        assert_eq!(info.kind, SnapshotKind::Window);
        assert_eq!(
            info.window,
            Some(WindowInfo {
                epoch_len: 50,
                window_epochs: 3,
                completed_epochs: 2,
                filled: 30,
            })
        );
        assert_eq!(info.tracker_capacity, Some(4));
        assert!(info.policy.is_none());
        assert!(!info.tracked.is_empty());
    }

    #[test]
    fn window_forged_geometry_is_rejected_before_allocation() {
        let mut w = window_fixture();
        w.observe(ItemKey(9));
        let mut bytes = w.to_snapshot_bytes();
        // The five u64 geometry fields start right after the 40-byte
        // header + window counter (96 × i64) and saturation (2 × u64)
        // sections.
        let geo = HEADER + 96 * 8 + 16;
        // Forge completed = 2^40 (and window_epochs above it so the
        // structural check passes to the length check).
        bytes[geo + 8..geo + 16].copy_from_slice(&(1u64 << 41).to_le_bytes());
        bytes[geo + 32..geo + 40].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let n = bytes.len();
        let crc = cs_hash::crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            SlidingSketch::from_snapshot_bytes(&bytes),
            Err(CoreError::CorruptSnapshot(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_window_resume_is_bit_identical(
            ids in prop::collection::vec(0u64..40, 1..400),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((ids.len() as f64) * split_frac) as usize;
            let mut interrupted = SlidingSketch::new(SketchParams::new(3, 32), 5, 30, 2, 3);
            for &id in &ids[..split] {
                interrupted.observe(ItemKey(id));
            }
            let mut resumed =
                SlidingSketch::from_snapshot_bytes(&interrupted.to_snapshot_bytes()).unwrap();
            for &id in &ids[split..] {
                resumed.observe(ItemKey(id));
            }
            let mut uninterrupted = SlidingSketch::new(SketchParams::new(3, 32), 5, 30, 2, 3);
            for &id in &ids {
                uninterrupted.observe(ItemKey(id));
            }
            for id in 0..40u64 {
                prop_assert_eq!(resumed.estimate(ItemKey(id)), uninterrupted.estimate(ItemKey(id)));
            }
            prop_assert_eq!(resumed.top_k(), uninterrupted.top_k());
        }

        #[test]
        fn prop_resume_is_bit_identical(
            ids in prop::collection::vec(0u64..200, 1..300),
            split_frac in 0.0f64..1.0,
        ) {
            // Sketch the prefix, snapshot, restore, sketch the suffix:
            // counters must equal the uninterrupted run exactly.
            let split = ((ids.len() as f64) * split_frac) as usize;
            let mut interrupted = CountSketch::new(PARAMS, 21);
            for &id in &ids[..split] {
                interrupted.add(ItemKey(id));
            }
            let mut resumed =
                CountSketch::from_snapshot_bytes(&interrupted.to_snapshot_bytes()).unwrap();
            for &id in &ids[split..] {
                resumed.add(ItemKey(id));
            }
            let mut uninterrupted = CountSketch::new(PARAMS, 21);
            for &id in &ids {
                uninterrupted.add(ItemKey(id));
            }
            prop_assert_eq!(resumed.counters(), uninterrupted.counters());
        }

        #[test]
        fn prop_processor_resume_is_bit_identical(
            ids in prop::collection::vec(0u64..100, 1..200),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((ids.len() as f64) * split_frac) as usize;
            let mut interrupted = ApproxTopProcessor::new(PARAMS, 5, 33);
            for &id in &ids[..split] {
                interrupted.observe(ItemKey(id));
            }
            let mut resumed = ApproxTopProcessor::<
                cs_hash::PairwiseHash,
                cs_hash::PairwiseSign,
            >::from_snapshot_bytes(&interrupted.to_snapshot_bytes())
            .unwrap();
            for &id in &ids[split..] {
                resumed.observe(ItemKey(id));
            }
            let mut uninterrupted = ApproxTopProcessor::new(PARAMS, 5, 33);
            for &id in &ids {
                uninterrupted.observe(ItemKey(id));
            }
            prop_assert_eq!(resumed.sketch().counters(), uninterrupted.sketch().counters());
            prop_assert_eq!(resumed.result().items, uninterrupted.result().items);
        }

        #[test]
        fn prop_arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = CountSketch::from_snapshot_bytes(&bytes);
            let _ = ApproxTopProcessor::<
                cs_hash::PairwiseHash,
                cs_hash::PairwiseSign,
            >::from_snapshot_bytes(&bytes);
        }
    }
}
