//! The top-k heap the one-pass algorithm maintains alongside the sketch.
//!
//! Paper §3.2: *"For each element, we use the COUNT SKETCH data structure
//! to estimate its count, and keep a heap of the top k elements seen so
//! far."* The per-arrival rule is:
//!
//! 1. if `q` is in the heap, increment its stored count;
//! 2. else if `ESTIMATE(C, q)` exceeds the smallest stored count, evict
//!    the minimum and insert `q` with its estimate.
//!
//! Implemented as a `HashMap` (membership + stored value) paired with a
//! `BTreeSet<(value, key)>` (ordered view, O(log k) min/evict). This is
//! the `O(k)` part of the paper's `O(tb + k)` space bound.

use cs_hash::ItemKey;
use std::collections::{BTreeSet, HashMap};

/// A fixed-capacity tracker of the items with the largest values.
#[derive(Debug, Clone, Default)]
pub struct TopKTracker {
    capacity: usize,
    values: HashMap<ItemKey, i64>,
    ordered: BTreeSet<(i64, ItemKey)>,
}

impl TopKTracker {
    /// Creates a tracker holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            values: HashMap::with_capacity(capacity + 1),
            ordered: BTreeSet::new(),
        }
    }

    /// Maximum number of items tracked.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently tracked.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether `key` is currently tracked.
    pub fn contains(&self, key: ItemKey) -> bool {
        self.values.contains_key(&key)
    }

    /// The stored value for `key`, if tracked.
    pub fn value(&self, key: ItemKey) -> Option<i64> {
        self.values.get(&key).copied()
    }

    /// The smallest stored value, if any.
    pub fn min_value(&self) -> Option<i64> {
        self.ordered.first().map(|&(v, _)| v)
    }

    /// Step 1 of the paper's rule: increment the stored count of a
    /// tracked item. Returns `true` if the item was tracked.
    pub fn increment(&mut self, key: ItemKey) -> bool {
        self.add_to(key, 1)
    }

    /// Adds `delta` to the stored count of a tracked item. Returns `true`
    /// if the item was tracked.
    pub fn add_to(&mut self, key: ItemKey, delta: i64) -> bool {
        match self.values.get_mut(&key) {
            Some(v) => {
                let old = *v;
                *v += delta;
                let removed = self.ordered.remove(&(old, key));
                debug_assert!(removed);
                self.ordered.insert((old + delta, key));
                true
            }
            None => false,
        }
    }

    /// Step 2 of the paper's rule: offer an untracked item with its
    /// estimate. Inserts if there is room, or if `value` beats the current
    /// minimum (evicting it). Returns the evicted item, if any.
    ///
    /// Offering an already-tracked key replaces its stored value instead
    /// (used by the "always re-estimate" ablation policy).
    pub fn offer(&mut self, key: ItemKey, value: i64) -> Option<(ItemKey, i64)> {
        if let Some(&old) = self.values.get(&key) {
            if old != value {
                self.ordered.remove(&(old, key));
                self.ordered.insert((value, key));
                self.values.insert(key, value);
            }
            return None;
        }
        if self.values.len() < self.capacity {
            self.values.insert(key, value);
            self.ordered.insert((value, key));
            return None;
        }
        let &(min_v, min_k) = self.ordered.first().expect("non-empty at capacity");
        if value > min_v {
            self.ordered.remove(&(min_v, min_k));
            self.values.remove(&min_k);
            self.values.insert(key, value);
            self.ordered.insert((value, key));
            Some((min_k, min_v))
        } else {
            None
        }
    }

    /// Removes a tracked item, returning its value.
    pub fn remove(&mut self, key: ItemKey) -> Option<i64> {
        let v = self.values.remove(&key)?;
        self.ordered.remove(&(v, key));
        Some(v)
    }

    /// All tracked items, values non-increasing (ties: smaller key first).
    pub fn items_desc(&self) -> Vec<(ItemKey, i64)> {
        self.ordered.iter().rev().map(|&(v, k)| (k, v)).collect()
    }

    /// Approximate heap bytes used (the `O(k)` term of the space bound).
    pub fn space_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(i64, ItemKey)>() + std::mem::size_of::<u64>();
        std::mem::size_of::<Self>() + self.capacity * 3 * entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_up_to_capacity() {
        let mut t = TopKTracker::new(3);
        assert!(t.is_empty());
        t.offer(ItemKey(1), 10);
        t.offer(ItemKey(2), 5);
        t.offer(ItemKey(3), 8);
        assert_eq!(t.len(), 3);
        assert_eq!(t.min_value(), Some(5));
    }

    #[test]
    fn evicts_minimum_when_full() {
        let mut t = TopKTracker::new(2);
        t.offer(ItemKey(1), 10);
        t.offer(ItemKey(2), 5);
        let evicted = t.offer(ItemKey(3), 7);
        assert_eq!(evicted, Some((ItemKey(2), 5)));
        assert!(t.contains(ItemKey(1)));
        assert!(t.contains(ItemKey(3)));
        assert!(!t.contains(ItemKey(2)));
    }

    #[test]
    fn rejects_offer_not_beating_min() {
        let mut t = TopKTracker::new(2);
        t.offer(ItemKey(1), 10);
        t.offer(ItemKey(2), 5);
        // Equal to min: paper says "greater than", so no insert.
        assert_eq!(t.offer(ItemKey(3), 5), None);
        assert!(!t.contains(ItemKey(3)));
        assert_eq!(t.offer(ItemKey(4), 4), None);
        assert!(!t.contains(ItemKey(4)));
    }

    #[test]
    fn increment_only_touches_tracked() {
        let mut t = TopKTracker::new(2);
        t.offer(ItemKey(1), 10);
        assert!(t.increment(ItemKey(1)));
        assert_eq!(t.value(ItemKey(1)), Some(11));
        assert!(!t.increment(ItemKey(99)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn increment_updates_ordering() {
        let mut t = TopKTracker::new(2);
        t.offer(ItemKey(1), 5);
        t.offer(ItemKey(2), 6);
        // Raise item 1 above item 2; min should become item 2.
        t.increment(ItemKey(1));
        t.increment(ItemKey(1));
        assert_eq!(t.min_value(), Some(6));
        let evicted = t.offer(ItemKey(3), 100);
        assert_eq!(evicted, Some((ItemKey(2), 6)));
    }

    #[test]
    fn offer_tracked_key_replaces_value() {
        let mut t = TopKTracker::new(2);
        t.offer(ItemKey(1), 5);
        t.offer(ItemKey(1), 9);
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(ItemKey(1)), Some(9));
    }

    #[test]
    fn items_desc_sorted() {
        let mut t = TopKTracker::new(5);
        t.offer(ItemKey(1), 3);
        t.offer(ItemKey(2), 9);
        t.offer(ItemKey(3), 6);
        assert_eq!(
            t.items_desc(),
            vec![(ItemKey(2), 9), (ItemKey(3), 6), (ItemKey(1), 3)]
        );
    }

    #[test]
    fn remove_works() {
        let mut t = TopKTracker::new(2);
        t.offer(ItemKey(1), 5);
        assert_eq!(t.remove(ItemKey(1)), Some(5));
        assert_eq!(t.remove(ItemKey(1)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn negative_values_supported() {
        // Max-change tracking uses |estimates|, but the tracker itself
        // must handle any i64 correctly.
        let mut t = TopKTracker::new(2);
        t.offer(ItemKey(1), -5);
        t.offer(ItemKey(2), -10);
        let evicted = t.offer(ItemKey(3), -1);
        assert_eq!(evicted, Some((ItemKey(2), -10)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        TopKTracker::new(0);
    }

    proptest! {
        #[test]
        fn prop_never_exceeds_capacity(
            cap in 1usize..10,
            offers in prop::collection::vec((0u64..50, -100i64..100), 0..200),
        ) {
            let mut t = TopKTracker::new(cap);
            for (id, v) in offers {
                t.offer(ItemKey(id), v);
                prop_assert!(t.len() <= cap);
            }
        }

        #[test]
        fn prop_maps_stay_consistent(
            offers in prop::collection::vec((0u64..20, -50i64..50), 0..100),
        ) {
            let mut t = TopKTracker::new(5);
            for (id, v) in offers {
                t.offer(ItemKey(id), v);
                prop_assert_eq!(t.values.len(), t.ordered.len());
                for (&k, &v) in &t.values {
                    prop_assert!(t.ordered.contains(&(v, k)));
                }
            }
        }

        #[test]
        fn prop_tracker_keeps_maxima_of_distinct_offers(
            mut vals in prop::collection::vec(-1000i64..1000, 1..50),
        ) {
            // Offer distinct keys with given values; tracker must end up
            // holding exactly the top-cap values.
            let cap = 5usize;
            let mut t = TopKTracker::new(cap);
            for (i, &v) in vals.iter().enumerate() {
                t.offer(ItemKey(i as u64), v);
            }
            vals.sort_unstable_by(|a, b| b.cmp(a));
            let want: Vec<i64> = vals.iter().copied().take(cap).collect();
            let got: Vec<i64> = t.items_desc().iter().map(|&(_, v)| v).collect();
            // Multisets must agree except that equal-to-min offers may be
            // rejected in favour of earlier arrivals — compare sorted
            // values directly, which are identical either way.
            prop_assert_eq!(got, want);
        }
    }
}
