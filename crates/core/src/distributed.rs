//! Extension: distributed sketching — the §1 "load balancing in a
//! distributed database" deployment.
//!
//! Each site sketches its local stream with a shared `(params, seed)`
//! configuration; a coordinator merges the site sketches (§3.2
//! additivity) and answers global frequent-items queries. The point the
//! paper's space bounds make in this setting: each site ships `O(t·b)`
//! counters — independent of its stream length — versus the
//! `O(sample size · object size)` a sampling-based protocol would ship.
//!
//! [`DistributedSketch`] is deliberately a thin, explicit state machine
//! (register sites → collect → query) rather than a network layer: the
//! wire transfer is whatever serialization the deployment uses (the
//! sketches are `serde`-serializable).

use crate::error::CoreError;
use crate::params::SketchParams;
use crate::sketch::CountSketch;
use crate::topk::TopKTracker;
use cs_hash::ItemKey;
use cs_stream::Stream;
use serde::{Deserialize, Serialize};

/// One site's contribution: its local sketch plus the local candidate
/// keys (each site nominates its own top-l; the union is the global
/// candidate set — a standard two-round heavy-hitter protocol).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteReport {
    /// The site's sketch of its local stream.
    pub sketch: CountSketch,
    /// The site's local top-l candidate keys.
    pub candidates: Vec<ItemKey>,
    /// Local stream length (for diagnostics).
    pub local_n: u64,
}

/// Builds one site's report from its local stream.
pub fn site_report(stream: &Stream, l: usize, params: SketchParams, seed: u64) -> SiteReport {
    let mut processor = crate::approx_top::ApproxTopProcessor::new(params, l.max(1), seed);
    processor.observe_stream(stream);
    let result = processor.result();
    SiteReport {
        sketch: processor.sketch().clone(),
        candidates: result.keys(),
        local_n: stream.len() as u64,
    }
}

/// The coordinator: merges site reports and answers global queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedSketch {
    merged: CountSketch,
    candidates: Vec<ItemKey>,
    sites: usize,
    total_n: u64,
}

impl DistributedSketch {
    /// Merges site reports. All sites must have sketched with the same
    /// `(params, seed)`.
    pub fn coordinate(reports: &[SiteReport]) -> Result<Self, CoreError> {
        let first = reports
            .first()
            .ok_or_else(|| CoreError::InvalidParameter("need at least one site report".into()))?;
        let mut merged = first.sketch.clone();
        let mut candidates: Vec<ItemKey> = first.candidates.clone();
        let mut total_n = first.local_n;
        for report in &reports[1..] {
            merged.merge(&report.sketch)?;
            candidates.extend_from_slice(&report.candidates);
            total_n += report.local_n;
        }
        candidates.sort_unstable();
        candidates.dedup();
        Ok(Self {
            merged,
            candidates,
            sites: reports.len(),
            total_n,
        })
    }

    /// Number of sites merged.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Total occurrences across all sites.
    pub fn total_n(&self) -> u64 {
        self.total_n
    }

    /// Global point estimate for any item.
    pub fn estimate(&self, key: ItemKey) -> i64 {
        self.merged.estimate(key)
    }

    /// Global top-k: every site-nominated candidate re-estimated against
    /// the merged sketch, best k returned.
    pub fn top_k(&self, k: usize) -> Vec<(ItemKey, i64)> {
        let mut tracker = TopKTracker::new(k.max(1));
        for &key in &self.candidates {
            let est = self.merged.estimate(key);
            tracker.offer(key, est);
        }
        tracker.items_desc()
    }

    /// Bytes a site ships to the coordinator (sketch + candidate keys) —
    /// the communication cost the paper's space bound governs.
    pub fn per_site_bytes(report: &SiteReport) -> usize {
        report.sketch.space_bytes() + report.candidates.len() * std::mem::size_of::<ItemKey>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_metrics::recall_at_k;
    use cs_stream::workloads::balanced_shards;
    use cs_stream::ExactCounter;

    const PARAMS: SketchParams = SketchParams {
        rows: 5,
        buckets: 512,
    };

    #[test]
    fn merged_estimates_equal_global_sketch() {
        let (global, shards) = balanced_shards(500, 40_000, 1.0, 4, 7);
        let reports: Vec<SiteReport> = shards
            .iter()
            .map(|s| site_report(s, 10, PARAMS, 99))
            .collect();
        let coord = DistributedSketch::coordinate(&reports).unwrap();
        let mut global_sketch = CountSketch::new(PARAMS, 99);
        global_sketch.absorb(&global, 1);
        for id in 0..500u64 {
            assert_eq!(
                coord.estimate(ItemKey(id)),
                global_sketch.estimate(ItemKey(id)),
                "id {id}"
            );
        }
        assert_eq!(coord.sites(), 4);
        assert_eq!(coord.total_n(), 40_000);
    }

    #[test]
    fn global_top_k_recovered_from_sites() {
        let (global, shards) = balanced_shards(1_000, 100_000, 1.0, 8, 3);
        let exact = ExactCounter::from_stream(&global);
        let reports: Vec<SiteReport> = shards
            .iter()
            .map(|s| site_report(s, 20, PARAMS, 42))
            .collect();
        let coord = DistributedSketch::coordinate(&reports).unwrap();
        let top: Vec<ItemKey> = coord.top_k(10).into_iter().map(|(k, _)| k).collect();
        let recall = recall_at_k(&top, &exact, 10);
        assert!(recall >= 0.9, "distributed recall {recall}");
    }

    #[test]
    fn mismatched_sites_rejected() {
        let s = Stream::from_ids([1, 2, 3]);
        let a = site_report(&s, 2, PARAMS, 1);
        let b = site_report(&s, 2, PARAMS, 2); // different seed
        assert!(DistributedSketch::coordinate(&[a, b]).is_err());
    }

    #[test]
    fn empty_report_list_rejected() {
        assert!(matches!(
            DistributedSketch::coordinate(&[]),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn single_site_degenerates_to_local() {
        let s = Stream::from_ids([1, 1, 1, 2]);
        let report = site_report(&s, 2, PARAMS, 5);
        let coord = DistributedSketch::coordinate(&[report]).unwrap();
        let top = coord.top_k(1);
        assert_eq!(top[0].0, ItemKey(1));
        assert_eq!(top[0].1, 3);
    }

    #[test]
    fn per_site_bytes_independent_of_stream_length() {
        let short = site_report(&Stream::from_ids(0..100), 5, PARAMS, 1);
        let long = site_report(
            &Stream::from_ids((0..100_000u64).map(|i| i % 100)),
            5,
            PARAMS,
            1,
        );
        let a = DistributedSketch::per_site_bytes(&short);
        let b = DistributedSketch::per_site_bytes(&long);
        assert_eq!(a, b, "communication cost must not grow with n");
    }

    #[test]
    fn reports_serialize_for_the_wire() {
        let s = Stream::from_ids([7, 7, 8]);
        let report = site_report(&s, 2, PARAMS, 9);
        let bytes = serde_json::to_vec(&report).unwrap();
        let back: SiteReport = serde_json::from_slice(&bytes).unwrap();
        let coord = DistributedSketch::coordinate(&[back]).unwrap();
        assert_eq!(coord.estimate(ItemKey(7)), 2);
    }
}
