//! Extension: distributed sketching — the §1 "load balancing in a
//! distributed database" deployment.
//!
//! Each site sketches its local stream with a shared `(params, seed)`
//! configuration; a coordinator merges the site sketches (§3.2
//! additivity) and answers global frequent-items queries. The point the
//! paper's space bounds make in this setting: each site ships `O(t·b)`
//! counters — independent of its stream length — versus the
//! `O(sample size · object size)` a sampling-based protocol would ship.
//!
//! [`DistributedSketch`] is deliberately a thin, explicit state machine
//! (register sites → collect → query) rather than a network layer: the
//! wire transfer is whatever transport the deployment uses, carrying the
//! checksummed snapshot bytes of [`crate::snapshot`].
//!
//! Production collection runs through [`QuorumCoordinator`], which
//! survives what the strict [`DistributedSketch::coordinate`] cannot: a
//! corrupted, truncated, incompatible, or straggling site is *excluded*
//! (after a deterministic, tick-driven retry schedule — no wall-clock, so
//! tests are reproducible) rather than failing the whole merge, and the
//! final [`MergeReport`] states exactly which sites are missing and how
//! far the error bound widened as a result.

use crate::error::CoreError;
use crate::params::SketchParams;
use crate::sketch::CountSketch;
use crate::topk::TopKTracker;
use cs_hash::ItemKey;
use cs_stream::Stream;

/// One site's contribution: its local sketch plus the local candidate
/// keys (each site nominates its own top-l; the union is the global
/// candidate set — a standard two-round heavy-hitter protocol).
#[derive(Debug, Clone)]
pub struct SiteReport {
    /// The site's sketch of its local stream.
    pub sketch: CountSketch,
    /// The site's local top-l candidate keys.
    pub candidates: Vec<ItemKey>,
    /// Local stream length (for diagnostics).
    pub local_n: u64,
}

/// Builds one site's report from its local stream.
pub fn site_report(stream: &Stream, l: usize, params: SketchParams, seed: u64) -> SiteReport {
    let mut processor = crate::approx_top::ApproxTopProcessor::new(params, l.max(1), seed);
    processor.observe_stream(stream);
    let result = processor.result();
    SiteReport {
        sketch: processor.sketch().clone(),
        candidates: result.keys(),
        local_n: stream.len() as u64,
    }
}

/// The coordinator: merges site reports and answers global queries.
#[derive(Debug, Clone)]
pub struct DistributedSketch {
    merged: CountSketch,
    candidates: Vec<ItemKey>,
    sites: usize,
    total_n: u64,
}

impl DistributedSketch {
    /// Merges site reports. All sites must have sketched with the same
    /// `(params, seed)`.
    pub fn coordinate(reports: &[SiteReport]) -> Result<Self, CoreError> {
        let first = reports
            .first()
            .ok_or_else(|| CoreError::InvalidParameter("need at least one site report".into()))?;
        let mut merged = first.sketch.clone();
        let mut candidates: Vec<ItemKey> = first.candidates.clone();
        let mut total_n = first.local_n;
        for report in &reports[1..] {
            merged.merge(&report.sketch)?;
            candidates.extend_from_slice(&report.candidates);
            total_n += report.local_n;
        }
        candidates.sort_unstable();
        candidates.dedup();
        Ok(Self {
            merged,
            candidates,
            sites: reports.len(),
            total_n,
        })
    }

    /// Number of sites merged.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Total occurrences across all sites.
    pub fn total_n(&self) -> u64 {
        self.total_n
    }

    /// Global point estimate for any item.
    pub fn estimate(&self, key: ItemKey) -> i64 {
        self.merged.estimate(key)
    }

    /// Global top-k: every site-nominated candidate re-estimated against
    /// the merged sketch, best k returned.
    pub fn top_k(&self, k: usize) -> Vec<(ItemKey, i64)> {
        let mut tracker = TopKTracker::new(k.max(1));
        for &key in &self.candidates {
            let est = self.merged.estimate(key);
            tracker.offer(key, est);
        }
        tracker.items_desc()
    }

    /// Bytes a site ships to the coordinator (sketch + candidate keys) —
    /// the communication cost the paper's space bound governs.
    pub fn per_site_bytes(report: &SiteReport) -> usize {
        report.sketch.space_bytes() + report.candidates.len() * std::mem::size_of::<ItemKey>()
    }
}

/// Deterministic retry schedule for straggling sites, driven by logical
/// ticks instead of wall-clock time so every test run is reproducible.
///
/// Attempt `a` (zero-based) that fails is retried after
/// `min(base_backoff_ticks · multiplier^a, max_backoff_ticks)` further
/// ticks; after `max_attempts` failed attempts the site is given up on
/// and excluded as a straggler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delivery attempts before a site is excluded.
    pub max_attempts: u32,
    /// Ticks to wait after the first failed attempt.
    pub base_backoff_ticks: u64,
    /// Exponential growth factor between attempts.
    pub multiplier: u64,
    /// Ceiling on any single backoff interval.
    pub max_backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ticks: 1,
            multiplier: 2,
            max_backoff_ticks: 8,
        }
    }
}

impl RetryPolicy {
    /// Backoff after failed attempt `attempt` (zero-based), or `None`
    /// once the attempt budget is exhausted.
    pub fn backoff_ticks(&self, attempt: u32) -> Option<u64> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        let factor = self.multiplier.saturating_pow(attempt);
        Some(
            self.base_backoff_ticks
                .saturating_mul(factor)
                .min(self.max_backoff_ticks),
        )
    }

    /// The full schedule of backoff intervals, for inspection.
    pub fn schedule(&self) -> Vec<u64> {
        (0..self.max_attempts)
            .map_while(|a| self.backoff_ticks(a))
            .collect()
    }
}

/// Why a site's contribution was left out of a quorum merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExclusionReason {
    /// Snapshot bytes failed validation (checksum, structure, or a merge
    /// that would saturate a counter).
    Corrupt(CoreError),
    /// Report was shaped correctly but incompatible with the expected
    /// `(params, seed)` configuration.
    Incompatible(CoreError),
    /// The site never delivered within the retry budget.
    Straggler {
        /// Delivery attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for ExclusionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExclusionReason::Corrupt(e) => write!(f, "corrupt report: {e}"),
            ExclusionReason::Incompatible(e) => write!(f, "incompatible report: {e}"),
            ExclusionReason::Straggler { attempts } => {
                write!(f, "no response after {attempts} attempt(s)")
            }
        }
    }
}

/// Degradation report of a quorum merge: what was merged, what was not,
/// and what that does to the guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// Sites the coordinator expected to hear from.
    pub total_sites: usize,
    /// Site indices whose reports were validated and merged.
    pub included: Vec<usize>,
    /// Excluded sites with the reason each was dropped.
    pub excluded: Vec<(usize, ExclusionReason)>,
    /// Occurrences covered by the included sites.
    pub covered_n: u64,
    /// Ticks elapsed when the merge was finalized.
    pub finalized_at_tick: u64,
}

impl MergeReport {
    /// Fraction of sites whose mass the merged sketch covers.
    pub fn coverage(&self) -> f64 {
        if self.total_sites == 0 {
            return 0.0;
        }
        self.included.len() as f64 / self.total_sites as f64
    }

    /// Worst-case factor by which the `8γ = 8·√(F₂^res(b))/b`-style error
    /// bound widens: the missing sites' mass is simply absent from the
    /// merged counters, so an estimate can be off by up to the full count
    /// an item had on the excluded sites. Under balanced sharding that is
    /// a `total/included` multiplicative widening of the bound; with no
    /// included sites the bound is vacuous (`+∞`).
    pub fn error_bound_widening(&self) -> f64 {
        if self.included.is_empty() {
            f64::INFINITY
        } else {
            self.total_sites as f64 / self.included.len() as f64
        }
    }

    /// Whether every expected site was merged.
    pub fn is_complete(&self) -> bool {
        self.included.len() == self.total_sites
    }
}

/// Outcome of a successful quorum merge: the queryable coordinator plus
/// the degradation report.
#[derive(Debug, Clone)]
pub struct QuorumOutcome {
    /// The merged, queryable global sketch.
    pub sketch: DistributedSketch,
    /// Which sites made it in, and the widened error bound.
    pub report: MergeReport,
}

#[derive(Debug, Clone)]
enum SlotState {
    Waiting { attempt: u32, retry_at_tick: u64 },
    Accepted(Box<SiteReport>),
    Excluded(ExclusionReason),
}

/// Fault-tolerant collection of site reports.
///
/// Usage is a tick-driven loop: the driver asks [`due_sites`] which
/// sites to (re-)request, delivers whatever comes back via
/// [`deliver_snapshot`] / [`deliver_report`] / [`deliver_failed`], and
/// advances logical time with [`advance_tick`]. Once
/// [`pending_sites`] is empty (every site accepted or excluded) —
/// or the driver decides to stop waiting — [`finalize`] merges the
/// accepted reports if they meet the quorum.
///
/// [`due_sites`]: QuorumCoordinator::due_sites
/// [`deliver_snapshot`]: QuorumCoordinator::deliver_snapshot
/// [`deliver_report`]: QuorumCoordinator::deliver_report
/// [`deliver_failed`]: QuorumCoordinator::deliver_failed
/// [`advance_tick`]: QuorumCoordinator::advance_tick
/// [`pending_sites`]: QuorumCoordinator::pending_sites
/// [`finalize`]: QuorumCoordinator::finalize
#[derive(Debug, Clone)]
pub struct QuorumCoordinator {
    /// Empty sketch with the expected `(params, seed)`; every delivered
    /// report is validated against it.
    reference: CountSketch,
    quorum: usize,
    policy: RetryPolicy,
    tick: u64,
    slots: Vec<SlotState>,
}

impl QuorumCoordinator {
    /// Creates a coordinator expecting `num_sites` reports sketched with
    /// `(params, seed)`, requiring at least `quorum` of them.
    pub fn new(
        num_sites: usize,
        quorum: usize,
        params: SketchParams,
        seed: u64,
        policy: RetryPolicy,
    ) -> Result<Self, CoreError> {
        if num_sites == 0 {
            return Err(CoreError::InvalidParameter("need at least one site".into()));
        }
        if quorum == 0 || quorum > num_sites {
            return Err(CoreError::InvalidParameter(format!(
                "quorum {quorum} not in 1..={num_sites}"
            )));
        }
        Ok(Self {
            reference: CountSketch::new(params, seed),
            quorum,
            policy,
            tick: 0,
            slots: vec![
                SlotState::Waiting {
                    attempt: 0,
                    retry_at_tick: 0,
                };
                num_sites
            ],
        })
    }

    /// Current logical time.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The `(rows, buckets)` every delivered report must match.
    pub fn expected_params(&self) -> SketchParams {
        SketchParams {
            rows: self.reference.rows(),
            buckets: self.reference.buckets(),
        }
    }

    /// The hash seed every delivered report must match.
    pub fn expected_seed(&self) -> u64 {
        self.reference.seed()
    }

    /// Sites the coordinator expects to hear from.
    pub fn num_sites(&self) -> usize {
        self.slots.len()
    }

    /// Minimum validated reports required by [`finalize`].
    ///
    /// [`finalize`]: QuorumCoordinator::finalize
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Sites whose reports have been validated and accepted so far.
    pub fn accepted_sites(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, SlotState::Accepted(_)).then_some(i))
            .collect()
    }

    /// Advances logical time by one tick.
    pub fn advance_tick(&mut self) {
        self.tick += 1;
    }

    /// Sites whose (re-)request is due at the current tick.
    pub fn due_sites(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                SlotState::Waiting { retry_at_tick, .. } if *retry_at_tick <= self.tick => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Sites still awaited (neither accepted nor excluded).
    pub fn pending_sites(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, SlotState::Waiting { .. }).then_some(i))
            .collect()
    }

    fn slot_mut(&mut self, site: usize) -> Result<&mut SlotState, CoreError> {
        let n = self.slots.len();
        self.slots
            .get_mut(site)
            .ok_or_else(|| CoreError::InvalidParameter(format!("site {site} out of 0..{n}")))
    }

    /// Delivers a site's report as snapshot bytes (the wire form). The
    /// bytes are checksum-verified and the decoded sketch validated for
    /// dimension/seed compatibility; a bad payload permanently excludes
    /// the site with the typed reason, it does not error the coordinator.
    pub fn deliver_snapshot(
        &mut self,
        site: usize,
        snapshot_bytes: &[u8],
        candidates: Vec<ItemKey>,
        local_n: u64,
    ) -> Result<(), CoreError> {
        match CountSketch::from_snapshot_bytes(snapshot_bytes) {
            Ok(sketch) => self.deliver_report(
                site,
                SiteReport {
                    sketch,
                    candidates,
                    local_n,
                },
            ),
            Err(e) => {
                let slot = self.slot_mut(site)?;
                if matches!(slot, SlotState::Waiting { .. }) {
                    *slot = SlotState::Excluded(ExclusionReason::Corrupt(e));
                }
                Ok(())
            }
        }
    }

    /// Delivers an already-decoded report. Incompatible `(params, seed)`
    /// excludes the site; a matching report is accepted.
    pub fn deliver_report(&mut self, site: usize, report: SiteReport) -> Result<(), CoreError> {
        let verdict = self.reference.compatible(&report.sketch);
        let slot = self.slot_mut(site)?;
        if !matches!(slot, SlotState::Waiting { .. }) {
            // Duplicate delivery (e.g. a retried request answered twice):
            // first result wins, later ones are ignored.
            return Ok(());
        }
        *slot = match verdict {
            Ok(()) => SlotState::Accepted(Box::new(report)),
            Err(e) => SlotState::Excluded(ExclusionReason::Incompatible(e)),
        };
        Ok(())
    }

    /// Records that the current request to `site` failed (timeout,
    /// connection refused). The retry policy decides whether the site is
    /// rescheduled at a later tick or excluded as a straggler.
    pub fn deliver_failed(&mut self, site: usize) -> Result<(), CoreError> {
        let now = self.tick;
        let policy = self.policy;
        let slot = self.slot_mut(site)?;
        if let SlotState::Waiting { attempt, .. } = *slot {
            *slot = match policy.backoff_ticks(attempt) {
                Some(backoff) => SlotState::Waiting {
                    attempt: attempt + 1,
                    retry_at_tick: now + backoff,
                },
                None => SlotState::Excluded(ExclusionReason::Straggler {
                    attempts: attempt + 1,
                }),
            };
        }
        Ok(())
    }

    /// Merges the accepted reports, if they meet the quorum. Sites still
    /// pending count as stragglers (the driver chose to stop waiting).
    /// A site whose merge would saturate a counter is excluded and
    /// reported, not silently wrapped.
    pub fn finalize(mut self) -> Result<QuorumOutcome, CoreError> {
        // Give up on anything still pending.
        for slot in &mut self.slots {
            if let SlotState::Waiting { attempt, .. } = *slot {
                *slot = SlotState::Excluded(ExclusionReason::Straggler { attempts: attempt });
            }
        }
        let mut merged = self.reference.clone();
        let mut candidates: Vec<ItemKey> = Vec::new();
        let mut included = Vec::new();
        let mut excluded = Vec::new();
        let mut covered_n = 0u64;
        for (site, slot) in self.slots.iter().enumerate() {
            match slot {
                SlotState::Accepted(report) => match merged.merge(&report.sketch) {
                    Ok(()) => {
                        candidates.extend_from_slice(&report.candidates);
                        covered_n += report.local_n;
                        included.push(site);
                    }
                    Err(e) => excluded.push((site, ExclusionReason::Corrupt(e))),
                },
                SlotState::Excluded(reason) => excluded.push((site, reason.clone())),
                SlotState::Waiting { .. } => unreachable!("drained above"),
            }
        }
        if included.len() < self.quorum {
            return Err(CoreError::QuorumNotMet {
                validated: included.len(),
                required: self.quorum,
            });
        }
        candidates.sort_unstable();
        candidates.dedup();
        let report = MergeReport {
            total_sites: self.slots.len(),
            included: included.clone(),
            excluded,
            covered_n,
            finalized_at_tick: self.tick,
        };
        Ok(QuorumOutcome {
            sketch: DistributedSketch {
                merged,
                candidates,
                sites: included.len(),
                total_n: covered_n,
            },
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_metrics::recall_at_k;
    use cs_stream::workloads::balanced_shards;
    use cs_stream::ExactCounter;

    const PARAMS: SketchParams = SketchParams {
        rows: 5,
        buckets: 512,
    };

    #[test]
    fn merged_estimates_equal_global_sketch() {
        let (global, shards) = balanced_shards(500, 40_000, 1.0, 4, 7);
        let reports: Vec<SiteReport> = shards
            .iter()
            .map(|s| site_report(s, 10, PARAMS, 99))
            .collect();
        let coord = DistributedSketch::coordinate(&reports).unwrap();
        let mut global_sketch = CountSketch::new(PARAMS, 99);
        global_sketch.absorb(&global, 1);
        for id in 0..500u64 {
            assert_eq!(
                coord.estimate(ItemKey(id)),
                global_sketch.estimate(ItemKey(id)),
                "id {id}"
            );
        }
        assert_eq!(coord.sites(), 4);
        assert_eq!(coord.total_n(), 40_000);
    }

    #[test]
    fn global_top_k_recovered_from_sites() {
        let (global, shards) = balanced_shards(1_000, 100_000, 1.0, 8, 3);
        let exact = ExactCounter::from_stream(&global);
        let reports: Vec<SiteReport> = shards
            .iter()
            .map(|s| site_report(s, 20, PARAMS, 42))
            .collect();
        let coord = DistributedSketch::coordinate(&reports).unwrap();
        let top: Vec<ItemKey> = coord.top_k(10).into_iter().map(|(k, _)| k).collect();
        let recall = recall_at_k(&top, &exact, 10);
        assert!(recall >= 0.9, "distributed recall {recall}");
    }

    #[test]
    fn mismatched_sites_rejected() {
        let s = Stream::from_ids([1, 2, 3]);
        let a = site_report(&s, 2, PARAMS, 1);
        let b = site_report(&s, 2, PARAMS, 2); // different seed
        assert!(DistributedSketch::coordinate(&[a, b]).is_err());
    }

    #[test]
    fn empty_report_list_rejected() {
        assert!(matches!(
            DistributedSketch::coordinate(&[]),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn single_site_degenerates_to_local() {
        let s = Stream::from_ids([1, 1, 1, 2]);
        let report = site_report(&s, 2, PARAMS, 5);
        let coord = DistributedSketch::coordinate(&[report]).unwrap();
        let top = coord.top_k(1);
        assert_eq!(top[0].0, ItemKey(1));
        assert_eq!(top[0].1, 3);
    }

    #[test]
    fn per_site_bytes_independent_of_stream_length() {
        let short = site_report(&Stream::from_ids(0..100), 5, PARAMS, 1);
        let long = site_report(
            &Stream::from_ids((0..100_000u64).map(|i| i % 100)),
            5,
            PARAMS,
            1,
        );
        let a = DistributedSketch::per_site_bytes(&short);
        let b = DistributedSketch::per_site_bytes(&long);
        assert_eq!(a, b, "communication cost must not grow with n");
    }

    #[test]
    fn reports_serialize_for_the_wire() {
        let s = Stream::from_ids([7, 7, 8]);
        let report = site_report(&s, 2, PARAMS, 9);
        let bytes = report.sketch.to_snapshot_bytes();
        let back = SiteReport {
            sketch: CountSketch::from_snapshot_bytes(&bytes).unwrap(),
            candidates: report.candidates.clone(),
            local_n: report.local_n,
        };
        let coord = DistributedSketch::coordinate(&[back]).unwrap();
        assert_eq!(coord.estimate(ItemKey(7)), 2);
    }

    #[test]
    fn retry_policy_schedule_is_deterministic_and_capped() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_ticks: 1,
            multiplier: 3,
            max_backoff_ticks: 10,
        };
        assert_eq!(p.schedule(), vec![1, 3, 9, 10]);
        assert_eq!(p.backoff_ticks(4), None, "budget exhausted");
        let d = RetryPolicy::default();
        assert_eq!(d.schedule(), vec![1, 2]);
    }

    fn quorum_setup(sites: usize, quorum: usize) -> (Vec<SiteReport>, QuorumCoordinator) {
        let (_, shards) = balanced_shards(200, 8_000, 1.0, sites, 5);
        let reports: Vec<SiteReport> = shards
            .iter()
            .map(|s| site_report(s, 10, PARAMS, 99))
            .collect();
        let coord =
            QuorumCoordinator::new(sites, quorum, PARAMS, 99, RetryPolicy::default()).unwrap();
        (reports, coord)
    }

    #[test]
    fn quorum_all_sites_healthy_matches_strict_coordinate() {
        let (reports, mut coord) = quorum_setup(4, 4);
        for (i, r) in reports.iter().enumerate() {
            coord
                .deliver_snapshot(
                    i,
                    &r.sketch.to_snapshot_bytes(),
                    r.candidates.clone(),
                    r.local_n,
                )
                .unwrap();
        }
        let outcome = coord.finalize().unwrap();
        assert!(outcome.report.is_complete());
        assert_eq!(outcome.report.coverage(), 1.0);
        assert_eq!(outcome.report.error_bound_widening(), 1.0);
        let strict = DistributedSketch::coordinate(&reports).unwrap();
        for id in 0..200u64 {
            assert_eq!(
                outcome.sketch.estimate(ItemKey(id)),
                strict.estimate(ItemKey(id))
            );
        }
    }

    #[test]
    fn quorum_excludes_corrupt_site_and_reports_widening() {
        let (reports, mut coord) = quorum_setup(4, 3);
        for (i, r) in reports.iter().enumerate() {
            let mut bytes = r.sketch.to_snapshot_bytes();
            if i == 2 {
                bytes[50] ^= 0xFF; // corrupt site 2's payload
            }
            coord
                .deliver_snapshot(i, &bytes, r.candidates.clone(), r.local_n)
                .unwrap();
        }
        let outcome = coord.finalize().unwrap();
        assert_eq!(outcome.report.included, vec![0, 1, 3]);
        assert_eq!(outcome.report.excluded.len(), 1);
        assert!(matches!(
            outcome.report.excluded[0],
            (
                2,
                ExclusionReason::Corrupt(CoreError::ChecksumMismatch { .. })
            )
        ));
        assert!((outcome.report.coverage() - 0.75).abs() < 1e-12);
        assert!((outcome.report.error_bound_widening() - 4.0 / 3.0).abs() < 1e-12);
        assert!(!outcome.report.is_complete());
    }

    #[test]
    fn quorum_excludes_incompatible_seed() {
        let (reports, mut coord) = quorum_setup(2, 1);
        let alien = site_report(&Stream::from_ids([1, 2]), 2, PARAMS, 12345);
        coord.deliver_report(0, reports[0].clone()).unwrap();
        coord.deliver_report(1, alien).unwrap();
        let outcome = coord.finalize().unwrap();
        assert_eq!(outcome.report.included, vec![0]);
        assert!(matches!(
            outcome.report.excluded[0],
            (
                1,
                ExclusionReason::Incompatible(CoreError::SeedMismatch { .. })
            )
        ));
    }

    #[test]
    fn quorum_straggler_is_retried_then_excluded_tick_driven() {
        let (reports, mut coord) = quorum_setup(2, 1);
        coord.deliver_report(0, reports[0].clone()).unwrap();
        // Site 1 never answers: fail each due request, advancing ticks.
        let mut failures = 0;
        while coord.pending_sites().contains(&1) {
            if coord.due_sites().contains(&1) {
                coord.deliver_failed(1).unwrap();
                failures += 1;
            }
            coord.advance_tick();
            assert!(coord.tick() < 100, "retry loop must terminate");
        }
        assert_eq!(failures, RetryPolicy::default().max_attempts);
        let outcome = coord.finalize().unwrap();
        assert_eq!(outcome.report.included, vec![0]);
        assert!(matches!(
            outcome.report.excluded[0],
            (1, ExclusionReason::Straggler { attempts: 3 })
        ));
    }

    #[test]
    fn quorum_not_met_is_typed_error() {
        let (reports, mut coord) = quorum_setup(3, 3);
        coord.deliver_report(0, reports[0].clone()).unwrap();
        // Sites 1 and 2 never deliver.
        let err = coord.finalize().unwrap_err();
        assert_eq!(
            err,
            CoreError::QuorumNotMet {
                validated: 1,
                required: 3
            }
        );
    }

    #[test]
    fn quorum_duplicate_delivery_first_wins() {
        let (reports, mut coord) = quorum_setup(2, 2);
        coord.deliver_report(0, reports[0].clone()).unwrap();
        coord.deliver_report(0, reports[1].clone()).unwrap(); // dup, ignored
        coord.deliver_report(1, reports[1].clone()).unwrap();
        let outcome = coord.finalize().unwrap();
        assert_eq!(outcome.report.included, vec![0, 1]);
        assert_eq!(outcome.sketch.total_n(), 8_000);
    }

    #[test]
    fn quorum_exposes_its_configuration() {
        let (reports, mut coord) = quorum_setup(3, 2);
        assert_eq!(coord.expected_params(), PARAMS);
        assert_eq!(coord.expected_seed(), 99);
        assert_eq!(coord.num_sites(), 3);
        assert_eq!(coord.quorum(), 2);
        assert!(coord.accepted_sites().is_empty());
        coord.deliver_report(1, reports[1].clone()).unwrap();
        assert_eq!(coord.accepted_sites(), vec![1]);
    }

    #[test]
    fn quorum_rejects_bad_configuration() {
        assert!(QuorumCoordinator::new(0, 1, PARAMS, 0, RetryPolicy::default()).is_err());
        assert!(QuorumCoordinator::new(3, 0, PARAMS, 0, RetryPolicy::default()).is_err());
        assert!(QuorumCoordinator::new(3, 4, PARAMS, 0, RetryPolicy::default()).is_err());
        let mut c = QuorumCoordinator::new(2, 1, PARAMS, 0, RetryPolicy::default()).unwrap();
        assert!(c.deliver_failed(7).is_err(), "site index out of range");
    }

    #[test]
    fn exclusion_reason_displays() {
        let r = ExclusionReason::Straggler { attempts: 3 };
        assert!(r.to_string().contains("3 attempt"));
        let r = ExclusionReason::Corrupt(CoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        });
        assert!(r.to_string().contains("corrupt"));
        let r = ExclusionReason::Incompatible(CoreError::SeedMismatch { left: 1, right: 2 });
        assert!(r.to_string().contains("incompatible"));
    }
}
