//! The one-pass APPROXTOP(S, k, ε) algorithm (§3.2).
//!
//! Given a stream, an integer `k` and `ε > 0`, output a list of `k`
//! elements such that every listed element has `n_q ≥ (1-ε)·n_k`; with
//! the paper's stronger guarantee, every element with `n_q ≥ (1+ε)·n_k`
//! appears in the list. Correctness (Lemma 5) holds w.h.p. when the
//! sketch is dimensioned by [`SketchParams::for_approx_top`].
//!
//! The algorithm is the paper's, verbatim: for each arriving `q_j`,
//! `ADD(C, q_j)`; then if `q_j` is tracked, increment its stored count,
//! else offer `ESTIMATE(C, q_j)` to the k-slot heap.
//!
//! [`ApproxTopProcessor::observe`] (and `observe_stream`, its loop) is
//! that per-item rule, kept verbatim: tracker state then depends only on
//! the stream prefix, so snapshots resumed mid-stream stay bit-identical
//! to an uninterrupted run. Bulk arrivals can instead go through
//! [`ApproxTopProcessor::observe_batch`], which feeds the sketch via the
//! block ingestion engine ([`crate::ingest`]) and amortizes heap
//! maintenance per block — the sketch state stays bit-identical either
//! way; see the method docs for the (benign) effect on stored heap
//! values.

use crate::ingest::{IngestLanes, BLOCK};
use crate::median::Combiner;
use crate::params::SketchParams;
use crate::sketch::{CountSketch, EstimateBatchScratch, EstimateScratch, GenericCountSketch};
use crate::topk::TopKTracker;
use cs_hash::ItemKey;
use cs_stream::Stream;

/// How the heap is maintained as items arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapPolicy {
    /// The paper's rule: tracked items are *incremented*; only untracked
    /// arrivals are re-estimated. One sketch probe per untracked arrival.
    #[default]
    IncrementTracked,
    /// Ablation: re-estimate on every arrival, tracked or not. More sketch
    /// probes, but stored values never drift from the sketch.
    AlwaysReEstimate,
}

/// Result of a one-pass APPROXTOP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxTopResult {
    /// The reported items with their estimated counts, non-increasing.
    pub items: Vec<(ItemKey, i64)>,
    /// Counters + heap bytes actually used.
    pub space_bytes: usize,
}

impl ApproxTopResult {
    /// Just the keys, most frequent (by estimate) first.
    pub fn keys(&self) -> Vec<ItemKey> {
        self.items.iter().map(|&(k, _)| k).collect()
    }
}

/// An incremental APPROXTOP processor: feed occurrences one at a time.
///
/// Generic over the sketch's hash constructions; `ApproxTopProcessor` with
/// the defaults is obtained from [`approx_top`] or
/// [`ApproxTopProcessor::new`].
#[derive(Debug, Clone)]
pub struct ApproxTopProcessor<H = cs_hash::PairwiseHash, S = cs_hash::PairwiseSign> {
    sketch: GenericCountSketch<H, S>,
    tracker: TopKTracker,
    policy: HeapPolicy,
    scratch: EstimateScratch,
    /// Standing lanes for the batched read path (transient, like
    /// `scratch`: rebuilt empty by `from_parts`).
    batch: EstimateBatchScratch,
    cand_keys: Vec<ItemKey>,
    cand_ests: Vec<i64>,
}

impl ApproxTopProcessor<cs_hash::PairwiseHash, cs_hash::PairwiseSign> {
    /// Creates a processor with the paper-faithful sketch.
    pub fn new(params: SketchParams, k: usize, seed: u64) -> Self {
        Self::with_sketch(CountSketch::new(params, seed), k)
    }
}

impl<H, S> ApproxTopProcessor<H, S>
where
    H: cs_hash::BucketHasher,
    S: cs_hash::SignHasher,
{
    /// Wraps an existing (empty) sketch.
    pub fn with_sketch(sketch: GenericCountSketch<H, S>, k: usize) -> Self {
        Self {
            sketch,
            tracker: TopKTracker::new(k),
            policy: HeapPolicy::default(),
            scratch: EstimateScratch::new(),
            batch: EstimateBatchScratch::new(),
            cand_keys: Vec::with_capacity(BLOCK),
            cand_ests: Vec::with_capacity(BLOCK),
        }
    }

    /// Selects the heap maintenance policy (default: the paper's).
    pub fn with_policy(mut self, policy: HeapPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the row combiner (default: median).
    pub fn with_combiner(mut self, combiner: Combiner) -> Self {
        self.sketch = self.sketch.with_combiner(combiner);
        self
    }

    /// Processes one arrival: the paper's two steps.
    pub fn observe(&mut self, key: ItemKey) {
        self.sketch.add(key);
        match self.policy {
            HeapPolicy::IncrementTracked => {
                if !self.tracker.increment(key) {
                    let est = self.sketch.estimate_with_scratch(key, &mut self.scratch);
                    self.tracker.offer(key, est);
                }
            }
            HeapPolicy::AlwaysReEstimate => {
                let est = self.sketch.estimate_with_scratch(key, &mut self.scratch);
                self.tracker.offer(key, est);
            }
        }
    }

    /// Processes a block of arrivals through the batched ingestion
    /// engine ([`GenericCountSketch::update_batch`]).
    ///
    /// The sketch ends **bit-identical** to calling [`Self::observe`]
    /// once per key. Heap maintenance is amortized: each block is
    /// absorbed first, then untracked arrivals are estimated against the
    /// post-block counters, reusing the processor's one
    /// [`EstimateScratch`]. A key first offered inside a block has its
    /// later same-block occurrences already folded into that estimate,
    /// so they are not incremented again — stored values therefore match
    /// the per-item rule exactly whenever the estimate is collision-free
    /// and differ only by intra-block collision noise otherwise.
    ///
    /// Because heap values become block-granular, tracker state depends
    /// on where block boundaries fall: callers that need snapshots taken
    /// mid-stream to resume **bit-identically** (tracker included)
    /// should stick to [`Self::observe`]/[`Self::observe_stream`], whose
    /// state is a pure function of the stream prefix.
    pub fn observe_batch(&mut self, keys: &[ItemKey]) {
        // Keys offered (and still tracked) in the current block; bounded
        // by the block size, so a stack array suffices.
        let mut offered = [ItemKey(0); BLOCK];
        let mut lanes = IngestLanes::new();
        for block in keys.chunks(BLOCK) {
            self.sketch
                .update_batch_weighted_with_lanes(block, 1, &mut lanes);
            match self.policy {
                HeapPolicy::IncrementTracked => {
                    // Pre-estimate, through the batch kernel, the unique
                    // keys untracked when the block starts — a superset
                    // of what the sequential rule below can estimate,
                    // short of rare mid-block evictions (those take the
                    // scalar probe). All estimates are post-block values
                    // either way, so hoisting them changes no decision.
                    self.cand_keys.clear();
                    for &key in block {
                        if !self.tracker.contains(key) && !self.cand_keys.contains(&key) {
                            self.cand_keys.push(key);
                        }
                    }
                    self.sketch.estimate_batch_with_scratch(
                        &self.cand_keys,
                        &mut self.batch,
                        &mut self.cand_ests,
                    );
                    let mut offered_len = 0usize;
                    for &key in block {
                        let offered_here = offered[..offered_len].contains(&key);
                        if offered_here {
                            // Its post-block estimate counted this
                            // occurrence; re-offer only if evicted since.
                            if self.tracker.contains(key) {
                                continue;
                            }
                        } else if self.tracker.increment(key) {
                            continue;
                        }
                        let est = match self.cand_keys.iter().position(|&c| c == key) {
                            Some(p) => self.cand_ests[p],
                            None => self.sketch.estimate_with_scratch(key, &mut self.scratch),
                        };
                        self.tracker.offer(key, est);
                        if !offered_here && self.tracker.contains(key) {
                            offered[offered_len] = key;
                            offered_len += 1;
                        }
                    }
                }
                HeapPolicy::AlwaysReEstimate => {
                    // Offers replace stored values, so duplicates within
                    // a block are harmless (same estimate, same result);
                    // the whole block goes through the batch kernel.
                    self.sketch.estimate_batch_with_scratch(
                        block,
                        &mut self.batch,
                        &mut self.cand_ests,
                    );
                    for (&key, &est) in block.iter().zip(&self.cand_ests) {
                        self.tracker.offer(key, est);
                    }
                }
            }
        }
    }

    /// Processes a whole stream, one arrival at a time (the durability
    /// contract's path — see [`Self::observe_batch`] for the trade-off).
    pub fn observe_stream(&mut self, stream: &Stream) {
        for key in stream.iter() {
            self.observe(key);
        }
    }

    /// The current top-k snapshot.
    pub fn result(&self) -> ApproxTopResult {
        ApproxTopResult {
            items: self.tracker.items_desc(),
            space_bytes: self.sketch.space_bytes() + self.tracker.space_bytes(),
        }
    }

    /// Read access to the underlying sketch.
    pub fn sketch(&self) -> &GenericCountSketch<H, S> {
        &self.sketch
    }

    /// Read access to the tracker.
    pub fn tracker(&self) -> &TopKTracker {
        &self.tracker
    }

    /// The active heap policy.
    pub fn policy(&self) -> HeapPolicy {
        self.policy
    }

    /// Reassembles a processor from its parts — used by the snapshot
    /// codec and by callers that rebuild a processor around an
    /// already-merged sketch (e.g. the parallel pipeline's resumable CLI
    /// path). The scratch buffers are transient and rebuilt empty.
    pub fn from_parts(
        sketch: GenericCountSketch<H, S>,
        tracker: TopKTracker,
        policy: HeapPolicy,
    ) -> Self {
        Self {
            sketch,
            tracker,
            policy,
            scratch: EstimateScratch::new(),
            batch: EstimateBatchScratch::new(),
            cand_keys: Vec::with_capacity(BLOCK),
            cand_ests: Vec::with_capacity(BLOCK),
        }
    }

    /// Decomposes the processor into sketch, tracker and policy — the
    /// parallel APPROXTOP merge re-bases each worker's candidates
    /// against the merged sketch, so it needs the parts, not the whole.
    pub fn into_parts(self) -> (GenericCountSketch<H, S>, TopKTracker, HeapPolicy) {
        (self.sketch, self.tracker, self.policy)
    }
}

/// One-shot APPROXTOP over a stream with explicit sketch dimensions.
pub fn approx_top(stream: &Stream, k: usize, params: SketchParams, seed: u64) -> ApproxTopResult {
    let mut p = ApproxTopProcessor::new(params, k, seed);
    p.observe_stream(stream);
    p.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Zipf, ZipfStreamKind};
    use std::collections::HashSet;

    fn recall_at_k(result: &ApproxTopResult, exact: &ExactCounter, k: usize) -> f64 {
        let truth: HashSet<ItemKey> = exact.top_k(k).into_iter().map(|(k, _)| k).collect();
        let got: HashSet<ItemKey> = result.keys().into_iter().collect();
        truth.intersection(&got).count() as f64 / truth.len() as f64
    }

    #[test]
    fn finds_dominant_items_zipf() {
        let zipf = Zipf::new(1000, 1.2);
        let stream = zipf.stream(50_000, 5, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let result = approx_top(&stream, 10, SketchParams::new(7, 1024), 42);
        assert_eq!(result.items.len(), 10);
        let r = recall_at_k(&result, &exact, 10);
        assert!(r >= 0.9, "recall = {r}");
    }

    #[test]
    fn lemma5_dimensioning_yields_guarantee() {
        // Size b by Lemma 5 and check: every reported item has
        // n_q >= (1 - eps) * n_k.
        let zipf = Zipf::new(2000, 1.0);
        let stream = zipf.stream(100_000, 6, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let (k, eps) = (10usize, 0.25f64);
        let nk = exact.nk(k);
        let res_f2 = cs_stream::moments::residual_f2(&exact, k) as f64;
        let params = SketchParams::for_approx_top(k, res_f2, nk, eps, stream.len() as u64, 0.05);
        let result = approx_top(&stream, k, params, 17);
        let floor = ((1.0 - eps) * nk as f64).floor() as u64;
        for &(key, _) in &result.items {
            let truth = exact.count(key);
            assert!(
                truth >= floor,
                "item {key:?} has true count {truth} < (1-ε)n_k = {floor}"
            );
        }
        // Stronger guarantee: every item with n_q >= (1+eps) n_k reported.
        let ceil = ((1.0 + eps) * nk as f64).ceil() as u64;
        let reported: HashSet<ItemKey> = result.keys().into_iter().collect();
        for (key, count) in exact.top_k(2 * k) {
            if count >= ceil {
                assert!(
                    reported.contains(&key),
                    "item {key:?} with count {count} >= (1+ε)n_k = {ceil} missing"
                );
            }
        }
    }

    #[test]
    fn exact_on_stream_with_k_distinct_items() {
        // k distinct items, k slots: everything tracked, counts exact
        // under the increment policy.
        let stream = Stream::from_ids([1, 2, 3, 1, 2, 1]);
        let result = approx_top(&stream, 3, SketchParams::new(5, 64), 1);
        let items: std::collections::HashMap<_, _> = result.items.into_iter().collect();
        assert_eq!(items[&ItemKey(1)], 3);
        assert_eq!(items[&ItemKey(2)], 2);
        assert_eq!(items[&ItemKey(3)], 1);
    }

    #[test]
    fn empty_stream_gives_empty_result() {
        let result = approx_top(&Stream::new(), 5, SketchParams::new(3, 16), 0);
        assert!(result.items.is_empty());
    }

    #[test]
    fn both_policies_find_the_heavy_hitter() {
        let zipf = Zipf::new(200, 1.5);
        let stream = zipf.stream(20_000, 3, ZipfStreamKind::DeterministicRounded);
        for policy in [HeapPolicy::IncrementTracked, HeapPolicy::AlwaysReEstimate] {
            let mut p =
                ApproxTopProcessor::new(SketchParams::new(5, 512), 5, 9).with_policy(policy);
            p.observe_stream(&stream);
            let keys = p.result().keys();
            assert!(
                keys.contains(&ItemKey(0)),
                "policy {policy:?} missed the top item"
            );
            // And through the batched path.
            let mut b =
                ApproxTopProcessor::new(SketchParams::new(5, 512), 5, 9).with_policy(policy);
            b.observe_batch(stream.as_slice());
            assert_eq!(p.sketch().counters(), b.sketch().counters());
            assert!(
                b.result().keys().contains(&ItemKey(0)),
                "policy {policy:?} (batched) missed the top item"
            );
        }
    }

    #[test]
    fn result_space_accounts_sketch_and_heap() {
        let result = approx_top(&Stream::from_ids([1, 2]), 2, SketchParams::new(3, 128), 0);
        assert!(result.space_bytes >= 3 * 128 * 8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let zipf = Zipf::new(100, 1.0);
        let stream = zipf.stream(5000, 11, ZipfStreamKind::Sampled);
        let mut p = ApproxTopProcessor::new(SketchParams::new(5, 256), 8, 21);
        for key in stream.iter() {
            p.observe(key);
        }
        let one_shot = approx_top(&stream, 8, SketchParams::new(5, 256), 21);
        assert_eq!(p.result().items, one_shot.items);
    }

    #[test]
    fn incremental_block_aligned_batches_match_one_call() {
        // Feeding block-aligned slices reproduces a single observe_batch
        // call exactly: the block decomposition — and hence the timing of
        // every heap estimate — is identical.
        let zipf = Zipf::new(100, 1.0);
        let stream = zipf.stream(5000, 11, ZipfStreamKind::Sampled);
        let keys = stream.as_slice();
        let mut p = ApproxTopProcessor::new(SketchParams::new(5, 256), 8, 21);
        let mut at = 0usize;
        for len in [
            crate::ingest::BLOCK,
            7 * crate::ingest::BLOCK,
            32 * crate::ingest::BLOCK,
        ] {
            p.observe_batch(&keys[at..at + len]);
            at += len;
        }
        p.observe_batch(&keys[at..]);
        let mut one_call = ApproxTopProcessor::new(SketchParams::new(5, 256), 8, 21);
        one_call.observe_batch(keys);
        assert_eq!(p.result().items, one_call.result().items);
        assert_eq!(p.sketch().counters(), one_call.sketch().counters());
    }

    #[test]
    fn batched_observation_keeps_sketch_bit_identical() {
        // The heap may see estimates at block rather than arrival
        // granularity, but the sketch itself must not diverge at all.
        let zipf = Zipf::new(100, 1.0);
        let stream = zipf.stream(5000, 11, ZipfStreamKind::Sampled);
        let mut per_item = ApproxTopProcessor::new(SketchParams::new(5, 256), 8, 21);
        for key in stream.iter() {
            per_item.observe(key);
        }
        let mut batched = ApproxTopProcessor::new(SketchParams::new(5, 256), 8, 21);
        batched.observe_batch(stream.as_slice());
        assert_eq!(
            per_item.sketch().counters(),
            batched.sketch().counters(),
            "sketch counters diverge between per-item and batched observation"
        );
        // And both report the truly dominant items.
        let exact = ExactCounter::from_stream(&stream);
        let truth: HashSet<ItemKey> = exact.top_k(3).into_iter().map(|(k, _)| k).collect();
        for keys in [per_item.result().keys(), batched.result().keys()] {
            let got: HashSet<ItemKey> = keys.into_iter().collect();
            assert!(
                truth.is_subset(&got),
                "missing dominant items: {truth:?} vs {got:?}"
            );
        }
    }

    #[test]
    fn tracker_never_exceeds_k() {
        let zipf = Zipf::new(500, 0.8);
        let stream = zipf.stream(10_000, 2, ZipfStreamKind::Sampled);
        let mut p = ApproxTopProcessor::new(SketchParams::new(3, 128), 7, 5);
        for key in stream.iter() {
            p.observe(key);
            assert!(p.tracker().len() <= 7);
        }
    }
}
