//! Batched, branch-free ingestion for the Count-Sketch.
//!
//! The scalar [`GenericCountSketch::update`] pays per item: a hash/sign
//! virtual-ish call pair per row, an overflow check, and (on the exact
//! tier) an `i128` widening plus a saturation-bitset store. For the
//! throughput experiments — millions of unit-weight arrivals — almost
//! none of that is needed almost all of the time. This module amortizes
//! it over blocks:
//!
//! 1. Keys are processed in blocks of [`BLOCK`]; the block is hashed
//!    into stack-allocated row-major lanes (buckets and signs for every
//!    row), and only then scattered into the counter array row by row.
//!    Separating the hash pass from the scatter pass keeps the hash
//!    coefficients pinned in registers — interleaved with counter
//!    stores, the compiler must conservatively reload them, because it
//!    cannot prove the stores don't alias the hasher storage. The hash
//!    pass walks keys in the outer loop and rows inside, which keeps all
//!    `2t` independent evaluation chains of one key in flight at once —
//!    measured ~2× faster on the polynomial family than hashing one row
//!    across the whole block at a time ([`BucketHasher::bucket_block`]
//!    remains the per-row interface for callers that want it, and the
//!    `micro` benchmark compares both shapes).
//! 2. The overflow check runs once per block, not once per cell: the
//!    sketch's `abs_mass` watermark bounds every `|counter|`, so
//!    `abs_mass + n·|w| ≤ i64::MAX` proves the whole block cannot clamp
//!    and the adds run in pure `i64` — no `i128`, no branches, no bitset
//!    stores. Only when headroom is exhausted (after ~2^63 absolute mass,
//!    i.e. essentially never for realistic streams) does the block fall
//!    back to the exact per-item clamp-and-flag tier.
//!
//! Both tiers produce **bit-identical** counters and saturation flags to
//! a sequence of scalar `update` calls — the fast tier is only entered
//! when clamping is provably impossible, and the exact tier *is* the
//! scalar path. The property tests at the bottom pin this equivalence
//! down, including at weights within a few units of `i64::MAX`.

use crate::sketch::GenericCountSketch;
use cs_hash::{BucketHasher, ItemKey, SignHasher};
use cs_stream::Stream;

/// Keys hashed per block. 32 keeps the bucket and sign lanes for a
/// 16-row sketch in 8 KiB of stack — comfortably inside L1 — while
/// giving the out-of-order core far more independent work than it can
/// retire.
pub const BLOCK: usize = 32;

/// Widest sketch the stack lanes cover. Taller sketches (rare: the
/// paper's `t` is `O(log n/δ)`, and the repo's experiments top out at
/// `t = 11`) take the scalar-per-key fallback inside the same headroom
/// scheme. Shared with the read path's batch-estimate lanes
/// ([`crate::sketch::EstimateBatchScratch`]).
pub(crate) const LANE_ROWS: usize = 16;

/// Reusable stack lanes for the block engine — row-major: lane
/// `i*BLOCK + j` holds row i's cell for the j-th key of the current
/// block. Zeroing these costs ~8 KiB of stores, which matters to
/// callers that feed the engine one block at a time (the heap
/// processors do, to keep estimates block-fresh): the same
/// create-once-reuse-per-block pattern as
/// [`crate::sketch::EstimateScratch`].
#[derive(Debug, Clone)]
pub struct IngestLanes {
    buckets: [usize; BLOCK * LANE_ROWS],
    signs: [i64; BLOCK * LANE_ROWS],
}

impl IngestLanes {
    /// Fresh (zeroed) lanes.
    pub fn new() -> Self {
        Self {
            buckets: [0; BLOCK * LANE_ROWS],
            signs: [0; BLOCK * LANE_ROWS],
        }
    }
}

impl Default for IngestLanes {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: BucketHasher, S: SignHasher> GenericCountSketch<H, S> {
    /// Adds one occurrence of every key in `keys`, equivalent to (and
    /// bit-identical with) calling [`Self::add`] per key in order.
    pub fn update_batch(&mut self, keys: &[ItemKey]) {
        self.update_batch_weighted(keys, 1);
    }

    /// Adds `weight` occurrences of every key in `keys`, equivalent to
    /// (and bit-identical with) calling [`Self::update`] per key in
    /// order — same counters, same saturation flags.
    pub fn update_batch_weighted(&mut self, keys: &[ItemKey], weight: i64) {
        let mut lanes = IngestLanes::new();
        self.update_batch_weighted_with_lanes(keys, weight, &mut lanes);
    }

    /// [`Self::update_batch_weighted`] with caller-owned lanes, for
    /// block-at-a-time callers that would otherwise re-zero the lanes on
    /// every call.
    pub fn update_batch_weighted_with_lanes(
        &mut self,
        keys: &[ItemKey],
        weight: i64,
        lanes: &mut IngestLanes,
    ) {
        let IngestLanes { buckets, signs } = lanes;
        let lanes_fit = self.rows <= LANE_ROWS;
        for chunk in keys.chunks(BLOCK) {
            let n = chunk.len();
            match self.headroom_after(n, weight) {
                Some(mass) => {
                    self.abs_mass = mass;
                    if lanes_fit {
                        // Hash pass: all 2t chains of one key in flight
                        // together, no counter stores in between.
                        for (j, key) in chunk.iter().enumerate() {
                            let k = key.raw();
                            let hs = self.hashers.iter().zip(&self.signs);
                            for (i, (h, sg)) in hs.enumerate() {
                                buckets[i * BLOCK + j] = h.bucket(k);
                                signs[i * BLOCK + j] = sg.sign(k);
                            }
                        }
                        // Scatter pass: plain i64 adds, row by row.
                        for (i, row) in self.counters.chunks_exact_mut(self.buckets).enumerate() {
                            let bl = &buckets[i * BLOCK..i * BLOCK + n];
                            let sl = &signs[i * BLOCK..i * BLOCK + n];
                            for (&b, &s) in bl.iter().zip(sl) {
                                // In-range by BucketHasher's contract;
                                // the check folds into the row slice.
                                row[b] += s * weight;
                            }
                        }
                    } else {
                        for key in chunk {
                            let k = key.raw();
                            for i in 0..self.rows {
                                let bucket = self.hashers[i].bucket(k);
                                let sign = self.signs[i].sign(k);
                                self.counters[i * self.buckets + bucket] += sign * weight;
                            }
                        }
                    }
                }
                // Headroom exhausted: the exact tier checks (and clamps)
                // every cell individually, exactly like scalar ingestion.
                None => {
                    for &key in chunk {
                        self.update_exact(key, weight);
                    }
                }
            }
        }
    }

    /// Batch counterpart of [`Self::absorb`] with unit weight: sketches
    /// the whole stream through the block engine.
    pub fn absorb_batch(&mut self, stream: &Stream) {
        self.update_batch(stream.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SketchParams;
    use crate::sketch::CountSketch;
    use cs_stream::{Zipf, ZipfStreamKind};
    use proptest::prelude::*;

    fn sketch() -> CountSketch {
        CountSketch::new(SketchParams::new(5, 64), 42)
    }

    fn assert_identical(a: &CountSketch, b: &CountSketch) {
        assert_eq!(a.counters(), b.counters(), "counters diverge");
        assert_eq!(
            a.saturated_words(),
            b.saturated_words(),
            "saturation flags diverge"
        );
    }

    #[test]
    fn batch_matches_sequential_on_zipf() {
        let stream = Zipf::new(500, 1.0).stream(10_000, 3, ZipfStreamKind::Sampled);
        let mut seq = sketch();
        for key in stream.iter() {
            seq.update(key, 1);
        }
        let mut bat = sketch();
        bat.absorb_batch(&stream);
        assert_identical(&seq, &bat);
    }

    #[test]
    fn absorb_routes_through_batch_and_matches_scalar() {
        let stream = Zipf::new(200, 1.2).stream(5_000, 7, ZipfStreamKind::Sampled);
        let mut seq = sketch();
        for key in stream.iter() {
            seq.update(key, -3);
        }
        let mut bat = sketch();
        bat.absorb(&stream, -3);
        assert_identical(&seq, &bat);
    }

    #[test]
    fn partial_blocks_handled() {
        // Lengths straddling the block size, including empty.
        for len in [0usize, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 7] {
            let keys: Vec<ItemKey> = (0..len as u64).map(ItemKey).collect();
            let mut seq = sketch();
            for &k in &keys {
                seq.add(k);
            }
            let mut bat = sketch();
            bat.update_batch(&keys);
            assert_identical(&seq, &bat);
        }
    }

    #[test]
    fn huge_weights_fall_back_to_exact_tier_identically() {
        // Each update carries nearly i64::MAX: the first exhausts the
        // headroom and the repeats of key 1 drive its cells past the
        // limit, clamping exactly where the scalar path clamps.
        let w = i64::MAX - 3;
        let keys: Vec<ItemKey> = (0..10u64).map(|k| ItemKey(k.min(1))).collect();
        let mut seq = sketch();
        for &k in &keys {
            seq.update(k, w);
        }
        let mut bat = sketch();
        bat.update_batch_weighted(&keys, w);
        assert_identical(&seq, &bat);
        #[cfg(feature = "saturation-tracking")]
        assert!(
            !bat.health().is_healthy(),
            "expected clamping to be flagged"
        );
    }

    #[test]
    fn i64_min_weight_takes_exact_tier() {
        // |i64::MIN| exceeds i64::MAX, so no headroom check can admit it;
        // the exact tier must negate it in i128 without wrapping.
        let keys: Vec<ItemKey> = (0..5u64).map(ItemKey).collect();
        let mut seq = sketch();
        for &k in &keys {
            seq.update(k, i64::MIN);
        }
        let mut bat = sketch();
        bat.update_batch_weighted(&keys, i64::MIN);
        assert_identical(&seq, &bat);
    }

    #[test]
    fn interleaving_batch_and_scalar_is_consistent() {
        let stream = Zipf::new(100, 1.0).stream(2_000, 5, ZipfStreamKind::Sampled);
        let keys = stream.as_slice();
        let mut seq = sketch();
        for &k in keys {
            seq.update(k, 2);
        }
        let mut mixed = sketch();
        mixed.update_batch_weighted(&keys[..500], 2);
        for &k in &keys[500..700] {
            mixed.update(k, 2);
        }
        mixed.update_batch_weighted(&keys[700..], 2);
        assert_identical(&seq, &mixed);
    }

    proptest! {
        #[test]
        fn prop_batch_equals_sequential(
            seed: u64,
            weight_idx in 0usize..8,
            raw_keys in prop::collection::vec(any::<u64>(), 0..200),
        ) {
            const WEIGHTS: [i64; 8] =
                [1, -1, 3, 1 << 40, i64::MAX - 1, i64::MAX, i64::MIN + 1, i64::MIN];
            let weight = WEIGHTS[weight_idx];
            let keys: Vec<ItemKey> = raw_keys.into_iter().map(ItemKey).collect();
            let params = SketchParams::new(3, 16);
            let mut seq = CountSketch::new(params, seed);
            for &k in &keys {
                seq.update(k, weight);
            }
            let mut bat = CountSketch::new(params, seed);
            bat.update_batch_weighted(&keys, weight);
            prop_assert_eq!(seq.counters(), bat.counters());
            prop_assert_eq!(seq.saturated_words(), bat.saturated_words());
        }

        #[test]
        fn prop_mixed_weights_batchwise(
            seed: u64,
            weights in prop::collection::vec(-1000i64..1000, 1..8),
            raw_keys in prop::collection::vec(any::<u64>(), 1..100),
        ) {
            // Several weighted passes over the same keys, batch vs scalar.
            let keys: Vec<ItemKey> = raw_keys.into_iter().map(ItemKey).collect();
            let params = SketchParams::new(3, 16);
            let mut seq = CountSketch::new(params, seed);
            let mut bat = CountSketch::new(params, seed);
            for &w in &weights {
                for &k in &keys {
                    seq.update(k, w);
                }
                bat.update_batch_weighted(&keys, w);
            }
            prop_assert_eq!(seq.counters(), bat.counters());
            prop_assert_eq!(seq.saturated_words(), bat.saturated_words());
        }
    }
}
