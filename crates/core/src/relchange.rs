//! Extension: relative- and balanced-change objectives (§5's open
//! problem).
//!
//! The paper closes with: *"there is still an open problem of finding the
//! elements with the max-percent change, or other objective functions
//! that somehow balance absolute and relative changes."* This module
//! implements the natural sketch-based attack on that problem, as an
//! extension beyond the paper's text:
//!
//! * maintain the §4.2 difference sketch for `n̂_q ≈ n_q^{S2} - n_q^{S1}`,
//!   plus a *sum* sketch for `m̂_q ≈ n_q^{S2} + n_q^{S1}` (additivity again);
//! * rank candidates in pass 2 by a [`ChangeObjective`]:
//!   - [`ChangeObjective::Absolute`] — the paper's `|Δ|`;
//!   - [`ChangeObjective::Percent`] — `|Δ| / (n^{S1} + c)` with an
//!     additive smoothing constant `c` (pure percent change is
//!     ill-posed: any new item has infinite percent change — which is
//!     exactly why the paper calls balancing an open problem);
//!   - [`ChangeObjective::Balanced`] — `|Δ| / sqrt(total + c)`, the
//!     variance-stabilized score (a Poisson-count z-score): large for
//!     changes that are improbable under the item's own volume.
//!
//! The guarantee inherited from Lemma 4 is additive (`±8γ` on each of
//! the two sketch reads), so the scores of low-volume items are noisy —
//! the smoothing constant should be chosen `≳ 8γ`. The pass-2 candidate
//! set uses exact re-counts exactly as §4.2 does, so the *final ranking*
//! among the `l` candidates is exact for every objective.

use crate::ingest::BLOCK;
use crate::params::SketchParams;
use crate::sketch::{CountSketch, EstimateBatchScratch};
use crate::topk::TopKTracker;
use cs_hash::ItemKey;
use cs_stream::Stream;
use std::collections::HashMap;

/// How to score a change between two streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChangeObjective {
    /// The paper's §4.2 objective: `|Δ|`.
    Absolute,
    /// Smoothed percent change: `|Δ| / (n^{S1} + c)`.
    Percent {
        /// Additive smoothing constant `c > 0` (choose `≳ 8γ`).
        smoothing: f64,
    },
    /// Variance-stabilized score: `|Δ| / sqrt(n^{S1} + n^{S2} + c)`.
    Balanced {
        /// Additive smoothing constant `c > 0`.
        smoothing: f64,
    },
}

impl ChangeObjective {
    /// Scores a change given the two (estimated or exact) stream counts.
    /// Counts are clamped at 0 (sketch estimates can be negative).
    pub fn score(&self, count_s1: i64, count_s2: i64) -> f64 {
        let c1 = count_s1.max(0) as f64;
        let c2 = count_s2.max(0) as f64;
        let delta = (c2 - c1).abs();
        match *self {
            ChangeObjective::Absolute => delta,
            ChangeObjective::Percent { smoothing } => {
                assert!(smoothing > 0.0, "smoothing must be positive");
                delta / (c1 + smoothing)
            }
            ChangeObjective::Balanced { smoothing } => {
                assert!(smoothing > 0.0, "smoothing must be positive");
                delta / (c1 + c2 + smoothing).sqrt()
            }
        }
    }
}

/// One scored change item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredChange {
    /// The item.
    pub key: ItemKey,
    /// Exact count in `S1` (pass-2 re-count).
    pub count_s1: u64,
    /// Exact count in `S2` (pass-2 re-count).
    pub count_s2: u64,
    /// The objective value computed from the exact counts.
    pub score: f64,
}

/// Difference + sum sketches over a stream pair, for relative-change
/// queries.
#[derive(Debug, Clone)]
pub struct RelChangeSketch {
    /// Estimates `n^{S2} - n^{S1}`.
    diff: CountSketch,
    /// Estimates `n^{S2} + n^{S1}`.
    sum: CountSketch,
}

impl RelChangeSketch {
    /// Creates the pair of sketches (same dimensions; independent hash
    /// functions derived from `seed`).
    pub fn new(params: SketchParams, seed: u64) -> Self {
        Self {
            diff: CountSketch::new(params, seed),
            sum: CountSketch::new(params, seed ^ 0x5EED_0002),
        }
    }

    /// Pass-1 step over `S1`.
    pub fn absorb_first(&mut self, stream: &Stream) {
        self.diff.absorb(stream, -1);
        self.sum.absorb(stream, 1);
    }

    /// Pass-1 step over `S2`.
    pub fn absorb_second(&mut self, stream: &Stream) {
        self.diff.absorb(stream, 1);
        self.sum.absorb(stream, 1);
    }

    /// Sketch-only estimates of `(Δ, total)` for an item.
    pub fn estimate(&self, key: ItemKey) -> (i64, i64) {
        (self.diff.estimate(key), self.sum.estimate(key))
    }

    /// Sketch-only score of an item under an objective (reconstructs
    /// per-stream counts from the diff/sum estimates).
    pub fn estimate_score(&self, key: ItemKey, objective: ChangeObjective) -> f64 {
        let (delta, total) = self.estimate(key);
        let c1 = (total - delta) / 2;
        let c2 = (total + delta) / 2;
        objective.score(c1, c2)
    }

    /// Pass 2 (§4.2-style): keep the `l` items with the largest
    /// *estimated* score, exact-count them, and return the top `k` by
    /// exact score. Scores are tracked in fixed point (×2¹⁶) inside the
    /// integer heap.
    pub fn top_changes(
        &self,
        s1: &Stream,
        s2: &Stream,
        k: usize,
        l: usize,
        objective: ChangeObjective,
    ) -> Vec<ScoredChange> {
        assert!(l >= k, "need l >= k");
        let mut tracker = TopKTracker::new(l);
        let mut exact: HashMap<ItemKey, (u64, u64)> = HashMap::new();
        let mut scratch = EstimateBatchScratch::new();
        let mut cand_keys: Vec<ItemKey> = Vec::with_capacity(BLOCK);
        let mut cand_deltas: Vec<i64> = Vec::with_capacity(BLOCK);
        let mut cand_totals: Vec<i64> = Vec::with_capacity(BLOCK);
        const FIXED: f64 = 65_536.0;

        let mut pass = |stream: &Stream, which: usize| {
            for block in stream.as_slice().chunks(BLOCK) {
                // Both sketches are frozen during pass 2; hoist each
                // block's untracked probes into two batch-kernel calls
                // (diff then sum) — admission decisions are unchanged.
                cand_keys.clear();
                for &key in block {
                    if !tracker.contains(key) && !cand_keys.contains(&key) {
                        cand_keys.push(key);
                    }
                }
                self.diff
                    .estimate_batch_with_scratch(&cand_keys, &mut scratch, &mut cand_deltas);
                self.sum
                    .estimate_batch_with_scratch(&cand_keys, &mut scratch, &mut cand_totals);
                for &key in block {
                    if !tracker.contains(key) {
                        let (delta, total) = match cand_keys.iter().position(|&c| c == key) {
                            Some(p) => (cand_deltas[p], cand_totals[p]),
                            // Evicted mid-block after being tracked at
                            // block start: rare, take the scalar probes.
                            None => (self.diff.estimate(key), self.sum.estimate(key)),
                        };
                        let c1 = (total - delta) / 2;
                        let c2 = (total + delta) / 2;
                        let score = (objective.score(c1, c2) * FIXED).min(i64::MAX as f64) as i64;
                        if let Some((evicted, _)) = tracker.offer(key, score) {
                            exact.remove(&evicted);
                        }
                        if tracker.contains(key) {
                            exact.insert(key, (0, 0));
                        }
                    }
                    if let Some(counts) = exact.get_mut(&key) {
                        if which == 1 {
                            counts.0 += 1;
                        } else {
                            counts.1 += 1;
                        }
                    }
                }
            }
        };
        pass(s1, 1);
        pass(s2, 2);

        let mut scored: Vec<ScoredChange> = exact
            .into_iter()
            .map(|(key, (c1, c2))| ScoredChange {
                key,
                count_s1: c1,
                count_s2: c2,
                score: objective.score(c1 as i64, c2 as i64),
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.key.cmp(&b.key))
        });
        scored.truncate(k);
        scored
    }
}

/// The complete two-pass relative-change query in one call.
pub fn max_relative_change(
    s1: &Stream,
    s2: &Stream,
    k: usize,
    l: usize,
    objective: ChangeObjective,
    params: SketchParams,
    seed: u64,
) -> Vec<ScoredChange> {
    let mut sketch = RelChangeSketch::new(params, seed);
    sketch.absorb_first(s1);
    sketch.absorb_second(s2);
    sketch.top_changes(s1, s2, k, l, objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ChangeSpec, StreamPair};

    #[test]
    fn objective_scores() {
        // Δ = 90, from 10 to 100.
        assert_eq!(ChangeObjective::Absolute.score(10, 100), 90.0);
        let pct = ChangeObjective::Percent { smoothing: 10.0 }.score(10, 100);
        assert!((pct - 90.0 / 20.0).abs() < 1e-12);
        let bal = ChangeObjective::Balanced { smoothing: 10.0 }.score(10, 100);
        assert!((bal - 90.0 / (120f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn negative_estimates_clamped() {
        assert_eq!(ChangeObjective::Absolute.score(-5, 10), 10.0);
    }

    #[test]
    #[should_panic(expected = "smoothing must be positive")]
    fn zero_smoothing_rejected() {
        ChangeObjective::Percent { smoothing: 0.0 }.score(1, 2);
    }

    fn pair() -> StreamPair {
        StreamPair::zipf_background(
            500,
            1.0,
            20_000,
            vec![
                // Big absolute change, small relative change (heavy item).
                ChangeSpec {
                    item: 90_000,
                    count_s1: 5_000,
                    count_s2: 7_000,
                },
                // Small absolute change, huge relative change.
                ChangeSpec {
                    item: 90_001,
                    count_s1: 10,
                    count_s2: 600,
                },
            ],
            9,
        )
    }

    #[test]
    fn absolute_and_percent_rank_differently() {
        let p = pair();
        let params = SketchParams::new(7, 2048);
        let abs = max_relative_change(&p.s1, &p.s2, 1, 20, ChangeObjective::Absolute, params, 3);
        assert_eq!(abs[0].key.raw(), 90_000, "absolute objective: heavy item");
        let pct = max_relative_change(
            &p.s1,
            &p.s2,
            1,
            20,
            ChangeObjective::Percent { smoothing: 50.0 },
            params,
            3,
        );
        assert_eq!(
            pct[0].key.raw(),
            90_001,
            "percent objective: exploding item"
        );
    }

    #[test]
    fn balanced_finds_both_planted_items() {
        let p = pair();
        let top = max_relative_change(
            &p.s1,
            &p.s2,
            2,
            30,
            ChangeObjective::Balanced { smoothing: 50.0 },
            SketchParams::new(7, 2048),
            5,
        );
        let keys: Vec<u64> = top.iter().map(|c| c.key.raw()).collect();
        assert!(keys.contains(&90_000), "balanced must keep the heavy mover");
        assert!(
            keys.contains(&90_001),
            "balanced must keep the relative mover"
        );
    }

    #[test]
    fn exact_counts_in_result_are_exact() {
        let p = pair();
        let top = max_relative_change(
            &p.s1,
            &p.s2,
            2,
            30,
            ChangeObjective::Absolute,
            SketchParams::new(7, 2048),
            7,
        );
        let e1 = cs_stream::ExactCounter::from_stream(&p.s1);
        let e2 = cs_stream::ExactCounter::from_stream(&p.s2);
        for item in &top {
            assert_eq!(item.count_s1, e1.count(item.key));
            assert_eq!(item.count_s2, e2.count(item.key));
        }
    }

    #[test]
    fn absolute_objective_matches_maxchange_module() {
        // The Absolute objective must agree with the §4.2 implementation
        // on the reported key set.
        let p = pair();
        let params = SketchParams::new(7, 4096);
        let via_rel =
            max_relative_change(&p.s1, &p.s2, 2, 30, ChangeObjective::Absolute, params, 11);
        let via_42 = crate::maxchange::max_change(&p.s1, &p.s2, 2, 30, params, 11);
        let rel_keys: std::collections::HashSet<_> = via_rel.iter().map(|c| c.key).collect();
        let mc_keys: std::collections::HashSet<_> = via_42.items.iter().map(|c| c.key).collect();
        assert_eq!(rel_keys, mc_keys);
    }

    #[test]
    fn estimate_score_tracks_exact_score() {
        let p = pair();
        let mut sk = RelChangeSketch::new(SketchParams::new(9, 4096), 13);
        sk.absorb_first(&p.s1);
        sk.absorb_second(&p.s2);
        let obj = ChangeObjective::Balanced { smoothing: 100.0 };
        let est = sk.estimate_score(ItemKey(90_000), obj);
        let exact = obj.score(5_000, 7_000);
        assert!(
            (est - exact).abs() / exact < 0.3,
            "estimated score {est} vs exact {exact}"
        );
    }

    #[test]
    fn inner_sketches_snapshot_roundtrip() {
        // The relative-change sketch persists through the snapshot codec
        // of its constituent sketches.
        let mut sk = RelChangeSketch::new(SketchParams::new(3, 32), 1);
        sk.absorb_first(&Stream::from_ids([4, 4, 4]));
        sk.absorb_second(&Stream::from_ids([4, 5]));
        let back =
            crate::sketch::CountSketch::from_snapshot_bytes(&sk.diff.to_snapshot_bytes()).unwrap();
        assert_eq!(back.counters(), sk.diff.counters());
    }
}
