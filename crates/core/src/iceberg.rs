//! Extension: iceberg queries on a Count-Sketch.
//!
//! §2 of the paper discusses Fang et al.'s *iceberg queries* — "all items
//! in a data stream which occur with frequency above some fixed
//! threshold" — and the KPS/Lossy-Counting algorithms built for them.
//! This module provides the same query shape on top of the Count-Sketch
//! machinery, so the library serves both interfaces:
//!
//! * one pass with an `l`-slot candidate heap sized for the threshold
//!   (any item above `φ·n` has rank at most `1/φ`, so `l ≥ 1/φ` slots
//!   suffice up to estimation error — we provision a slack factor);
//! * report every candidate whose estimate clears `(φ - ε)·n`.
//!
//! Unlike KPS/Lossy Counting the estimates are unbiased rather than
//! one-sided, and the same sketch simultaneously answers point queries
//! and APPROXTOP.

use crate::params::SketchParams;
use crate::sketch::{CountSketch, EstimateScratch};
use crate::topk::TopKTracker;
use cs_hash::ItemKey;
use cs_stream::Stream;

/// Result of an iceberg query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcebergResult {
    /// Items whose estimated count clears the reporting threshold,
    /// estimates non-increasing.
    pub items: Vec<(ItemKey, i64)>,
    /// The reporting threshold `(φ - ε)·n` that was applied.
    pub threshold: i64,
    /// Occurrences processed.
    pub n: u64,
}

/// One-pass iceberg query processor.
#[derive(Debug, Clone)]
pub struct IcebergProcessor {
    sketch: CountSketch,
    tracker: TopKTracker,
    phi: f64,
    eps: f64,
    n: u64,
    scratch: EstimateScratch,
}

impl IcebergProcessor {
    /// Creates a processor for support threshold `φ` with slack `ε < φ`
    /// (report everything estimated above `(φ-ε)·n`). `slack` multiplies
    /// the `⌈1/φ⌉` candidate budget (2 is a good default).
    pub fn new(params: SketchParams, phi: f64, eps: f64, slack: usize, seed: u64) -> Self {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
        assert!(eps >= 0.0 && eps < phi, "need 0 <= eps < phi");
        assert!(slack >= 1);
        let l = ((1.0 / phi).ceil() as usize).max(1) * slack;
        Self {
            sketch: CountSketch::new(params, seed),
            tracker: TopKTracker::new(l),
            phi,
            eps,
            n: 0,
            scratch: EstimateScratch::new(),
        }
    }

    /// The candidate budget `l`.
    pub fn candidate_budget(&self) -> usize {
        self.tracker.capacity()
    }

    /// Feeds one occurrence (the §3.2 heap rule).
    pub fn observe(&mut self, key: ItemKey) {
        self.n += 1;
        self.sketch.add(key);
        if !self.tracker.increment(key) {
            let est = self.sketch.estimate_with_scratch(key, &mut self.scratch);
            self.tracker.offer(key, est);
        }
    }

    /// Feeds a block of occurrences through the batched ingestion
    /// engine. Same contract as
    /// [`crate::approx_top::ApproxTopProcessor::observe_batch`]: the
    /// sketch stays bit-identical to per-item [`Self::observe`] calls;
    /// candidate-heap values are maintained at block granularity — which
    /// is immaterial here, because [`Self::result`] re-estimates every
    /// candidate against the finished sketch anyway.
    pub fn observe_batch(&mut self, keys: &[ItemKey]) {
        let mut offered = [ItemKey(0); crate::ingest::BLOCK];
        let mut lanes = crate::ingest::IngestLanes::new();
        for block in keys.chunks(crate::ingest::BLOCK) {
            self.n += block.len() as u64;
            self.sketch
                .update_batch_weighted_with_lanes(block, 1, &mut lanes);
            let mut offered_len = 0usize;
            for &key in block {
                let offered_here = offered[..offered_len].contains(&key);
                if offered_here {
                    if self.tracker.contains(key) {
                        continue;
                    }
                } else if self.tracker.increment(key) {
                    continue;
                }
                let est = self.sketch.estimate_with_scratch(key, &mut self.scratch);
                self.tracker.offer(key, est);
                if !offered_here && self.tracker.contains(key) {
                    offered[offered_len] = key;
                    offered_len += 1;
                }
            }
        }
    }

    /// Feeds a whole stream, one occurrence at a time.
    pub fn observe_stream(&mut self, stream: &Stream) {
        for key in stream.iter() {
            self.observe(key);
        }
    }

    /// Answers the iceberg query: candidates re-estimated against the
    /// final sketch, filtered at `(φ - ε)·n`.
    pub fn result(&self) -> IcebergResult {
        let threshold = ((self.phi - self.eps) * self.n as f64).ceil() as i64;
        // One scratch for the whole candidate sweep — `result` borrows
        // `self` immutably, so it cannot reuse the ingestion scratch.
        let mut scratch = EstimateScratch::new();
        let mut items: Vec<(ItemKey, i64)> = self
            .tracker
            .items_desc()
            .into_iter()
            .map(|(key, _)| (key, self.sketch.estimate_with_scratch(key, &mut scratch)))
            .filter(|&(_, est)| est >= threshold)
            .collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        IcebergResult {
            items,
            threshold,
            n: self.n,
        }
    }
}

/// One-shot iceberg query over a stream.
pub fn iceberg(
    stream: &Stream,
    phi: f64,
    eps: f64,
    params: SketchParams,
    seed: u64,
) -> IcebergResult {
    let mut p = IcebergProcessor::new(params, phi, eps, 2, seed);
    p.observe_stream(stream);
    p.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ExactCounter, Zipf, ZipfStreamKind};

    #[test]
    fn reports_items_above_threshold() {
        // counts: 1→500, 2→300, 3→100, rest → 1; n = 1000.
        let mut ids = Vec::new();
        ids.extend(std::iter::repeat_n(1u64, 500));
        ids.extend(std::iter::repeat_n(2u64, 300));
        ids.extend(std::iter::repeat_n(3u64, 100));
        ids.extend(4..104u64);
        let stream = Stream::from_ids(ids);
        let result = iceberg(&stream, 0.25, 0.05, SketchParams::new(5, 256), 1);
        let keys: Vec<u64> = result.items.iter().map(|&(k, _)| k.raw()).collect();
        assert!(keys.contains(&1));
        assert!(keys.contains(&2));
        assert!(!keys.contains(&3), "10% item below 20% reporting threshold");
    }

    #[test]
    fn all_true_heavy_items_reported_on_zipf() {
        let zipf = Zipf::new(2_000, 1.0);
        let stream = zipf.stream(100_000, 5, ZipfStreamKind::DeterministicRounded);
        let exact = ExactCounter::from_stream(&stream);
        let (phi, eps) = (0.02, 0.005);
        let result = iceberg(&stream, phi, eps, SketchParams::new(7, 2048), 3);
        let keys: Vec<ItemKey> = result.items.iter().map(|&(k, _)| k).collect();
        for (&key, &count) in exact.counts() {
            if count as f64 >= phi * stream.len() as f64 {
                assert!(keys.contains(&key), "missed heavy item {key:?} ({count})");
            }
        }
        // And nothing far below the slack threshold sneaks in.
        for &(key, _) in &result.items {
            let truth = exact.count(key) as f64;
            assert!(
                truth >= (phi - 2.0 * eps) * stream.len() as f64,
                "reported too-light item {key:?} ({truth})"
            );
        }
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let result = iceberg(&Stream::new(), 0.1, 0.01, SketchParams::new(3, 16), 0);
        assert!(result.items.is_empty());
        assert_eq!(result.n, 0);
    }

    #[test]
    fn candidate_budget_formula() {
        let p = IcebergProcessor::new(SketchParams::new(3, 16), 0.1, 0.01, 2, 0);
        assert_eq!(p.candidate_budget(), 20);
        let p = IcebergProcessor::new(SketchParams::new(3, 16), 0.5, 0.1, 1, 0);
        assert_eq!(p.candidate_budget(), 2);
    }

    #[test]
    fn threshold_arithmetic() {
        let mut p = IcebergProcessor::new(SketchParams::new(3, 64), 0.5, 0.1, 2, 1);
        for _ in 0..80 {
            p.observe(ItemKey(1));
        }
        for _ in 0..20 {
            p.observe(ItemKey(2));
        }
        let r = p.result();
        assert_eq!(r.n, 100);
        assert_eq!(r.threshold, 40);
        assert_eq!(r.items, vec![(ItemKey(1), 80)]);
    }

    #[test]
    #[should_panic(expected = "need 0 <= eps < phi")]
    fn eps_at_least_phi_rejected() {
        IcebergProcessor::new(SketchParams::new(1, 1), 0.1, 0.1, 1, 0);
    }

    #[test]
    fn batched_observation_matches_per_item_query_answers() {
        let zipf = Zipf::new(300, 1.2);
        let stream = zipf.stream(20_000, 9, ZipfStreamKind::Sampled);
        let params = SketchParams::new(5, 512);
        let mut per_item = IcebergProcessor::new(params, 0.02, 0.005, 2, 3);
        per_item.observe_stream(&stream);
        let mut batched = IcebergProcessor::new(params, 0.02, 0.005, 2, 3);
        batched.observe_batch(stream.as_slice());
        // Identical sketches and occurrence counts; the reported heavy
        // items come from final re-estimates, so they agree too.
        assert_eq!(per_item.result().n, batched.result().n);
        assert_eq!(per_item.result().threshold, batched.result().threshold);
        assert_eq!(per_item.result().items, batched.result().items);
    }

    #[test]
    fn result_sorted_desc() {
        let zipf = Zipf::new(100, 1.5);
        let stream = zipf.stream(10_000, 2, ZipfStreamKind::DeterministicRounded);
        let result = iceberg(&stream, 0.01, 0.002, SketchParams::new(5, 512), 4);
        assert!(result.items.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(!result.items.is_empty());
    }
}
