//! Row-estimate combiners.
//!
//! The paper takes the **median** of the `t` row estimates and explains
//! why (§3.2): collisions with very frequent items still corrupt a few
//! rows, "the mean is very sensitive to outliers, while the median is
//! sufficiently robust". The mean and a trimmed mean are provided for the
//! ablation benchmark that demonstrates exactly this.
//!
//! All combiners accumulate in `i128`, so summing `t` row estimates of
//! `i64::MAX` cannot wrap. Saturated *cells* are a different concern,
//! handled upstream: the sketch flags them and
//! `GenericCountSketch::estimate_checked` combines only clean rows.

/// Strategy for combining the `t` per-row estimates into one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combiner {
    /// The paper's choice: the median.
    #[default]
    Median,
    /// Plain average — the §3.1 "first attempt" the paper rejects.
    Mean,
    /// Mean of the middle half (drop the top and bottom quartiles).
    TrimmedMean,
}

/// Combines row estimates according to the strategy. `scratch` is
/// clobbered; reusing one buffer across calls avoids per-estimate
/// allocation in the hot loop.
///
/// # Panics
/// Panics if `estimates` is empty.
pub fn combine(combiner: Combiner, estimates: &[i64], scratch: &mut Vec<i64>) -> i64 {
    assert!(!estimates.is_empty(), "need at least one row estimate");
    match combiner {
        Combiner::Median => median(estimates, scratch),
        Combiner::Mean => mean(estimates),
        Combiner::TrimmedMean => trimmed_mean(estimates, scratch),
    }
}

/// The median of a slice. For even lengths, the mean of the two middle
/// values (rounded toward zero) — deterministic and symmetric, so the
/// estimator stays unbiased for symmetric error distributions.
pub fn median(values: &[i64], scratch: &mut Vec<i64>) -> i64 {
    assert!(!values.is_empty());
    // The common sketch depths take a branch-free median-selection
    // network and never touch the scratch buffer at all.
    if let Some(m) = median_network(values) {
        return m;
    }
    scratch.clear();
    scratch.extend_from_slice(values);
    let n = scratch.len();
    if n <= SMALL_SORT {
        // The estimate hot path combines t ≈ 3–11 row values; a branchy
        // insertion sort on a slice this short beats the general
        // selection machinery and its recursion setup. Both middles come
        // out sorted, so the result is identical to the select path.
        insertion_sort(scratch);
        let mid = n / 2;
        return if n % 2 == 1 {
            scratch[mid]
        } else {
            midpoint(scratch[mid - 1], scratch[mid])
        };
    }
    let mid = n / 2;
    let (_, &mut upper_mid, _) = scratch.select_nth_unstable(mid);
    if n % 2 == 1 {
        upper_mid
    } else {
        // select_nth leaves everything below index `mid` unordered but
        // <= upper_mid; the lower middle is the max of that prefix.
        let lower_mid = *scratch[..mid].iter().max().expect("n >= 2");
        midpoint(lower_mid, upper_mid)
    }
}

/// Lengths up to this take the insertion-sort path in [`median`].
const SMALL_SORT: usize = 16;

/// Branch-free median for the common fixed sketch depths `t ∈ {3,5,7,9}`,
/// or `None` for every other length (the generic [`median`] path covers
/// those). The lengths handled here are odd, so the median is a unique
/// element of the input and the result is bit-identical to sorting and
/// taking the middle — no even-length midpoint arises.
///
/// Each length runs a fixed median-selection network of `min`/`max`
/// compare-exchanges (Paeth's networks: 3/7/13/19 exchanges). With no
/// data-dependent branches the estimate hot loop neither mispredicts nor
/// allocates, which is where the batched read path gets most of its
/// speedup at these depths.
#[inline]
pub fn median_network(values: &[i64]) -> Option<i64> {
    match values.len() {
        3 => Some(median3([values[0], values[1], values[2]])),
        5 => {
            let mut v = [0i64; 5];
            v.copy_from_slice(values);
            Some(median5(v))
        }
        7 => {
            let mut v = [0i64; 7];
            v.copy_from_slice(values);
            Some(median7(v))
        }
        9 => {
            let mut v = [0i64; 9];
            v.copy_from_slice(values);
            Some(median9(v))
        }
        _ => None,
    }
}

/// One compare-exchange: after the call `v[i] <= v[j]`. `min`/`max` on
/// `i64` compile to conditional moves, not branches.
#[inline(always)]
fn cx(v: &mut [i64], i: usize, j: usize) {
    let (a, b) = (v[i], v[j]);
    v[i] = a.min(b);
    v[j] = a.max(b);
}

#[inline]
pub(crate) fn median3(mut v: [i64; 3]) -> i64 {
    cx(&mut v, 0, 1);
    cx(&mut v, 1, 2);
    cx(&mut v, 0, 1);
    v[1]
}

#[inline]
pub(crate) fn median5(mut v: [i64; 5]) -> i64 {
    cx(&mut v, 0, 1);
    cx(&mut v, 3, 4);
    cx(&mut v, 0, 3);
    cx(&mut v, 1, 4);
    cx(&mut v, 1, 2);
    cx(&mut v, 2, 3);
    cx(&mut v, 1, 2);
    v[2]
}

#[inline]
pub(crate) fn median7(mut v: [i64; 7]) -> i64 {
    cx(&mut v, 0, 5);
    cx(&mut v, 0, 3);
    cx(&mut v, 1, 6);
    cx(&mut v, 2, 4);
    cx(&mut v, 0, 1);
    cx(&mut v, 3, 5);
    cx(&mut v, 2, 6);
    cx(&mut v, 2, 3);
    cx(&mut v, 3, 6);
    cx(&mut v, 4, 5);
    cx(&mut v, 1, 4);
    cx(&mut v, 1, 3);
    cx(&mut v, 3, 4);
    v[3]
}

#[inline]
pub(crate) fn median9(mut v: [i64; 9]) -> i64 {
    cx(&mut v, 1, 2);
    cx(&mut v, 4, 5);
    cx(&mut v, 7, 8);
    cx(&mut v, 0, 1);
    cx(&mut v, 3, 4);
    cx(&mut v, 6, 7);
    cx(&mut v, 1, 2);
    cx(&mut v, 4, 5);
    cx(&mut v, 7, 8);
    cx(&mut v, 0, 3);
    cx(&mut v, 5, 8);
    cx(&mut v, 4, 7);
    cx(&mut v, 3, 6);
    cx(&mut v, 1, 4);
    cx(&mut v, 2, 5);
    cx(&mut v, 4, 7);
    cx(&mut v, 4, 2);
    cx(&mut v, 6, 4);
    cx(&mut v, 4, 2);
    v[4]
}

fn insertion_sort(v: &mut [i64]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1] > x {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// The arithmetic mean, computed in i128 then rounded toward zero.
pub fn mean(values: &[i64]) -> i64 {
    assert!(!values.is_empty());
    let sum: i128 = values.iter().map(|&v| i128::from(v)).sum();
    (sum / values.len() as i128) as i64
}

/// Mean of the middle half: sort, drop ⌊n/4⌋ from each end, average the
/// rest.
pub fn trimmed_mean(values: &[i64], scratch: &mut Vec<i64>) -> i64 {
    assert!(!values.is_empty());
    scratch.clear();
    scratch.extend_from_slice(values);
    scratch.sort_unstable();
    let drop = scratch.len() / 4;
    let mid = &scratch[drop..scratch.len() - drop];
    mean(mid)
}

/// Midpoint of two i64 values without overflow, rounded toward zero.
#[inline]
fn midpoint(a: i64, b: i64) -> i64 {
    ((i128::from(a) + i128::from(b)) / 2) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn med(v: &[i64]) -> i64 {
        median(v, &mut Vec::new())
    }

    #[test]
    fn median_odd_lengths() {
        assert_eq!(med(&[3]), 3);
        assert_eq!(med(&[3, 1, 2]), 2);
        assert_eq!(med(&[5, -10, 0, 100, 7]), 5);
    }

    #[test]
    fn median_even_lengths() {
        assert_eq!(med(&[1, 3]), 2);
        assert_eq!(med(&[4, 1, 3, 2]), 2); // (2+3)/2 rounded toward zero
        assert_eq!(med(&[-1, -3]), -2);
        assert_eq!(med(&[0, 0, 10, 10]), 5);
    }

    #[test]
    fn median_even_rounds_toward_zero() {
        assert_eq!(med(&[1, 2]), 1); // 1.5 → 1
        assert_eq!(med(&[-1, -2]), -1); // -1.5 → -1
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        // The §3.2 story: one corrupted row cannot move the median far.
        assert_eq!(med(&[10, 11, 9, 1_000_000, 10]), 10);
        assert_eq!(mean(&[10, 11, 9, 1_000_000, 10]), 200_008);
    }

    #[test]
    fn median_no_overflow_at_extremes() {
        assert_eq!(med(&[i64::MAX, i64::MAX]), i64::MAX);
        assert_eq!(med(&[i64::MIN, i64::MAX]), 0);
    }

    #[test]
    fn small_and_select_paths_agree() {
        // Lengths straddling the SMALL_SORT cutoff, against a full sort.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for n in 1..=2 * SMALL_SORT {
            let v: Vec<i64> = (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (x >> 16) as i64 - (1 << 46)
                })
                .collect();
            let mut sorted = v.clone();
            sorted.sort_unstable();
            let want = if n % 2 == 1 {
                sorted[n / 2]
            } else {
                midpoint(sorted[n / 2 - 1], sorted[n / 2])
            };
            assert_eq!(med(&v), want, "n = {n}");
        }
    }

    #[test]
    fn network_lengths_route_through_networks() {
        for n in [3usize, 5, 7, 9] {
            let v: Vec<i64> = (0..n as i64).rev().collect();
            assert_eq!(median_network(&v), Some(n as i64 / 2), "n = {n}");
        }
        for n in [1usize, 2, 4, 6, 8, 10, 17] {
            let v = vec![0i64; n];
            assert_eq!(median_network(&v), None, "n = {n} must fall back");
        }
    }

    #[test]
    fn networks_correct_on_all_01_inputs() {
        // The 0-1 principle: a min/max comparison network selects the
        // median for every input iff it does for every 0/1 input, so the
        // 2^n binary vectors are an exhaustive correctness proof.
        for n in [3usize, 5, 7, 9] {
            for bits in 0u32..(1 << n) {
                let v: Vec<i64> = (0..n).map(|i| i64::from(bits >> i & 1)).collect();
                let ones = bits.count_ones() as usize;
                let want = i64::from(ones > n / 2);
                assert_eq!(
                    median_network(&v),
                    Some(want),
                    "n = {n}, pattern {bits:#b}"
                );
            }
        }
    }

    #[test]
    fn networks_handle_extremes() {
        assert_eq!(median_network(&[i64::MIN, i64::MAX, 0]), Some(0));
        assert_eq!(
            median_network(&[i64::MAX, i64::MAX, i64::MAX, i64::MIN, i64::MIN]),
            Some(i64::MAX)
        );
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1, 2, 3]), 2);
        assert_eq!(mean(&[1, 2]), 1); // 1.5 toward zero
        assert_eq!(mean(&[-3, -4]), -3); // -3.5 toward zero
    }

    #[test]
    fn mean_no_overflow() {
        assert_eq!(mean(&[i64::MAX, i64::MAX]), i64::MAX);
        assert_eq!(mean(&[i64::MIN, i64::MIN]), i64::MIN);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        // 8 values, drop 2 from each end.
        let v = [-1_000_000, 1, 2, 3, 4, 5, 6, 1_000_000];
        assert_eq!(trimmed_mean(&v, &mut Vec::new()), 3); // mean(2,3,4,5)=3.5→3
    }

    #[test]
    fn trimmed_mean_short_slices() {
        assert_eq!(trimmed_mean(&[7], &mut Vec::new()), 7);
        assert_eq!(trimmed_mean(&[1, 5], &mut Vec::new()), 3);
        assert_eq!(trimmed_mean(&[1, 5, 9], &mut Vec::new()), 5);
    }

    #[test]
    fn combine_dispatches() {
        let mut scratch = Vec::new();
        let v = [1, 2, 100];
        assert_eq!(combine(Combiner::Median, &v, &mut scratch), 2);
        assert_eq!(combine(Combiner::Mean, &v, &mut scratch), 34);
        assert_eq!(combine(Combiner::TrimmedMean, &v, &mut scratch), 34);
    }

    #[test]
    #[should_panic(expected = "need at least one row estimate")]
    fn combine_empty_panics() {
        combine(Combiner::Median, &[], &mut Vec::new());
    }

    #[test]
    fn default_combiner_is_median() {
        assert_eq!(Combiner::default(), Combiner::Median);
    }

    proptest! {
        #[test]
        fn prop_median_matches_naive(mut v in prop::collection::vec(any::<i64>(), 1..50)) {
            let got = med(&v);
            v.sort_unstable();
            let n = v.len();
            let want = if n % 2 == 1 {
                v[n / 2]
            } else {
                ((i128::from(v[n / 2 - 1]) + i128::from(v[n / 2])) / 2) as i64
            };
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_network_matches_naive(
            n_idx in 0usize..4,
            raw in prop::collection::vec(any::<i64>(), 9),
        ) {
            let n = [3usize, 5, 7, 9][n_idx];
            let v = &raw[..n];
            let mut sorted = v.to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(median_network(v), Some(sorted[n / 2]));
        }

        #[test]
        fn prop_median_bounded_by_extremes(v in prop::collection::vec(-1000i64..1000, 1..50)) {
            let m = med(&v);
            let lo = *v.iter().min().unwrap();
            let hi = *v.iter().max().unwrap();
            prop_assert!(m >= lo && m <= hi);
        }

        #[test]
        fn prop_median_permutation_invariant(v in prop::collection::vec(any::<i64>(), 1..30)) {
            let mut rev = v.clone();
            rev.reverse();
            prop_assert_eq!(med(&v), med(&rev));
        }

        #[test]
        fn prop_all_combiners_bounded(v in prop::collection::vec(-10_000i64..10_000, 1..40)) {
            let lo = *v.iter().min().unwrap();
            let hi = *v.iter().max().unwrap();
            let mut s = Vec::new();
            for c in [Combiner::Median, Combiner::Mean, Combiner::TrimmedMean] {
                let x = combine(c, &v, &mut s);
                prop_assert!(x >= lo && x <= hi, "{c:?} gave {x} outside [{lo},{hi}]");
            }
        }
    }
}
